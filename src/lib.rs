//! Umbrella crate for the DBTF reproduction workspace.
//!
//! This crate exists to host the workspace-level examples (`examples/`) and
//! integration tests (`tests/`) that span the member crates. It re-exports
//! the public APIs of every member so examples can use a single import root.
//!
//! The actual functionality lives in:
//!
//! - [`tensor`] — Boolean tensor and matrix algebra ([`dbtf_tensor`]),
//! - [`cluster`] — the simulated distributed dataflow engine
//!   ([`dbtf_cluster`]),
//! - [`core`] — the DBTF algorithm itself ([`dbtf`]),
//! - [`baselines`] — BCP_ALS, ASSO and Walk'n'Merge ([`dbtf_baselines`]),
//! - [`datagen`] — workload generators and dataset proxies
//!   ([`dbtf_datagen`]).

pub use dbtf as core;
pub use dbtf_baselines as baselines;
pub use dbtf_cluster as cluster;
pub use dbtf_datagen as datagen;
pub use dbtf_tensor as tensor;
