//! Knowledge-base concept discovery and link prediction — the paper's
//! motivating application (NELL-style subject–relation–object triples,
//! e.g. "Seoul — is the capital of — South Korea").
//!
//! ```sh
//! cargo run --release --example knowledge_base
//! ```
//!
//! Builds a synthetic knowledge base with planted *concepts* (groups of
//! entities sharing relations), hides 10% of the triples, factorizes the
//! rest with DBTF, then:
//!
//! 1. interprets each rank-1 component as a latent concept, and
//! 2. predicts the held-out triples from the reconstruction
//!    (link prediction), reporting precision/recall against random guessing.

use dbtf::{factorize, DbtfConfig};
use dbtf_cluster::{Cluster, ClusterConfig};
use dbtf_tensor::BoolTensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

const ENTITIES: usize = 60;
const RELATIONS: usize = 12;

/// Planted concepts: (subject group, object group, relation group).
struct Concept {
    subjects: Vec<u32>,
    objects: Vec<u32>,
    relations: Vec<u32>,
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // --- Plant 4 concepts, e.g. "cities — located-in — countries". ------
    let concept_names = [
        "cities / located-in / countries",
        "people / works-for / companies",
        "athletes / plays / sports",
        "authors / wrote / books",
    ];
    let mut concepts = Vec::new();
    for c in 0..4 {
        let base = c * 15;
        concepts.push(Concept {
            subjects: (base as u32..base as u32 + 12).collect(),
            objects: (40 + c as u32 * 5..40 + c as u32 * 5 + 5).collect(),
            relations: vec![c as u32 * 3, c as u32 * 3 + 1],
        });
    }

    // --- Materialize triples (80% of each concept's cross product) plus
    //     a little noise. ---------------------------------------------------
    let mut triples = Vec::new();
    for concept in &concepts {
        for &s in &concept.subjects {
            for &o in &concept.objects {
                for &r in &concept.relations {
                    if rng.gen_bool(0.8) {
                        triples.push([s, o, r]);
                    }
                }
            }
        }
    }
    for _ in 0..triples.len() / 20 {
        triples.push([
            rng.gen_range(0..ENTITIES as u32),
            rng.gen_range(0..ENTITIES as u32),
            rng.gen_range(0..RELATIONS as u32),
        ]);
    }
    triples.sort_unstable();
    triples.dedup();

    // --- Hold out 10% of the triples for link prediction. ----------------
    triples.shuffle(&mut rng);
    let held_out: Vec<[u32; 3]> = triples.split_off(triples.len() * 9 / 10);
    let x = BoolTensor::from_entries([ENTITIES, ENTITIES, RELATIONS], triples);
    println!(
        "knowledge base: {} entities, {} relations, {} training triples, {} held out",
        ENTITIES,
        RELATIONS,
        x.nnz(),
        held_out.len()
    );

    // --- Factorize. -------------------------------------------------------
    let cluster = Cluster::new(ClusterConfig::with_workers(4));
    let config = DbtfConfig {
        rank: 6,
        initial_sets: 8,
        seed: 7,
        ..DbtfConfig::default()
    };
    let result = factorize(&cluster, &x, &config).expect("factorization succeeds");
    println!(
        "rank-{} factorization: relative error {:.3} after {} iterations\n",
        config.rank, result.relative_error, result.iterations
    );

    // --- 1. Interpret components as concepts. -----------------------------
    println!("discovered concepts (component → best-matching planted concept):");
    for r in 0..config.rank {
        let subj: Vec<usize> = result.factors.a.column(r).iter_ones().collect();
        let obj: Vec<usize> = result.factors.b.column(r).iter_ones().collect();
        let rel: Vec<usize> = result.factors.c.column(r).iter_ones().collect();
        if subj.is_empty() || obj.is_empty() || rel.is_empty() {
            println!("  component {r}: (empty)");
            continue;
        }
        // Jaccard match against each planted concept's subject set.
        let (best, score) = concepts
            .iter()
            .enumerate()
            .map(|(ci, c)| {
                let planted: std::collections::HashSet<usize> =
                    c.subjects.iter().map(|&s| s as usize).collect();
                let mine: std::collections::HashSet<usize> = subj.iter().copied().collect();
                let inter = planted.intersection(&mine).count();
                let union = planted.union(&mine).count();
                (ci, inter as f64 / union.max(1) as f64)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        println!(
            "  component {r}: {:2} subjects × {:2} objects × {} relations → \"{}\" (Jaccard {score:.2})",
            subj.len(),
            obj.len(),
            rel.len(),
            concept_names[best],
        );
    }

    // --- 2. Link prediction on the held-out triples. ----------------------
    let reconstruction = result.factors.reconstruct();
    let hits = held_out
        .iter()
        .filter(|t| reconstruction.contains(t[0], t[1], t[2]))
        .count();
    let recall = hits as f64 / held_out.len().max(1) as f64;
    // Precision proxy: how much of the predicted mass is real (train ∪ test).
    let all: std::collections::HashSet<[u32; 3]> =
        x.iter().chain(held_out.iter().copied()).collect();
    let predicted_new: Vec<[u32; 3]> = reconstruction
        .iter()
        .filter(|t| !x.contains(t[0], t[1], t[2]))
        .collect();
    let correct_new = predicted_new.iter().filter(|t| all.contains(*t)).count();
    let density = all.len() as f64 / (ENTITIES * ENTITIES * RELATIONS) as f64;
    println!("\nlink prediction on {} held-out triples:", held_out.len());
    println!("  recall: {recall:.2} (random guessing: {density:.3})");
    println!(
        "  of {} newly predicted triples, {} are true held-out links (precision {:.2})",
        predicted_new.len(),
        correct_new,
        correct_new as f64 / predicted_new.len().max(1) as f64
    );
}
