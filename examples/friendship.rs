//! Temporal community discovery on a Facebook-style friendship tensor
//! (user × user × time) — another of the paper's motivating datasets.
//!
//! ```sh
//! cargo run --release --example friendship
//! ```
//!
//! Plants three communities with different activity windows (one early,
//! one late, one spanning both and overlapping the first in membership),
//! factorizes with DBTF, and reads the factors back as *communities with
//! lifetimes*: the `a`/`b` columns give the membership, the `c` column the
//! activity window.

use dbtf::{factorize, DbtfConfig};
use dbtf_cluster::{Cluster, ClusterConfig};
use dbtf_tensor::{BoolTensor, TensorBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const USERS: usize = 40;
const WEEKS: usize = 24;

struct Community {
    name: &'static str,
    members: std::ops::Range<u32>,
    active: std::ops::Range<u32>,
}

fn main() {
    let mut rng = StdRng::seed_from_u64(8);
    let communities = [
        Community {
            name: "study group (early)",
            members: 0..12,
            active: 0..10,
        },
        Community {
            name: "climbing club (late)",
            members: 20..34,
            active: 14..24,
        },
        Community {
            name: "coworkers (always, overlaps study group)",
            members: 8..22,
            active: 0..24,
        },
    ];

    // Interactions: within each community, member pairs interact during
    // the active window with probability 0.75 per week.
    let mut builder = TensorBuilder::new([USERS, USERS, WEEKS]);
    for c in &communities {
        for u in c.members.clone() {
            for v in c.members.clone() {
                if u == v {
                    continue;
                }
                for t in c.active.clone() {
                    if rng.gen_bool(0.75) {
                        builder.insert(u, v, t);
                    }
                }
            }
        }
    }
    let x: BoolTensor = builder.build();
    println!(
        "friendship tensor: {USERS} users × {WEEKS} weeks, {} interactions",
        x.nnz()
    );

    let cluster = Cluster::new(ClusterConfig::with_workers(4));
    let config = DbtfConfig {
        rank: 3,
        initial_sets: 10,
        seed: 5,
        ..DbtfConfig::default()
    };
    let result = factorize(&cluster, &x, &config).expect("factorization succeeds");
    println!(
        "rank-3 factorization: relative error {:.3}\n",
        result.relative_error
    );

    println!("recovered communities:");
    for r in 0..config.rank {
        let members: Vec<usize> = result.factors.a.column(r).iter_ones().collect();
        let weeks: Vec<usize> = result.factors.c.column(r).iter_ones().collect();
        if members.is_empty() || weeks.is_empty() {
            println!("  component {r}: (empty)");
            continue;
        }
        let (w_lo, w_hi) = (weeks[0], *weeks.last().unwrap());
        // Match against the planted communities by membership overlap.
        let best = communities
            .iter()
            .map(|c| {
                let planted: std::collections::HashSet<usize> =
                    c.members.clone().map(|m| m as usize).collect();
                let mine: std::collections::HashSet<usize> = members.iter().copied().collect();
                let inter = planted.intersection(&mine).count() as f64;
                let union = planted.union(&mine).count() as f64;
                (c, inter / union.max(1.0))
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        println!(
            "  component {r}: {:2} members, active weeks {w_lo}–{w_hi} → \"{}\" (Jaccard {:.2})",
            members.len(),
            best.0.name,
            best.1
        );
    }

    // Overlap handling: user 10 belongs to both the study group and the
    // coworkers — Boolean factors may assign it to both components.
    let memberships: Vec<usize> = (0..config.rank)
        .filter(|&r| result.factors.a.get(10, r))
        .collect();
    println!(
        "\nuser 10 (planted in two communities) appears in component(s) {memberships:?} — \
         Boolean factors represent overlap natively (1 ⊕ 1 = 1)."
    );
}
