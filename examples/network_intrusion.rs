//! Network intrusion analysis on a CAIDA-DDoS-style trace — one of the
//! paper's motivating tensor sources (source IP × destination IP × time).
//!
//! ```sh
//! cargo run --release --example network_intrusion
//! ```
//!
//! Generates the DDoS proxy (scanning background + dense attack waves),
//! factorizes it with DBTF, and checks that the top components isolate the
//! attack waves: each recovered component is matched against the victim
//! concentration in the raw trace. Walk'n'Merge — the block-mining
//! specialist — runs on the same trace for comparison.

use dbtf::{factorize, DbtfConfig};
use dbtf_baselines::{walk_n_merge, Deadline, WnmConfig};
use dbtf_cluster::{Cluster, ClusterConfig};
use dbtf_datagen::proxies::{generate_proxy, proxy_specs};

fn main() {
    // The CAIDA-DDoS-S proxy at 1/50 scale: 180×180×80 with dense waves.
    let spec = proxy_specs()
        .into_iter()
        .find(|s| s.name == "CAIDA-DDoS-S")
        .unwrap();
    let x = generate_proxy(&spec, 0.02, 11);
    let dims = x.dims();
    println!(
        "trace: {}×{}×{} (src × dst × time), {} packets",
        dims[0],
        dims[1],
        dims[2],
        x.nnz()
    );

    // --- Ground truth proxy: the most-hammered destinations. -------------
    let mut per_victim = vec![0usize; dims[1]];
    for e in x.iter() {
        per_victim[e[1] as usize] += 1;
    }
    let mut victims: Vec<(usize, usize)> = per_victim
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, n)| n > 0)
        .collect();
    victims.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("top victims by raw packet count:");
    for &(v, n) in victims.iter().take(3) {
        println!(
            "  dst {v}: {n} packets ({:.1}% of trace)",
            100.0 * n as f64 / x.nnz() as f64
        );
    }

    // --- DBTF: attack waves as rank-1 components. -------------------------
    let cluster = Cluster::new(ClusterConfig::with_workers(4));
    let config = DbtfConfig {
        rank: 8,
        initial_sets: 10,
        seed: 3,
        ..DbtfConfig::default()
    };
    let result = factorize(&cluster, &x, &config).expect("factorization succeeds");
    println!(
        "\nDBTF rank-{}: attack components (the waves are small against the \
         scanning background, so the aggregate error stays high — isolation, \
         not compression, is the value here):",
        config.rank
    );
    let top_victims: std::collections::HashSet<usize> =
        victims.iter().take(5).map(|&(v, _)| v).collect();
    for r in 0..config.rank {
        let srcs = result.factors.a.column(r).count_ones();
        let dsts: Vec<usize> = result.factors.b.column(r).iter_ones().collect();
        let times = result.factors.c.column(r).count_ones();
        if srcs == 0 || dsts.is_empty() || times == 0 {
            continue; // unused component
        }
        let hits = dsts.iter().filter(|d| top_victims.contains(d)).count();
        println!(
            "  component {r}: {srcs:3} sources → {:2} destination(s) over {times:2} time bins \
             ({hits}/{} destinations are top victims)",
            dsts.len(),
            dsts.len()
        );
    }

    // --- Walk'n'Merge for comparison (30 s cap, as in the harness). -------
    match walk_n_merge(
        &x,
        &WnmConfig {
            merge_threshold: 0.8,
            seed: 3,
            ..WnmConfig::default()
        },
        Some(&Deadline::in_secs(30.0)),
    ) {
        Ok(wnm) => {
            println!(
                "\nWalk'n'Merge found {} dense blocks; top-5 error {} vs DBTF {}",
                wnm.blocks.len(),
                wnm.error(&x, 5),
                result.error
            );
            for (i, b) in wnm.blocks.iter().take(3).enumerate() {
                println!(
                    "  block {i}: {}×{}×{} at density {:.2}",
                    b.is.len(),
                    b.js.len(),
                    b.ks.len(),
                    b.density()
                );
            }
        }
        Err(e) => println!(
            "\nWalk'n'Merge did not finish within 30 s ({e}) — \
             the trace's size is already past its comfort zone"
        ),
    }
}
