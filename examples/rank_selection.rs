//! Choosing the rank with the MDL principle.
//!
//! ```sh
//! cargo run --release --example rank_selection
//! ```
//!
//! The Boolean rank of a tensor is NP-hard, so DBTF (like every Boolean
//! factorization method) takes `R` as an input. This example plants a
//! rank-4 tensor with noise and lets `dbtf::model_selection::select_rank`
//! sweep candidates: description length is minimized at the planted rank —
//! more components stop paying for themselves once they only model noise.

use dbtf::model_selection::select_rank;
use dbtf::DbtfConfig;
use dbtf_cluster::{Cluster, ClusterConfig};
use dbtf_datagen::{NoiseSpec, PlantedConfig, PlantedTensor};

fn main() {
    let planted = PlantedTensor::generate(PlantedConfig {
        dims: [32, 32, 32],
        rank: 4,
        factor_density: 0.3,
        noise: NoiseSpec::additive(0.05),
        seed: 13,
    });
    let x = &planted.tensor;
    println!(
        "planted rank-4 tensor: 32³, |X| = {} ({}% additive noise)",
        x.nnz(),
        5
    );

    let cluster = Cluster::new(ClusterConfig::with_workers(4));
    let base = DbtfConfig {
        initial_sets: 16,
        seed: 2,
        ..DbtfConfig::default()
    };
    let selection =
        select_rank(&cluster, x, &[1, 2, 3, 4, 5, 6, 8], &base).expect("selection succeeds");

    println!("\n{:>5} {:>10} {:>16}", "rank", "error", "DL (bits)");
    for c in &selection.candidates {
        let marker = if c.rank == selection.best_rank {
            "  ← best"
        } else {
            ""
        };
        println!(
            "{:>5} {:>10} {:>16.0}{marker}",
            c.rank, c.error, c.description_length
        );
    }
    println!(
        "\nMDL selects rank {} (planted: 4); error there: {} \
         (injected-noise floor: {})",
        selection.best_rank,
        selection.best.error(x),
        planted.oracle_error()
    );
}
