//! Quickstart: factorize a small Boolean tensor end-to-end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds an 16×16×16 binary tensor containing two overlapping
//! combinatorial blocks, runs DBTF at rank 2 on a 4-worker simulated
//! cluster, and prints the recovered factors, the reconstruction error and
//! the engine's accounting.

use dbtf::{factorize, DbtfConfig};
use dbtf_cluster::{Cluster, ClusterConfig};
use dbtf_tensor::{BitMatrix, BoolTensor};

fn main() {
    // 1. Build a tensor: X = (block A) ⊕ (block B), with a small overlap.
    let mut entries = Vec::new();
    for i in 0..7u32 {
        for j in 0..7u32 {
            for k in 0..7u32 {
                entries.push([i, j, k]); // block A: [0,7)³
                entries.push([i + 6, j + 6, k + 6]); // block B: [6,13)³
            }
        }
    }
    let x = BoolTensor::from_entries([16, 16, 16], entries);
    println!("input: {x:?} (density {:.3})", x.density());

    // 2. Boot a simulated cluster and factorize at rank 2.
    let cluster = Cluster::new(ClusterConfig::with_workers(4));
    let config = DbtfConfig {
        rank: 2,
        initial_sets: 4, // L > 1: keep the best of several random starts
        seed: 0,
        ..DbtfConfig::default()
    };
    let result = factorize(&cluster, &x, &config).expect("factorization succeeds");

    // 3. Inspect the result.
    println!(
        "rank-2 factorization: |X ⊕ X̃| = {} ({:.1}% of |X|), {} iterations{}",
        result.error,
        100.0 * result.relative_error,
        result.iterations,
        if result.converged { ", converged" } else { "" },
    );
    let column = |m: &BitMatrix, c: usize| -> String {
        (0..m.rows())
            .map(|r| if m.get(r, c) { '1' } else { '·' })
            .collect()
    };
    for r in 0..2 {
        println!(
            "component {r}: a = {}  b = {}  c = {}",
            column(&result.factors.a, r),
            column(&result.factors.b, r),
            column(&result.factors.c, r),
        );
    }

    // 4. The engine metered the run (the paper's Lemmas 6 & 7 quantities).
    let s = &result.stats;
    println!(
        "cluster: {:.3} virtual s on {} workers | shuffled {} B, broadcast {} B, collected {} B",
        s.virtual_secs,
        cluster.num_workers(),
        s.comm.bytes_shuffled,
        s.comm.bytes_broadcast,
        s.comm.bytes_collected,
    );
}
