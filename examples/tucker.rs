//! Boolean Tucker decomposition: when the core pays off.
//!
//! ```sh
//! cargo run --release --example tucker
//! ```
//!
//! Builds a *parity-wired* tensor: two groups per mode, and the block
//! `(p, q, r)` is active exactly when `p ⊕ q ⊕ r = 0` — four active
//! blocks. Every Boolean CP component must stay inside one group per mode
//! here (a component spanning both groups of one mode would cover a
//! forbidden block), so CP needs **four** components. Boolean Tucker
//! expresses the same tensor with **two** factor columns per mode plus a
//! 4-entry core: the wiring lives in the core, not in extra columns.

use dbtf::tucker::{tucker_factorize, TuckerConfig};
use dbtf::{factorize, DbtfConfig};
use dbtf_cluster::{Cluster, ClusterConfig};
use dbtf_tensor::{BoolTensor, TensorBuilder};

fn main() {
    // Two groups of 12 per mode; block (p, q, r) active iff p ⊕ q ⊕ r = 0.
    let group = |g: usize| (g * 12) as u32..(g * 12 + 12) as u32;
    let wiring: Vec<[usize; 3]> = (0..2)
        .flat_map(|p| (0..2).flat_map(move |q| (0..2).map(move |r| [p, q, r])))
        .filter(|&[p, q, r]| p ^ q ^ r == 0)
        .collect();
    let mut builder = TensorBuilder::new([24, 24, 24]);
    for &[p, q, r] in &wiring {
        for i in group(p) {
            for j in group(q) {
                for k in group(r) {
                    builder.insert(i, j, k);
                }
            }
        }
    }
    let x: BoolTensor = builder.build();
    println!(
        "input: 24³ parity tensor, |X| = {} — blocks {:?} active",
        x.nnz(),
        wiring
    );

    // --- Boolean Tucker with a 2×2×2 core. --------------------------------
    let tucker = tucker_factorize(
        &x,
        &TuckerConfig {
            ranks: [2, 2, 2],
            initial_sets: 16,
            seed: 4,
            ..TuckerConfig::default()
        },
    )
    .expect("tucker succeeds");
    println!(
        "\nTucker (2 columns/mode, 2×2×2 core): error {} ({:.1}%), model ones {}",
        tucker.error,
        100.0 * tucker.relative_error,
        tucker.factorization.total_ones()
    );
    println!("learned core entries (p, q, r):");
    for e in tucker.factorization.core.iter() {
        println!("  {:?}", e);
    }

    // --- Boolean CP at the same factor width (R = 2): provably stuck. -----
    let cluster = Cluster::new(ClusterConfig::with_workers(4));
    let run_cp = |rank: usize| {
        factorize(
            &cluster,
            &x,
            &DbtfConfig {
                rank,
                initial_sets: 16,
                seed: 4,
                ..DbtfConfig::default()
            },
        )
        .expect("cp succeeds")
    };
    let cp2 = run_cp(2);
    println!(
        "\nCP with the same factor width (R = 2): error {} ({:.1}%) — \
         each component is confined to one block, two blocks stay uncovered",
        cp2.error,
        100.0 * cp2.relative_error
    );
    let cp4 = run_cp(4);
    println!(
        "CP needs R = 4 (one component per active block): error {} ({:.1}%), model ones {}",
        cp4.error,
        100.0 * cp4.relative_error,
        cp4.factors.total_ones()
    );
    if tucker.error == 0 {
        println!(
            "\nSame tensor, exact either way — Tucker with {} model ones, \
             CP with {}: the core is the cheaper place to store the wiring.",
            tucker.factorization.total_ones(),
            cp4.factors.total_ones()
        );
    }
}
