#!/usr/bin/env bash
# Telemetry smoke check: run a small factorization with --trace-out,
# validate the emitted Chrome trace-event JSON against the schema
# (`dbtf stats --trace` exits non-zero on a malformed trace), and assert
# the disabled-telemetry factor-update path is within noise of the plain
# one — the zero-overhead-when-disabled contract of DESIGN.md §1.2.4.
#
# Usage: scripts/trace_smoke.sh [work-dir]   (default: target/trace_smoke)
set -euo pipefail
cd "$(dirname "$0")/.."

dir="${1:-target/trace_smoke}"
mkdir -p "$dir"
dbtf="cargo run --release -q -p dbtf-cli --bin dbtf --"

echo "trace_smoke: generating input tensor..."
$dbtf generate random --dims 24,24,24 --density 0.08 --seed 7 \
  --output "$dir/x.txt"

echo "trace_smoke: factorizing with --trace-out..."
$dbtf factorize --input "$dir/x.txt" --rank 4 --iters 3 --workers 4 \
  --trace-out "$dir/trace.json" > "$dir/factorize.out"

echo "trace_smoke: validating the trace..."
$dbtf stats --trace "$dir/trace.json" | tee "$dir/stats.out"
grep -q "complete events" "$dir/stats.out"
grep -q "cp.update.sweep" "$dir/stats.out"

# A corrupted trace must be rejected (exit 1, no usage banner).
head -c 200 "$dir/trace.json" > "$dir/torn.json"
if $dbtf stats --trace "$dir/torn.json" 2> "$dir/torn.err"; then
  echo "trace_smoke: FAIL — torn trace accepted" >&2
  exit 1
fi
grep -q "invalid trace" "$dir/torn.err"

echo "trace_smoke: checking disabled-telemetry bench overhead..."
# Criterion (vendored harness) prints "name time: [lo mid hi]"; compare
# the midpoints of the plain vs disabled-tracer end-to-end benches and
# fail if the disabled path is more than 1.5x the plain one — far outside
# measurement noise for a single extra branch per kernel charge.
cargo bench -p dbtf-bench --bench factor_update -- factorize_local \
  | tee "$dir/bench.out"
python3 - "$dir/bench.out" <<'EOF'
import re, sys

units = {"ns": 1e-9, "µs": 1e-6, "us": 1e-6, "ms": 1e-3, "s": 1.0}
mid = {}
for line in open(sys.argv[1]):
    m = re.match(
        r"update/(factorize_local_\w+)\s+time:\s*\[\s*[\d.]+ \S+ ([\d.]+) (\S+)",
        line,
    )
    if m:
        mid[m.group(1)] = float(m.group(2)) * units[m.group(3)]
plain = mid.get("factorize_local_plain")
disabled = mid.get("factorize_local_telemetry_disabled")
if plain is None or disabled is None:
    sys.exit("trace_smoke: FAIL — bench output missing the telemetry cases")
ratio = disabled / plain
print(f"trace_smoke: disabled-telemetry overhead ratio {ratio:.3f}")
if ratio > 1.5:
    sys.exit(f"trace_smoke: FAIL — disabled telemetry is {ratio:.2f}x plain")
EOF

echo "trace_smoke: OK"
