#!/usr/bin/env bash
# Out-of-core smoke check: the `--storage mmap` path must be observably
# identical to the default heap path through the CLI — same factors, same
# error, same Lemma 6/7 meters — while actually spilling its unfoldings to
# disk and cleaning them up afterwards. Also exercises streaming generation
# (the tensor is written without ever being materialized), `dbtf stats` on
# both a streamed tensor file and a spilled `DBTFUNFD` columnar unfolding,
# and the scaling_memory RSS-bound bench at a smoke-sized workload.
#
# Usage: scripts/ooc_smoke.sh [work-dir]   (default: target/ooc_smoke)
set -euo pipefail
cd "$(dirname "$0")/.."

dir="${1:-target/ooc_smoke}"
rm -rf "$dir"
mkdir -p "$dir"
dbtf="cargo run --release -q -p dbtf-cli --bin dbtf --"

echo "ooc_smoke: streaming-generating input tensor (binary)..."
$dbtf generate random --dims 32,28,24 --density 0.08 --seed 11 \
  --binary --output "$dir/x.dbtf"

echo "ooc_smoke: stats on the streamed tensor..."
$dbtf stats --input "$dir/x.dbtf" | tee "$dir/stats_tensor.out"
grep -q "non-zeros" "$dir/stats_tensor.out"

echo "ooc_smoke: factorizing with storage = ram..."
$dbtf factorize --input "$dir/x.dbtf" --rank 4 --iters 3 --workers 3 \
  --seed 7 --storage ram > "$dir/ram.out"

echo "ooc_smoke: factorizing with storage = mmap..."
$dbtf factorize --input "$dir/x.dbtf" --rank 4 --iters 3 --workers 3 \
  --seed 7 --storage mmap --spill-dir "$dir/spill" > "$dir/mmap.out"

echo "ooc_smoke: comparing outputs (must be identical minus the storage line)..."
grep -v "^storage: mmap" "$dir/mmap.out" > "$dir/mmap_clean.out"
diff "$dir/ram.out" "$dir/mmap_clean.out"

echo "ooc_smoke: checking the spill dir was cleaned up..."
if [ -d "$dir/spill" ] && [ -n "$(ls -A "$dir/spill")" ]; then
  echo "ooc_smoke: FAIL — spill files left behind:" >&2
  ls -R "$dir/spill" >&2
  exit 1
fi

echo "ooc_smoke: DBTF_STORAGE env selects mmap too..."
DBTF_STORAGE=mmap $dbtf factorize --input "$dir/x.dbtf" --rank 4 --iters 3 \
  --workers 3 --seed 7 > "$dir/env.out"
grep -q "^storage: mmap" "$dir/env.out"
grep -v "^storage: mmap" "$dir/env.out" | diff "$dir/ram.out" -

echo "ooc_smoke: scaling_memory bench (smoke size, scratch kept for stats)..."
cargo run --release -q -p dbtf-bench --bin scaling_memory -- \
  --dim 64 --density 0.05 --budget-mb 1 --partitions 8 \
  --scratch "$dir/memscale" --keep --json "$dir/ooc.json" \
  | tee "$dir/memscale.out"
grep -q '"bench": "scaling_memory"' "$dir/ooc.json"

echo "ooc_smoke: stats on a spilled columnar unfolding..."
$dbtf stats --input "$dir/memscale/unfold_1.dbtfu" | tee "$dir/stats_unfold.out"
grep -q "columnar unfolding (DBTFUNFD v1)" "$dir/stats_unfold.out"
grep -q "non-zeros" "$dir/stats_unfold.out"

echo "ooc_smoke: OK"
