#!/usr/bin/env bash
# Chaos sweep: fault injection × worker counts with bit-identical
# verification, emitting a JSON recovery-overhead report.
#
# Usage: scripts/chaos.sh [--net] [output.json] [extra chaos args...]
#   scripts/chaos.sh                       # report to target/chaos.json
#   scripts/chaos.sh /tmp/r.json --exp 10  # bigger tensor, custom path
#   scripts/chaos.sh --net                 # process-kill sweep on the
#                                          # networked backend; report to
#                                          # BENCH_net.json
set -euo pipefail
cd "$(dirname "$0")/.."

extra=()
default_out="target/chaos.json"
if [[ "${1:-}" == "--net" ]]; then
  extra+=(--net)
  default_out="BENCH_net.json"
  shift
fi

out="${1:-$default_out}"
shift || true
mkdir -p "$(dirname "$out")"

cargo run --release -p dbtf-bench --bin chaos -- --json "$out" ${extra[@]+"${extra[@]}"} "$@"
echo "chaos report: $out"
