#!/usr/bin/env bash
# Chaos sweep: fault injection × worker counts with bit-identical
# verification, emitting a JSON recovery-overhead report.
#
# Usage: scripts/chaos.sh [output.json] [extra chaos args...]
#   scripts/chaos.sh                       # report to target/chaos.json
#   scripts/chaos.sh /tmp/r.json --exp 10  # bigger tensor, custom path
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-target/chaos.json}"
shift || true
mkdir -p "$(dirname "$out")"

cargo run --release -p dbtf-bench --bin chaos -- --json "$out" "$@"
echo "chaos report: $out"
