#!/usr/bin/env bash
# Guard against engine crates re-congealing into monoliths: the
# dataflow-plan refactor split engine.rs (once ~1,750 lines) into focused
# modules, and the out-of-core refactor kept the tensor crate's storage
# layer similarly decomposed. CI fails if any file creeps past the limit.
set -euo pipefail

LIMIT=900
cd "$(dirname "$0")/.."

status=0
for f in crates/cluster/src/*.rs crates/cluster/src/*/*.rs crates/tensor/src/*.rs \
         crates/serve/src/*.rs crates/core/src/*.rs crates/oracle/src/*.rs \
         crates/cli/src/*.rs; do
    lines=$(wc -l <"$f")
    if [ "$lines" -gt "$LIMIT" ]; then
        echo "FAIL: $f has $lines lines (limit $LIMIT) — split it instead" >&2
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "module size check passed: no cluster, tensor, serve, core, oracle, or cli source file exceeds $LIMIT lines"
fi
exit "$status"
