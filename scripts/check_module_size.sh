#!/usr/bin/env bash
# Guard against the cluster engine re-congealing into a monolith: the
# dataflow-plan refactor split engine.rs (once ~1,750 lines) into focused
# modules, and CI fails if any of them creeps past the limit again.
set -euo pipefail

LIMIT=900
cd "$(dirname "$0")/.."

status=0
for f in crates/cluster/src/*.rs crates/cluster/src/*/*.rs; do
    lines=$(wc -l <"$f")
    if [ "$lines" -gt "$LIMIT" ]; then
        echo "FAIL: $f has $lines lines (limit $LIMIT) — split it instead" >&2
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "module size check passed: no cluster source file exceeds $LIMIT lines"
fi
exit "$status"
