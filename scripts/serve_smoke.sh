#!/usr/bin/env bash
# Serving-path smoke check: factorize → export → serve → scripted query
# session → oracle agreement → graceful drain, all through the real CLI
# on a real TCP socket. The oracle-check step is the agreement gate: a
# seeded query sweep answered by the live server must match the oracle's
# cell-by-cell CP reconstruction bit for bit.
#
# Usage: scripts/serve_smoke.sh [work-dir]   (default: target/serve_smoke)
set -euo pipefail
cd "$(dirname "$0")/.."

dir="${1:-target/serve_smoke}"
rm -rf "$dir"
mkdir -p "$dir"
dbtf="cargo run --release -q -p dbtf-cli --bin dbtf --"

cleanup() {
  if [ -n "${server_pid:-}" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill "$server_pid" 2>/dev/null || true
  fi
}
trap cleanup EXIT

echo "serve_smoke: generating a planted tensor..."
$dbtf generate planted --dims 32,28,24 --rank 4 --factor-density 0.4 \
  --additive 0.05 --seed 11 --output "$dir/x.txt"

echo "serve_smoke: factorizing with checkpointing on..."
$dbtf factorize --input "$dir/x.txt" --rank 4 --iters 3 --workers 3 \
  --seed 7 --output "$dir/run" --checkpoint "$dir/run.ckpt" > "$dir/factorize.out"

echo "serve_smoke: exporting the checkpoint to a binary factor store..."
$dbtf export-factors --checkpoint "$dir/run.ckpt" --output "$dir/factors.dbtfs" \
  | tee "$dir/export.out"
grep -q "exported factor set" "$dir/export.out"

echo "serve_smoke: stats must recognize both serving formats..."
$dbtf stats --input "$dir/run.ckpt" > "$dir/stats_ckpt.out"
grep -q "checkpoint (DBTFCKPT v1)" "$dir/stats_ckpt.out"
$dbtf stats --input "$dir/factors.dbtfs" > "$dir/stats_store.out"
grep -q "factor store (DBTFFSET v1)" "$dir/stats_store.out"

echo "serve_smoke: starting dbtf serve on an ephemeral port (mmap source)..."
$dbtf serve --store "$dir/factors.dbtfs" --source mmap --addr 127.0.0.1:0 \
  > "$dir/serve.out" &
server_pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^listening on //p' "$dir/serve.out")
  [ -n "$addr" ] && break
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "serve_smoke: FAIL — server exited before listening:" >&2
    cat "$dir/serve.out" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "serve_smoke: FAIL — server never printed its address" >&2
  exit 1
fi
echo "serve_smoke: server is listening on $addr"

echo "serve_smoke: scripted query session..."
$dbtf query --connect "$addr" --ping > "$dir/ping.out"
grep -qx "pong" "$dir/ping.out"
$dbtf query --connect "$addr" --info | tee "$dir/info.out"
grep -q "32 × 28 × 24 rank 4 (mmap)" "$dir/info.out"
$dbtf query --connect "$addr" --point 0,0,0 > "$dir/point.out"
grep -Eqx "true|false" "$dir/point.out"
$dbtf query --connect "$addr" --slice 3:1,2 > "$dir/slice.out"
$dbtf query --connect "$addr" --topk 1:0:3 > "$dir/topk.out"
$dbtf query --connect "$addr" --stats > "$dir/stats.out"
grep -q "serve.point.queries 1" "$dir/stats.out"

echo "serve_smoke: oracle agreement sweep (seeded, 300 queries)..."
$dbtf query --connect "$addr" --oracle-check "$dir/factors.dbtfs" \
  --seed 42 --count 300 | tee "$dir/oracle.out"
grep -q "oracle-check: 300 queries agree (seed 42)" "$dir/oracle.out"

echo "serve_smoke: shutting the server down..."
$dbtf query --connect "$addr" --shutdown-server > "$dir/shutdown.out"
grep -qx "server draining" "$dir/shutdown.out"
wait "$server_pid"
server_pid=""
grep -q "drained cleanly" "$dir/serve.out"

echo "serve_smoke: OK"
