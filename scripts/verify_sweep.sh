#!/usr/bin/env bash
# Differential verification sweep (crates/oracle): every seeded point runs
# the full pipeline under the sequential reference, both execution
# backends and a fault-injected replica, and checks every oracle —
# bit-identity, plan fingerprints, cell-by-cell error, Lemma 6/7
# communication formulas, recovery counters, checkpoint/resume,
# metamorphic mode permutations, Tucker. Exits non-zero on any violation.
#
# Usage: scripts/verify_sweep.sh [--long] [extra verify-sweep args...]
#   scripts/verify_sweep.sh              # CI slice: 25 points, < 60 s
#   scripts/verify_sweep.sh --long       # pre-release: 200 points + the
#                                        # mutation "teeth" proof that the
#                                        # harness catches a seeded kernel
#                                        # bug
#   scripts/verify_sweep.sh --points 50 --seed0 1000   # custom sweep
set -euo pipefail
cd "$(dirname "$0")/.."

points=25
long=0
if [[ "${1:-}" == "--long" ]]; then
  long=1
  points=200
  shift
fi

mkdir -p target
cargo run --release -p dbtf-bench --bin verify-sweep -- \
  --points "$points" --quiet --json target/verify_sweep.json "$@"
echo "sweep report: target/verify_sweep.json"

if [[ "$long" == 1 ]]; then
  # Teeth check: compile the deliberately seeded kernel bug (dbtf feature
  # `mutation`) and prove the sweep catches it. Run as a separate cargo
  # invocation so feature unification never leaks the bug into the
  # binaries above.
  echo "teeth: verifying the sweep catches a seeded kernel bug..."
  cargo test --release -p dbtf-oracle --features mutation --test teeth -q
fi
