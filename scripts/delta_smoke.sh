#!/usr/bin/env bash
# Incremental-update smoke check: factorize → export → serve → apply a
# delta with `dbtf update` → live `reload` hot-swap → oracle agreement
# against the *new* factors, all through the real CLI on a real TCP
# socket. The final oracle-check is the gate: after the hot-swap, a
# seeded query sweep answered by the live server must match the oracle's
# cell-by-cell reconstruction of the re-swept factors bit for bit.
#
# Usage: scripts/delta_smoke.sh [work-dir]   (default: target/delta_smoke)
set -euo pipefail
cd "$(dirname "$0")/.."

dir="${1:-target/delta_smoke}"
rm -rf "$dir"
mkdir -p "$dir"
dbtf="cargo run --release -q -p dbtf-cli --bin dbtf --"

cleanup() {
  if [ -n "${server_pid:-}" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill "$server_pid" 2>/dev/null || true
  fi
}
trap cleanup EXIT

echo "delta_smoke: generating a planted tensor..."
$dbtf generate planted --dims 32,28,24 --rank 4 --factor-density 0.4 \
  --additive 0.05 --seed 11 --output "$dir/x.txt"

echo "delta_smoke: factorizing the pre-delta tensor..."
$dbtf factorize --input "$dir/x.txt" --rank 4 --iters 3 --workers 3 \
  --seed 7 --checkpoint "$dir/run.ckpt" > "$dir/factorize.out"

echo "delta_smoke: exporting the checkpoint to a binary factor store..."
$dbtf export-factors --checkpoint "$dir/run.ckpt" --output "$dir/factors.dbtfs" \
  > "$dir/export.out"
grep -q "exported factor set" "$dir/export.out"

echo "delta_smoke: starting dbtf serve on an ephemeral port..."
$dbtf serve --store "$dir/factors.dbtfs" --addr 127.0.0.1:0 \
  > "$dir/serve.out" &
server_pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^listening on //p' "$dir/serve.out")
  [ -n "$addr" ] && break
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "delta_smoke: FAIL — server exited before listening:" >&2
    cat "$dir/serve.out" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "delta_smoke: FAIL — server never printed its address" >&2
  exit 1
fi
echo "delta_smoke: server is listening on $addr"

# Warm the fiber cache so the reload has something to invalidate.
$dbtf query --connect "$addr" --slice 3:1,2 > /dev/null
$dbtf query --connect "$addr" --slice 1:0,0 > /dev/null

echo "delta_smoke: writing a tensor delta (clears + sets)..."
cat > "$dir/delta.txt" <<'EOF'
# delta_smoke edits: clear two cells, set three
- 0 0 0
- 1 2 3
+ 5 5 1
+ 31 27 23
+ 10 0 7
EOF

echo "delta_smoke: bounded re-sweep through dbtf update (mmap storage) + live reload..."
$dbtf update --input "$dir/x.txt" --delta "$dir/delta.txt" \
  --factors "$dir/factors.dbtfs" --output "$dir/factors_v2.dbtfs" \
  --workers 3 --storage mmap --reload "$addr" | tee "$dir/update.out"
grep -q "re-swept" "$dir/update.out"
grep -q "reloaded $addr: serving v" "$dir/update.out"

echo "delta_smoke: the server now serves the new generation..."
$dbtf query --connect "$addr" --info | tee "$dir/info.out"
grep -q "32 × 28 × 24 rank 4" "$dir/info.out"
$dbtf query --connect "$addr" --stats > "$dir/stats.out"
grep -q "serve.reload.requests 1" "$dir/stats.out"
grep -q "serve.reload.errors 0" "$dir/stats.out"

echo "delta_smoke: oracle agreement sweep against the re-swept factors..."
$dbtf query --connect "$addr" --oracle-check "$dir/factors_v2.dbtfs" \
  --seed 42 --count 300 | tee "$dir/oracle.out"
grep -q "oracle-check: 300 queries agree (seed 42)" "$dir/oracle.out"

echo "delta_smoke: shutting the server down..."
$dbtf query --connect "$addr" --shutdown-server > "$dir/shutdown.out"
wait "$server_pid"
server_pid=""
grep -q "drained cleanly" "$dir/serve.out"

echo "delta_smoke: OK"
