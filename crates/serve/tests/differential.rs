//! The serving differential suite: a live `dbtf serve` instance must
//! agree bit-for-bit with `crates/oracle`'s cell-by-cell reconstruction
//! on a seeded query sweep — for every factor-store source (checkpoint,
//! binary ram, binary mmap) and every cache regime (bypass, saturated
//! and evicting, comfortably hot), cold and on replay.

use std::path::PathBuf;
use std::sync::atomic::Ordering;

use dbtf::{random_factor_sets, Checkpoint, DbtfConfig, FactorSet};
use dbtf_oracle::{cp_reconstruct, serving_point, serving_slice, serving_topk};
use dbtf_serve::{
    FactorStore, QueryMix, Request, SeededQueries, ServeClient, ServeHarness, ServeLimits,
    ServerConfig, SourceKind,
};
use dbtf_tensor::BoolTensor;

const DIMS: [usize; 3] = [40, 32, 24];
const RANK: usize = 8;
const SWEEP_SEED: u64 = 20260808;
const SWEEP_LEN: usize = 400;

fn factors() -> FactorSet {
    let cfg = DbtfConfig {
        seed: 97,
        ..DbtfConfig::with_rank(RANK)
    };
    random_factor_sets(DIMS, 0.3, &cfg).remove(0)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dbtf-serve-differential");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

/// Replays the seeded sweep through `client`, checking every answer
/// against the oracle; returns how many queries ran.
fn replay_against_oracle(
    client: &mut ServeClient,
    factors: &FactorSet,
    recon: &BoolTensor,
    passes: usize,
) -> usize {
    let mut total = 0;
    for pass in 0..passes {
        let sweep = SeededQueries::new(SWEEP_SEED, DIMS, QueryMix::default_mix());
        for (n, request) in sweep.take(SWEEP_LEN).enumerate() {
            total += 1;
            match request {
                Request::Point { i, j, k } => assert_eq!(
                    client.point(i, j, k).unwrap(),
                    serving_point(recon, i, j, k),
                    "pass {pass} query {n}: point {i},{j},{k}"
                ),
                Request::Slice { free_mode, lo, hi } => assert_eq!(
                    client.slice(free_mode + 1, lo, hi).unwrap(),
                    serving_slice(recon, free_mode, lo, hi),
                    "pass {pass} query {n}: slice free {free_mode} ({lo},{hi})"
                ),
                Request::Topk { mode, entity, k } => assert_eq!(
                    client.topk(mode + 1, entity, k).unwrap(),
                    serving_topk(&factors.a, &factors.b, &factors.c, mode, entity, k),
                    "pass {pass} query {n}: topk mode {mode} entity {entity} k {k}"
                ),
                other => panic!("sweep produced {other:?}"),
            }
        }
    }
    total
}

type StoreOpener<'a> = Box<dyn Fn() -> FactorStore + 'a>;

fn config(cache_fibers: usize) -> ServerConfig {
    ServerConfig {
        addr: String::new(), // harness overrides
        cache_fibers,
        limits: ServeLimits::default(),
    }
}

/// The tentpole matrix: store source × cache regime, two passes each so
/// the second pass is cache-hot wherever a cache exists.
#[test]
fn seeded_sweep_agrees_with_oracle_across_sources_and_caches() {
    let factors = factors();
    let recon = cp_reconstruct(&factors.a, &factors.b, &factors.c);
    let store_path = tmp("sweep.dbtfs");
    FactorStore::write_store(&store_path, 1, &factors).unwrap();
    let ck_path = tmp("sweep.ckpt");
    Checkpoint {
        iteration: 1,
        error: 0,
        iteration_errors: vec![0],
        factors: factors.clone(),
    }
    .write(&ck_path)
    .unwrap();

    // (open the store, label, cache capacity): bypass, a 2-fiber cache
    // that must evict constantly, and one large enough to go fully hot.
    let sources: Vec<(&str, StoreOpener<'_>)> = vec![
        (
            "ram",
            Box::new(|| FactorStore::open(&store_path, SourceKind::Ram).unwrap()),
        ),
        (
            "mmap",
            Box::new(|| FactorStore::open(&store_path, SourceKind::Mmap).unwrap()),
        ),
        (
            "checkpoint",
            Box::new(|| FactorStore::open(&ck_path, SourceKind::Ram).unwrap()),
        ),
    ];
    for (label, open) in &sources {
        for cache_fibers in [0usize, 2, 4096] {
            let harness = ServeHarness::start_with(open(), config(cache_fibers));
            let mut client = harness.client();
            let ran = replay_against_oracle(&mut client, &factors, &recon, 2);
            assert_eq!(ran, 2 * SWEEP_LEN);
            let m = harness.metrics();
            let hits = m.cache_hits.load(Ordering::Relaxed);
            let evictions = m.cache_evictions.load(Ordering::Relaxed);
            match cache_fibers {
                0 => assert_eq!(
                    hits + m.cache_misses.load(Ordering::Relaxed),
                    0,
                    "{label}: bypass never touches the cache"
                ),
                2 => assert!(
                    evictions > 0,
                    "{label}: a 2-fiber cache must evict on this sweep"
                ),
                _ => assert!(
                    hits > 0,
                    "{label}: the second pass must hit a 4096-fiber cache"
                ),
            }
            assert!(harness.shutdown(), "{label}: clean drain");
        }
    }
    std::fs::remove_file(&store_path).unwrap();
    std::fs::remove_file(&ck_path).unwrap();
}

/// Ram and mmap sources serve byte-identical answers — same store file,
/// same sweep, compared reply by reply (not just against the oracle).
#[test]
fn ram_and_mmap_replies_are_identical() {
    let factors = factors();
    let store_path = tmp("pair.dbtfs");
    FactorStore::write_store(&store_path, 3, &factors).unwrap();
    let ram = ServeHarness::start_with(
        FactorStore::open(&store_path, SourceKind::Ram).unwrap(),
        config(64),
    );
    let mmap = ServeHarness::start_with(
        FactorStore::open(&store_path, SourceKind::Mmap).unwrap(),
        config(64),
    );
    let (mut c1, mut c2) = (ram.client(), mmap.client());
    assert_eq!(c1.info().unwrap().set_version, 3);
    assert_eq!(c1.info().unwrap().dims, c2.info().unwrap().dims);
    assert_eq!(c1.info().unwrap().source, "ram");
    assert_eq!(c2.info().unwrap().source, "mmap");
    let sweep = SeededQueries::new(99, DIMS, QueryMix::default_mix());
    for request in sweep.take(300) {
        match request {
            Request::Point { i, j, k } => {
                assert_eq!(c1.point(i, j, k).unwrap(), c2.point(i, j, k).unwrap());
            }
            Request::Slice { free_mode, lo, hi } => {
                assert_eq!(
                    c1.slice(free_mode + 1, lo, hi).unwrap(),
                    c2.slice(free_mode + 1, lo, hi).unwrap()
                );
            }
            Request::Topk { mode, entity, k } => {
                assert_eq!(
                    c1.topk(mode + 1, entity, k).unwrap(),
                    c2.topk(mode + 1, entity, k).unwrap()
                );
            }
            other => panic!("sweep produced {other:?}"),
        }
    }
    assert!(ram.shutdown() && mmap.shutdown());
    std::fs::remove_file(&store_path).unwrap();
}

/// Batched queries answer exactly like the same queries sent one per
/// line, in order.
#[test]
fn batches_match_single_requests() {
    let factors = factors();
    let recon = cp_reconstruct(&factors.a, &factors.b, &factors.c);
    let harness = ServeHarness::start(FactorStore::from_factor_set(1, &factors));
    let mut client = harness.client();
    let cells: Vec<(usize, usize, usize)> = SeededQueries::new(5, DIMS, QueryMix::points_only())
        .take(64)
        .map(|q| match q {
            Request::Point { i, j, k } => (i, j, k),
            other => panic!("{other:?}"),
        })
        .collect();
    let bodies: Vec<String> = cells
        .iter()
        .enumerate()
        .map(|(n, (i, j, k))| {
            format!("{{\"id\":{n},\"q\":\"point\",\"i\":{i},\"j\":{j},\"k\":{k}}}")
        })
        .collect();
    let replies = client.batch(&bodies).unwrap();
    assert_eq!(replies.len(), cells.len());
    for (n, ((i, j, k), reply)) in cells.iter().zip(&replies).enumerate() {
        let reply = dbtf_serve::harness::check_reply(reply, Some(n as u64)).unwrap();
        let got = reply.get("value").and_then(|v| v.as_bool()).unwrap();
        assert_eq!(got, serving_point(&recon, *i, *j, *k), "batch element {n}");
    }
    let batches = harness.metrics().batches_total.load(Ordering::Relaxed);
    assert_eq!(batches, 1);
    assert!(harness.shutdown());
}

/// Satellite of the hot-swap tentpole: a server started from a
/// checkpoint, with export-factors-style `DBTFFSET` generations reloaded
/// in while query threads hammer it. Every answer must come entirely
/// from one generation — a slice mixing old and new factors would show
/// up as a fiber matching neither oracle — and `set_version` must track
/// each swap.
#[test]
fn live_reload_serves_whole_generations_under_concurrent_load() {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Duration;

    let fa = factors();
    let cfg_b = DbtfConfig {
        seed: 4242,
        ..DbtfConfig::with_rank(RANK)
    };
    let fb = random_factor_sets(DIMS, 0.3, &cfg_b).remove(0);
    let recon_a = cp_reconstruct(&fa.a, &fa.b, &fa.c);
    let recon_b = cp_reconstruct(&fb.a, &fb.b, &fb.c);
    assert_ne!(recon_a, recon_b, "generations must be distinguishable");

    // Round-trip start: the server boots from a checkpoint, exactly as
    // `dbtf serve` does before any export.
    let ck_path = tmp("reload.ckpt");
    Checkpoint {
        iteration: 1,
        error: 0,
        iteration_errors: vec![0],
        factors: fa.clone(),
    }
    .write(&ck_path)
    .unwrap();
    let harness = ServeHarness::start_with(
        FactorStore::open(&ck_path, SourceKind::Ram).unwrap(),
        config(256),
    );
    let addr = harness.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..3u64)
        .map(|w| {
            let stop = Arc::clone(&stop);
            let (fa, fb) = (fa.clone(), fb.clone());
            let (recon_a, recon_b) = (recon_a.clone(), recon_b.clone());
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                let mut answered = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let sweep = SeededQueries::new(1000 + w, DIMS, QueryMix::default_mix());
                    for request in sweep.take(40) {
                        match request {
                            Request::Point { i, j, k } => {
                                let got = client.point(i, j, k).unwrap();
                                let a = serving_point(&recon_a, i, j, k);
                                let b = serving_point(&recon_b, i, j, k);
                                assert!(got == a || got == b, "point ({i},{j},{k})");
                            }
                            Request::Slice { free_mode, lo, hi } => {
                                let got = client.slice(free_mode + 1, lo, hi).unwrap();
                                let a = serving_slice(&recon_a, free_mode, lo, hi);
                                let b = serving_slice(&recon_b, free_mode, lo, hi);
                                assert!(
                                    got == a || got == b,
                                    "slice free {free_mode} ({lo},{hi}) answered \
                                     {got:?}, which is neither generation \
                                     ({a:?} / {b:?}) — a cross-generation mix"
                                );
                            }
                            Request::Topk { mode, entity, k } => {
                                let got = client.topk(mode + 1, entity, k).unwrap();
                                let a = serving_topk(&fa.a, &fa.b, &fa.c, mode, entity, k);
                                let b = serving_topk(&fb.a, &fb.b, &fb.c, mode, entity, k);
                                assert!(got == a || got == b, "topk {mode}/{entity}/{k}");
                            }
                            other => panic!("sweep produced {other:?}"),
                        }
                        answered += 1;
                    }
                }
                answered
            })
        })
        .collect();

    // Flip generations while the workers run: export-factors writes a
    // new DBTFFSET (version ascending), reload hot-swaps it, alternating
    // ram and mmap sources.
    let store_path = tmp("reload.dbtfs");
    let mut admin = harness.client();
    let mut last_generation = 0;
    for round in 0..6u64 {
        let (set, source) = if round % 2 == 0 {
            (&fb, "mmap")
        } else {
            (&fa, "ram")
        };
        FactorStore::write_store(&store_path, round + 2, set).unwrap();
        let (set_version, generation, _) = admin
            .reload(store_path.to_str().unwrap(), Some(source), None)
            .unwrap();
        assert_eq!(set_version, round + 2, "reload reports the new version");
        assert_eq!(generation, last_generation + 1, "generations are monotone");
        last_generation = generation;
        std::thread::sleep(Duration::from_millis(20));
    }
    stop.store(true, Ordering::SeqCst);
    let answered: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert!(answered > 0, "workers actually queried during the swaps");

    // Final round installed `fa` (round 5 is odd): a fresh full sweep
    // must now agree with that generation exactly, and info must report
    // its version and source.
    let info = admin.info().unwrap();
    assert_eq!(info.set_version, 7);
    assert_eq!(info.source, "ram");
    let mut client = harness.client();
    replay_against_oracle(&mut client, &fa, &recon_a, 1);
    let m = harness.metrics();
    assert_eq!(m.reload_requests.load(Ordering::Relaxed), 6);
    assert_eq!(m.reload_errors.load(Ordering::Relaxed), 0);
    assert!(harness.shutdown());
    std::fs::remove_file(&ck_path).unwrap();
    std::fs::remove_file(&store_path).unwrap();
}

/// Satellite: equal-weight topk columns must come back in ascending
/// column order — and stay that way across a hot swap that moves the
/// ones around without changing the weights, so clients comparing
/// pre/post-reload rankings never see equal-score results reorder.
#[test]
fn topk_equal_weight_ties_stay_column_ascending_across_generations() {
    use dbtf_tensor::BitMatrix;

    // Rank 4, entity 0 of mode 1 has every column set. Column weights
    // (popcount(B col) × popcount(C col)): col 0 → 9, cols 1 and 2 → 4
    // (the tie), col 3 → 0.
    let mut a = BitMatrix::zeros(3, 4);
    for r in 0..4 {
        a.set(0, r, true);
    }
    let build = |b_rows: [&[usize]; 4], c_rows: [&[usize]; 4]| {
        let mut b = BitMatrix::zeros(5, 4);
        let mut c = BitMatrix::zeros(5, 4);
        for (col, rows) in b_rows.iter().enumerate() {
            for &row in *rows {
                b.set(row, col, true);
            }
        }
        for (col, rows) in c_rows.iter().enumerate() {
            for &row in *rows {
                c.set(row, col, true);
            }
        }
        FactorSet { a: a.clone(), b, c }
    };
    let fa = build(
        [&[0, 1, 2], &[0, 1], &[2, 3], &[]],
        [&[0, 1, 2], &[0, 1], &[2, 3], &[]],
    );
    // Same weights, different rows: the tie (cols 1 and 2 at weight 4)
    // survives the swap with its members' contents changed.
    let fb = build(
        [&[2, 3, 4], &[3, 4], &[0, 1], &[]],
        [&[2, 3, 4], &[3, 4], &[0, 1], &[]],
    );
    let expect = vec![(0usize, 9u64), (1, 4), (2, 4), (3, 0)];
    assert_eq!(
        serving_topk(&fa.a, &fa.b, &fa.c, 0, 0, 4),
        expect,
        "oracle tie rule: weight desc, then column asc"
    );
    assert_eq!(serving_topk(&fb.a, &fb.b, &fb.c, 0, 0, 4), expect);

    let harness = ServeHarness::start(FactorStore::from_factor_set(1, &fa));
    let mut client = harness.client();
    assert_eq!(client.topk(1, 0, 4).unwrap(), expect);
    let store_path = tmp("ties.dbtfs");
    FactorStore::write_store(&store_path, 2, &fb).unwrap();
    client
        .reload(store_path.to_str().unwrap(), None, None)
        .unwrap();
    assert_eq!(
        client.topk(1, 0, 4).unwrap(),
        expect,
        "equal-weight order is stable across the swap"
    );
    assert!(harness.shutdown());
    std::fs::remove_file(&store_path).unwrap();
}

/// The store's iteration-as-version contract survives the wire: serving
/// a checkpoint reports the checkpoint's iteration as `set_version`.
#[test]
fn checkpoint_version_surfaces_in_info() {
    let factors = factors();
    let ck_path = tmp("version.ckpt");
    Checkpoint {
        iteration: 2,
        error: 7,
        iteration_errors: vec![11, 7],
        factors,
    }
    .write(&ck_path)
    .unwrap();
    let harness = ServeHarness::start(FactorStore::open(&ck_path, SourceKind::Ram).unwrap());
    let info = harness.client().info().unwrap();
    assert_eq!(info.set_version, 2);
    assert_eq!(info.dims, DIMS);
    assert_eq!(info.rank, RANK);
    assert!(harness.shutdown());
    std::fs::remove_file(&ck_path).unwrap();
}
