//! The serving differential suite: a live `dbtf serve` instance must
//! agree bit-for-bit with `crates/oracle`'s cell-by-cell reconstruction
//! on a seeded query sweep — for every factor-store source (checkpoint,
//! binary ram, binary mmap) and every cache regime (bypass, saturated
//! and evicting, comfortably hot), cold and on replay.

use std::path::PathBuf;
use std::sync::atomic::Ordering;

use dbtf::{random_factor_sets, Checkpoint, DbtfConfig, FactorSet};
use dbtf_oracle::{cp_reconstruct, serving_point, serving_slice, serving_topk};
use dbtf_serve::{
    FactorStore, QueryMix, Request, SeededQueries, ServeClient, ServeHarness, ServeLimits,
    ServerConfig, SourceKind,
};
use dbtf_tensor::BoolTensor;

const DIMS: [usize; 3] = [40, 32, 24];
const RANK: usize = 8;
const SWEEP_SEED: u64 = 20260808;
const SWEEP_LEN: usize = 400;

fn factors() -> FactorSet {
    let cfg = DbtfConfig {
        seed: 97,
        ..DbtfConfig::with_rank(RANK)
    };
    random_factor_sets(DIMS, 0.3, &cfg).remove(0)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dbtf-serve-differential");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

/// Replays the seeded sweep through `client`, checking every answer
/// against the oracle; returns how many queries ran.
fn replay_against_oracle(
    client: &mut ServeClient,
    factors: &FactorSet,
    recon: &BoolTensor,
    passes: usize,
) -> usize {
    let mut total = 0;
    for pass in 0..passes {
        let sweep = SeededQueries::new(SWEEP_SEED, DIMS, QueryMix::default_mix());
        for (n, request) in sweep.take(SWEEP_LEN).enumerate() {
            total += 1;
            match request {
                Request::Point { i, j, k } => assert_eq!(
                    client.point(i, j, k).unwrap(),
                    serving_point(recon, i, j, k),
                    "pass {pass} query {n}: point {i},{j},{k}"
                ),
                Request::Slice { free_mode, lo, hi } => assert_eq!(
                    client.slice(free_mode + 1, lo, hi).unwrap(),
                    serving_slice(recon, free_mode, lo, hi),
                    "pass {pass} query {n}: slice free {free_mode} ({lo},{hi})"
                ),
                Request::Topk { mode, entity, k } => assert_eq!(
                    client.topk(mode + 1, entity, k).unwrap(),
                    serving_topk(&factors.a, &factors.b, &factors.c, mode, entity, k),
                    "pass {pass} query {n}: topk mode {mode} entity {entity} k {k}"
                ),
                other => panic!("sweep produced {other:?}"),
            }
        }
    }
    total
}

type StoreOpener<'a> = Box<dyn Fn() -> FactorStore + 'a>;

fn config(cache_fibers: usize) -> ServerConfig {
    ServerConfig {
        addr: String::new(), // harness overrides
        cache_fibers,
        limits: ServeLimits::default(),
    }
}

/// The tentpole matrix: store source × cache regime, two passes each so
/// the second pass is cache-hot wherever a cache exists.
#[test]
fn seeded_sweep_agrees_with_oracle_across_sources_and_caches() {
    let factors = factors();
    let recon = cp_reconstruct(&factors.a, &factors.b, &factors.c);
    let store_path = tmp("sweep.dbtfs");
    FactorStore::write_store(&store_path, 1, &factors).unwrap();
    let ck_path = tmp("sweep.ckpt");
    Checkpoint {
        iteration: 1,
        error: 0,
        iteration_errors: vec![0],
        factors: factors.clone(),
    }
    .write(&ck_path)
    .unwrap();

    // (open the store, label, cache capacity): bypass, a 2-fiber cache
    // that must evict constantly, and one large enough to go fully hot.
    let sources: Vec<(&str, StoreOpener<'_>)> = vec![
        (
            "ram",
            Box::new(|| FactorStore::open(&store_path, SourceKind::Ram).unwrap()),
        ),
        (
            "mmap",
            Box::new(|| FactorStore::open(&store_path, SourceKind::Mmap).unwrap()),
        ),
        (
            "checkpoint",
            Box::new(|| FactorStore::open(&ck_path, SourceKind::Ram).unwrap()),
        ),
    ];
    for (label, open) in &sources {
        for cache_fibers in [0usize, 2, 4096] {
            let harness = ServeHarness::start_with(open(), config(cache_fibers));
            let mut client = harness.client();
            let ran = replay_against_oracle(&mut client, &factors, &recon, 2);
            assert_eq!(ran, 2 * SWEEP_LEN);
            let m = harness.metrics();
            let hits = m.cache_hits.load(Ordering::Relaxed);
            let evictions = m.cache_evictions.load(Ordering::Relaxed);
            match cache_fibers {
                0 => assert_eq!(
                    hits + m.cache_misses.load(Ordering::Relaxed),
                    0,
                    "{label}: bypass never touches the cache"
                ),
                2 => assert!(
                    evictions > 0,
                    "{label}: a 2-fiber cache must evict on this sweep"
                ),
                _ => assert!(
                    hits > 0,
                    "{label}: the second pass must hit a 4096-fiber cache"
                ),
            }
            assert!(harness.shutdown(), "{label}: clean drain");
        }
    }
    std::fs::remove_file(&store_path).unwrap();
    std::fs::remove_file(&ck_path).unwrap();
}

/// Ram and mmap sources serve byte-identical answers — same store file,
/// same sweep, compared reply by reply (not just against the oracle).
#[test]
fn ram_and_mmap_replies_are_identical() {
    let factors = factors();
    let store_path = tmp("pair.dbtfs");
    FactorStore::write_store(&store_path, 3, &factors).unwrap();
    let ram = ServeHarness::start_with(
        FactorStore::open(&store_path, SourceKind::Ram).unwrap(),
        config(64),
    );
    let mmap = ServeHarness::start_with(
        FactorStore::open(&store_path, SourceKind::Mmap).unwrap(),
        config(64),
    );
    let (mut c1, mut c2) = (ram.client(), mmap.client());
    assert_eq!(c1.info().unwrap().set_version, 3);
    assert_eq!(c1.info().unwrap().dims, c2.info().unwrap().dims);
    assert_eq!(c1.info().unwrap().source, "ram");
    assert_eq!(c2.info().unwrap().source, "mmap");
    let sweep = SeededQueries::new(99, DIMS, QueryMix::default_mix());
    for request in sweep.take(300) {
        match request {
            Request::Point { i, j, k } => {
                assert_eq!(c1.point(i, j, k).unwrap(), c2.point(i, j, k).unwrap());
            }
            Request::Slice { free_mode, lo, hi } => {
                assert_eq!(
                    c1.slice(free_mode + 1, lo, hi).unwrap(),
                    c2.slice(free_mode + 1, lo, hi).unwrap()
                );
            }
            Request::Topk { mode, entity, k } => {
                assert_eq!(
                    c1.topk(mode + 1, entity, k).unwrap(),
                    c2.topk(mode + 1, entity, k).unwrap()
                );
            }
            other => panic!("sweep produced {other:?}"),
        }
    }
    assert!(ram.shutdown() && mmap.shutdown());
    std::fs::remove_file(&store_path).unwrap();
}

/// Batched queries answer exactly like the same queries sent one per
/// line, in order.
#[test]
fn batches_match_single_requests() {
    let factors = factors();
    let recon = cp_reconstruct(&factors.a, &factors.b, &factors.c);
    let harness = ServeHarness::start(FactorStore::from_factor_set(1, &factors));
    let mut client = harness.client();
    let cells: Vec<(usize, usize, usize)> = SeededQueries::new(5, DIMS, QueryMix::points_only())
        .take(64)
        .map(|q| match q {
            Request::Point { i, j, k } => (i, j, k),
            other => panic!("{other:?}"),
        })
        .collect();
    let bodies: Vec<String> = cells
        .iter()
        .enumerate()
        .map(|(n, (i, j, k))| {
            format!("{{\"id\":{n},\"q\":\"point\",\"i\":{i},\"j\":{j},\"k\":{k}}}")
        })
        .collect();
    let replies = client.batch(&bodies).unwrap();
    assert_eq!(replies.len(), cells.len());
    for (n, ((i, j, k), reply)) in cells.iter().zip(&replies).enumerate() {
        let reply = dbtf_serve::harness::check_reply(reply, Some(n as u64)).unwrap();
        let got = reply.get("value").and_then(|v| v.as_bool()).unwrap();
        assert_eq!(got, serving_point(&recon, *i, *j, *k), "batch element {n}");
    }
    let batches = harness.metrics().batches_total.load(Ordering::Relaxed);
    assert_eq!(batches, 1);
    assert!(harness.shutdown());
}

/// The store's iteration-as-version contract survives the wire: serving
/// a checkpoint reports the checkpoint's iteration as `set_version`.
#[test]
fn checkpoint_version_surfaces_in_info() {
    let factors = factors();
    let ck_path = tmp("version.ckpt");
    Checkpoint {
        iteration: 2,
        error: 7,
        iteration_errors: vec![11, 7],
        factors,
    }
    .write(&ck_path)
    .unwrap();
    let harness = ServeHarness::start(FactorStore::open(&ck_path, SourceKind::Ram).unwrap());
    let info = harness.client().info().unwrap();
    assert_eq!(info.set_version, 2);
    assert_eq!(info.dims, DIMS);
    assert_eq!(info.rank, RANK);
    assert!(harness.shutdown());
    std::fs::remove_file(&ck_path).unwrap();
}
