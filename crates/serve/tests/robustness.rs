//! Protocol robustness: every malformed, hostile, or unlucky input must
//! produce a typed error (or a clean close) — never a panic, never a
//! wedged server. Each test finishes by proving the server still drains.

use std::sync::atomic::Ordering;
use std::time::Duration;

use dbtf::{random_factor_sets, DbtfConfig, FactorSet};
use dbtf_serve::{
    ClientError, FactorStore, QueryMix, Request, SeededQueries, ServeClient, ServeHarness,
    ServeLimits, ServerConfig,
};
use dbtf_telemetry::JsonValue;

const DIMS: [usize; 3] = [24, 20, 16];

fn factors() -> FactorSet {
    let cfg = DbtfConfig {
        seed: 11,
        ..DbtfConfig::with_rank(4)
    };
    random_factor_sets(DIMS, 0.35, &cfg).remove(0)
}

fn harness() -> ServeHarness {
    ServeHarness::start(FactorStore::from_factor_set(1, &factors()))
}

fn harness_with(limits: ServeLimits) -> ServeHarness {
    ServeHarness::start_with(
        FactorStore::from_factor_set(1, &factors()),
        ServerConfig {
            cache_fibers: 16,
            limits,
            ..ServerConfig::default()
        },
    )
}

/// Extracts the typed server error or panics with what we got instead.
fn server_code(result: Result<impl std::fmt::Debug, ClientError>) -> String {
    match result {
        Err(ClientError::Server { code, .. }) => code,
        other => panic!("expected a typed server error, got {other:?}"),
    }
}

/// Sends one raw request line and checks the parsed reply (no id).
fn typed(client: &mut ServeClient, line: &str) -> Result<JsonValue, ClientError> {
    let reply = client.raw_line(line).unwrap();
    let value = JsonValue::parse(&reply).unwrap_or_else(|e| panic!("bad reply {reply:?}: {e}"));
    dbtf_serve::harness::check_reply(&value, None)
}

#[test]
fn malformed_json_gets_parse_error_and_connection_survives() {
    let harness = harness();
    let mut client = harness.client();
    for garbage in ["{not json", "]", "{\"q\":}", "nul\u{0}l"] {
        let reply = client.raw_line(garbage).unwrap();
        assert!(reply.contains("\"ok\":false"), "{garbage:?} → {reply}");
        assert!(
            reply.contains("\"code\":\"parse\""),
            "{garbage:?} → {reply}"
        );
    }
    // Valid JSON that is not an object is well-formed but ill-shaped.
    let reply = client.raw_line("\"just a string\"").unwrap();
    assert!(reply.contains("\"code\":\"bad_request\""), "{reply}");
    // The same connection still answers real queries afterwards.
    assert!(client.ping().is_ok());
    assert_eq!(
        harness.metrics().parse_errors.load(Ordering::Relaxed),
        4,
        "each garbage line counted once"
    );
    assert!(harness.shutdown());
}

#[test]
fn unknown_query_kind_and_missing_fields_are_typed() {
    let harness = harness();
    let mut client = harness.client();
    assert_eq!(
        server_code(typed(&mut client, "{\"q\":\"explode\"}")),
        "unknown_query"
    );
    assert_eq!(
        server_code(typed(&mut client, "{\"q\":\"point\",\"i\":1,\"j\":2}")),
        "bad_request"
    );
    assert_eq!(server_code(typed(&mut client, "{\"i\":1}")), "bad_request");
    assert_eq!(
        server_code(typed(
            &mut client,
            "{\"q\":\"point\",\"i\":1,\"j\":2,\"k\":-3}"
        )),
        "bad_request"
    );
    assert!(client.ping().is_ok());
    assert!(harness.shutdown());
}

#[test]
fn out_of_range_indices_are_typed_not_panics() {
    let harness = harness();
    let mut client = harness.client();
    assert_eq!(server_code(client.point(DIMS[0], 0, 0)), "out_of_range");
    assert_eq!(server_code(client.point(0, DIMS[1], 0)), "out_of_range");
    assert_eq!(server_code(client.point(0, 0, DIMS[2])), "out_of_range");
    assert_eq!(server_code(client.slice(1, DIMS[1], 0)), "out_of_range");
    assert_eq!(server_code(client.topk(3, DIMS[2], 4)), "out_of_range");
    // Wire mode 0 and 4 are outside the 1..=3 wire range.
    assert_eq!(
        server_code(typed(
            &mut client,
            "{\"q\":\"topk\",\"mode\":0,\"entity\":0,\"k\":1}"
        )),
        "out_of_range"
    );
    assert_eq!(
        server_code(typed(
            &mut client,
            "{\"q\":\"topk\",\"mode\":4,\"entity\":0,\"k\":1}"
        )),
        "out_of_range"
    );
    // In-range queries on the same connection still work.
    assert!(client.point(0, 0, 0).is_ok());
    assert_eq!(
        harness
            .metrics()
            .out_of_range_errors
            .load(Ordering::Relaxed),
        7
    );
    assert!(harness.shutdown());
}

#[test]
fn oversized_line_gets_typed_reply_then_close() {
    let harness = harness_with(ServeLimits {
        max_line_bytes: 256,
        max_batch: 16,
    });
    let mut client = harness.client();
    let huge = format!("{{\"q\":\"point\",\"pad\":\"{}\"}}", "x".repeat(1024));
    client.send_raw(format!("{huge}\n").as_bytes()).unwrap();
    let reply = client.read_reply_line().unwrap();
    assert!(reply.contains("\"code\":\"oversized\""), "{reply}");
    // After the typed reply the stream position is unknowable, so the
    // server closes: the next read sees EOF.
    assert!(matches!(client.read_reply_line(), Err(ClientError::Io(_))));
    assert_eq!(
        harness.metrics().oversized_errors.load(Ordering::Relaxed),
        1
    );
    // A fresh connection is unaffected.
    assert!(harness.client().ping().is_ok());
    assert!(harness.shutdown());
}

#[test]
fn batch_over_limit_is_one_error_object() {
    let harness = harness_with(ServeLimits {
        max_line_bytes: 1 << 20,
        max_batch: 4,
    });
    let mut client = harness.client();
    let bodies: Vec<String> = (0..8)
        .map(|n| format!("{{\"id\":{n},\"q\":\"ping\"}}"))
        .collect();
    let replies = client.batch(&bodies).unwrap();
    // Over-limit batches are refused with a single non-array object.
    assert_eq!(replies.len(), 1);
    let code = match dbtf_serve::harness::check_reply(&replies[0], None) {
        Err(ClientError::Server { code, .. }) => code,
        other => panic!("{other:?}"),
    };
    assert_eq!(code, "batch_limit");
    // An in-limit batch with a bad element answers element-wise.
    let mixed = vec![
        "{\"id\":0,\"q\":\"ping\"}".to_string(),
        "{\"id\":1,\"q\":\"nope\"}".to_string(),
        "{\"id\":2,\"q\":\"point\",\"i\":0,\"j\":0,\"k\":0}".to_string(),
    ];
    let replies = client.batch(&mixed).unwrap();
    assert_eq!(replies.len(), 3);
    assert!(dbtf_serve::harness::check_reply(&replies[0], Some(0)).is_ok());
    assert!(matches!(
        dbtf_serve::harness::check_reply(&replies[1], Some(1)),
        Err(ClientError::Server { code, .. }) if code == "unknown_query"
    ));
    assert!(dbtf_serve::harness::check_reply(&replies[2], Some(2)).is_ok());
    assert!(harness.shutdown());
}

#[test]
fn truncated_frame_and_midrequest_disconnect_do_not_wedge() {
    let harness = harness();
    // Half a request, then the client vanishes.
    {
        let mut client = harness.client();
        client.send_raw(b"{\"q\":\"point\",\"i\":1,").unwrap();
        // Dropping the client closes the socket mid-line.
    }
    // A whole unterminated line, then disconnect.
    {
        let mut client = harness.client();
        client.send_raw(b"{\"q\":\"ping\"}").unwrap();
    }
    // The server noticed both truncations and still serves.
    let mut probe = harness.client();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let truncated = probe.counter("serve.lines.truncated").unwrap();
        if truncated >= 2.0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "truncation never counted"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(probe.point(0, 0, 0).is_ok());
    assert!(harness.shutdown());
}

#[test]
fn concurrent_clients_all_get_correct_answers() {
    let factors = factors();
    let recon = dbtf_oracle::cp_reconstruct(&factors.a, &factors.b, &factors.c);
    let harness = ServeHarness::start(FactorStore::from_factor_set(1, &factors));
    let addr = harness.addr();
    let recon = std::sync::Arc::new(recon);
    let workers: Vec<_> = (0..8)
        .map(|w| {
            let recon = recon.clone();
            std::thread::spawn(move || {
                let mut client = dbtf_serve::ServeClient::connect(addr).unwrap();
                let sweep = SeededQueries::new(1000 + w, DIMS, QueryMix::points_only());
                for request in sweep.take(200) {
                    let Request::Point { i, j, k } = request else {
                        unreachable!()
                    };
                    assert_eq!(
                        client.point(i, j, k).unwrap(),
                        dbtf_oracle::serving_point(&recon, i, j, k),
                        "worker {w}: point {i},{j},{k}"
                    );
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("concurrent client panicked");
    }
    let m = harness.metrics();
    assert_eq!(m.point_queries.load(Ordering::Relaxed), 8 * 200);
    assert_eq!(m.connections_opened.load(Ordering::Relaxed), 8);
    assert!(harness.shutdown());
}

#[test]
fn drain_refuses_new_queries_but_acknowledges() {
    let harness = harness();
    let mut first = harness.client();
    assert!(first.ping().is_ok());
    first.shutdown().unwrap();
    assert!(harness.is_draining());
    // The shutdown connection was closed after the acknowledgement.
    assert!(matches!(first.read_reply_line(), Err(ClientError::Io(_))));
    // A connection racing the drain either fails to connect or gets a
    // typed `draining` refusal — never a hang.
    if let Ok(mut late) = dbtf_serve::ServeClient::connect(harness.addr()) {
        match late.ping() {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, "draining"),
            Err(ClientError::Io(_)) => {} // closed before the reply — also clean
            other => panic!("draining server answered {other:?}"),
        }
    }
    assert!(harness.shutdown(), "drain completes");
}

#[test]
fn reload_failures_are_typed_and_leave_the_serving_generation_alone() {
    let dir = std::env::temp_dir().join("dbtf-serve-robustness");
    std::fs::create_dir_all(&dir).unwrap();
    let tmp = |name: &str| dir.join(format!("{name}-{}", std::process::id()));

    let harness = harness();
    let mut client = harness.client();
    let v0 = client.info().unwrap().set_version;

    // Unopenable store path.
    assert_eq!(
        server_code(client.reload("/definitely/not/here.dbtfs", None, None)),
        "reload"
    );
    // Unknown source kind, checked before any file I/O.
    assert_eq!(
        server_code(client.reload("whatever.dbtfs", Some("floppy"), None)),
        "reload"
    );
    // A store whose dimensions do not match the serving space.
    let cfg = DbtfConfig {
        seed: 3,
        ..DbtfConfig::with_rank(4)
    };
    let misshapen = random_factor_sets([4, 4, 4], 0.4, &cfg).remove(0);
    let bad_path = tmp("misshapen.dbtfs");
    FactorStore::write_store(&bad_path, 9, &misshapen).unwrap();
    match client.reload(bad_path.to_str().unwrap(), None, None) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, "reload");
            assert!(message.contains("dims mismatch"), "{message}");
        }
        other => panic!("expected dims-mismatch refusal, got {other:?}"),
    }
    // A good store paired with an unreadable delta file.
    let good_path = tmp("good.dbtfs");
    FactorStore::write_store(&good_path, 2, &factors()).unwrap();
    assert_eq!(
        server_code(client.reload(good_path.to_str().unwrap(), None, Some("/no/such.delta"))),
        "reload"
    );
    // ...and with a delta that does not parse.
    let bad_delta = tmp("bad.delta");
    std::fs::write(&bad_delta, "+ 1 2\n").unwrap();
    assert_eq!(
        server_code(client.reload(
            good_path.to_str().unwrap(),
            None,
            Some(bad_delta.to_str().unwrap()),
        )),
        "reload"
    );

    // Five refusals, zero swaps: the serving generation never moved and
    // the connection still answers.
    assert_eq!(client.info().unwrap().set_version, v0);
    let m = harness.metrics();
    assert_eq!(m.reload_requests.load(Ordering::Relaxed), 5);
    assert_eq!(m.reload_errors.load(Ordering::Relaxed), 5);
    assert!(client.ping().is_ok());

    // A valid reload still works after all those failures...
    let (set_version, generation, _) = client
        .reload(good_path.to_str().unwrap(), None, None)
        .unwrap();
    assert_eq!((set_version, generation), (2, 1));
    // ...and once draining, reload is refused like any other query.
    client.shutdown().unwrap();
    if let Ok(mut late) = dbtf_serve::ServeClient::connect(harness.addr()) {
        match late.reload(good_path.to_str().unwrap(), None, None) {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, "draining"),
            Err(ClientError::Io(_)) => {} // closed before the reply — also clean
            other => panic!("draining server answered reload with {other:?}"),
        }
    }
    assert!(harness.shutdown());
    for path in [bad_path, good_path, bad_delta] {
        std::fs::remove_file(path).unwrap();
    }
}

#[test]
fn random_byte_noise_never_panics_the_server() {
    let harness = harness();
    // Deterministic pseudo-noise: every printable/unprintable mix the
    // LCG produces must be survivable.
    let mut state = 0x9e3779b97f4a7c15u64;
    for _ in 0..32 {
        let mut client = harness.client();
        let mut line = Vec::new();
        for _ in 0..64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let byte = (state >> 33) as u8;
            if byte != b'\n' {
                line.push(byte);
            }
        }
        line.push(b'\n');
        client.send_raw(&line).unwrap();
        // Whatever happened, it was a reply or a close — not a hang.
        match client.read_reply_line() {
            Ok(reply) => assert!(reply.contains("\"ok\":false"), "{reply}"),
            Err(ClientError::Io(_)) => {}
            Err(other) => panic!("{other:?}"),
        }
    }
    assert!(harness.client().ping().is_ok(), "server survives the noise");
    assert!(harness.shutdown());
}
