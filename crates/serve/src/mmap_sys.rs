//! Raw read-only memory map (little-endian unix only) backing the
//! [`crate::store::SourceKind::Mmap`] factor-store source — the same
//! direct-libc pattern as `dbtf-tensor`'s columnar mapping, so the serve
//! crate adds no dependencies either.

use std::os::unix::io::AsRawFd;

const PROT_READ: i32 = 0x1;
const MAP_PRIVATE: i32 = 0x02;

// Declared against the libc every Rust std binary already links.
extern "C" {
    fn mmap(
        addr: *mut core::ffi::c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut core::ffi::c_void;
    fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
}

/// A read-only, private, file-backed mapping of the first `len` bytes.
pub(crate) struct Map {
    ptr: *mut core::ffi::c_void,
    len: usize,
}

// The mapping is immutable for its whole lifetime (PROT_READ, private),
// so shared references to it are safe to send and share.
unsafe impl Send for Map {}
unsafe impl Sync for Map {}

impl Map {
    pub(crate) fn new(file: &std::fs::File, len: usize) -> std::io::Result<Map> {
        debug_assert!(len > 0);
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Map { ptr, len })
    }

    /// The mapped bytes viewed as little-endian words; the store format
    /// is a whole number of words by construction.
    pub(crate) fn words(&self) -> &[u64] {
        debug_assert_eq!(self.len % 8, 0);
        // Safety: the mapping is page-aligned (so u64-aligned), spans
        // `len` readable bytes, and outlives the returned borrow.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u64, self.len / 8) }
    }
}

impl Drop for Map {
    fn drop(&mut self) {
        unsafe {
            munmap(self.ptr, self.len);
        }
    }
}
