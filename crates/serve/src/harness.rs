//! In-process serving harness: a real server on an ephemeral port plus a
//! typed client, so tests and benches exercise the full TCP + JSON path
//! without fixtures or port coordination.
//!
//! [`ServeHarness::start`] binds `127.0.0.1:0`, [`ServeHarness::client`]
//! connects a [`ServeClient`] that speaks the `crates/serve` protocol
//! with auto-assigned request ids, and [`ServeHarness::shutdown`] drains
//! the server and reports whether every connection closed. The client
//! also exposes raw line I/O ([`ServeClient::raw_line`],
//! [`ServeClient::send_raw`]) so the robustness tests can send malformed
//! JSON, oversized lines, and truncated frames through the same door.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use dbtf_telemetry::JsonValue;

use crate::metrics::ServeMetrics;
use crate::server::{Server, ServerConfig, ServerHandle};
use crate::store::FactorStore;

/// A failure on the client side of a serve conversation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Socket-level failure (including the server closing the stream).
    Io(String),
    /// The server answered with a typed error reply.
    Server {
        /// The stable error code (`parse`, `out_of_range`, ...).
        code: String,
        /// The server's human-readable message.
        message: String,
    },
    /// The server's reply could not be interpreted.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(msg) => write!(f, "serve client I/O error: {msg}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Store metadata from an `info` query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreInfo {
    /// Tensor dimensions `[I, J, K]`.
    pub dims: [usize; 3],
    /// Factor rank.
    pub rank: usize,
    /// The served factor-set version.
    pub set_version: u64,
    /// `"ram"` or `"mmap"`.
    pub source: String,
}

/// A server running in-process on an ephemeral port.
pub struct ServeHarness {
    handle: Option<ServerHandle>,
}

impl ServeHarness {
    /// Starts a server over `store` with default config (port 0).
    pub fn start(store: FactorStore) -> ServeHarness {
        ServeHarness::start_with(store, ServerConfig::default())
    }

    /// Starts a server with an explicit config; the bind address is
    /// forced to an ephemeral localhost port.
    pub fn start_with(store: FactorStore, mut config: ServerConfig) -> ServeHarness {
        config.addr = "127.0.0.1:0".into();
        let handle = Server::start(store, config).expect("bind ephemeral serve port");
        ServeHarness {
            handle: Some(handle),
        }
    }

    fn handle(&self) -> &ServerHandle {
        self.handle.as_ref().expect("harness not shut down")
    }

    /// The server's live address.
    pub fn addr(&self) -> SocketAddr {
        self.handle().addr()
    }

    /// The server's counters.
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        self.handle().metrics()
    }

    /// Whether the server is draining.
    pub fn is_draining(&self) -> bool {
        self.handle().is_draining()
    }

    /// A fresh typed client connection.
    pub fn client(&self) -> ServeClient {
        ServeClient::connect(self.addr()).expect("connect to in-process server")
    }

    /// Drains and stops; `true` when every connection closed in time.
    pub fn shutdown(mut self) -> bool {
        self.handle
            .take()
            .expect("harness not shut down")
            .shutdown(Duration::from_secs(5))
    }
}

/// A typed client speaking the serve protocol over one connection.
pub struct ServeClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl ServeClient {
    /// Connects to a serve endpoint.
    pub fn connect(addr: SocketAddr) -> std::io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ServeClient {
            stream,
            reader,
            next_id: 1,
        })
    }

    fn io_err(e: std::io::Error) -> ClientError {
        ClientError::Io(e.to_string())
    }

    /// Sends raw bytes as-is (no newline added, no reply read) — the
    /// truncated-frame and mid-request-disconnect tests' entry point.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes).map_err(Self::io_err)?;
        self.stream.flush().map_err(Self::io_err)
    }

    /// Reads one reply line (newline stripped). An empty `Ok` is
    /// impossible: a closed stream is `Err(Io)`.
    pub fn read_reply_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(Self::io_err)?;
        if n == 0 {
            return Err(ClientError::Io("server closed the connection".into()));
        }
        Ok(line.trim_end_matches('\n').to_string())
    }

    /// Sends one raw request line and returns the raw reply line.
    pub fn raw_line(&mut self, line: &str) -> Result<String, ClientError> {
        self.send_raw(format!("{line}\n").as_bytes())?;
        self.read_reply_line()
    }

    /// Sends a request body (the fields after `"id":N,`), returns the
    /// parsed reply after checking `id` and unwrapping `ok:false`.
    fn request(&mut self, body: &str) -> Result<JsonValue, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let reply = self.raw_line(&format!("{{\"id\":{id},{body}}}"))?;
        let value = JsonValue::parse(&reply)
            .map_err(|e| ClientError::Protocol(format!("unparseable reply {reply:?}: {e}")))?;
        check_reply(&value, Some(id))
    }

    /// `point i j k`.
    pub fn point(&mut self, i: usize, j: usize, k: usize) -> Result<bool, ClientError> {
        let reply = self.request(&format!("\"q\":\"point\",\"i\":{i},\"j\":{j},\"k\":{k}"))?;
        reply
            .get("value")
            .and_then(JsonValue::as_bool)
            .ok_or_else(|| ClientError::Protocol("point reply missing value".into()))
    }

    /// `slice` with 1-based wire `mode` (the free axis); `lo`/`hi` are
    /// the fixed indices in ascending mode order.
    pub fn slice(&mut self, mode: usize, lo: usize, hi: usize) -> Result<Vec<usize>, ClientError> {
        let (lo_name, hi_name) = match mode {
            1 => ("j", "k"),
            2 => ("i", "k"),
            _ => ("i", "j"),
        };
        let reply = self.request(&format!(
            "\"q\":\"slice\",\"mode\":{mode},\"{lo_name}\":{lo},\"{hi_name}\":{hi}"
        ))?;
        let items = reply
            .get("indices")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ClientError::Protocol("slice reply missing indices".into()))?;
        items
            .iter()
            .map(|v| {
                v.as_u64()
                    .map(|n| n as usize)
                    .ok_or_else(|| ClientError::Protocol("non-integer slice index".into()))
            })
            .collect()
    }

    /// `topk` with 1-based wire `mode` (which factor the entity indexes).
    pub fn topk(
        &mut self,
        mode: usize,
        entity: usize,
        k: usize,
    ) -> Result<Vec<(usize, u64)>, ClientError> {
        let reply = self.request(&format!(
            "\"q\":\"topk\",\"mode\":{mode},\"entity\":{entity},\"k\":{k}"
        ))?;
        let items = reply
            .get("columns")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ClientError::Protocol("topk reply missing columns".into()))?;
        items
            .iter()
            .map(|pair| {
                let pair = pair.as_array().unwrap_or(&[]);
                match (
                    pair.first().and_then(JsonValue::as_u64),
                    pair.get(1).and_then(JsonValue::as_u64),
                ) {
                    (Some(col), Some(weight)) => Ok((col as usize, weight)),
                    _ => Err(ClientError::Protocol("malformed topk column pair".into())),
                }
            })
            .collect()
    }

    /// Sends a whole batch of already-encoded request objects as one
    /// array line; returns the per-element replies in order.
    pub fn batch(&mut self, bodies: &[String]) -> Result<Vec<JsonValue>, ClientError> {
        let line = format!("[{}]", bodies.join(","));
        let reply = self.raw_line(&line)?;
        let value = JsonValue::parse(&reply)
            .map_err(|e| ClientError::Protocol(format!("unparseable batch reply: {e}")))?;
        match value {
            JsonValue::Array(items) => Ok(items),
            other => Ok(vec![other]),
        }
    }

    /// `ping`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request("\"q\":\"ping\"").map(|_| ())
    }

    /// `info`.
    pub fn info(&mut self) -> Result<StoreInfo, ClientError> {
        let reply = self.request("\"q\":\"info\"")?;
        let bad = |what: &str| ClientError::Protocol(format!("info reply missing {what}"));
        let dims = reply
            .get("dims")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| bad("dims"))?;
        if dims.len() != 3 {
            return Err(bad("3 dims"));
        }
        let dim = |n: usize| {
            dims[n]
                .as_u64()
                .map(|v| v as usize)
                .ok_or_else(|| bad("dim"))
        };
        Ok(StoreInfo {
            dims: [dim(0)?, dim(1)?, dim(2)?],
            rank: reply
                .get("rank")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| bad("rank"))? as usize,
            set_version: reply
                .get("set_version")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| bad("set_version"))?,
            source: reply
                .get("source")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("source"))?
                .to_string(),
        })
    }

    /// `stats`: the counter snapshot, in export order.
    pub fn stats(&mut self) -> Result<Vec<(String, f64)>, ClientError> {
        let reply = self.request("\"q\":\"stats\"")?;
        match reply.get("counters") {
            Some(JsonValue::Object(fields)) => Ok(fields
                .iter()
                .map(|(name, value)| (name.clone(), value.as_f64().unwrap_or(f64::NAN)))
                .collect()),
            _ => Err(ClientError::Protocol("stats reply missing counters".into())),
        }
    }

    /// One counter by name (convenience over [`ServeClient::stats`]).
    pub fn counter(&mut self, name: &str) -> Result<f64, ClientError> {
        self.stats()?
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
            .ok_or_else(|| ClientError::Protocol(format!("no counter {name:?}")))
    }

    /// `reload`: asks the server to hot-swap the factor set at `path`
    /// (a path on the *server's* filesystem). `source` overrides the
    /// storage kind (`"ram"`/`"mmap"`); `delta` names the delta file
    /// that produced the new factors, enabling targeted fiber
    /// invalidation. Returns `(set_version, generation, invalidated)`.
    pub fn reload(
        &mut self,
        path: &str,
        source: Option<&str>,
        delta: Option<&str>,
    ) -> Result<(u64, u64, u64), ClientError> {
        let mut body = String::from("\"q\":\"reload\",\"path\":");
        crate::protocol::push_json_string(path, &mut body);
        if let Some(source) = source {
            body.push_str(",\"source\":");
            crate::protocol::push_json_string(source, &mut body);
        }
        if let Some(delta) = delta {
            body.push_str(",\"delta\":");
            crate::protocol::push_json_string(delta, &mut body);
        }
        let reply = self.request(&body)?;
        let bad = |what: &str| ClientError::Protocol(format!("reload reply missing {what}"));
        let get = |name: &str| reply.get(name).and_then(JsonValue::as_u64);
        Ok((
            get("set_version").ok_or_else(|| bad("set_version"))?,
            get("generation").ok_or_else(|| bad("generation"))?,
            get("invalidated").ok_or_else(|| bad("invalidated"))?,
        ))
    }

    /// `shutdown`: asks the server to drain. The server acknowledges and
    /// then closes this connection.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let reply = self.request("\"q\":\"shutdown\"")?;
        match reply.get("draining").and_then(JsonValue::as_bool) {
            Some(true) => Ok(()),
            _ => Err(ClientError::Protocol(
                "shutdown reply missing draining:true".into(),
            )),
        }
    }
}

/// Validates a reply's `id` and converts `ok:false` into
/// [`ClientError::Server`].
pub fn check_reply(value: &JsonValue, expect_id: Option<u64>) -> Result<JsonValue, ClientError> {
    if let Some(id) = expect_id {
        if value.get("id").and_then(JsonValue::as_u64) != Some(id) {
            return Err(ClientError::Protocol(format!("reply did not echo id {id}")));
        }
    }
    match value.get("ok").and_then(JsonValue::as_bool) {
        Some(true) => Ok(value.clone()),
        Some(false) => Err(ClientError::Server {
            code: value
                .get("code")
                .and_then(JsonValue::as_str)
                .unwrap_or("unknown")
                .to_string(),
            message: value
                .get("error")
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_string(),
        }),
        None => Err(ClientError::Protocol("reply missing ok field".into())),
    }
}
