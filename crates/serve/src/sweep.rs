//! Seeded query sweeps: the deterministic workload generator shared by
//! the differential tests, the `traffic_replay` bench, and the CLI's
//! `--oracle-check` mode.
//!
//! A [`SeededQueries`] iterator yields an endless stream of valid
//! [`Request`]s drawn from a weighted [`QueryMix`], with every index
//! uniform over the store's dimensions. Determinism is the point: the
//! same `(seed, dims, mix)` produces the same queries on every side of a
//! comparison, so the test harness and the oracle replay *identical*
//! sweeps without shipping a query log around — and a failure report of
//! "seed 7, query 812" reproduces exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::protocol::Request;

/// Relative weights of the three query classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryMix {
    /// Weight of `point` queries.
    pub point: u32,
    /// Weight of `slice` queries.
    pub slice: u32,
    /// Weight of `topk` queries.
    pub topk: u32,
}

impl QueryMix {
    /// The read-heavy serving default: mostly points, some fibers, a few
    /// topk lookups.
    pub fn default_mix() -> QueryMix {
        QueryMix {
            point: 80,
            slice: 15,
            topk: 5,
        }
    }

    /// Only `point` queries.
    pub fn points_only() -> QueryMix {
        QueryMix {
            point: 1,
            slice: 0,
            topk: 0,
        }
    }

    fn total(&self) -> u32 {
        self.point + self.slice + self.topk
    }
}

/// An infinite, deterministic stream of valid queries.
pub struct SeededQueries {
    rng: StdRng,
    dims: [usize; 3],
    mix: QueryMix,
    /// Upper bound (inclusive) for `topk`'s `k`.
    max_k: usize,
}

impl SeededQueries {
    /// A sweep over a store of `dims` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the mix has zero total weight —
    /// there would be no valid query to generate.
    pub fn new(seed: u64, dims: [usize; 3], mix: QueryMix) -> SeededQueries {
        assert!(
            dims.iter().all(|&d| d > 0),
            "sweep needs nonzero dims, got {dims:?}"
        );
        assert!(mix.total() > 0, "query mix has zero total weight");
        SeededQueries {
            rng: StdRng::seed_from_u64(seed),
            dims,
            mix,
            max_k: 8,
        }
    }

    fn index(&mut self, mode: usize) -> usize {
        self.rng.gen_range(0..self.dims[mode])
    }
}

impl Iterator for SeededQueries {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        let draw = self.rng.gen_range(0..self.mix.total());
        Some(if draw < self.mix.point {
            Request::Point {
                i: self.index(0),
                j: self.index(1),
                k: self.index(2),
            }
        } else if draw < self.mix.point + self.mix.slice {
            let free_mode = self.rng.gen_range(0..3usize);
            let (m1, m2) = match free_mode {
                0 => (1, 2),
                1 => (0, 2),
                _ => (0, 1),
            };
            Request::Slice {
                free_mode,
                lo: self.index(m1),
                hi: self.index(m2),
            }
        } else {
            let mode = self.rng.gen_range(0..3usize);
            Request::Topk {
                mode,
                entity: self.index(mode),
                k: self.rng.gen_range(1..=self.max_k),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_queries() {
        let dims = [10, 20, 30];
        let a: Vec<_> = SeededQueries::new(7, dims, QueryMix::default_mix())
            .take(500)
            .collect();
        let b: Vec<_> = SeededQueries::new(7, dims, QueryMix::default_mix())
            .take(500)
            .collect();
        assert_eq!(a, b);
        let c: Vec<_> = SeededQueries::new(8, dims, QueryMix::default_mix())
            .take(500)
            .collect();
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn queries_are_always_in_range() {
        let dims = [3, 1, 7];
        for req in SeededQueries::new(42, dims, QueryMix::default_mix()).take(2000) {
            match req {
                Request::Point { i, j, k } => {
                    assert!(i < 3 && j < 1 && k < 7, "{req:?}");
                }
                Request::Slice { free_mode, lo, hi } => {
                    let (m1, m2) = match free_mode {
                        0 => (1, 2),
                        1 => (0, 2),
                        _ => (0, 1),
                    };
                    assert!(free_mode < 3 && lo < dims[m1] && hi < dims[m2], "{req:?}");
                }
                Request::Topk { mode, entity, k } => {
                    assert!(
                        mode < 3 && entity < dims[mode] && (1..=8).contains(&k),
                        "{req:?}"
                    );
                }
                other => panic!("sweep generated admin query {other:?}"),
            }
        }
    }

    #[test]
    fn mix_weights_are_respected() {
        let queries: Vec<_> = SeededQueries::new(1, [5, 5, 5], QueryMix::default_mix())
            .take(4000)
            .collect();
        let points = queries
            .iter()
            .filter(|q| matches!(q, Request::Point { .. }))
            .count();
        let slices = queries
            .iter()
            .filter(|q| matches!(q, Request::Slice { .. }))
            .count();
        let topks = queries
            .iter()
            .filter(|q| matches!(q, Request::Topk { .. }))
            .count();
        assert_eq!(points + slices + topks, 4000);
        // 80/15/5 with generous tolerance: determinism makes this stable.
        assert!((2900..=3500).contains(&points), "{points} points");
        assert!((400..=800).contains(&slices), "{slices} slices");
        assert!((100..=350).contains(&topks), "{topks} topks");
        let only: Vec<_> = SeededQueries::new(1, [5, 5, 5], QueryMix::points_only())
            .take(100)
            .collect();
        assert!(only.iter().all(|q| matches!(q, Request::Point { .. })));
    }
}
