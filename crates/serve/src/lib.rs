//! The DBTF serving layer: read-path workload on top of finished
//! factorizations.
//!
//! The factorization side of this repository ends with a set of Boolean CP
//! factors `(A, B, C)` — either in a `DBTFCKPT v1` checkpoint or exported
//! by `dbtf export-factors` into the binary `DBTFFSET` store format. This
//! crate opens those factors for *queries*: a long-running `dbtf serve`
//! process loads a [`FactorStore`] and answers reconstruction questions
//! over a line-delimited JSON protocol on TCP:
//!
//! - **point** — was `X̃[i,j,k] = 1` in the reconstruction?
//! - **slice** — the nonzero indices of one fiber (e.g. `X̃[i,j,:]`);
//! - **topk** — the strongest factor columns for one entity, ranked by
//!   the size of the rank-1 block each column contributes.
//!
//! Answers never materialize the reconstruction: a point is one bitwise
//! AND over three `R`-bit factor rows, a fiber is one masked scan over a
//! single factor, and both are memoized in an LRU cache of hot
//! reconstruction fibers ([`FiberCache`]). The store itself reads from
//! the heap or from a read-only memory map of the `DBTFFSET` file
//! ([`SourceKind`]), so a serving process can stay far smaller than the
//! factors it would need for a dense reconstruction.
//!
//! The protocol follows the discipline of `crates/wire` and the
//! `crates/cluster/net` listener: hard limits fail fast ([`ServeLimits`];
//! an oversized line or a corrupt frame is a typed error, never an
//! allocation storm), every malformed input is answered with a typed
//! error object instead of a dropped connection, and each connection is a
//! serial request/reply conversation. Graceful shutdown drains: the
//! listener stops accepting, in-flight requests are answered, idle
//! connections close.
//!
//! Everything here is continuously verified against `crates/oracle`'s
//! cell-by-cell CP reconstruction: the differential tests replay seeded
//! query sweeps ([`sweep`]) through a real server ([`ServeHarness`]) and
//! require bit-exact agreement, cache hot and cold, heap and mmap.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod engine;
pub mod harness;
pub mod metrics;
#[cfg(all(unix, target_endian = "little"))]
mod mmap_sys;
pub mod protocol;
pub mod server;
pub mod store;
pub mod sweep;

pub use cache::FiberCache;
pub use engine::{QueryEngine, QueryError, ReloadOutcome};
pub use harness::{ClientError, ServeClient, ServeHarness, StoreInfo};
pub use metrics::ServeMetrics;
pub use protocol::{ParsedLine, Request, RequestError, ServeLimits};
pub use server::{Server, ServerConfig, ServerHandle};
pub use store::{FactorStore, ServeError, SourceKind};
pub use sweep::{QueryMix, SeededQueries};
