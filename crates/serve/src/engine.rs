//! The reconstruction query engine: point / slice / topk over a
//! [`FactorStore`], memoized through the [`FiberCache`].
//!
//! No query ever materializes the reconstruction `X̃ = ⋁_r a_r ∘ b_r ∘
//! c_r`. A **point** is the nonzero test of a three-way AND over `R`-bit
//! rows; a **slice** (one fiber) is a two-row mask scanned against every
//! row of the free mode's factor; **topk** never touches the tensor at
//! all — it ranks the columns set in one entity's factor row by the
//! precomputed column weights in the store.
//!
//! With a non-bypass cache, point and slice share fibers: a point query
//! computes (and caches) the whole fiber through its cell, so the
//! cache-cold and cache-hot answers are the same bits by construction —
//! and the differential tests verify exactly that against the oracle's
//! cell-by-cell reconstruction.
//!
//! All index validation happens here, as typed [`QueryError`]s — the
//! store's row accessors are allowed to panic precisely because this
//! layer never forwards an out-of-range index.

use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use dbtf_tensor::BitVec;

use crate::cache::{FiberCache, FiberKey};
use crate::metrics::ServeMetrics;
use crate::store::FactorStore;

/// A query that cannot be answered for this factor set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// An index or mode is outside the store's dimensions.
    OutOfRange(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::OutOfRange(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// The serving engine: one store, one cache, shared metrics.
pub struct QueryEngine {
    store: FactorStore,
    cache: Mutex<FiberCache>,
    metrics: Arc<ServeMetrics>,
}

/// The two fixed modes for a given free mode, in ascending order.
fn fixed_modes(free: usize) -> (usize, usize) {
    match free {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    }
}

impl QueryEngine {
    /// Builds an engine over `store` with an LRU of `cache_capacity`
    /// fibers (0 = bypass: every query computed from the factors).
    pub fn new(
        store: FactorStore,
        cache_capacity: usize,
        metrics: Arc<ServeMetrics>,
    ) -> QueryEngine {
        QueryEngine {
            store,
            cache: Mutex::new(FiberCache::new(cache_capacity)),
            metrics,
        }
    }

    /// The factor store being served.
    pub fn store(&self) -> &FactorStore {
        &self.store
    }

    /// The shared metrics sink.
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// Fibers currently resident in the cache.
    pub fn cached_fibers(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    fn check_index(&self, name: &str, idx: usize, mode: usize) -> Result<(), QueryError> {
        let dim = self.store.dims()[mode];
        if idx >= dim {
            return Err(QueryError::OutOfRange(format!(
                "{name} = {idx} out of range (mode {mode} has {dim} entities)"
            )));
        }
        Ok(())
    }

    fn check_mode(&self, mode: usize) -> Result<(), QueryError> {
        if mode > 2 {
            return Err(QueryError::OutOfRange(format!(
                "mode = {mode} out of range (0, 1, or 2)"
            )));
        }
        Ok(())
    }

    /// One reconstruction fiber, computed from the factors.
    fn compute_fiber(&self, free: usize, lo: usize, hi: usize) -> BitVec {
        let (m1, m2) = fixed_modes(free);
        let row_lo = self.store.row(m1, lo);
        let row_hi = self.store.row(m2, hi);
        let n = self.store.dims()[free];
        let wpr = self.store.words_per_row();
        let mut fiber = BitVec::zeros(n);
        for t in 0..n {
            let row = self.store.row(free, t);
            let mut any = 0u64;
            for w in 0..wpr {
                any |= row_lo[w] & row_hi[w] & row[w];
            }
            if any != 0 {
                fiber.set(t, true);
            }
        }
        fiber
    }

    /// The fiber for `key`, from cache if resident (counting hit, miss,
    /// and eviction metrics). Misses compute outside the cache lock so
    /// concurrent cold fibers don't serialize on it.
    fn fiber_cached(&self, key: FiberKey) -> Arc<BitVec> {
        if let Some(fiber) = self.cache.lock().unwrap().get(&key) {
            ServeMetrics::add(&self.metrics.cache_hits, 1);
            return fiber;
        }
        let fiber =
            Arc::new(self.compute_fiber(key.free_mode as usize, key.lo as usize, key.hi as usize));
        ServeMetrics::add(&self.metrics.cache_misses, 1);
        let evicted = self.cache.lock().unwrap().insert(key, Arc::clone(&fiber));
        ServeMetrics::add(&self.metrics.cache_evictions, evicted);
        fiber
    }

    fn bypass(&self) -> bool {
        self.cache.lock().unwrap().capacity() == 0
    }

    fn time_into(&self, counter: &AtomicU64, t0: Instant) {
        ServeMetrics::add(counter, t0.elapsed().as_micros() as u64);
    }

    /// Was cell `X̃[i, j, k]` set in the reconstruction?
    pub fn point(&self, i: usize, j: usize, k: usize) -> Result<bool, QueryError> {
        let t0 = Instant::now();
        self.check_index("i", i, 0)?;
        self.check_index("j", j, 1)?;
        self.check_index("k", k, 2)?;
        let answer = if self.bypass() {
            let (a, b, c) = (
                self.store.row(0, i),
                self.store.row(1, j),
                self.store.row(2, k),
            );
            let mut any = 0u64;
            for w in 0..self.store.words_per_row() {
                any |= a[w] & b[w] & c[w];
            }
            any != 0
        } else {
            // Warm the whole X̃[i, j, :] fiber; repeat points on this
            // (i, j) pair — and slices of it — become bit tests.
            let key = FiberKey {
                free_mode: 2,
                lo: i as u32,
                hi: j as u32,
            };
            self.fiber_cached(key).get(k)
        };
        ServeMetrics::add(&self.metrics.point_queries, 1);
        self.time_into(&self.metrics.point_micros, t0);
        Ok(answer)
    }

    /// The nonzero indices of one reconstruction fiber: `free_mode` is
    /// the axis left free, `lo`/`hi` index the other two modes in
    /// ascending mode order (free 2 → `lo` = i, `hi` = j, answering
    /// `X̃[lo, hi, :]`).
    pub fn slice(&self, free_mode: usize, lo: usize, hi: usize) -> Result<Vec<usize>, QueryError> {
        let t0 = Instant::now();
        self.check_mode(free_mode)?;
        let (m1, m2) = fixed_modes(free_mode);
        self.check_index("lo", lo, m1)?;
        self.check_index("hi", hi, m2)?;
        let indices = if self.bypass() {
            self.compute_fiber(free_mode, lo, hi).iter_ones().collect()
        } else {
            let key = FiberKey {
                free_mode: free_mode as u8,
                lo: lo as u32,
                hi: hi as u32,
            };
            self.fiber_cached(key).iter_ones().collect()
        };
        ServeMetrics::add(&self.metrics.slice_queries, 1);
        self.time_into(&self.metrics.slice_micros, t0);
        Ok(indices)
    }

    /// The strongest factor columns for entity `entity` of `mode`:
    /// columns set in that entity's factor row, as `(column, weight)`
    /// pairs ranked by weight descending (ties broken by column
    /// ascending) and truncated to `k`. The weight is the number of
    /// reconstruction cells the column contributes in the entity's slice
    /// — the product of the other two factors' column popcounts.
    pub fn topk(
        &self,
        mode: usize,
        entity: usize,
        k: usize,
    ) -> Result<Vec<(usize, u64)>, QueryError> {
        let t0 = Instant::now();
        self.check_mode(mode)?;
        self.check_index("entity", entity, mode)?;
        let row = self.store.row(mode, entity);
        let mut ranked: Vec<(usize, u64)> = (0..self.store.rank())
            .filter(|r| row[r / 64] >> (r % 64) & 1 == 1)
            .map(|r| (r, self.store.column_weight(mode, r)))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ServeMetrics::add(&self.metrics.topk_queries, 1);
        self.time_into(&self.metrics.topk_micros, t0);
        Ok(ranked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtf::{random_factor_sets, DbtfConfig, FactorSet};

    fn engine(cache: usize) -> (QueryEngine, FactorSet) {
        let cfg = DbtfConfig {
            seed: 11,
            ..DbtfConfig::with_rank(6)
        };
        let factors = random_factor_sets([8, 7, 9], 0.4, &cfg).remove(0);
        let store = FactorStore::from_factor_set(1, &factors);
        (
            QueryEngine::new(store, cache, Arc::new(ServeMetrics::new())),
            factors,
        )
    }

    #[test]
    fn point_matches_reconstruction_cold_and_hot() {
        for capacity in [0, 4, 1000] {
            let (engine, factors) = engine(capacity);
            let recon = factors.reconstruct();
            for i in 0..8 {
                for j in 0..7 {
                    for k in 0..9 {
                        // Ask twice: the second pass is cache-hot when
                        // capacity > 0 and must agree bit for bit.
                        for _ in 0..2 {
                            assert_eq!(
                                engine.point(i, j, k).unwrap(),
                                recon.contains(i as u32, j as u32, k as u32),
                                "cell ({i},{j},{k}) capacity {capacity}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn slice_matches_point_on_every_axis() {
        let (engine, _) = engine(16);
        let dims = engine.store().dims();
        for free in 0..3 {
            let (m1, m2) = super::fixed_modes(free);
            for lo in 0..dims[m1] {
                for hi in 0..dims[m2] {
                    let ones = engine.slice(free, lo, hi).unwrap();
                    for t in 0..dims[free] {
                        let mut ijk = [0; 3];
                        ijk[free] = t;
                        ijk[m1] = lo;
                        ijk[m2] = hi;
                        assert_eq!(
                            ones.contains(&t),
                            engine.point(ijk[0], ijk[1], ijk[2]).unwrap(),
                            "free {free} ({lo},{hi}) t {t}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn topk_ranks_by_weight_then_column() {
        let (engine, factors) = engine(0);
        let full = engine.topk(0, 3, usize::MAX).unwrap();
        let row_ones: Vec<usize> = factors.a.iter_row_ones(3).collect();
        assert_eq!(full.len(), row_ones.len(), "every set column appears");
        for pair in full.windows(2) {
            assert!(
                pair[0].1 > pair[1].1 || (pair[0].1 == pair[1].1 && pair[0].0 < pair[1].0),
                "ordering violated: {pair:?}"
            );
        }
        for &(col, weight) in &full {
            assert!(row_ones.contains(&col));
            let expect = factors.b.column(col).count_ones() as u64
                * factors.c.column(col).count_ones() as u64;
            assert_eq!(weight, expect, "column {col}");
        }
        let top2 = engine.topk(0, 3, 2).unwrap();
        assert_eq!(top2, full[..full.len().min(2)].to_vec());
    }

    #[test]
    fn out_of_range_is_typed_never_a_panic() {
        let (engine, _) = engine(4);
        assert!(matches!(
            engine.point(8, 0, 0),
            Err(QueryError::OutOfRange(_))
        ));
        assert!(matches!(
            engine.point(0, 7, 0),
            Err(QueryError::OutOfRange(_))
        ));
        assert!(matches!(
            engine.point(0, 0, 9),
            Err(QueryError::OutOfRange(_))
        ));
        assert!(matches!(
            engine.slice(3, 0, 0),
            Err(QueryError::OutOfRange(_))
        ));
        assert!(matches!(
            engine.slice(2, 0, 7),
            Err(QueryError::OutOfRange(_))
        ));
        assert!(matches!(
            engine.topk(1, 7, 3),
            Err(QueryError::OutOfRange(_))
        ));
        let err = engine.point(usize::MAX, 0, 0).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn cache_metrics_track_hits_misses_evictions() {
        let (engine, _) = engine(2);
        let m = Arc::clone(engine.metrics());
        let load = |c: &AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
        engine.point(0, 0, 0).unwrap();
        engine.point(0, 0, 1).unwrap(); // same fiber → hit
        assert_eq!(load(&m.cache_misses), 1);
        assert_eq!(load(&m.cache_hits), 1);
        engine.point(1, 0, 0).unwrap();
        engine.point(2, 0, 0).unwrap(); // third fiber → eviction
        assert_eq!(load(&m.cache_evictions), 1);
        assert_eq!(engine.cached_fibers(), 2);

        // Bypass mode never touches cache counters.
        let (cold, _) = engine_pair_bypass();
        cold.point(0, 0, 0).unwrap();
        cold.slice(2, 0, 0).unwrap();
        let mc = Arc::clone(cold.metrics());
        assert_eq!(load(&mc.cache_hits) + load(&mc.cache_misses), 0);
    }

    fn engine_pair_bypass() -> (QueryEngine, FactorSet) {
        engine(0)
    }
}
