//! The reconstruction query engine: point / slice / topk over a
//! [`FactorStore`], memoized through the [`FiberCache`].
//!
//! No query ever materializes the reconstruction `X̃ = ⋁_r a_r ∘ b_r ∘
//! c_r`. A **point** is the nonzero test of a three-way AND over `R`-bit
//! rows; a **slice** (one fiber) is a two-row mask scanned against every
//! row of the free mode's factor; **topk** never touches the tensor at
//! all — it ranks the columns set in one entity's factor row by the
//! precomputed column weights in the store.
//!
//! With a non-bypass cache, point and slice share fibers: a point query
//! computes (and caches) the whole fiber through its cell, so the
//! cache-cold and cache-hot answers are the same bits by construction —
//! and the differential tests verify exactly that against the oracle's
//! cell-by-cell reconstruction.
//!
//! All index validation happens here, as typed [`QueryError`]s — the
//! store's row accessors are allowed to panic precisely because this
//! layer never forwards an out-of-range index.
//!
//! # Hot swap
//!
//! [`QueryEngine::reload`] swaps in a new factor set while queries are in
//! flight. The store lives behind an `RwLock<Arc<FactorStore>>` paired
//! with a monotone generation counter; every query takes one `(store,
//! generation)` snapshot up front and answers entirely from it, so a
//! query that started before a reload finishes against the old factors —
//! never a mix of generations. The fiber cache is generation-tagged (see
//! [`crate::cache`]): the swap bumps the cache's generation and eagerly
//! retires only the fibers the delta touched; everything else retires
//! lazily. Cache-lock poisoning is recovered rather than propagated —
//! the cache holds only derived data, so a panic mid-insert at worst
//! loses entries, and one crashed connection thread must not wedge every
//! later query into a `lock().unwrap()` panic.

use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::Instant;

use dbtf_tensor::{BitVec, TensorDelta};

use crate::cache::{FiberCache, FiberKey};
use crate::metrics::ServeMetrics;
use crate::store::FactorStore;

/// A query that cannot be answered for this factor set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// An index or mode is outside the store's dimensions.
    OutOfRange(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::OutOfRange(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// The store actually being served plus the engine-local generation it
/// was installed under. Kept in one `RwLock` so a snapshot observes a
/// consistent pair.
struct Generation {
    store: Arc<FactorStore>,
    number: u64,
}

/// What a successful [`QueryEngine::reload`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReloadOutcome {
    /// The new store's set version (from its header).
    pub set_version: u64,
    /// The engine-local generation the swap installed.
    pub generation: u64,
    /// Cached fibers eagerly invalidated because the delta touched them.
    pub invalidated: u64,
}

/// The serving engine: one store, one cache, shared metrics.
pub struct QueryEngine {
    current: RwLock<Generation>,
    cache: Mutex<FiberCache>,
    metrics: Arc<ServeMetrics>,
}

/// The two fixed modes for a given free mode, in ascending order.
fn fixed_modes(free: usize) -> (usize, usize) {
    match free {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    }
}

impl QueryEngine {
    /// Builds an engine over `store` with an LRU of `cache_capacity`
    /// fibers (0 = bypass: every query computed from the factors).
    pub fn new(
        store: FactorStore,
        cache_capacity: usize,
        metrics: Arc<ServeMetrics>,
    ) -> QueryEngine {
        QueryEngine {
            current: RwLock::new(Generation {
                store: Arc::new(store),
                number: 0,
            }),
            cache: Mutex::new(FiberCache::new(cache_capacity)),
            metrics,
        }
    }

    /// A snapshot of the factor store currently being served. The `Arc`
    /// keeps that generation alive even if a reload lands immediately
    /// after — which is exactly how in-flight queries finish against the
    /// factors they started with.
    pub fn store(&self) -> Arc<FactorStore> {
        Arc::clone(&self.read_current().store)
    }

    /// One consistent `(store, generation)` pair for a whole query.
    fn snapshot(&self) -> (Arc<FactorStore>, u64) {
        let current = self.read_current();
        (Arc::clone(&current.store), current.number)
    }

    fn read_current(&self) -> std::sync::RwLockReadGuard<'_, Generation> {
        self.current.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// The cache lock, recovering from poisoning: the cache holds only
    /// derived (recomputable) data, so a panic in some other connection
    /// thread while it held the lock must not wedge the whole server.
    fn lock_cache(&self) -> MutexGuard<'_, FiberCache> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The shared metrics sink.
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// Fibers currently resident in the cache.
    pub fn cached_fibers(&self) -> usize {
        self.lock_cache().len()
    }

    /// Hot-swaps `store` in as the new serving generation.
    ///
    /// The swap is one write-lock critical section: queries already
    /// holding a snapshot finish against the old `Arc`; every later query
    /// snapshots the new one. When `delta` names the edits that produced
    /// the new factors, only the cached fibers running through an edited
    /// cell are eagerly removed (all three orientations per cell); the
    /// remaining old-generation entries retire lazily via the cache's
    /// generation tags. With no delta, nothing is removed eagerly and the
    /// generation bump alone invalidates everything.
    ///
    /// Rejects a store whose dimensions differ from the serving one —
    /// clients hold entity indices, and silently changing the space under
    /// them would turn valid queries into out-of-range errors (or worse,
    /// silently reinterpret them).
    pub fn reload(
        &self,
        store: FactorStore,
        delta: Option<&TensorDelta>,
    ) -> Result<ReloadOutcome, String> {
        let mut current = self.current.write().unwrap_or_else(PoisonError::into_inner);
        if store.dims() != current.store.dims() {
            return Err(format!(
                "dims mismatch: serving {:?}, reload has {:?}",
                current.store.dims(),
                store.dims()
            ));
        }
        if let Some(delta) = delta {
            if delta.dims() != current.store.dims() {
                return Err(format!(
                    "delta dims mismatch: serving {:?}, delta has {:?}",
                    current.store.dims(),
                    delta.dims()
                ));
            }
        }
        current.number += 1;
        current.store = Arc::new(store);
        let generation = current.number;
        let set_version = current.store.set_version();
        let mut cache = self.lock_cache();
        cache.set_generation(generation);
        let mut invalidated = 0u64;
        if let Some(delta) = delta {
            for cell in delta.cells() {
                let [i, j, k] = cell.coord;
                for key in [
                    FiberKey {
                        free_mode: 0,
                        lo: j,
                        hi: k,
                    },
                    FiberKey {
                        free_mode: 1,
                        lo: i,
                        hi: k,
                    },
                    FiberKey {
                        free_mode: 2,
                        lo: i,
                        hi: j,
                    },
                ] {
                    invalidated += cache.remove(&key) as u64;
                }
            }
        }
        Ok(ReloadOutcome {
            set_version,
            generation,
            invalidated,
        })
    }

    fn check_index(
        store: &FactorStore,
        name: &str,
        idx: usize,
        mode: usize,
    ) -> Result<(), QueryError> {
        let dim = store.dims()[mode];
        if idx >= dim {
            return Err(QueryError::OutOfRange(format!(
                "{name} = {idx} out of range (mode {mode} has {dim} entities)"
            )));
        }
        Ok(())
    }

    fn check_mode(mode: usize) -> Result<(), QueryError> {
        if mode > 2 {
            return Err(QueryError::OutOfRange(format!(
                "mode = {mode} out of range (0, 1, or 2)"
            )));
        }
        Ok(())
    }

    /// One reconstruction fiber, computed from `store`'s factors.
    fn compute_fiber(store: &FactorStore, free: usize, lo: usize, hi: usize) -> BitVec {
        let (m1, m2) = fixed_modes(free);
        let row_lo = store.row(m1, lo);
        let row_hi = store.row(m2, hi);
        let n = store.dims()[free];
        let wpr = store.words_per_row();
        let mut fiber = BitVec::zeros(n);
        for t in 0..n {
            let row = store.row(free, t);
            let mut any = 0u64;
            for w in 0..wpr {
                any |= row_lo[w] & row_hi[w] & row[w];
            }
            if any != 0 {
                fiber.set(t, true);
            }
        }
        fiber
    }

    /// The fiber for `key` under the snapshotted `(store, generation)`,
    /// from cache if resident (counting hit, miss, and eviction metrics).
    /// Misses compute outside the cache lock so concurrent cold fibers
    /// don't serialize on it — and an insert that loses the race with a
    /// reload is discarded by the cache's generation check.
    fn fiber_cached(&self, store: &FactorStore, generation: u64, key: FiberKey) -> Arc<BitVec> {
        if let Some(fiber) = self.lock_cache().get(&key, generation) {
            ServeMetrics::add(&self.metrics.cache_hits, 1);
            return fiber;
        }
        let fiber = Arc::new(Self::compute_fiber(
            store,
            key.free_mode as usize,
            key.lo as usize,
            key.hi as usize,
        ));
        ServeMetrics::add(&self.metrics.cache_misses, 1);
        let evicted = self
            .lock_cache()
            .insert(key, Arc::clone(&fiber), generation);
        ServeMetrics::add(&self.metrics.cache_evictions, evicted);
        fiber
    }

    fn bypass(&self) -> bool {
        self.lock_cache().capacity() == 0
    }

    fn time_into(&self, counter: &AtomicU64, t0: Instant) {
        ServeMetrics::add(counter, t0.elapsed().as_micros() as u64);
    }

    /// Was cell `X̃[i, j, k]` set in the reconstruction?
    pub fn point(&self, i: usize, j: usize, k: usize) -> Result<bool, QueryError> {
        let t0 = Instant::now();
        let (store, generation) = self.snapshot();
        Self::check_index(&store, "i", i, 0)?;
        Self::check_index(&store, "j", j, 1)?;
        Self::check_index(&store, "k", k, 2)?;
        let answer = if self.bypass() {
            let (a, b, c) = (store.row(0, i), store.row(1, j), store.row(2, k));
            let mut any = 0u64;
            for w in 0..store.words_per_row() {
                any |= a[w] & b[w] & c[w];
            }
            any != 0
        } else {
            // Warm the whole X̃[i, j, :] fiber; repeat points on this
            // (i, j) pair — and slices of it — become bit tests.
            let key = FiberKey {
                free_mode: 2,
                lo: i as u32,
                hi: j as u32,
            };
            self.fiber_cached(&store, generation, key).get(k)
        };
        ServeMetrics::add(&self.metrics.point_queries, 1);
        self.time_into(&self.metrics.point_micros, t0);
        Ok(answer)
    }

    /// The nonzero indices of one reconstruction fiber: `free_mode` is
    /// the axis left free, `lo`/`hi` index the other two modes in
    /// ascending mode order (free 2 → `lo` = i, `hi` = j, answering
    /// `X̃[lo, hi, :]`).
    pub fn slice(&self, free_mode: usize, lo: usize, hi: usize) -> Result<Vec<usize>, QueryError> {
        let t0 = Instant::now();
        let (store, generation) = self.snapshot();
        Self::check_mode(free_mode)?;
        let (m1, m2) = fixed_modes(free_mode);
        Self::check_index(&store, "lo", lo, m1)?;
        Self::check_index(&store, "hi", hi, m2)?;
        let indices = if self.bypass() {
            Self::compute_fiber(&store, free_mode, lo, hi)
                .iter_ones()
                .collect()
        } else {
            let key = FiberKey {
                free_mode: free_mode as u8,
                lo: lo as u32,
                hi: hi as u32,
            };
            self.fiber_cached(&store, generation, key)
                .iter_ones()
                .collect()
        };
        ServeMetrics::add(&self.metrics.slice_queries, 1);
        self.time_into(&self.metrics.slice_micros, t0);
        Ok(indices)
    }

    /// The strongest factor columns for entity `entity` of `mode`:
    /// columns set in that entity's factor row, as `(column, weight)`
    /// pairs ranked by weight descending (ties broken by column
    /// ascending) and truncated to `k`. The weight is the number of
    /// reconstruction cells the column contributes in the entity's slice
    /// — the product of the other two factors' column popcounts.
    pub fn topk(
        &self,
        mode: usize,
        entity: usize,
        k: usize,
    ) -> Result<Vec<(usize, u64)>, QueryError> {
        let t0 = Instant::now();
        let (store, _) = self.snapshot();
        Self::check_mode(mode)?;
        Self::check_index(&store, "entity", entity, mode)?;
        let row = store.row(mode, entity);
        let mut ranked: Vec<(usize, u64)> = (0..store.rank())
            .filter(|r| row[r / 64] >> (r % 64) & 1 == 1)
            .map(|r| (r, store.column_weight(mode, r)))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ServeMetrics::add(&self.metrics.topk_queries, 1);
        self.time_into(&self.metrics.topk_micros, t0);
        Ok(ranked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtf::{random_factor_sets, DbtfConfig, FactorSet};

    fn engine(cache: usize) -> (QueryEngine, FactorSet) {
        let cfg = DbtfConfig {
            seed: 11,
            ..DbtfConfig::with_rank(6)
        };
        let factors = random_factor_sets([8, 7, 9], 0.4, &cfg).remove(0);
        let store = FactorStore::from_factor_set(1, &factors);
        (
            QueryEngine::new(store, cache, Arc::new(ServeMetrics::new())),
            factors,
        )
    }

    #[test]
    fn point_matches_reconstruction_cold_and_hot() {
        for capacity in [0, 4, 1000] {
            let (engine, factors) = engine(capacity);
            let recon = factors.reconstruct();
            for i in 0..8 {
                for j in 0..7 {
                    for k in 0..9 {
                        // Ask twice: the second pass is cache-hot when
                        // capacity > 0 and must agree bit for bit.
                        for _ in 0..2 {
                            assert_eq!(
                                engine.point(i, j, k).unwrap(),
                                recon.contains(i as u32, j as u32, k as u32),
                                "cell ({i},{j},{k}) capacity {capacity}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn slice_matches_point_on_every_axis() {
        let (engine, _) = engine(16);
        let dims = engine.store().dims();
        for free in 0..3 {
            let (m1, m2) = super::fixed_modes(free);
            for lo in 0..dims[m1] {
                for hi in 0..dims[m2] {
                    let ones = engine.slice(free, lo, hi).unwrap();
                    for t in 0..dims[free] {
                        let mut ijk = [0; 3];
                        ijk[free] = t;
                        ijk[m1] = lo;
                        ijk[m2] = hi;
                        assert_eq!(
                            ones.contains(&t),
                            engine.point(ijk[0], ijk[1], ijk[2]).unwrap(),
                            "free {free} ({lo},{hi}) t {t}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn topk_ranks_by_weight_then_column() {
        let (engine, factors) = engine(0);
        let full = engine.topk(0, 3, usize::MAX).unwrap();
        let row_ones: Vec<usize> = factors.a.iter_row_ones(3).collect();
        assert_eq!(full.len(), row_ones.len(), "every set column appears");
        for pair in full.windows(2) {
            assert!(
                pair[0].1 > pair[1].1 || (pair[0].1 == pair[1].1 && pair[0].0 < pair[1].0),
                "ordering violated: {pair:?}"
            );
        }
        for &(col, weight) in &full {
            assert!(row_ones.contains(&col));
            let expect = factors.b.column(col).count_ones() as u64
                * factors.c.column(col).count_ones() as u64;
            assert_eq!(weight, expect, "column {col}");
        }
        let top2 = engine.topk(0, 3, 2).unwrap();
        assert_eq!(top2, full[..full.len().min(2)].to_vec());
    }

    #[test]
    fn out_of_range_is_typed_never_a_panic() {
        let (engine, _) = engine(4);
        assert!(matches!(
            engine.point(8, 0, 0),
            Err(QueryError::OutOfRange(_))
        ));
        assert!(matches!(
            engine.point(0, 7, 0),
            Err(QueryError::OutOfRange(_))
        ));
        assert!(matches!(
            engine.point(0, 0, 9),
            Err(QueryError::OutOfRange(_))
        ));
        assert!(matches!(
            engine.slice(3, 0, 0),
            Err(QueryError::OutOfRange(_))
        ));
        assert!(matches!(
            engine.slice(2, 0, 7),
            Err(QueryError::OutOfRange(_))
        ));
        assert!(matches!(
            engine.topk(1, 7, 3),
            Err(QueryError::OutOfRange(_))
        ));
        let err = engine.point(usize::MAX, 0, 0).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn cache_metrics_track_hits_misses_evictions() {
        let (engine, _) = engine(2);
        let m = Arc::clone(engine.metrics());
        let load = |c: &AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
        engine.point(0, 0, 0).unwrap();
        engine.point(0, 0, 1).unwrap(); // same fiber → hit
        assert_eq!(load(&m.cache_misses), 1);
        assert_eq!(load(&m.cache_hits), 1);
        engine.point(1, 0, 0).unwrap();
        engine.point(2, 0, 0).unwrap(); // third fiber → eviction
        assert_eq!(load(&m.cache_evictions), 1);
        assert_eq!(engine.cached_fibers(), 2);

        // Bypass mode never touches cache counters.
        let (cold, _) = engine_pair_bypass();
        cold.point(0, 0, 0).unwrap();
        cold.slice(2, 0, 0).unwrap();
        let mc = Arc::clone(cold.metrics());
        assert_eq!(load(&mc.cache_hits) + load(&mc.cache_misses), 0);
    }

    fn engine_pair_bypass() -> (QueryEngine, FactorSet) {
        engine(0)
    }

    #[test]
    fn poisoned_cache_lock_recovers_instead_of_wedging() {
        let (engine, factors) = engine(16);
        let engine = Arc::new(engine);
        let expect = factors.reconstruct().contains(1, 2, 3);
        // Warm the fiber, then poison the cache mutex: a connection
        // thread panicking while holding the lock is exactly what a bug
        // in a future cache path would look like.
        assert_eq!(engine.point(1, 2, 3).unwrap(), expect);
        let poisoner = Arc::clone(&engine);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.cache.lock().unwrap();
            panic!("poison the cache lock");
        })
        .join();
        assert!(engine.cache.lock().is_err(), "lock really is poisoned");
        // Every query path that touches the cache must keep answering —
        // and keep answering the same bits.
        assert_eq!(engine.point(1, 2, 3).unwrap(), expect, "cached path");
        assert_eq!(
            engine.point(0, 0, 0).unwrap(),
            engine.point(0, 0, 0).unwrap()
        );
        engine.slice(2, 1, 2).unwrap();
        assert!(engine.cached_fibers() > 0);
        // Reload also crosses the cache lock and must survive poisoning.
        let store = FactorStore::from_factor_set(2, &factors);
        engine.reload(store, None).unwrap();
        assert_eq!(engine.point(1, 2, 3).unwrap(), expect);
    }

    #[test]
    fn reload_swaps_generations_atomically() {
        let (engine, factors) = engine(64);
        // Old generation: warm a few fibers.
        let recon = factors.reconstruct();
        for j in 0..7 {
            engine.slice(2, 0, j).unwrap();
        }
        let warmed = engine.cached_fibers();
        assert!(warmed > 0);
        let old_store = engine.store();
        assert_eq!(old_store.set_version(), 1);

        // New generation: an all-zeros factor set — every answer flips
        // to empty, so a stale fiber would be caught immediately.
        let zero = FactorSet {
            a: dbtf_tensor::BitMatrix::zeros(8, 6),
            b: dbtf_tensor::BitMatrix::zeros(7, 6),
            c: dbtf_tensor::BitMatrix::zeros(9, 6),
        };
        let outcome = engine
            .reload(FactorStore::from_factor_set(9, &zero), None)
            .unwrap();
        assert_eq!(outcome.set_version, 9);
        assert_eq!(outcome.generation, 1);
        assert_eq!(outcome.invalidated, 0, "no delta → lazy invalidation only");

        // The old snapshot still answers from the old factors.
        assert_eq!(old_store.set_version(), 1);
        // New queries see only the new generation, cached or not.
        for i in 0..8 {
            for j in 0..7 {
                for k in 0..9 {
                    for _ in 0..2 {
                        assert!(!engine.point(i, j, k).unwrap(), "({i},{j},{k})");
                    }
                }
            }
        }
        assert_eq!(engine.store().set_version(), 9);
        // Reloading the original factors brings the original bits back.
        engine
            .reload(FactorStore::from_factor_set(10, &factors), None)
            .unwrap();
        for (i, j, k) in [(0, 0, 0), (1, 2, 3), (7, 6, 8)] {
            assert_eq!(
                engine.point(i, j, k).unwrap(),
                recon.contains(i as u32, j as u32, k as u32)
            );
        }
    }

    #[test]
    fn reload_with_delta_invalidates_only_touched_fibers() {
        use dbtf_tensor::{DeltaCell, TensorDelta};
        let (engine, factors) = engine(64);
        // Warm the three orientations through cell (1, 2, 3) plus two
        // unrelated fibers.
        engine.slice(0, 2, 3).unwrap();
        engine.slice(1, 1, 3).unwrap();
        engine.slice(2, 1, 2).unwrap();
        engine.slice(2, 5, 5).unwrap();
        engine.slice(0, 0, 0).unwrap();
        assert_eq!(engine.cached_fibers(), 5);
        let delta = TensorDelta::new(
            [8, 7, 9],
            vec![DeltaCell {
                coord: [1, 2, 3],
                set: true,
            }],
        )
        .unwrap();
        let outcome = engine
            .reload(FactorStore::from_factor_set(2, &factors), Some(&delta))
            .unwrap();
        assert_eq!(
            outcome.invalidated, 3,
            "exactly the three fibers through (1,2,3)"
        );
        assert_eq!(engine.cached_fibers(), 2, "unrelated fibers stay resident");
    }

    #[test]
    fn reload_rejects_dims_mismatch() {
        let (engine, _) = engine(4);
        let cfg = DbtfConfig {
            seed: 5,
            ..DbtfConfig::with_rank(6)
        };
        let other = random_factor_sets([4, 4, 4], 0.4, &cfg).remove(0);
        let err = engine
            .reload(FactorStore::from_factor_set(3, &other), None)
            .unwrap_err();
        assert!(err.contains("dims mismatch"), "{err}");
        assert_eq!(engine.store().set_version(), 1, "serving store unchanged");

        let (engine2, factors2) = super::tests::engine(4);
        let delta = dbtf_tensor::TensorDelta::new(
            [4, 4, 4],
            vec![dbtf_tensor::DeltaCell {
                coord: [0, 0, 0],
                set: true,
            }],
        )
        .unwrap();
        let err = engine2
            .reload(FactorStore::from_factor_set(2, &factors2), Some(&delta))
            .unwrap_err();
        assert!(err.contains("delta dims mismatch"), "{err}");
    }
}
