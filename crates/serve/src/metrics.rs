//! Serving counters: per-request-class volumes and latencies, typed
//! error counts, and cache effectiveness.
//!
//! One [`ServeMetrics`] instance is shared by the engine, every
//! connection thread, and the admin `stats` query, so everything is a
//! relaxed [`AtomicU64`] — the counters are monotonic tallies, not
//! synchronization. [`ServeMetrics::named_counters`] exports them under
//! stable dotted names (the `crates/cluster` `MetricsSnapshot` idiom) and
//! [`ServeMetrics::export_into`] drops the same view into a
//! `dbtf-telemetry` [`CounterRegistry`] so serve counters land in the
//! same reports as factorization counters.

use std::sync::atomic::{AtomicU64, Ordering};

use dbtf_telemetry::CounterRegistry;

/// Shared atomic counters for one serving process.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// `point` queries answered (ok or error).
    pub point_queries: AtomicU64,
    /// `slice` queries answered.
    pub slice_queries: AtomicU64,
    /// `topk` queries answered.
    pub topk_queries: AtomicU64,
    /// Admin queries answered (`ping`, `stats`, `info`, `shutdown`).
    pub admin_queries: AtomicU64,
    /// Total wall-µs spent answering `point` queries.
    pub point_micros: AtomicU64,
    /// Total wall-µs spent answering `slice` queries.
    pub slice_micros: AtomicU64,
    /// Total wall-µs spent answering `topk` queries.
    pub topk_micros: AtomicU64,
    /// Fiber-cache hits.
    pub cache_hits: AtomicU64,
    /// Fiber-cache misses (fiber computed, cache enabled).
    pub cache_misses: AtomicU64,
    /// Fiber-cache evictions.
    pub cache_evictions: AtomicU64,
    /// Connections accepted.
    pub connections_opened: AtomicU64,
    /// Connections fully closed.
    pub connections_closed: AtomicU64,
    /// Request lines read (single or batch).
    pub lines_total: AtomicU64,
    /// Batch (JSON array) lines among [`ServeMetrics::lines_total`].
    pub batches_total: AtomicU64,
    /// Individual requests answered.
    pub requests_total: AtomicU64,
    /// Lines cut off by a disconnect before their newline.
    pub lines_truncated: AtomicU64,
    /// `parse` errors returned (line or element was not valid JSON).
    pub parse_errors: AtomicU64,
    /// `bad_request` errors returned (valid JSON, missing/mistyped fields).
    pub bad_request_errors: AtomicU64,
    /// `unknown_query` errors returned.
    pub unknown_query_errors: AtomicU64,
    /// `out_of_range` errors returned.
    pub out_of_range_errors: AtomicU64,
    /// `oversized` errors returned (line exceeded the limit).
    pub oversized_errors: AtomicU64,
    /// `batch_limit` errors returned (array exceeded the limit).
    pub batch_limit_errors: AtomicU64,
    /// `draining` errors returned (request arrived during shutdown).
    pub draining_errors: AtomicU64,
    /// `reload` requests received (ok or error).
    pub reload_requests: AtomicU64,
    /// `reload` errors returned (unopenable store, bad delta, dims
    /// mismatch).
    pub reload_errors: AtomicU64,
    /// Cached fibers eagerly invalidated by reload deltas.
    pub reload_fibers_invalidated: AtomicU64,
}

impl ServeMetrics {
    /// A fresh all-zero counter set.
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// Adds `n` to `counter` (relaxed; these are tallies).
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Bumps the error counter matching a protocol error `code`; codes
    /// come from [`crate::protocol::RequestError`], so an unknown code is
    /// a bug — counted under `parse` rather than dropped.
    pub fn count_error(&self, code: &str) {
        let counter = match code {
            "parse" => &self.parse_errors,
            "bad_request" => &self.bad_request_errors,
            "unknown_query" => &self.unknown_query_errors,
            "out_of_range" => &self.out_of_range_errors,
            "oversized" => &self.oversized_errors,
            "batch_limit" => &self.batch_limit_errors,
            "draining" => &self.draining_errors,
            "reload" => &self.reload_errors,
            _ => &self.parse_errors,
        };
        ServeMetrics::add(counter, 1);
    }

    /// Every counter under its stable dotted export name.
    pub fn named_counters(&self) -> Vec<(&'static str, f64)> {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed) as f64;
        vec![
            ("serve.point.queries", get(&self.point_queries)),
            ("serve.point.micros", get(&self.point_micros)),
            ("serve.slice.queries", get(&self.slice_queries)),
            ("serve.slice.micros", get(&self.slice_micros)),
            ("serve.topk.queries", get(&self.topk_queries)),
            ("serve.topk.micros", get(&self.topk_micros)),
            ("serve.admin.queries", get(&self.admin_queries)),
            ("serve.cache.hits", get(&self.cache_hits)),
            ("serve.cache.misses", get(&self.cache_misses)),
            ("serve.cache.evictions", get(&self.cache_evictions)),
            ("serve.conns.opened", get(&self.connections_opened)),
            ("serve.conns.closed", get(&self.connections_closed)),
            ("serve.lines.total", get(&self.lines_total)),
            ("serve.lines.batches", get(&self.batches_total)),
            ("serve.lines.truncated", get(&self.lines_truncated)),
            ("serve.requests.total", get(&self.requests_total)),
            ("serve.errors.parse", get(&self.parse_errors)),
            ("serve.errors.bad_request", get(&self.bad_request_errors)),
            (
                "serve.errors.unknown_query",
                get(&self.unknown_query_errors),
            ),
            ("serve.errors.out_of_range", get(&self.out_of_range_errors)),
            ("serve.errors.oversized", get(&self.oversized_errors)),
            ("serve.errors.batch_limit", get(&self.batch_limit_errors)),
            ("serve.errors.draining", get(&self.draining_errors)),
            ("serve.reload.requests", get(&self.reload_requests)),
            ("serve.reload.errors", get(&self.reload_errors)),
            (
                "serve.reload.fibers_invalidated",
                get(&self.reload_fibers_invalidated),
            ),
        ]
    }

    /// Copies the current counter values into a telemetry registry.
    pub fn export_into(&self, registry: &mut CounterRegistry) {
        for (name, value) in self.named_counters() {
            registry.set(name, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_route_to_their_counters() {
        let m = ServeMetrics::new();
        for code in [
            "parse",
            "bad_request",
            "unknown_query",
            "out_of_range",
            "oversized",
            "batch_limit",
            "draining",
            "reload",
        ] {
            m.count_error(code);
        }
        let counters: std::collections::HashMap<_, _> = m.named_counters().into_iter().collect();
        for name in [
            "serve.errors.parse",
            "serve.errors.bad_request",
            "serve.errors.unknown_query",
            "serve.errors.out_of_range",
            "serve.errors.oversized",
            "serve.errors.batch_limit",
            "serve.errors.draining",
            "serve.reload.errors",
        ] {
            assert_eq!(counters[name], 1.0, "{name}");
        }
    }

    #[test]
    fn export_lands_in_a_registry() {
        let m = ServeMetrics::new();
        ServeMetrics::add(&m.point_queries, 3);
        let mut registry = CounterRegistry::new();
        m.export_into(&mut registry);
        assert_eq!(registry.get("serve.point.queries"), Some(3.0));
    }

    #[test]
    fn names_are_unique_and_dotted() {
        let m = ServeMetrics::new();
        let names: Vec<_> = m.named_counters().into_iter().map(|(n, _)| n).collect();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
        assert!(names.iter().all(|n| n.starts_with("serve.")));
    }
}
