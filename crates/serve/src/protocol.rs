//! The `dbtf serve` wire protocol: line-delimited JSON requests, typed
//! JSON replies.
//!
//! Each request line is either one JSON object or a JSON array of
//! objects (a batch); the reply mirrors the shape — one object, or an
//! array with one reply per element in order. Every request may carry a
//! numeric `"id"`, echoed verbatim in its reply so pipelined clients can
//! match responses.
//!
//! ```text
//! {"id":1,"q":"point","i":3,"j":0,"k":7}      → {"id":1,"ok":true,"value":true}
//! {"id":2,"q":"slice","mode":3,"i":3,"j":0}   → {"id":2,"ok":true,"indices":[2,7]}
//! {"id":3,"q":"topk","mode":1,"entity":3,"k":2}
//!                                             → {"id":3,"ok":true,"columns":[[4,121],[0,96]]}
//! {"q":"ping"} / {"q":"stats"} / {"q":"info"} / {"q":"shutdown"}
//! ```
//!
//! `slice` fixes two axes and leaves one free: `mode` names the free
//! axis (1 = i, 2 = j, 3 = k, the paper's unfolding-mode convention) and
//! the request carries the *fixed* axes by name — `mode:3` fixes `i` and
//! `j` and answers the fiber `X̃[i, j, :]`. `topk`'s `mode` names which
//! factor the entity indexes (1 = A rows, 2 = B, 3 = C).
//!
//! Failures follow the `crates/wire` discipline: every malformed input
//! maps to a typed [`RequestError`] with a stable machine-readable
//! `code` — `parse`, `bad_request`, `unknown_query`, `out_of_range`,
//! `oversized`, `batch_limit`, `draining` — returned as
//! `{"ok":false,"code":...,"error":...}`, and hard limits
//! ([`ServeLimits`]) fail fast before any large allocation.

use dbtf_telemetry::JsonValue;

use crate::engine::QueryError;

/// Hard input limits, enforced before parsing.
#[derive(Clone, Copy, Debug)]
pub struct ServeLimits {
    /// Longest accepted request line in bytes (newline excluded). A
    /// connection that exceeds it gets an `oversized` error and is
    /// closed — the remainder of the line is never buffered.
    pub max_line_bytes: usize,
    /// Most requests accepted in one batch array.
    pub max_batch: usize,
}

impl Default for ServeLimits {
    fn default() -> ServeLimits {
        ServeLimits {
            max_line_bytes: 1 << 20,
            max_batch: 256,
        }
    }
}

/// One decoded query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// `point`: is cell `X̃[i, j, k]` set?
    Point {
        /// Mode-1 index.
        i: usize,
        /// Mode-2 index.
        j: usize,
        /// Mode-3 index.
        k: usize,
    },
    /// `slice`: the nonzero indices of one fiber.
    Slice {
        /// The free axis, 0-based (already converted from wire `mode`).
        free_mode: usize,
        /// Fixed index on the lower fixed mode.
        lo: usize,
        /// Fixed index on the higher fixed mode.
        hi: usize,
    },
    /// `topk`: strongest factor columns for one entity.
    Topk {
        /// Which factor the entity indexes, 0-based.
        mode: usize,
        /// The entity's row index.
        entity: usize,
        /// How many columns to return.
        k: usize,
    },
    /// Liveness probe.
    Ping,
    /// Counter snapshot.
    Stats,
    /// Store metadata (dims, rank, set version, source).
    Info,
    /// `reload`: hot-swap a new factor-set generation into the server.
    Reload {
        /// Path (on the server's filesystem) of the `DBTFFSET` store or
        /// `DBTFCKPT` checkpoint to load.
        path: String,
        /// Optional storage source override (`"ram"` or `"mmap"`);
        /// defaults to how the serving store was opened.
        source: Option<String>,
        /// Optional path of the delta file (`dbtf update` text format)
        /// that produced the new factors — enables targeted fiber
        /// invalidation instead of a full lazy flush.
        delta: Option<String>,
    },
    /// Begin graceful drain; this reply is the connection's last.
    Shutdown,
}

/// A typed protocol failure: stable `code` plus human message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestError {
    /// Machine-readable error class (`parse`, `bad_request`, ...).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl RequestError {
    /// The line or element was not valid JSON.
    pub fn parse(message: impl Into<String>) -> RequestError {
        RequestError {
            code: "parse",
            message: message.into(),
        }
    }
    /// Valid JSON, but fields are missing or mistyped.
    pub fn bad_request(message: impl Into<String>) -> RequestError {
        RequestError {
            code: "bad_request",
            message: message.into(),
        }
    }
    /// The `q` field names no known query.
    pub fn unknown_query(q: &str) -> RequestError {
        RequestError {
            code: "unknown_query",
            message: format!(
                "unknown query {q:?} (expected point, slice, topk, ping, stats, info, reload, \
                 or shutdown)"
            ),
        }
    }
    /// A reload could not be applied (unopenable store, bad delta, dims
    /// mismatch). The serving generation is unchanged.
    pub fn reload(message: impl Into<String>) -> RequestError {
        RequestError {
            code: "reload",
            message: message.into(),
        }
    }
    /// An index or mode is outside the served factor set.
    pub fn out_of_range(message: impl Into<String>) -> RequestError {
        RequestError {
            code: "out_of_range",
            message: message.into(),
        }
    }
    /// The request line exceeded [`ServeLimits::max_line_bytes`].
    pub fn oversized(limit: usize) -> RequestError {
        RequestError {
            code: "oversized",
            message: format!("request line exceeds {limit} bytes; connection closing"),
        }
    }
    /// The batch array exceeded [`ServeLimits::max_batch`].
    pub fn batch_limit(got: usize, limit: usize) -> RequestError {
        RequestError {
            code: "batch_limit",
            message: format!("batch of {got} requests exceeds the limit of {limit}"),
        }
    }
    /// The server is draining and takes no new work.
    pub fn draining() -> RequestError {
        RequestError {
            code: "draining",
            message: "server is draining; connection closing".into(),
        }
    }
}

impl From<QueryError> for RequestError {
    fn from(err: QueryError) -> RequestError {
        match err {
            QueryError::OutOfRange(msg) => RequestError::out_of_range(msg),
        }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for RequestError {}

/// One parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedLine {
    /// Whether the line was a batch array (reply must be an array too).
    pub batch: bool,
    /// Per-request outcomes with their echoed ids, in request order.
    pub items: Vec<(Option<u64>, Result<Request, RequestError>)>,
}

/// Parses one request line (already length-checked by the reader).
pub fn parse_line(line: &str, limits: &ServeLimits) -> ParsedLine {
    let value = match JsonValue::parse(line.trim()) {
        Ok(value) => value,
        Err(err) => {
            return ParsedLine {
                batch: false,
                items: vec![(
                    None,
                    Err(RequestError::parse(format!("invalid JSON: {err}"))),
                )],
            }
        }
    };
    match value {
        JsonValue::Array(elements) => {
            if elements.len() > limits.max_batch {
                return ParsedLine {
                    batch: false,
                    items: vec![(
                        None,
                        Err(RequestError::batch_limit(elements.len(), limits.max_batch)),
                    )],
                };
            }
            ParsedLine {
                batch: true,
                items: elements.iter().map(parse_request).collect(),
            }
        }
        other => ParsedLine {
            batch: false,
            items: vec![parse_request(&other)],
        },
    }
}

/// Pulls a required non-negative integer field.
fn field(obj: &JsonValue, name: &str) -> Result<usize, RequestError> {
    match obj.get(name) {
        None => Err(RequestError::bad_request(format!("missing field {name:?}"))),
        Some(v) => v.as_u64().map(|n| n as usize).ok_or_else(|| {
            RequestError::bad_request(format!("field {name:?} must be a non-negative integer"))
        }),
    }
}

/// Pulls a required string field.
fn string_field(obj: &JsonValue, name: &str) -> Result<String, RequestError> {
    match obj.get(name) {
        None => Err(RequestError::bad_request(format!("missing field {name:?}"))),
        Some(v) => v
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| RequestError::bad_request(format!("field {name:?} must be a string"))),
    }
}

/// Pulls an optional string field (present ⇒ must be a string).
fn optional_string_field(obj: &JsonValue, name: &str) -> Result<Option<String>, RequestError> {
    match obj.get(name) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_owned()))
            .ok_or_else(|| RequestError::bad_request(format!("field {name:?} must be a string"))),
    }
}

/// The wire `mode` (1-based, per the paper's unfolding convention) as a
/// 0-based axis.
fn mode_field(obj: &JsonValue) -> Result<usize, RequestError> {
    let mode = field(obj, "mode")?;
    if (1..=3).contains(&mode) {
        Ok(mode - 1)
    } else {
        Err(RequestError::out_of_range(format!(
            "mode = {mode} out of range (1, 2, or 3)"
        )))
    }
}

fn parse_request(value: &JsonValue) -> (Option<u64>, Result<Request, RequestError>) {
    if !matches!(value, JsonValue::Object(_)) {
        return (
            None,
            Err(RequestError::bad_request("request must be a JSON object")),
        );
    }
    let id = value.get("id").and_then(JsonValue::as_u64);
    let request = (|| {
        let q = value
            .get("q")
            .ok_or_else(|| RequestError::bad_request("missing field \"q\""))?
            .as_str()
            .ok_or_else(|| RequestError::bad_request("field \"q\" must be a string"))?;
        match q {
            "point" => Ok(Request::Point {
                i: field(value, "i")?,
                j: field(value, "j")?,
                k: field(value, "k")?,
            }),
            "slice" => {
                let free_mode = mode_field(value)?;
                // The request names the *fixed* axes; the lower-mode one
                // is `lo` (matching the engine/cache convention).
                let (lo_name, hi_name) = match free_mode {
                    0 => ("j", "k"),
                    1 => ("i", "k"),
                    _ => ("i", "j"),
                };
                Ok(Request::Slice {
                    free_mode,
                    lo: field(value, lo_name)?,
                    hi: field(value, hi_name)?,
                })
            }
            "topk" => Ok(Request::Topk {
                mode: mode_field(value)?,
                entity: field(value, "entity")?,
                k: field(value, "k")?,
            }),
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "info" => Ok(Request::Info),
            "reload" => Ok(Request::Reload {
                path: string_field(value, "path")?,
                source: optional_string_field(value, "source")?,
                delta: optional_string_field(value, "delta")?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(RequestError::unknown_query(other)),
        }
    })();
    (id, request)
}

/// Appends `s` as a JSON string literal (quotes included).
pub fn push_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn open_reply(id: Option<u64>, ok: bool) -> String {
    match id {
        Some(id) => format!("{{\"id\":{id},\"ok\":{ok}"),
        None => format!("{{\"ok\":{ok}"),
    }
}

/// `point` reply.
pub fn reply_point(id: Option<u64>, value: bool) -> String {
    format!("{},\"value\":{value}}}", open_reply(id, true))
}

/// `slice` reply.
pub fn reply_slice(id: Option<u64>, indices: &[usize]) -> String {
    let mut out = open_reply(id, true);
    out.push_str(",\"indices\":[");
    for (n, idx) in indices.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        out.push_str(&idx.to_string());
    }
    out.push_str("]}");
    out
}

/// `topk` reply: `[[column, weight], ...]` strongest first.
pub fn reply_topk(id: Option<u64>, columns: &[(usize, u64)]) -> String {
    let mut out = open_reply(id, true);
    out.push_str(",\"columns\":[");
    for (n, (col, weight)) in columns.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{col},{weight}]"));
    }
    out.push_str("]}");
    out
}

/// `ping` reply.
pub fn reply_ping(id: Option<u64>) -> String {
    format!("{},\"pong\":true}}", open_reply(id, true))
}

/// `info` reply.
pub fn reply_info(
    id: Option<u64>,
    dims: [usize; 3],
    rank: usize,
    set_version: u64,
    source: &str,
) -> String {
    let mut out = open_reply(id, true);
    out.push_str(&format!(
        ",\"dims\":[{},{},{}],\"rank\":{rank},\"set_version\":{set_version},\"source\":",
        dims[0], dims[1], dims[2]
    ));
    push_json_string(source, &mut out);
    out.push('}');
    out
}

/// `stats` reply: the counter snapshot as one flat object.
pub fn reply_stats(id: Option<u64>, counters: &[(&'static str, f64)]) -> String {
    let mut out = open_reply(id, true);
    out.push_str(",\"counters\":{");
    for (n, (name, value)) in counters.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        push_json_string(name, &mut out);
        out.push_str(&format!(":{value}"));
    }
    out.push_str("}}");
    out
}

/// `reload` reply: the new generation's identity plus how many cached
/// fibers were eagerly invalidated.
pub fn reply_reload(
    id: Option<u64>,
    set_version: u64,
    generation: u64,
    invalidated: u64,
) -> String {
    format!(
        "{},\"reloaded\":true,\"set_version\":{set_version},\"generation\":{generation},\
         \"invalidated\":{invalidated}}}",
        open_reply(id, true)
    )
}

/// `shutdown` acknowledgment.
pub fn reply_shutdown(id: Option<u64>) -> String {
    format!("{},\"draining\":true}}", open_reply(id, true))
}

/// Any error, with its stable code.
pub fn reply_error(id: Option<u64>, err: &RequestError) -> String {
    let mut out = open_reply(id, false);
    out.push_str(",\"code\":");
    push_json_string(err.code, &mut out);
    out.push_str(",\"error\":");
    push_json_string(&err.message, &mut out);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> ServeLimits {
        ServeLimits::default()
    }

    fn parse_one(line: &str) -> (Option<u64>, Result<Request, RequestError>) {
        let parsed = parse_line(line, &limits());
        assert!(!parsed.batch);
        assert_eq!(parsed.items.len(), 1);
        parsed.items.into_iter().next().unwrap()
    }

    #[test]
    fn parses_every_query_kind() {
        assert_eq!(
            parse_one(r#"{"id":7,"q":"point","i":1,"j":2,"k":3}"#),
            (Some(7), Ok(Request::Point { i: 1, j: 2, k: 3 }))
        );
        assert_eq!(
            parse_one(r#"{"q":"slice","mode":3,"i":4,"j":5}"#),
            (
                None,
                Ok(Request::Slice {
                    free_mode: 2,
                    lo: 4,
                    hi: 5
                })
            )
        );
        assert_eq!(
            parse_one(r#"{"q":"slice","mode":1,"j":4,"k":5}"#),
            (
                None,
                Ok(Request::Slice {
                    free_mode: 0,
                    lo: 4,
                    hi: 5
                })
            )
        );
        assert_eq!(
            parse_one(r#"{"q":"slice","mode":2,"i":4,"k":5}"#),
            (
                None,
                Ok(Request::Slice {
                    free_mode: 1,
                    lo: 4,
                    hi: 5
                })
            )
        );
        assert_eq!(
            parse_one(r#"{"id":0,"q":"topk","mode":2,"entity":9,"k":4}"#),
            (
                Some(0),
                Ok(Request::Topk {
                    mode: 1,
                    entity: 9,
                    k: 4
                })
            )
        );
        for (q, want) in [
            ("ping", Request::Ping),
            ("stats", Request::Stats),
            ("info", Request::Info),
            ("shutdown", Request::Shutdown),
        ] {
            assert_eq!(parse_one(&format!(r#"{{"q":"{q}"}}"#)), (None, Ok(want)));
        }
        assert_eq!(
            parse_one(r#"{"id":4,"q":"reload","path":"/tmp/f.dbtfs"}"#),
            (
                Some(4),
                Ok(Request::Reload {
                    path: "/tmp/f.dbtfs".into(),
                    source: None,
                    delta: None,
                })
            )
        );
        assert_eq!(
            parse_one(r#"{"q":"reload","path":"f.dbtfs","source":"mmap","delta":"d.delta"}"#),
            (
                None,
                Ok(Request::Reload {
                    path: "f.dbtfs".into(),
                    source: Some("mmap".into()),
                    delta: Some("d.delta".into()),
                })
            )
        );
    }

    #[test]
    fn malformed_inputs_get_stable_codes() {
        let code = |line: &str| parse_one(line).1.unwrap_err().code;
        assert_eq!(code("not json at all"), "parse");
        assert_eq!(code(r#"{"q":"point","i":1,"j":2}"#), "bad_request"); // missing k
        assert_eq!(code(r#"{"q":"point","i":-1,"j":2,"k":3}"#), "bad_request");
        assert_eq!(code(r#"{"q":"point","i":1.5,"j":2,"k":3}"#), "bad_request");
        assert_eq!(code(r#"{"q":"frobnicate"}"#), "unknown_query");
        assert_eq!(code(r#"{"i":1,"j":2,"k":3}"#), "bad_request"); // missing q
        assert_eq!(code(r#"{"q":17}"#), "bad_request");
        assert_eq!(
            code(r#"{"q":"slice","mode":4,"i":0,"j":0}"#),
            "out_of_range"
        );
        assert_eq!(
            code(r#"{"q":"slice","mode":0,"i":0,"j":0}"#),
            "out_of_range"
        );
        assert_eq!(code("3"), "bad_request"); // JSON, but not an object
                                              // slice mode 3 fixes i and j; sending k instead is a bad request.
        assert_eq!(code(r#"{"q":"slice","mode":3,"i":0,"k":0}"#), "bad_request");
        assert_eq!(code(r#"{"q":"reload"}"#), "bad_request"); // missing path
        assert_eq!(code(r#"{"q":"reload","path":7}"#), "bad_request");
        assert_eq!(
            code(r#"{"q":"reload","path":"f","delta":3}"#),
            "bad_request"
        );
    }

    #[test]
    fn batches_parse_element_wise() {
        let line =
            r#"[{"id":1,"q":"ping"},{"id":2,"q":"nope"},{"id":3,"q":"point","i":0,"j":0,"k":0}]"#;
        let parsed = parse_line(line, &limits());
        assert!(parsed.batch);
        assert_eq!(parsed.items.len(), 3);
        assert_eq!(parsed.items[0], (Some(1), Ok(Request::Ping)));
        assert_eq!(
            parsed.items[1].1.as_ref().unwrap_err().code,
            "unknown_query"
        );
        assert!(parsed.items[2].1.is_ok());
    }

    #[test]
    fn oversize_batches_fail_as_one_error() {
        let limits = ServeLimits {
            max_batch: 2,
            ..ServeLimits::default()
        };
        let parsed = parse_line(r#"[{"q":"ping"},{"q":"ping"},{"q":"ping"}]"#, &limits);
        assert!(!parsed.batch, "limit violation answers as a single object");
        assert_eq!(parsed.items.len(), 1);
        assert_eq!(parsed.items[0].1.as_ref().unwrap_err().code, "batch_limit");
    }

    #[test]
    fn replies_are_valid_json_with_ids_echoed() {
        for (reply, probe) in [
            (reply_point(Some(9), true), ("value", "true")),
            (reply_slice(Some(9), &[1, 5, 7]), ("indices", "[1,5,7]")),
            (
                reply_topk(Some(9), &[(4, 121), (0, 96)]),
                ("columns", "[[4,121],[0,96]]"),
            ),
            (reply_ping(Some(9)), ("pong", "true")),
            (reply_shutdown(Some(9)), ("draining", "true")),
            (reply_reload(Some(9), 3, 2, 5), ("set_version", "3")),
        ] {
            let parsed = JsonValue::parse(&reply).expect(&reply);
            assert_eq!(parsed.get("id").unwrap().as_u64(), Some(9), "{reply}");
            assert_eq!(parsed.get("ok").unwrap().as_bool(), Some(true));
            assert!(parsed.get(probe.0).is_some(), "{reply} has {}", probe.0);
            assert!(reply.contains(probe.1), "{reply} contains {}", probe.1);
        }
        let info = reply_info(None, [2, 3, 4], 5, 17, "mmap");
        let parsed = JsonValue::parse(&info).unwrap();
        assert!(parsed.get("id").is_none());
        assert_eq!(parsed.get("rank").unwrap().as_u64(), Some(5));
        assert_eq!(parsed.get("source").unwrap().as_str(), Some("mmap"));
        let stats = reply_stats(Some(1), &[("serve.point.queries", 3.0)]);
        let parsed = JsonValue::parse(&stats).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("serve.point.queries")
                .unwrap()
                .as_f64(),
            Some(3.0)
        );
    }

    #[test]
    fn error_replies_escape_messages() {
        let err = RequestError::bad_request("quote \" backslash \\ newline \n end");
        let reply = reply_error(None, &err);
        let parsed = JsonValue::parse(&reply).expect("error replies stay valid JSON");
        assert_eq!(parsed.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(parsed.get("code").unwrap().as_str(), Some("bad_request"));
        assert_eq!(
            parsed.get("error").unwrap().as_str(),
            Some("quote \" backslash \\ newline \n end")
        );
    }
}
