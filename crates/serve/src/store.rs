//! The versioned factor store: load Boolean CP factors for serving.
//!
//! A [`FactorStore`] answers one access pattern — "give me factor row
//! `i` of mode `m` as packed words" — over factors loaded from either of
//! the two on-disk forms the factorization side produces:
//!
//! - the text `DBTFCKPT v1` checkpoint a run writes while iterating
//!   (parsed once, always heap-resident);
//! - the binary `DBTFFSET v1` store written by `dbtf export-factors`,
//!   which can be read onto the heap ([`SourceKind::Ram`]) or served
//!   straight out of a read-only memory map ([`SourceKind::Mmap`]).
//!
//! # The `DBTFFSET v1` file format
//!
//! Everything is a little-endian `u64` word, so the mapped file can be
//! viewed as one `&[u64]` (the same trick as the `DBTFUNFD` columnar
//! unfolding):
//!
//! ```text
//! word 0      magic            "DBTFFSET" (8 ASCII bytes)
//! word 1      format_version   1
//! word 2      set_version      caller-assigned factor-set version
//! word 3..=5  I, J, K          factor row counts (tensor dims)
//! word 6      R                rank (columns per factor)
//! word 7      data_checksum    FNV-1a over words 9.. (LE bytes)
//! word 8      header_checksum  FNV-1a over words 0..=7 (LE bytes)
//! word 9..    A rows, then B rows, then C rows — each row is
//!             ceil(R/64) packed words, row-major
//! ```
//!
//! Both checksums are verified on open for both sources; a served answer
//! must never come from silently corrupt factors. A `format_version`
//! above 1 is a typed [`ServeError::Version`] — a future-format file is
//! reported as such, not as a parse failure.

use std::io::{Read, Write};
use std::path::Path;

use dbtf::{Checkpoint, FactorSet};

/// Magic word: `b"DBTFFSET"` as a little-endian `u64`.
pub const STORE_MAGIC: u64 = u64::from_le_bytes(*b"DBTFFSET");
/// The format version this build writes and the newest it reads.
pub const STORE_FORMAT_VERSION: u64 = 1;
/// Words before the factor data begins.
const HEADER_WORDS: usize = 9;

/// Failure to load or write a factor store.
#[derive(Debug)]
pub enum ServeError {
    /// Underlying I/O failure, with the path for context.
    Io(String),
    /// The file exists but is not a well-formed store/checkpoint.
    Format(String),
    /// The file is a `DBTFFSET` store from a newer format version.
    Version {
        /// The version found in the file header.
        found: u64,
    },
    /// A `DBTFCKPT` checkpoint failed to parse (message from `dbtf`).
    Checkpoint(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(msg) => write!(f, "factor store I/O error: {msg}"),
            ServeError::Format(msg) => write!(f, "malformed factor store: {msg}"),
            ServeError::Version { found } => write!(
                f,
                "factor store format v{found} is newer than this build supports \
                 (max v{STORE_FORMAT_VERSION}); re-export it with a matching build"
            ),
            ServeError::Checkpoint(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Where an opened store keeps its factor words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceKind {
    /// Decode the file onto the heap.
    Ram,
    /// Serve straight out of a read-only memory map (`DBTFFSET` only).
    Mmap,
}

impl std::str::FromStr for SourceKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ram" => Ok(SourceKind::Ram),
            "mmap" => Ok(SourceKind::Mmap),
            other => Err(format!("unknown source {other:?} (expected ram or mmap)")),
        }
    }
}

impl std::fmt::Display for SourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SourceKind::Ram => "ram",
            SourceKind::Mmap => "mmap",
        })
    }
}

/// FNV-1a over the little-endian bytes of `words` (the columnar-file
/// checksum convention).
fn fnv_words(words: &[u64]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for byte in w.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    }
    hash
}

enum Backing {
    /// Factor words only (file words 9.., or packed from a `FactorSet`).
    Heap(Vec<u64>),
    /// The whole mapped file; factor words start at [`HEADER_WORDS`].
    #[cfg(all(unix, target_endian = "little"))]
    Map(crate::mmap_sys::Map),
}

impl Backing {
    fn factor_words(&self) -> &[u64] {
        match self {
            Backing::Heap(words) => words,
            #[cfg(all(unix, target_endian = "little"))]
            Backing::Map(map) => &map.words()[HEADER_WORDS..],
        }
    }
}

/// An opened, verified set of factors ready to serve queries.
pub struct FactorStore {
    backing: Backing,
    dims: [usize; 3],
    rank: usize,
    /// Words per factor row: `ceil(rank / 64)`.
    wpr: usize,
    set_version: u64,
    source: SourceKind,
    /// Per-factor column popcounts `[|a_:r|, |b_:r|, |c_:r|]`, built once
    /// at open; `topk` ranks columns by products of these.
    column_counts: [Vec<u64>; 3],
}

impl std::fmt::Debug for FactorStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FactorStore[v{} {}×{}×{} rank {} ({})]",
            self.set_version, self.dims[0], self.dims[1], self.dims[2], self.rank, self.source
        )
    }
}

impl FactorStore {
    /// Wraps an in-memory [`FactorSet`] (the harness/bench path — no
    /// file involved).
    pub fn from_factor_set(set_version: u64, factors: &FactorSet) -> FactorStore {
        let rank = factors.rank();
        let wpr = rank.div_ceil(64);
        let dims = [factors.a.rows(), factors.b.rows(), factors.c.rows()];
        let mut words = Vec::with_capacity((dims[0] + dims[1] + dims[2]) * wpr);
        for m in [&factors.a, &factors.b, &factors.c] {
            debug_assert_eq!(m.words_per_row(), wpr);
            for r in 0..m.rows() {
                words.extend_from_slice(m.row(r));
            }
        }
        let mut store = FactorStore {
            backing: Backing::Heap(words),
            dims,
            rank,
            wpr,
            set_version,
            source: SourceKind::Ram,
            column_counts: [Vec::new(), Vec::new(), Vec::new()],
        };
        store.column_counts = store.count_columns();
        store
    }

    /// Writes `factors` as a `DBTFFSET v1` store file, atomically
    /// (temp file + fsync + rename, the checkpoint discipline).
    pub fn write_store(
        path: &Path,
        set_version: u64,
        factors: &FactorSet,
    ) -> Result<(), ServeError> {
        let io_err = |e: std::io::Error| ServeError::Io(format!("{}: {e}", path.display()));
        let store = FactorStore::from_factor_set(set_version, factors);
        let data = match &store.backing {
            Backing::Heap(words) => words.as_slice(),
            #[cfg(all(unix, target_endian = "little"))]
            Backing::Map(_) => unreachable!("from_factor_set is heap-backed"),
        };
        let mut header = [0u64; HEADER_WORDS];
        header[0] = STORE_MAGIC;
        header[1] = STORE_FORMAT_VERSION;
        header[2] = set_version;
        header[3] = store.dims[0] as u64;
        header[4] = store.dims[1] as u64;
        header[5] = store.dims[2] as u64;
        header[6] = store.rank as u64;
        header[7] = fnv_words(data);
        header[8] = fnv_words(&header[..8]);
        let tmp = path.with_extension("tmp");
        let mut file = std::fs::File::create(&tmp).map_err(io_err)?;
        let mut buf = std::io::BufWriter::new(&mut file);
        for w in header.iter().chain(data.iter()) {
            buf.write_all(&w.to_le_bytes()).map_err(io_err)?;
        }
        buf.flush().map_err(io_err)?;
        drop(buf);
        file.sync_all().map_err(io_err)?;
        std::fs::rename(&tmp, path).map_err(io_err)?;
        Ok(())
    }

    /// Opens `path` — a `DBTFFSET` store or a `DBTFCKPT v1` checkpoint —
    /// with the requested source. Checkpoints are text and always load
    /// onto the heap; asking for [`SourceKind::Mmap`] on one is an error
    /// that points at `dbtf export-factors`.
    pub fn open(path: &Path, source: SourceKind) -> Result<FactorStore, ServeError> {
        let io_err = |e: std::io::Error| ServeError::Io(format!("{}: {e}", path.display()));
        let mut magic = [0u8; 8];
        let mut file = std::fs::File::open(path).map_err(io_err)?;
        let n = file.read(&mut magic).map_err(io_err)?;
        if n == 8 && u64::from_le_bytes(magic) == STORE_MAGIC {
            return FactorStore::open_binary(path, file, source);
        }
        if magic.starts_with(b"DBTFCKPT") {
            if source == SourceKind::Mmap {
                return Err(ServeError::Format(format!(
                    "{}: checkpoints are text and always load as ram; run \
                     `dbtf export-factors` to produce a DBTFFSET store for --source mmap",
                    path.display()
                )));
            }
            let ck = Checkpoint::read(path).map_err(|e| ServeError::Checkpoint(e.to_string()))?;
            // The checkpoint's completed-iteration count doubles as the
            // factor-set version: later checkpoints supersede earlier ones.
            return Ok(FactorStore::from_factor_set(
                ck.iteration as u64,
                &ck.factors,
            ));
        }
        Err(ServeError::Format(format!(
            "{}: neither a DBTFFSET store nor a DBTFCKPT checkpoint",
            path.display()
        )))
    }

    fn open_binary(
        path: &Path,
        mut file: std::fs::File,
        source: SourceKind,
    ) -> Result<FactorStore, ServeError> {
        let io_err = |e: std::io::Error| ServeError::Io(format!("{}: {e}", path.display()));
        let fmt_err = |msg: String| ServeError::Format(format!("{}: {msg}", path.display()));
        let len = file.metadata().map_err(io_err)?.len() as usize;
        if !len.is_multiple_of(8) || len < HEADER_WORDS * 8 {
            return Err(fmt_err(format!(
                "file is {len} bytes, not a word multiple with a header"
            )));
        }
        // The mmap source keeps only the map resident; ram decodes the
        // words onto the heap and drops the file. Non-unix builds have no
        // map and fall back to the heap read for both sources.
        let (backing, file_words): (Backing, Vec<u64>) = {
            #[cfg(all(unix, target_endian = "little"))]
            if source == SourceKind::Mmap {
                let map = crate::mmap_sys::Map::new(&file, len).map_err(io_err)?;
                (Backing::Map(map), Vec::new())
            } else {
                (
                    Backing::Heap(Vec::new()),
                    read_words(&mut file, len, io_err)?,
                )
            }
            #[cfg(not(all(unix, target_endian = "little")))]
            {
                (
                    Backing::Heap(Vec::new()),
                    read_words(&mut file, len, io_err)?,
                )
            }
        };
        let header: Vec<u64> = match &backing {
            Backing::Heap(_) => file_words[..HEADER_WORDS].to_vec(),
            #[cfg(all(unix, target_endian = "little"))]
            Backing::Map(map) => map.words()[..HEADER_WORDS].to_vec(),
        };
        if header[0] != STORE_MAGIC {
            return Err(fmt_err("bad magic".into()));
        }
        if header[8] != fnv_words(&header[..8]) {
            return Err(fmt_err("header checksum mismatch".into()));
        }
        if header[1] != STORE_FORMAT_VERSION {
            return Err(ServeError::Version { found: header[1] });
        }
        let dims = [header[3] as usize, header[4] as usize, header[5] as usize];
        let rank = header[6] as usize;
        let wpr = rank.div_ceil(64);
        let expect_words = HEADER_WORDS + (dims[0] + dims[1] + dims[2]) * wpr;
        if len / 8 != expect_words {
            return Err(fmt_err(format!(
                "file has {} words but the header implies {expect_words}",
                len / 8
            )));
        }
        let backing = match backing {
            Backing::Heap(_) => Backing::Heap(file_words[HEADER_WORDS..].to_vec()),
            #[cfg(all(unix, target_endian = "little"))]
            map => map,
        };
        if fnv_words(backing.factor_words()) != header[7] {
            return Err(fmt_err("data checksum mismatch".into()));
        }
        let mut store = FactorStore {
            backing,
            dims,
            rank,
            wpr,
            set_version: header[2],
            source,
            column_counts: [Vec::new(), Vec::new(), Vec::new()],
        };
        store.column_counts = store.count_columns();
        Ok(store)
    }

    fn count_columns(&self) -> [Vec<u64>; 3] {
        let mut counts = [
            vec![0u64; self.rank],
            vec![0u64; self.rank],
            vec![0u64; self.rank],
        ];
        for (mode, mode_counts) in counts.iter_mut().enumerate() {
            for idx in 0..self.dims[mode] {
                let row = self.row(mode, idx);
                for (r, count) in mode_counts.iter_mut().enumerate() {
                    if row[r / 64] >> (r % 64) & 1 == 1 {
                        *count += 1;
                    }
                }
            }
        }
        counts
    }

    /// Tensor dimensions `[I, J, K]` (= factor row counts).
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// The shared factor rank `R`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The caller-assigned version of this factor set.
    pub fn set_version(&self) -> u64 {
        self.set_version
    }

    /// Which source backs the rows (`ram` or `mmap`).
    pub fn source(&self) -> SourceKind {
        self.source
    }

    /// Words per factor row (`ceil(rank / 64)`).
    pub fn words_per_row(&self) -> usize {
        self.wpr
    }

    /// Factor row `idx` of `mode` (0 = A, 1 = B, 2 = C) as packed words.
    ///
    /// # Panics
    ///
    /// Panics if `mode > 2` or `idx` is out of range — callers bound-check
    /// against [`FactorStore::dims`] first (the engine turns violations
    /// into typed errors before ever reaching here).
    pub fn row(&self, mode: usize, idx: usize) -> &[u64] {
        assert!(mode < 3 && idx < self.dims[mode], "row out of range");
        let base = match mode {
            0 => 0,
            1 => self.dims[0] * self.wpr,
            _ => (self.dims[0] + self.dims[1]) * self.wpr,
        };
        &self.backing.factor_words()[base + idx * self.wpr..][..base_len(self.wpr)]
    }

    /// Rebuilds the factors as an in-memory [`FactorSet`] (the
    /// oracle-check path: reference reconstructions want `BitMatrix`es).
    pub fn to_factor_set(&self) -> FactorSet {
        use dbtf_tensor::BitMatrix;
        let mut matrices = Vec::with_capacity(3);
        for mode in 0..3 {
            let mut m = BitMatrix::zeros(self.dims[mode], self.rank);
            for idx in 0..self.dims[mode] {
                m.row_mut(idx).copy_from_slice(self.row(mode, idx));
            }
            matrices.push(m);
        }
        let c = matrices.pop().unwrap();
        let b = matrices.pop().unwrap();
        let a = matrices.pop().unwrap();
        FactorSet { a, b, c }
    }

    /// Column popcount `|m_:r|` of factor `mode`.
    pub fn column_count(&self, mode: usize, r: usize) -> u64 {
        self.column_counts[mode][r]
    }

    /// The weight `topk` ranks column `r` by for an entity of `mode`: the
    /// number of reconstruction cells the column contributes in that
    /// entity's slice — the product of the *other* two factors' column
    /// popcounts.
    pub fn column_weight(&self, mode: usize, r: usize) -> u64 {
        let [ca, cb, cc] = [
            self.column_counts[0][r],
            self.column_counts[1][r],
            self.column_counts[2][r],
        ];
        match mode {
            0 => cb.saturating_mul(cc),
            1 => ca.saturating_mul(cc),
            _ => ca.saturating_mul(cb),
        }
    }
}

/// `wpr`, spelled as a function so the slice expression in [`FactorStore::row`]
/// reads as a length.
fn base_len(wpr: usize) -> usize {
    wpr
}

fn read_words(
    file: &mut std::fs::File,
    len: usize,
    io_err: impl Fn(std::io::Error) -> ServeError,
) -> Result<Vec<u64>, ServeError> {
    use std::io::Seek;
    file.rewind().map_err(&io_err)?;
    let mut bytes = Vec::with_capacity(len);
    file.read_to_end(&mut bytes).map_err(&io_err)?;
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtf::{random_factor_sets, DbtfConfig};
    use dbtf_tensor::BitMatrix;

    fn sample_factors(seed: u64) -> FactorSet {
        let cfg = DbtfConfig {
            seed,
            ..DbtfConfig::with_rank(5)
        };
        random_factor_sets([7, 6, 9], 0.4, &cfg).remove(0)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dbtf-serve-store-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn rows_equal(store: &FactorStore, factors: &FactorSet) {
        for (mode, m) in [&factors.a, &factors.b, &factors.c].into_iter().enumerate() {
            for idx in 0..m.rows() {
                assert_eq!(store.row(mode, idx), m.row(idx), "mode {mode} row {idx}");
            }
        }
    }

    #[test]
    fn roundtrip_ram_and_mmap_match_the_factors() {
        let factors = sample_factors(3);
        let path = tmp("roundtrip.dbtfs");
        FactorStore::write_store(&path, 42, &factors).unwrap();
        for source in [SourceKind::Ram, SourceKind::Mmap] {
            let store = FactorStore::open(&path, source).unwrap();
            assert_eq!(store.set_version(), 42);
            assert_eq!(store.dims(), [7, 6, 9]);
            assert_eq!(store.rank(), 5);
            assert_eq!(store.source(), source);
            rows_equal(&store, &factors);
            assert_eq!(store.to_factor_set(), factors, "{source}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_files_open_as_ram_only() {
        let factors = sample_factors(5);
        let ck = Checkpoint {
            iteration: 2,
            error: 9,
            iteration_errors: vec![12, 9],
            factors: factors.clone(),
        };
        let path = tmp("from-checkpoint.dbtf");
        ck.write(&path).unwrap();
        let store = FactorStore::open(&path, SourceKind::Ram).unwrap();
        assert_eq!(store.set_version(), 2, "iteration doubles as set version");
        rows_equal(&store, &factors);
        let err = FactorStore::open(&path, SourceKind::Mmap).unwrap_err();
        assert!(
            err.to_string().contains("export-factors"),
            "mmap on a checkpoint must point at the export path: {err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn column_counts_and_weights() {
        let factors = sample_factors(8);
        let store = FactorStore::from_factor_set(1, &factors);
        for r in 0..store.rank() {
            let counts = [
                factors.a.column(r).count_ones() as u64,
                factors.b.column(r).count_ones() as u64,
                factors.c.column(r).count_ones() as u64,
            ];
            for (mode, &want) in counts.iter().enumerate() {
                assert_eq!(store.column_count(mode, r), want);
            }
            assert_eq!(store.column_weight(0, r), counts[1] * counts[2]);
            assert_eq!(store.column_weight(1, r), counts[0] * counts[2]);
            assert_eq!(store.column_weight(2, r), counts[0] * counts[1]);
        }
    }

    #[test]
    fn corrupt_and_future_files_error_cleanly() {
        let factors = sample_factors(1);
        let path = tmp("corrupt.dbtfs");
        FactorStore::write_store(&path, 7, &factors).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Flip one factor-data byte → data checksum mismatch.
        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0x40;
        std::fs::write(&path, &bad).unwrap();
        for source in [SourceKind::Ram, SourceKind::Mmap] {
            let err = FactorStore::open(&path, source).unwrap_err();
            assert!(matches!(err, ServeError::Format(_)), "{source}: {err}");
            assert!(err.to_string().contains("data checksum"), "{err}");
        }

        // Flip a header dim → header checksum mismatch.
        let mut bad = good.clone();
        bad[3 * 8] ^= 1;
        std::fs::write(&path, &bad).unwrap();
        let err = FactorStore::open(&path, SourceKind::Ram).unwrap_err();
        assert!(err.to_string().contains("header checksum"), "{err}");

        // Future format version (header checksum recomputed so only the
        // version gate can object).
        let mut words: Vec<u64> = good
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        words[1] = 9;
        words[8] = fnv_words(&words[..8]);
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        std::fs::write(&path, &bytes).unwrap();
        let err = FactorStore::open(&path, SourceKind::Ram).unwrap_err();
        assert!(matches!(err, ServeError::Version { found: 9 }), "{err}");
        assert!(err.to_string().contains("newer than this build"), "{err}");

        // Truncation → size mismatch, not a panic.
        std::fs::write(&path, &good[..good.len() - 8]).unwrap();
        assert!(FactorStore::open(&path, SourceKind::Mmap).is_err());

        // Neither format at all.
        std::fs::write(&path, b"what even is this").unwrap();
        let err = FactorStore::open(&path, SourceKind::Ram).unwrap_err();
        assert!(err.to_string().contains("neither"), "{err}");

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rank_zero_store_is_servable() {
        let factors = FactorSet {
            a: BitMatrix::zeros(3, 0),
            b: BitMatrix::zeros(2, 0),
            c: BitMatrix::zeros(4, 0),
        };
        let path = tmp("rank0.dbtfs");
        FactorStore::write_store(&path, 1, &factors).unwrap();
        let store = FactorStore::open(&path, SourceKind::Ram).unwrap();
        assert_eq!(store.rank(), 0);
        assert!(store.row(0, 2).is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
