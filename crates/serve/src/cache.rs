//! LRU cache of hot reconstruction fibers.
//!
//! Point and slice queries both reduce to one reconstruction *fiber*: fix
//! two indices, leave one axis free, and the free axis's bits are
//! `fiber[t] = (row_lo ∧ row_hi ∧ row_free[t]) ≠ 0`. Computing a fiber
//! costs one masked scan over a whole factor, so the engine memoizes
//! recently used fibers here — a repeat `point i j *` or `slice` on the
//! same fixed pair is a word-indexed bit test instead of a scan.
//!
//! The cache is a classic intrusive-list LRU over a slot arena: `get`
//! moves the entry to the front, `insert` evicts the back when full.
//! Capacity is in *entries* (fibers), and capacity 0 means bypass — the
//! engine computes every answer directly, which is what the differential
//! tests use to compare cold and hot paths bit for bit. Values are
//! `Arc<BitVec>` so a hit hands out the fiber without copying it while an
//! eviction can still drop the slot immediately.
//!
//! The cache keeps no counters; the engine owns hit/miss/eviction
//! accounting in [`crate::ServeMetrics`] so one atomic story covers both
//! the cached and bypass configurations.

use std::collections::HashMap;
use std::sync::Arc;

use dbtf_tensor::BitVec;

/// Identifies one reconstruction fiber.
///
/// `free_mode` is the axis left free (0 = i, 1 = j, 2 = k); `lo`/`hi` are
/// the fixed indices of the other two modes *in ascending mode order*, so
/// a point query and a slice query over the same fiber share an entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FiberKey {
    /// The free axis (0, 1, or 2).
    pub free_mode: u8,
    /// Fixed index on the lower of the two fixed modes.
    pub lo: u32,
    /// Fixed index on the higher of the two fixed modes.
    pub hi: u32,
}

const NIL: usize = usize::MAX;

struct Slot {
    key: FiberKey,
    value: Arc<BitVec>,
    prev: usize,
    next: usize,
}

/// Bounded LRU map from [`FiberKey`] to a computed fiber.
pub struct FiberCache {
    capacity: usize,
    map: HashMap<FiberKey, usize>,
    slots: Vec<Slot>,
    head: usize,
    tail: usize,
    free: Vec<usize>,
}

impl FiberCache {
    /// An empty cache holding at most `capacity` fibers (0 = bypass).
    pub fn new(capacity: usize) -> FiberCache {
        FiberCache {
            capacity,
            map: HashMap::new(),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    /// The configured capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Unlinks `idx` from the recency list.
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    /// Links `idx` at the front (most recently used).
    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        match self.head {
            NIL => self.tail = idx,
            h => self.slots[h].prev = idx,
        }
        self.head = idx;
    }

    /// Looks up a fiber, refreshing its recency on a hit.
    pub fn get(&mut self, key: &FiberKey) -> Option<Arc<BitVec>> {
        let idx = *self.map.get(key)?;
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(Arc::clone(&self.slots[idx].value))
    }

    /// Inserts (or refreshes) a fiber and returns how many entries were
    /// evicted to make room (0 or 1). A capacity-0 cache stores nothing.
    pub fn insert(&mut self, key: FiberKey, value: Arc<BitVec>) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return 0;
        }
        let mut evicted = 0;
        if self.map.len() == self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slots[victim].key);
            self.free.push(victim);
            evicted = 1;
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Slot {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.slots.push(Slot {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(free_mode: u8, lo: u32, hi: u32) -> FiberKey {
        FiberKey { free_mode, lo, hi }
    }

    fn fiber(bits: usize) -> Arc<BitVec> {
        Arc::new(BitVec::zeros(bits))
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = FiberCache::new(2);
        assert_eq!(cache.insert(key(0, 1, 2), fiber(8)), 0);
        assert_eq!(cache.insert(key(1, 1, 2), fiber(8)), 0);
        // Touch the first entry so the second becomes LRU.
        assert!(cache.get(&key(0, 1, 2)).is_some());
        assert_eq!(cache.insert(key(2, 1, 2), fiber(8)), 1, "one eviction");
        assert!(cache.get(&key(1, 1, 2)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(0, 1, 2)).is_some());
        assert!(cache.get(&key(2, 1, 2)).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let mut cache = FiberCache::new(2);
        cache.insert(key(0, 0, 0), fiber(4));
        cache.insert(key(0, 0, 1), fiber(4));
        assert_eq!(
            cache.insert(key(0, 0, 0), fiber(4)),
            0,
            "refresh, not evict"
        );
        cache.insert(key(0, 0, 2), fiber(4));
        assert!(cache.get(&key(0, 0, 1)).is_none(), "the stale entry went");
        assert!(cache.get(&key(0, 0, 0)).is_some());
    }

    #[test]
    fn capacity_zero_is_bypass() {
        let mut cache = FiberCache::new(0);
        assert_eq!(cache.insert(key(0, 1, 1), fiber(4)), 0);
        assert!(cache.get(&key(0, 1, 1)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn slot_reuse_keeps_list_consistent() {
        let mut cache = FiberCache::new(3);
        for round in 0..50u32 {
            cache.insert(key(0, round, round), fiber(4));
            assert_eq!(cache.len(), 3.min(round as usize + 1));
        }
        // A pure insert sequence keeps exactly the last three keys.
        for round in 0..47u32 {
            assert!(cache.get(&key(0, round, round)).is_none(), "round {round}");
        }
        for round in 47..50u32 {
            assert!(cache.get(&key(0, round, round)).is_some(), "round {round}");
        }
        assert!(cache.slots.len() <= 4, "arena reuses freed slots");
    }
}
