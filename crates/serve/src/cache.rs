//! LRU cache of hot reconstruction fibers.
//!
//! Point and slice queries both reduce to one reconstruction *fiber*: fix
//! two indices, leave one axis free, and the free axis's bits are
//! `fiber[t] = (row_lo ∧ row_hi ∧ row_free[t]) ≠ 0`. Computing a fiber
//! costs one masked scan over a whole factor, so the engine memoizes
//! recently used fibers here — a repeat `point i j *` or `slice` on the
//! same fixed pair is a word-indexed bit test instead of a scan.
//!
//! The cache is a classic intrusive-list LRU over a slot arena: `get`
//! moves the entry to the front, `insert` evicts the back when full.
//! Capacity is in *entries* (fibers), and capacity 0 means bypass — the
//! engine computes every answer directly, which is what the differential
//! tests use to compare cold and hot paths bit for bit. Values are
//! `Arc<BitVec>` so a hit hands out the fiber without copying it while an
//! eviction can still drop the slot immediately.
//!
//! The cache keeps no counters; the engine owns hit/miss/eviction
//! accounting in [`crate::ServeMetrics`] so one atomic story covers both
//! the cached and bypass configurations.
//!
//! # Generations
//!
//! A hot-swapped factor set (`reload`) changes what every fiber *means*,
//! so each entry is tagged with the generation it was computed under and
//! both `get` and `insert` carry the caller's generation. A lookup only
//! hits when the entry's generation matches the caller's — an in-flight
//! query that snapshotted the old store keeps hitting old-generation
//! entries (whole-generation answers), while queries against the new
//! store treat them as misses and lazily retire them. An insert from a
//! caller whose generation is no longer current is discarded: a fiber
//! computed against a superseded store must never be cached as fresh.

use std::collections::HashMap;
use std::sync::Arc;

use dbtf_tensor::BitVec;

/// Identifies one reconstruction fiber.
///
/// `free_mode` is the axis left free (0 = i, 1 = j, 2 = k); `lo`/`hi` are
/// the fixed indices of the other two modes *in ascending mode order*, so
/// a point query and a slice query over the same fiber share an entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FiberKey {
    /// The free axis (0, 1, or 2).
    pub free_mode: u8,
    /// Fixed index on the lower of the two fixed modes.
    pub lo: u32,
    /// Fixed index on the higher of the two fixed modes.
    pub hi: u32,
}

const NIL: usize = usize::MAX;

struct Slot {
    key: FiberKey,
    value: Arc<BitVec>,
    generation: u64,
    prev: usize,
    next: usize,
}

/// Bounded LRU map from [`FiberKey`] to a computed fiber.
pub struct FiberCache {
    capacity: usize,
    generation: u64,
    map: HashMap<FiberKey, usize>,
    slots: Vec<Slot>,
    head: usize,
    tail: usize,
    free: Vec<usize>,
}

impl FiberCache {
    /// An empty cache holding at most `capacity` fibers (0 = bypass).
    pub fn new(capacity: usize) -> FiberCache {
        FiberCache {
            capacity,
            generation: 0,
            map: HashMap::new(),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    /// The configured capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current factor-set generation new inserts must match.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Advances the current generation (a factor-set hot swap). Existing
    /// entries are *not* walked: old-generation entries keep serving
    /// in-flight old-generation readers and retire lazily on their first
    /// new-generation lookup (or by LRU pressure).
    pub fn set_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Unlinks `idx` from the recency list.
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    /// Links `idx` at the front (most recently used).
    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        match self.head {
            NIL => self.tail = idx,
            h => self.slots[h].prev = idx,
        }
        self.head = idx;
    }

    /// Looks up a fiber *as seen by a reader on `generation`*, refreshing
    /// its recency on a hit. An entry from a different generation is a
    /// miss; if that entry is also stale relative to the cache's current
    /// generation (nobody new will ever hit it) it is retired on the spot.
    pub fn get(&mut self, key: &FiberKey, generation: u64) -> Option<Arc<BitVec>> {
        let idx = *self.map.get(key)?;
        if self.slots[idx].generation != generation {
            if self.slots[idx].generation != self.generation {
                self.remove(key);
            }
            return None;
        }
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(Arc::clone(&self.slots[idx].value))
    }

    /// Inserts (or refreshes) a fiber computed under `generation` and
    /// returns how many entries were evicted to make room (0 or 1). A
    /// capacity-0 cache stores nothing, and an insert from a superseded
    /// generation is discarded — the fiber no longer describes the
    /// current factor set.
    pub fn insert(&mut self, key: FiberKey, value: Arc<BitVec>, generation: u64) -> u64 {
        if self.capacity == 0 || generation != self.generation {
            return 0;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            self.slots[idx].generation = generation;
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return 0;
        }
        let mut evicted = 0;
        if self.map.len() == self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slots[victim].key);
            self.free.push(victim);
            evicted = 1;
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Slot {
                    key,
                    value,
                    generation,
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.slots.push(Slot {
                    key,
                    value,
                    generation,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Drops one entry outright (any generation). Returns whether it was
    /// resident — the reload path uses this to eagerly invalidate exactly
    /// the fibers a delta touched.
    pub fn remove(&mut self, key: &FiberKey) -> bool {
        match self.map.remove(key) {
            Some(idx) => {
                self.unlink(idx);
                self.slots[idx].value = Arc::new(BitVec::zeros(0));
                self.free.push(idx);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(free_mode: u8, lo: u32, hi: u32) -> FiberKey {
        FiberKey { free_mode, lo, hi }
    }

    fn fiber(bits: usize) -> Arc<BitVec> {
        Arc::new(BitVec::zeros(bits))
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = FiberCache::new(2);
        assert_eq!(cache.insert(key(0, 1, 2), fiber(8), 0), 0);
        assert_eq!(cache.insert(key(1, 1, 2), fiber(8), 0), 0);
        // Touch the first entry so the second becomes LRU.
        assert!(cache.get(&key(0, 1, 2), 0).is_some());
        assert_eq!(cache.insert(key(2, 1, 2), fiber(8), 0), 1, "one eviction");
        assert!(cache.get(&key(1, 1, 2), 0).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(0, 1, 2), 0).is_some());
        assert!(cache.get(&key(2, 1, 2), 0).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let mut cache = FiberCache::new(2);
        cache.insert(key(0, 0, 0), fiber(4), 0);
        cache.insert(key(0, 0, 1), fiber(4), 0);
        assert_eq!(
            cache.insert(key(0, 0, 0), fiber(4), 0),
            0,
            "refresh, not evict"
        );
        cache.insert(key(0, 0, 2), fiber(4), 0);
        assert!(
            cache.get(&key(0, 0, 1), 0).is_none(),
            "the stale entry went"
        );
        assert!(cache.get(&key(0, 0, 0), 0).is_some());
    }

    #[test]
    fn capacity_zero_is_bypass() {
        let mut cache = FiberCache::new(0);
        assert_eq!(cache.insert(key(0, 1, 1), fiber(4), 0), 0);
        assert!(cache.get(&key(0, 1, 1), 0).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn slot_reuse_keeps_list_consistent() {
        let mut cache = FiberCache::new(3);
        for round in 0..50u32 {
            cache.insert(key(0, round, round), fiber(4), 0);
            assert_eq!(cache.len(), 3.min(round as usize + 1));
        }
        // A pure insert sequence keeps exactly the last three keys.
        for round in 0..47u32 {
            assert!(
                cache.get(&key(0, round, round), 0).is_none(),
                "round {round}"
            );
        }
        for round in 47..50u32 {
            assert!(
                cache.get(&key(0, round, round), 0).is_some(),
                "round {round}"
            );
        }
        assert!(cache.slots.len() <= 4, "arena reuses freed slots");
    }

    #[test]
    fn generations_partition_hits_without_walking_entries() {
        let mut cache = FiberCache::new(4);
        cache.insert(key(0, 1, 2), fiber(8), 0);
        cache.set_generation(1);
        // An in-flight reader still on generation 0 keeps hitting its entry.
        assert!(cache.get(&key(0, 1, 2), 0).is_some(), "old reader hits");
        // A generation-1 reader misses, and because the entry can never
        // serve a current reader it is retired on that first miss.
        assert!(cache.get(&key(0, 1, 2), 1).is_none(), "new reader misses");
        assert!(cache.is_empty(), "stale entry retired lazily");
        // Inserts from the superseded generation are discarded...
        assert_eq!(cache.insert(key(1, 3, 4), fiber(8), 0), 0);
        assert!(cache.is_empty(), "stale insert discarded");
        // ...while current-generation inserts land normally.
        cache.insert(key(1, 3, 4), fiber(8), 1);
        assert!(cache.get(&key(1, 3, 4), 1).is_some());
    }

    #[test]
    fn remove_retires_one_entry_and_recycles_its_slot() {
        let mut cache = FiberCache::new(3);
        cache.insert(key(0, 0, 0), fiber(4), 0);
        cache.insert(key(1, 1, 1), fiber(4), 0);
        assert!(cache.remove(&key(0, 0, 0)), "resident entry removed");
        assert!(!cache.remove(&key(0, 0, 0)), "second remove is a no-op");
        assert!(cache.get(&key(0, 0, 0), 0).is_none());
        assert!(cache.get(&key(1, 1, 1), 0).is_some(), "neighbor survives");
        let slots_before = cache.slots.len();
        cache.insert(key(2, 2, 2), fiber(4), 0);
        assert_eq!(cache.slots.len(), slots_before, "freed slot reused");
        assert_eq!(cache.len(), 2);
    }
}
