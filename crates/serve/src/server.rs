//! The `dbtf serve` TCP server: one accept loop, one thread per
//! connection, line-delimited JSON in and out.
//!
//! Connection discipline follows the `crates/cluster/net` listener:
//! `TCP_NODELAY` on every socket, hard input limits enforced *while*
//! reading (an oversized line is rejected after `max_line_bytes` bytes,
//! not buffered to completion), and every failure mode mapped to a typed
//! reply — a malformed line gets `{"ok":false,"code":"parse",...}`, not
//! a dropped connection.
//!
//! Shutdown drains. A `shutdown` request (or [`ServerHandle::shutdown`])
//! sets the draining flag; the accept loop is woken by a self-connect
//! and stops; every connection thread polls the flag on a 50 ms read
//! timeout, finishes the request it is answering, and closes. The handle
//! then waits for the active-connection count to reach zero (bounded by
//! a deadline) — the in-flight reply is always written before its socket
//! closes.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use dbtf_tensor::TensorDelta;

use crate::engine::QueryEngine;
use crate::metrics::ServeMetrics;
use crate::protocol::{self, parse_line, Request, RequestError, ServeLimits};
use crate::store::{FactorStore, SourceKind};

/// How a server should listen and bound its inputs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (the harness default).
    pub addr: String,
    /// Fiber-cache capacity in entries (0 = bypass).
    pub cache_fibers: usize,
    /// Protocol input limits.
    pub limits: ServeLimits,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            cache_fibers: 1024,
            limits: ServeLimits::default(),
        }
    }
}

/// State shared by the accept loop, connection threads, and the handle.
struct Shared {
    engine: QueryEngine,
    limits: ServeLimits,
    addr: SocketAddr,
    draining: AtomicBool,
    active: Mutex<usize>,
    idle: Condvar,
}

impl Shared {
    fn metrics(&self) -> &Arc<ServeMetrics> {
        self.engine.metrics()
    }

    /// Flips the draining flag and wakes the (blocking) accept loop with
    /// a throwaway self-connection.
    fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            drop(TcpStream::connect(self.addr));
        }
    }
}

/// Namespace for starting a serving process.
pub struct Server;

impl Server {
    /// Binds `config.addr`, starts the accept loop, and returns a handle
    /// once the port is live (so a caller can connect immediately).
    pub fn start(store: FactorStore, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(ServeMetrics::new());
        let shared = Arc::new(Shared {
            engine: QueryEngine::new(store, config.cache_fibers, metrics),
            limits: config.limits,
            addr,
            draining: AtomicBool::new(false),
            active: Mutex::new(0),
            idle: Condvar::new(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
        })
    }
}

/// A running server; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's counters.
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(self.shared.metrics())
    }

    /// Whether a drain has begun (via request or handle).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Drains and stops the server: no new connections, in-flight
    /// requests answered, all connection threads joined. Returns `true`
    /// if every connection closed within `deadline`.
    pub fn shutdown(mut self, deadline: Duration) -> bool {
        self.shutdown_inner(deadline)
    }

    /// Blocks until something begins a drain (a client `shutdown`
    /// request, typically), then completes it — the foreground
    /// `dbtf serve` main loop. Returns `true` if every connection closed
    /// within `deadline` of the drain starting.
    pub fn run_until_drained(self, deadline: Duration) -> bool {
        while !self.is_draining() {
            std::thread::sleep(Duration::from_millis(100));
        }
        self.shutdown(deadline)
    }

    fn shutdown_inner(&mut self, deadline: Duration) -> bool {
        self.shared.begin_drain();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let t0 = Instant::now();
        let mut active = self.shared.active.lock().unwrap();
        while *active > 0 {
            let left = deadline.saturating_sub(t0.elapsed());
            if left.is_zero() {
                return false;
            }
            let (guard, _) = self.shared.idle.wait_timeout(active, left).unwrap();
            active = guard;
        }
        true
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner(Duration::from_secs(5));
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        {
            let mut active = shared.active.lock().unwrap();
            *active += 1;
        }
        ServeMetrics::add(&shared.metrics().connections_opened, 1);
        let conn_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || {
                handle_connection(&conn_shared, stream);
                let mut active = conn_shared.active.lock().unwrap();
                *active -= 1;
                conn_shared.idle.notify_all();
                drop(active);
                ServeMetrics::add(&conn_shared.metrics().connections_closed, 1);
            });
        if spawned.is_err() {
            let mut active = shared.active.lock().unwrap();
            *active -= 1;
            shared.idle.notify_all();
        }
    }
}

/// Outcome of one bounded line read.
enum LineRead {
    /// A complete line is in the buffer (newline stripped).
    Line,
    /// Clean EOF with nothing buffered.
    Eof,
    /// Disconnect mid-line (truncated frame).
    Truncated,
    /// The line exceeded `max` bytes.
    Oversized,
    /// The server began draining while this connection was idle.
    Draining,
    /// Unrecoverable socket error.
    Failed,
}

/// Reads one `\n`-terminated line into `buf`, enforcing the byte limit
/// incrementally and polling the draining flag across read timeouts.
/// Both `WouldBlock` and `TimedOut` are idle poll ticks, never failures
/// — which of the two a timed-out socket read yields is
/// platform-dependent, so treating only one as a tick would drop
/// connections on the other platform. Generic over the reader so the
/// tick handling is testable without a socket.
fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    max: usize,
    draining: &AtomicBool,
) -> LineRead {
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Idle poll tick. Mid-line we keep waiting for the rest —
                // the in-flight frame gets its answer even while draining;
                // an idle draining connection just closes.
                if draining.load(Ordering::SeqCst) && buf.is_empty() {
                    return LineRead::Draining;
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return LineRead::Failed,
        };
        if chunk.is_empty() {
            return if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Truncated
            };
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if buf.len() + pos > max {
                    reader.consume(pos + 1);
                    return LineRead::Oversized;
                }
                buf.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                return LineRead::Line;
            }
            None => {
                let n = chunk.len();
                if buf.len() + n > max {
                    reader.consume(n);
                    return LineRead::Oversized;
                }
                buf.extend_from_slice(chunk);
                reader.consume(n);
            }
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let read_half = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut buf = Vec::new();
    loop {
        buf.clear();
        match read_bounded_line(
            &mut reader,
            &mut buf,
            shared.limits.max_line_bytes,
            &shared.draining,
        ) {
            LineRead::Line => {
                ServeMetrics::add(&shared.metrics().lines_total, 1);
                let line = String::from_utf8_lossy(&buf).into_owned();
                if !write_replies(shared, &mut writer, &line) {
                    return;
                }
            }
            LineRead::Oversized => {
                // Typed refusal, then close: the rest of the line was
                // never buffered, so this connection's stream position is
                // unknowable — a clean close beats silent resync.
                ServeMetrics::add(&shared.metrics().lines_total, 1);
                let err = RequestError::oversized(shared.limits.max_line_bytes);
                shared.metrics().count_error(err.code);
                let reply = protocol::reply_error(None, &err);
                let _ = writeln_flush(&mut writer, &reply);
                return;
            }
            LineRead::Truncated => {
                ServeMetrics::add(&shared.metrics().lines_truncated, 1);
                return;
            }
            LineRead::Eof | LineRead::Draining | LineRead::Failed => return,
        }
    }
}

/// Parses, executes, and answers one request line. Returns `false` when
/// the connection must close afterwards (drain, shutdown, write failure).
fn write_replies(shared: &Shared, writer: &mut TcpStream, line: &str) -> bool {
    let metrics = Arc::clone(shared.metrics());
    let parsed = parse_line(line, &shared.limits);
    if parsed.batch {
        ServeMetrics::add(&metrics.batches_total, 1);
    }
    let draining_now = shared.draining.load(Ordering::SeqCst);
    let mut close = draining_now;
    let mut replies = Vec::with_capacity(parsed.items.len());
    for (id, item) in parsed.items {
        ServeMetrics::add(&metrics.requests_total, 1);
        let reply = match item {
            Err(err) => {
                metrics.count_error(err.code);
                protocol::reply_error(id, &err)
            }
            // During a drain only `shutdown` still gets its normal
            // (idempotent) acknowledgment; everything else is refused.
            Ok(req) if draining_now && req != Request::Shutdown => {
                let err = RequestError::draining();
                metrics.count_error(err.code);
                protocol::reply_error(id, &err)
            }
            Ok(req) => execute(shared, &metrics, id, req, &mut close),
        };
        replies.push(reply);
    }
    let line_out = if parsed.batch {
        format!("[{}]", replies.join(","))
    } else {
        replies.pop().unwrap_or_default()
    };
    writeln_flush(writer, &line_out) && !close
}

fn execute(
    shared: &Shared,
    metrics: &ServeMetrics,
    id: Option<u64>,
    req: Request,
    close: &mut bool,
) -> String {
    let engine = &shared.engine;
    let query = |result: Result<String, RequestError>| match result {
        Ok(reply) => reply,
        Err(err) => {
            metrics.count_error(err.code);
            protocol::reply_error(id, &err)
        }
    };
    match req {
        Request::Point { i, j, k } => query(
            engine
                .point(i, j, k)
                .map(|v| protocol::reply_point(id, v))
                .map_err(RequestError::from),
        ),
        Request::Slice { free_mode, lo, hi } => query(
            engine
                .slice(free_mode, lo, hi)
                .map(|ones| protocol::reply_slice(id, &ones))
                .map_err(RequestError::from),
        ),
        Request::Topk { mode, entity, k } => query(
            engine
                .topk(mode, entity, k)
                .map(|cols| protocol::reply_topk(id, &cols))
                .map_err(RequestError::from),
        ),
        Request::Ping => {
            ServeMetrics::add(&metrics.admin_queries, 1);
            protocol::reply_ping(id)
        }
        Request::Stats => {
            ServeMetrics::add(&metrics.admin_queries, 1);
            protocol::reply_stats(id, &metrics.named_counters())
        }
        Request::Info => {
            ServeMetrics::add(&metrics.admin_queries, 1);
            let store = engine.store();
            protocol::reply_info(
                id,
                store.dims(),
                store.rank(),
                store.set_version(),
                &store.source().to_string(),
            )
        }
        Request::Reload {
            path,
            source,
            delta,
        } => {
            ServeMetrics::add(&metrics.reload_requests, 1);
            let current = engine.store();
            let attempt = (|| -> Result<String, RequestError> {
                let source = match source {
                    Some(s) => s.parse::<SourceKind>().map_err(RequestError::reload)?,
                    None => current.source(),
                };
                let store = FactorStore::open(std::path::Path::new(&path), source)
                    .map_err(|e| RequestError::reload(format!("{path}: {e}")))?;
                let delta = match delta {
                    Some(dpath) => {
                        let text = std::fs::read_to_string(&dpath)
                            .map_err(|e| RequestError::reload(format!("{dpath}: {e}")))?;
                        Some(
                            TensorDelta::parse(&text, current.dims())
                                .map_err(|e| RequestError::reload(format!("{dpath}: {e}")))?,
                        )
                    }
                    None => None,
                };
                let outcome = engine
                    .reload(store, delta.as_ref())
                    .map_err(RequestError::reload)?;
                ServeMetrics::add(&metrics.reload_fibers_invalidated, outcome.invalidated);
                Ok(protocol::reply_reload(
                    id,
                    outcome.set_version,
                    outcome.generation,
                    outcome.invalidated,
                ))
            })();
            match attempt {
                Ok(reply) => reply,
                Err(err) => {
                    metrics.count_error(err.code);
                    protocol::reply_error(id, &err)
                }
            }
        }
        Request::Shutdown => {
            ServeMetrics::add(&metrics.admin_queries, 1);
            shared.begin_drain();
            *close = true;
            protocol::reply_shutdown(id)
        }
    }
}

/// Writes one reply line and flushes; `false` means the peer is gone.
fn writeln_flush(writer: &mut TcpStream, line: &str) -> bool {
    let mut out = Vec::with_capacity(line.len() + 1);
    out.extend_from_slice(line.as_bytes());
    out.push(b'\n');
    writer.write_all(&out).and_then(|()| writer.flush()).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::io::{self, Read};

    /// A scripted reader: each step is either an error kind to return
    /// once or a byte chunk to serve. `fill_buf` replays the script the
    /// way a 50 ms-timeout socket would.
    struct ScriptedReader {
        steps: VecDeque<Result<Vec<u8>, ErrorKind>>,
        current: Vec<u8>,
        pos: usize,
    }

    impl ScriptedReader {
        fn new(steps: Vec<Result<&[u8], ErrorKind>>) -> ScriptedReader {
            ScriptedReader {
                steps: steps
                    .into_iter()
                    .map(|s| s.map(|bytes| bytes.to_vec()))
                    .collect(),
                current: Vec::new(),
                pos: 0,
            }
        }
    }

    impl Read for ScriptedReader {
        fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
            unreachable!("read_bounded_line uses fill_buf/consume only")
        }
    }

    impl BufRead for ScriptedReader {
        fn fill_buf(&mut self) -> io::Result<&[u8]> {
            if self.pos == self.current.len() {
                match self.steps.pop_front() {
                    Some(Ok(bytes)) => {
                        self.current = bytes;
                        self.pos = 0;
                    }
                    Some(Err(kind)) => return Err(io::Error::new(kind, "scripted")),
                    None => {
                        self.current = Vec::new();
                        self.pos = 0;
                    }
                }
            }
            Ok(&self.current[self.pos..])
        }

        fn consume(&mut self, amt: usize) {
            self.pos += amt;
        }
    }

    fn read_line(steps: Vec<Result<&[u8], ErrorKind>>, draining: bool) -> (LineRead, Vec<u8>) {
        let mut reader = ScriptedReader::new(steps);
        let mut buf = Vec::new();
        let outcome = read_bounded_line(&mut reader, &mut buf, 64, &AtomicBool::new(draining));
        (outcome, buf)
    }

    #[test]
    fn wouldblock_and_timedout_are_poll_ticks_not_failures() {
        // Regression: a read loop matching only one of the two timeout
        // kinds drops connections on platforms that report the other.
        for kind in [ErrorKind::WouldBlock, ErrorKind::TimedOut] {
            // Idle ticks before the line arrives: still a clean line.
            let (outcome, buf) = read_line(vec![Err(kind), Err(kind), Ok(b"{\"q\":1}\n")], false);
            assert!(matches!(outcome, LineRead::Line), "{kind:?}");
            assert_eq!(buf, b"{\"q\":1}", "{kind:?}");
            // A tick splitting a frame mid-line must keep waiting, even
            // while draining — the in-flight frame gets its answer.
            let (outcome, buf) = read_line(vec![Ok(b"{\"q\""), Err(kind), Ok(b":2}\n")], true);
            assert!(matches!(outcome, LineRead::Line), "{kind:?} mid-line");
            assert_eq!(buf, b"{\"q\":2}", "{kind:?} mid-line");
            // An *idle* tick while draining closes the connection.
            let (outcome, _) = read_line(vec![Err(kind)], true);
            assert!(matches!(outcome, LineRead::Draining), "{kind:?} draining");
        }
    }

    #[test]
    fn interrupted_retries_and_hard_errors_fail() {
        let (outcome, buf) = read_line(vec![Err(ErrorKind::Interrupted), Ok(b"x\n")], false);
        assert!(matches!(outcome, LineRead::Line));
        assert_eq!(buf, b"x");
        let (outcome, _) = read_line(vec![Err(ErrorKind::ConnectionReset)], false);
        assert!(matches!(outcome, LineRead::Failed));
    }

    #[test]
    fn eof_truncation_and_oversize_classify() {
        let (outcome, _) = read_line(vec![], false);
        assert!(matches!(outcome, LineRead::Eof));
        let (outcome, _) = read_line(vec![Ok(b"partial")], false);
        assert!(matches!(outcome, LineRead::Truncated), "EOF mid-line");
        let long = vec![b'a'; 80];
        let mut steps: Vec<Result<&[u8], ErrorKind>> = vec![Ok(&long)];
        steps.push(Ok(b"\n"));
        let (outcome, _) = read_line(steps, false);
        assert!(matches!(outcome, LineRead::Oversized));
    }
}
