//! Binary wire codec for the networked execution backend.
//!
//! # The payload/meta channel split
//!
//! The engine's communication meters implement the paper's Lemma 6/7 byte
//! formulas: a distributed partition costs exactly
//! [`ModePartition::byte_size`]-style bytes, a broadcast factor matrix
//! costs `⌈rows·cols/8⌉` bytes, a column decision costs `⌈I/8⌉ + 8`. For
//! the networked backend those counters stop being simulated — they are
//! measured off real sockets — and the acceptance bar is *exact equality*
//! between measured wire bytes and the closed-form Lemma meters.
//!
//! A naive serialization format cannot deliver that: it interleaves
//! structural framing (lengths, counts, type tags) with the payload, so
//! the measured byte count would drift from the formulas by a
//! format-dependent overhead. This codec therefore writes every value
//! into **two channels**:
//!
//! - the **data** channel holds exactly the bytes the cost model charges
//!   for (bit-packed matrix payloads, nonzero coordinates, scalar
//!   results), laid out so that `data.len()` equals the metered formula
//!   for that value;
//! - the **meta** channel holds everything else (element counts,
//!   dimensions, option tags) and is accounted separately as protocol
//!   overhead.
//!
//! A [`WireWriter::finish`] produces one self-describing frame
//! `[meta_len: u32][meta][data]` plus the `data_len` used by the
//! transport's `net.wire_bytes_*` counters. Decoding reverses the split
//! with a [`WireReader`].
//!
//! # Traits
//!
//! [`Wire`] is the encode/decode pair. [`WireNamed`] additionally gives a
//! type a stable wire name; partition element types need one so that a
//! worker process — which receives partitions as opaque frames — can look
//! up the right decoder in its task registry.
//!
//! [`ModePartition::byte_size`]: https://docs.rs/dbtf

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;

/// Decode-side error: the frame was truncated or structurally malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Shorthand used throughout the codec.
pub type WireResult<T> = Result<T, WireError>;

fn truncated(what: &str) -> WireError {
    WireError(format!("truncated frame while reading {what}"))
}

/// One encoded value: the full self-describing frame plus how many of its
/// bytes are metered payload (the data channel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedFrame {
    /// `[meta_len: u32 LE][meta][data]`.
    pub bytes: Vec<u8>,
    /// Length of the data channel — the portion the Lemma 6/7 wire-byte
    /// counters charge for.
    pub data_len: u64,
}

/// Dual-channel encoder. Payload bytes go through the `data_*` methods,
/// structural bytes through the `meta_*` methods.
#[derive(Debug, Default)]
pub struct WireWriter {
    meta: Vec<u8>,
    data: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// Appends raw bytes to the meta channel.
    pub fn meta_bytes(&mut self, bytes: &[u8]) {
        self.meta.extend_from_slice(bytes);
    }

    /// Appends a little-endian `u64` to the meta channel.
    pub fn meta_u64(&mut self, v: u64) {
        self.meta.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a single byte to the meta channel.
    pub fn meta_u8(&mut self, v: u8) {
        self.meta.push(v);
    }

    /// Appends raw payload bytes to the data channel.
    pub fn data(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Appends a little-endian `u64` to the data channel.
    pub fn data_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32` to the data channel.
    pub fn data_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Bytes written to the data channel so far.
    pub fn data_len(&self) -> u64 {
        self.data.len() as u64
    }

    /// Seals the writer into a self-describing frame.
    pub fn finish(self) -> EncodedFrame {
        let data_len = self.data.len() as u64;
        let mut bytes = Vec::with_capacity(4 + self.meta.len() + self.data.len());
        bytes.extend_from_slice(
            &u32::try_from(self.meta.len())
                .expect("meta > 4 GiB")
                .to_le_bytes(),
        );
        bytes.extend_from_slice(&self.meta);
        bytes.extend_from_slice(&self.data);
        EncodedFrame { bytes, data_len }
    }
}

/// Length of a frame's data channel, without decoding the frame — what
/// the networked backend's measured wire-byte meters charge for a frame
/// received off a socket.
pub fn frame_data_len(frame: &[u8]) -> WireResult<u64> {
    if frame.len() < 4 {
        return Err(truncated("frame header"));
    }
    let meta_len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
    if frame.len() < 4 + meta_len {
        return Err(truncated("meta channel"));
    }
    Ok((frame.len() - 4 - meta_len) as u64)
}

/// Dual-channel decoder over a frame produced by [`WireWriter::finish`].
#[derive(Debug)]
pub struct WireReader<'a> {
    meta: &'a [u8],
    data: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// Splits `frame` back into its meta and data channels.
    pub fn new(frame: &'a [u8]) -> WireResult<Self> {
        if frame.len() < 4 {
            return Err(truncated("frame header"));
        }
        let meta_len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        if frame.len() < 4 + meta_len {
            return Err(truncated("meta channel"));
        }
        Ok(WireReader {
            meta: &frame[4..4 + meta_len],
            data: &frame[4 + meta_len..],
        })
    }

    /// Reads `n` raw bytes off the meta channel.
    pub fn meta_bytes(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.meta.len() < n {
            return Err(truncated("meta bytes"));
        }
        let (head, rest) = self.meta.split_at(n);
        self.meta = rest;
        Ok(head)
    }

    /// Reads a little-endian `u64` off the meta channel.
    pub fn meta_u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.meta_bytes(8)?.try_into().unwrap()))
    }

    /// Reads one byte off the meta channel.
    pub fn meta_u8(&mut self) -> WireResult<u8> {
        Ok(self.meta_bytes(1)?[0])
    }

    /// Reads `n` raw payload bytes off the data channel.
    pub fn data_bytes(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.data.len() < n {
            return Err(truncated("data bytes"));
        }
        let (head, rest) = self.data.split_at(n);
        self.data = rest;
        Ok(head)
    }

    /// Reads a little-endian `u64` off the data channel.
    pub fn data_u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.data_bytes(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32` off the data channel.
    pub fn data_u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.data_bytes(4)?.try_into().unwrap()))
    }

    /// True when both channels are fully consumed.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty() && self.data.is_empty()
    }
}

/// A value with a binary wire representation.
///
/// Implementations must keep the data channel equal to the engine's
/// metered byte size for the value (see the crate docs); structural
/// information goes on the meta channel.
pub trait Wire: Sized {
    /// Writes `self` into the encoder.
    fn encode(&self, w: &mut WireWriter);
    /// Reads a value back; must round-trip [`Wire::encode`] exactly.
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self>;

    /// Convenience: encodes `self` into a standalone frame.
    fn to_frame(&self) -> EncodedFrame {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.finish()
    }

    /// Convenience: decodes a value from a standalone frame.
    fn from_frame(frame: &[u8]) -> WireResult<Self> {
        let mut r = WireReader::new(frame)?;
        Self::decode(&mut r)
    }
}

/// A [`Wire`] type with a stable name, used by worker processes to look
/// up the decoder for opaque partition frames in their task registry.
pub trait WireNamed: Wire + Send + 'static {
    /// Globally unique, version-stable wire name (e.g. `"dbtf.slot"`).
    const WIRE_NAME: &'static str;
}

// --- scalar impls ------------------------------------------------------
//
// Scalars ride the data channel: the cost model's formulas charge for
// them directly (a collected `u64` result is metered as 8 bytes, a
// `(u64, u64)` error pair as 16, ...).

impl Wire for u64 {
    fn encode(&self, w: &mut WireWriter) {
        w.data_u64(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        r.data_u64()
    }
}

impl Wire for u32 {
    fn encode(&self, w: &mut WireWriter) {
        w.data_u32(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        r.data_u32()
    }
}

impl Wire for usize {
    fn encode(&self, w: &mut WireWriter) {
        w.data_u64(*self as u64);
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        usize::try_from(r.data_u64()?).map_err(|_| WireError("usize overflow".into()))
    }
}

impl Wire for i64 {
    fn encode(&self, w: &mut WireWriter) {
        w.data_u64(*self as u64);
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(r.data_u64()? as i64)
    }
}

impl Wire for f64 {
    fn encode(&self, w: &mut WireWriter) {
        w.data_u64(self.to_bits());
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(f64::from_bits(r.data_u64()?))
    }
}

impl Wire for bool {
    fn encode(&self, w: &mut WireWriter) {
        w.meta_u8(u8::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match r.meta_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError(format!("invalid bool byte {b}"))),
        }
    }
}

impl Wire for () {
    fn encode(&self, _w: &mut WireWriter) {}
    fn decode(_r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(())
    }
}

impl Wire for String {
    fn encode(&self, w: &mut WireWriter) {
        w.meta_u64(self.len() as u64);
        w.meta_bytes(self.as_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let len = r.meta_u64()? as usize;
        let bytes = r.meta_bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| WireError(format!("invalid utf-8: {e}")))
    }
}

// --- compound impls ----------------------------------------------------

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            None => w.meta_u8(0),
            Some(v) => {
                w.meta_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match r.meta_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            b => Err(WireError(format!("invalid option tag {b}"))),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut WireWriter) {
        w.meta_u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let len = r.meta_u64()? as usize;
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

macro_rules! tuple_wire {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn encode(&self, w: &mut WireWriter) {
                $(self.$idx.encode(w);)+
            }
            fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}

tuple_wire!(A: 0);
tuple_wire!(A: 0, B: 1);
tuple_wire!(A: 0, B: 1, C: 2);
tuple_wire!(A: 0, B: 1, C: 2, D: 3);
tuple_wire!(A: 0, B: 1, C: 2, D: 3, E: 4);

macro_rules! named_scalar {
    ($ty:ty, $name:literal) => {
        impl WireNamed for $ty {
            const WIRE_NAME: &'static str = $name;
        }
    };
}

named_scalar!(u64, "u64");
named_scalar!(u32, "u32");
named_scalar!(usize, "usize");
named_scalar!(i64, "i64");
named_scalar!(f64, "f64");
named_scalar!(String, "string");
named_scalar!((u64, u64), "u64x2");

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: T) -> EncodedFrame {
        let frame = value.to_frame();
        let back = T::from_frame(&frame.bytes).expect("decode");
        assert_eq!(back, value);
        frame
    }

    #[test]
    fn frame_data_len_reads_without_decoding() {
        let frame = vec![(1u64, 2u64), (3, 4)].to_frame();
        assert_eq!(frame_data_len(&frame.bytes).unwrap(), frame.data_len);
        assert!(frame_data_len(&[0, 0]).is_err());
        assert!(frame_data_len(&[9, 0, 0, 0, 1]).is_err());
    }

    #[test]
    fn scalars_roundtrip_with_exact_data_lengths() {
        assert_eq!(roundtrip(0xdead_beef_u64 << 17).data_len, 8);
        assert_eq!(roundtrip(12345_usize).data_len, 8);
        assert_eq!(roundtrip(-7_i64).data_len, 8);
        assert_eq!(roundtrip(std::f64::consts::PI).data_len, 8);
        assert_eq!(roundtrip(42_u32).data_len, 4);
        // Structural values carry no metered payload.
        assert_eq!(roundtrip(true).data_len, 0);
        assert_eq!(roundtrip(()).data_len, 0);
        assert_eq!(roundtrip(String::from("hello")).data_len, 0);
    }

    #[test]
    fn error_pair_vec_meters_sixteen_bytes_per_element() {
        // The column-sweep score result: metered `errs.len() * 16`.
        let errs: Vec<(u64, u64)> = vec![(1, 2), (3, 4), (5, 6)];
        let frame = roundtrip(errs);
        assert_eq!(frame.data_len, 3 * 16);
    }

    #[test]
    fn options_and_tuples_roundtrip() {
        assert_eq!(roundtrip(Option::<u64>::None).data_len, 0);
        assert_eq!(roundtrip(Some(9_u64)).data_len, 8);
        assert_eq!(roundtrip((7_u64, Some(3_u64), false)).data_len, 16);
        roundtrip(vec![vec![1_u64, 2], vec![], vec![3]]);
    }

    #[test]
    fn nested_frames_keep_channel_separation() {
        let mut w = WireWriter::new();
        (5_u64, vec![1_u64, 2, 3]).encode(&mut w);
        let frame = w.finish();
        // 8 (scalar) + 3 * 8 (elements); the vec length lives in meta.
        assert_eq!(frame.data_len, 32);
        let mut r = WireReader::new(&frame.bytes).unwrap();
        let back = <(u64, Vec<u64>)>::decode(&mut r).unwrap();
        assert_eq!(back, (5, vec![1, 2, 3]));
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_frames_error_cleanly() {
        let frame = (1_u64, 2_u64).to_frame();
        for cut in 0..frame.bytes.len() {
            let err = <(u64, u64)>::from_frame(&frame.bytes[..cut]);
            assert!(err.is_err(), "cut at {cut} should fail");
        }
        assert!(u64::from_frame(&[]).is_err());
    }

    #[test]
    fn invalid_tags_are_rejected() {
        let mut w = WireWriter::new();
        w.meta_u8(7);
        let frame = w.finish();
        assert!(bool::from_frame(&frame.bytes).is_err());
        assert!(Option::<u64>::from_frame(&frame.bytes).is_err());
    }
}
