//! Differential tests: the distributed DBTF must match the sequential
//! reference bit-for-bit, for every worker count, partition count and cache
//! grouping — and both must behave like a proper ALS (monotone errors).

use dbtf::reference::factorize_reference;
use dbtf::{factorize, DbtfConfig, InitStrategy};
use dbtf_cluster::{Cluster, ClusterConfig};
use dbtf_tensor::BoolTensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_tensor(dims: [usize; 3], density: f64, seed: u64) -> BoolTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut entries = Vec::new();
    for i in 0..dims[0] as u32 {
        for j in 0..dims[1] as u32 {
            for k in 0..dims[2] as u32 {
                if rng.gen_bool(density) {
                    entries.push([i, j, k]);
                }
            }
        }
    }
    BoolTensor::from_entries(dims, entries)
}

fn planted_tensor(dims: [usize; 3], rank: usize, p: f64, seed: u64) -> BoolTensor {
    use dbtf_tensor::reconstruct::reconstruct;
    use dbtf_tensor::BitMatrix;
    let mut rng = StdRng::seed_from_u64(seed);
    let a = BitMatrix::random(dims[0], rank, p, &mut rng);
    let b = BitMatrix::random(dims[1], rank, p, &mut rng);
    let c = BitMatrix::random(dims[2], rank, p, &mut rng);
    reconstruct(&a, &b, &c)
}

/// Distributed ≡ reference across worker counts and partition counts.
#[test]
fn distributed_matches_reference_across_cluster_shapes() {
    let x = random_tensor([9, 11, 7], 0.15, 100);
    let config = DbtfConfig {
        rank: 4,
        max_iters: 3,
        seed: 5,
        ..DbtfConfig::default()
    };
    let reference = factorize_reference(&x, &config).unwrap();
    for workers in [1usize, 2, 5] {
        for partitions in [None, Some(1), Some(3), Some(17)] {
            let cluster = Cluster::new(ClusterConfig::with_workers(workers));
            let config = DbtfConfig {
                partitions,
                ..config.clone()
            };
            let result = factorize(&cluster, &x, &config).unwrap();
            assert_eq!(
                result.factors, reference.factors,
                "workers={workers} partitions={partitions:?}"
            );
            assert_eq!(result.iteration_errors, reference.iteration_errors);
        }
    }
}

/// Distributed ≡ reference across cache group limits (multi-group tables).
#[test]
fn distributed_matches_reference_across_cache_grouping() {
    let x = random_tensor([8, 8, 8], 0.2, 101);
    let base = DbtfConfig {
        rank: 7,
        max_iters: 2,
        seed: 9,
        ..DbtfConfig::default()
    };
    let reference = factorize_reference(&x, &base).unwrap();
    for v in [15usize, 7, 3, 2, 1] {
        let cluster = Cluster::new(ClusterConfig::with_workers(3));
        let config = DbtfConfig {
            cache_group_limit: v,
            ..base.clone()
        };
        let result = factorize(&cluster, &x, &config).unwrap();
        assert_eq!(result.factors, reference.factors, "V = {v}");
        assert_eq!(result.error, reference.error, "V = {v}");
    }
}

/// Both init strategies stay in lockstep between the two implementations.
#[test]
fn distributed_matches_reference_for_random_init() {
    let x = random_tensor([10, 6, 8], 0.25, 102);
    let config = DbtfConfig {
        rank: 3,
        max_iters: 2,
        initial_sets: 3,
        init: InitStrategy::Random,
        init_density: Some(0.3),
        seed: 11,
        ..DbtfConfig::default()
    };
    let reference = factorize_reference(&x, &config).unwrap();
    let cluster = Cluster::new(ClusterConfig::with_workers(2));
    let result = factorize(&cluster, &x, &config).unwrap();
    assert_eq!(result.factors, reference.factors);
    assert_eq!(result.error, reference.error);
}

/// Iteration errors never increase (ALS monotonicity), and the reported
/// error matches a from-scratch reconstruction of the returned factors.
#[test]
fn errors_monotone_and_consistent() {
    let x = planted_tensor([12, 12, 12], 3, 0.3, 103);
    let cluster = Cluster::new(ClusterConfig::with_workers(2));
    let config = DbtfConfig {
        rank: 3,
        max_iters: 6,
        initial_sets: 2,
        seed: 3,
        ..DbtfConfig::default()
    };
    let result = factorize(&cluster, &x, &config).unwrap();
    for w in result.iteration_errors.windows(2) {
        assert!(
            w[1] <= w[0],
            "errors increased: {:?}",
            result.iteration_errors
        );
    }
    assert_eq!(result.factors.error(&x) as u64, result.error);
    assert_eq!(result.iterations, result.iteration_errors.len());
}

/// An exactly rank-R tensor is recovered exactly (error 0) for at least
/// some seeds, and convergence is flagged.
#[test]
fn exact_recovery_on_planted_blocks() {
    let mut entries = Vec::new();
    for i in 0..5u32 {
        for j in 0..5u32 {
            for k in 0..5u32 {
                entries.push([i, j, k]);
                entries.push([i + 6, j + 6, k + 6]);
            }
        }
    }
    let x = BoolTensor::from_entries([11, 11, 11], entries);
    let cluster = Cluster::new(ClusterConfig::with_workers(2));
    let config = DbtfConfig {
        rank: 2,
        initial_sets: 8,
        seed: 0,
        ..DbtfConfig::default()
    };
    let result = factorize(&cluster, &x, &config).unwrap();
    assert_eq!(result.error, 0);
    assert!(result.converged);
}

/// The Lemma 6/7 communication shapes: the shuffle is O(|X|) and happens
/// once; per-iteration traffic is broadcasts plus per-column collections.
#[test]
fn communication_metering_shapes() {
    let x = random_tensor([10, 10, 10], 0.1, 104);
    let cluster = Cluster::new(ClusterConfig::with_workers(4));
    let config = DbtfConfig {
        rank: 4,
        max_iters: 2,
        convergence_threshold: -1.0,
        seed: 1,
        ..DbtfConfig::default()
    };
    let result = factorize(&cluster, &x, &config).unwrap();
    let comm = &result.stats.comm;
    // The shuffle moved each unfolding once: roughly 3 × partition bytes.
    assert_eq!(comm.bytes_shuffled, result.stats.partition_bytes);
    assert!(comm.bytes_shuffled >= 3 * x.nnz() as u64 * 4);
    // Broadcast and collection happened every iteration.
    assert!(comm.bytes_broadcast > 0);
    assert!(comm.bytes_collected > 0);
    assert!(comm.supersteps as usize >= config.rank * 3 * result.iterations);
    assert!(result.stats.virtual_secs > 0.0);
    assert!(result.stats.peak_cache_bytes > 0);
}

/// Rejects invalid configurations and empty tensors.
#[test]
fn error_paths() {
    let cluster = Cluster::new(ClusterConfig::with_workers(1));
    let x = random_tensor([4, 4, 4], 0.2, 105);
    let bad = DbtfConfig {
        rank: 0,
        ..DbtfConfig::default()
    };
    assert!(factorize(&cluster, &x, &bad).is_err());
    let empty = BoolTensor::empty([0, 4, 4]);
    assert!(factorize(&cluster, &empty, &DbtfConfig::default()).is_err());
}

/// Distributed Tucker ≡ sequential Tucker, bit-for-bit, across cluster
/// shapes — the union-of-masks cache reuse and the superstep-per-entry
/// core update must reproduce the sequential greedy exactly.
#[test]
fn distributed_tucker_matches_sequential() {
    use dbtf::tucker::{tucker_factorize, TuckerConfig};
    use dbtf::tucker_distributed::tucker_factorize_distributed;
    for (x, ranks) in [
        (random_tensor([8, 9, 7], 0.2, 200), [2usize, 3, 2]),
        (planted_tensor([10, 10, 10], 3, 0.3, 201), [3, 3, 3]),
    ] {
        let config = TuckerConfig {
            ranks,
            max_iters: 3,
            initial_sets: 2,
            seed: 13,
            ..TuckerConfig::default()
        };
        let sequential = tucker_factorize(&x, &config).unwrap();
        for workers in [1usize, 3] {
            let cluster = Cluster::new(ClusterConfig::with_workers(workers));
            let distributed = tucker_factorize_distributed(&cluster, &x, &config).unwrap();
            assert_eq!(
                distributed.factorization, sequential.factorization,
                "workers = {workers}, ranks = {ranks:?}"
            );
            assert_eq!(distributed.iteration_errors, sequential.iteration_errors);
        }
    }
}

/// Distributed Tucker with an inner rank above the cache group limit
/// (V = 15): the multi-group fetch path must also match the sequential
/// implementation.
#[test]
fn distributed_tucker_multigroup_cache() {
    use dbtf::tucker::{tucker_factorize, TuckerConfig};
    use dbtf::tucker_distributed::tucker_factorize_distributed;
    let x = random_tensor([7, 12, 8], 0.25, 203);
    let config = TuckerConfig {
        ranks: [3, 17, 3], // R₂ = 17 > V: mode-1 updates use two group tables
        max_iters: 2,
        seed: 21,
        ..TuckerConfig::default()
    };
    let sequential = tucker_factorize(&x, &config).unwrap();
    let cluster = Cluster::new(ClusterConfig::with_workers(2));
    let distributed = tucker_factorize_distributed(&cluster, &x, &config).unwrap();
    assert_eq!(distributed.factorization, sequential.factorization);
    assert_eq!(distributed.error, sequential.error);
}

/// Distributed Tucker input validation.
#[test]
fn distributed_tucker_error_paths() {
    use dbtf::tucker::TuckerConfig;
    use dbtf::tucker_distributed::tucker_factorize_distributed;
    let cluster = Cluster::new(ClusterConfig::with_workers(1));
    let x = random_tensor([4, 4, 4], 0.2, 202);
    let too_big = TuckerConfig {
        ranks: [65, 2, 2],
        ..TuckerConfig::default()
    };
    assert!(tucker_factorize_distributed(&cluster, &x, &too_big).is_err());
    let empty = BoolTensor::empty([0, 2, 2]);
    assert!(tucker_factorize_distributed(&cluster, &empty, &TuckerConfig::default()).is_err());
}

/// An all-zero tensor factorizes to all-zero factors with zero error.
#[test]
fn all_zero_tensor() {
    let x = BoolTensor::empty([5, 5, 5]);
    let cluster = Cluster::new(ClusterConfig::with_workers(2));
    let config = DbtfConfig {
        rank: 2,
        seed: 0,
        ..DbtfConfig::default()
    };
    let result = factorize(&cluster, &x, &config).unwrap();
    assert_eq!(result.error, 0);
    assert_eq!(result.relative_error, 0.0);
    assert_eq!(result.factors.total_ones(), 0);
}
