//! Property-based tests for the DBTF core: the distributed implementation
//! is equivalent to the sequential reference for *arbitrary* tensors,
//! cluster shapes, partitionings and cache groupings; partitioning and
//! caching invariants hold for arbitrary geometry.

use dbtf::cache::{GroupLayout, RowSumCache};
use dbtf::partition::{partition_unfolding, BlockKind};
use dbtf::reference::factorize_reference;
use dbtf::{factorize, DbtfConfig};
use dbtf_cluster::{Cluster, ClusterConfig};
use dbtf_tensor::ops::or_selected_rows;
use dbtf_tensor::{BitMatrix, BitVec, BoolTensor, Mode, Unfolding};
use proptest::prelude::*;

fn tensor_strategy(max_dim: usize, max_entries: usize) -> impl Strategy<Value = BoolTensor> {
    (2..=max_dim, 2..=max_dim, 2..=max_dim).prop_flat_map(move |(i, j, k)| {
        proptest::collection::vec(
            (0..i as u32, 0..j as u32, 0..k as u32).prop_map(|(a, b, c)| [a, b, c]),
            1..=max_entries,
        )
        .prop_map(move |entries| BoolTensor::from_entries([i, j, k], entries))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline invariant: distributed ≡ sequential reference,
    /// bit-for-bit, whatever the tensor, worker count, partition count,
    /// cache grouping and rank.
    #[test]
    fn distributed_equals_reference(
        x in tensor_strategy(9, 60),
        workers in 1usize..4,
        partitions in 1usize..12,
        v in 1usize..6,
        rank in 1usize..5,
        seed in 0u64..50,
    ) {
        let config = DbtfConfig {
            rank,
            max_iters: 2,
            cache_group_limit: v,
            partitions: Some(partitions),
            seed,
            ..DbtfConfig::default()
        };
        let reference = factorize_reference(&x, &config).unwrap();
        let cluster = Cluster::new(ClusterConfig::with_workers(workers));
        let result = factorize(&cluster, &x, &config).unwrap();
        prop_assert_eq!(&result.factors, &reference.factors);
        prop_assert_eq!(result.iteration_errors, reference.iteration_errors);
        // And the reported error is real.
        prop_assert_eq!(result.factors.error(&x) as u64, result.error);
    }

    /// Iteration errors are monotone non-increasing for any input.
    #[test]
    fn errors_never_increase(
        x in tensor_strategy(8, 50),
        seed in 0u64..20,
    ) {
        let config = DbtfConfig {
            rank: 3,
            max_iters: 4,
            seed,
            ..DbtfConfig::default()
        };
        let result = factorize_reference(&x, &config).unwrap();
        for w in result.iteration_errors.windows(2) {
            prop_assert!(w[1] <= w[0]);
        }
    }

    /// Partition blocks tile the column range exactly, never cross slab
    /// boundaries, respect Lemma 3, and preserve every non-zero — for any
    /// tensor shape, mode and partition count.
    #[test]
    fn partition_invariants(
        x in tensor_strategy(10, 80),
        n in 1usize..20,
    ) {
        for mode in Mode::ALL {
            let u = Unfolding::new(&x, mode);
            let s = mode.slab_width(x.dims()) as u64;
            let parts = partition_unfolding(&u, n);
            prop_assert_eq!(parts.len(), n);
            let mut pos = 0u64;
            let mut total_nnz = 0usize;
            for p in &parts {
                prop_assert_eq!(p.col_lo, pos);
                pos = p.col_hi;
                total_nnz += p.nnz();
                let mut bpos = p.col_lo;
                let kinds: Vec<BlockKind> = p.blocks.iter().map(|b| b.kind).collect();
                for b in &p.blocks {
                    let lo = b.slab as u64 * s + b.inner_lo as u64;
                    prop_assert_eq!(lo, bpos);
                    prop_assert!(b.inner_lo as u64 + b.inner_len as u64 <= s);
                    bpos = lo + b.inner_len as u64;
                }
                prop_assert_eq!(bpos, p.col_hi);
                // Lemma 3: at most three block types per partition.
                let distinct: std::collections::HashSet<_> = kinds.iter().collect();
                prop_assert!(distinct.len() <= 3);
            }
            prop_assert_eq!(pos, u.ncols());
            prop_assert_eq!(total_nnz, u.nnz());
        }
    }

    /// Cache fetches equal naive row summations for any rank, grouping and
    /// slab width — including the sliced caches of edge blocks.
    #[test]
    fn cache_equals_naive(
        rank in 1usize..9,
        v in 1usize..9,
        s in 1usize..40,
        density in 0.05f64..0.8,
        seed in 0u64..1000,
        slice_frac in 0.0f64..1.0,
    ) {
        use rand::{SeedableRng, rngs::StdRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let ms = BitMatrix::random(s, rank, density, &mut rng);
        let mst = ms.transpose();
        let layout = GroupLayout::new(rank, v);
        let cache = RowSumCache::build(&ms, &layout);
        let mut scratch = vec![0u64; s.div_ceil(64)];
        for mask in 0u64..(1 << rank).min(64) {
            let mut keys = vec![0u64; layout.num_groups()];
            for (g, key) in keys.iter_mut().enumerate() {
                let (first, bits) = layout.group(g);
                *key = (mask >> first) & ((1u64 << bits) - 1);
            }
            let pop = cache.fetch_or(&keys, &mut scratch);
            let expect = or_selected_rows(&mst, &BitVec::from_words(rank, vec![mask]));
            prop_assert_eq!(BitVec::from_words(s, scratch.clone()), expect.clone());
            prop_assert_eq!(pop as usize, expect.count_ones());
        }
        // A random vertical slice agrees entry-wise with slicing rows.
        let lo = ((s as f64) * slice_frac * 0.5) as usize;
        let len = s - lo;
        let sliced = cache.slice(lo, len);
        for mask in 0u64..(1 << rank).min(16) {
            let mut keys = vec![0u64; layout.num_groups()];
            for (g, key) in keys.iter_mut().enumerate() {
                let (first, bits) = layout.group(g);
                *key = (mask >> first) & ((1u64 << bits) - 1);
            }
            let mut sl_scratch = vec![0u64; len.div_ceil(64).max(1)];
            sliced.fetch_or(&keys, &mut sl_scratch);
            let full = or_selected_rows(&mst, &BitVec::from_words(rank, vec![mask]));
            prop_assert_eq!(BitVec::from_words(len, sl_scratch), full.slice(lo, len));
        }
    }
}
