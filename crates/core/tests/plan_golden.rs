//! Golden determinism tests for span traces.
//!
//! The telemetry contract (DESIGN.md §1.2.4) has two layers:
//!
//! - the **virtual-axis fingerprint** (span structure plus the exact f64
//!   bits of every virtual timestamp) is invariant across real
//!   `compute_threads` settings on the same backend — threads change host
//!   wall-clock only, never the simulated timeline;
//! - the **structural fingerprint** (spans, parents, workers, partitions,
//!   op counts — no timestamps) is additionally invariant across
//!   execution backends, whose virtual clocks legitimately differ (the
//!   local backend charges no network time).

use dbtf::tucker::TuckerConfig;
use dbtf::tucker_distributed::tucker_factorize_distributed_instrumented;
use dbtf::{factorize_instrumented, DbtfConfig};
use dbtf_cluster::{Cluster, ClusterConfig, ExecutionBackend, LocalBackend};
use dbtf_telemetry::{SpanKind, TraceLog, Tracer};
use dbtf_tensor::BoolTensor;

fn tensor() -> BoolTensor {
    dbtf_datagen::uniform_random([12, 12, 12], 0.15, 7)
}

fn cp_config() -> DbtfConfig {
    DbtfConfig {
        rank: 3,
        max_iters: 2,
        initial_sets: 2,
        seed: 42,
        ..DbtfConfig::default()
    }
}

fn cp_trace<B: ExecutionBackend>(backend: &B) -> TraceLog {
    let tracer = Tracer::enabled();
    factorize_instrumented(backend, &tensor(), &cp_config(), &tracer).expect("factorize");
    tracer.finish()
}

fn cluster_with_threads(threads: usize) -> Cluster {
    Cluster::new(ClusterConfig {
        workers: 4,
        compute_threads: Some(threads),
        ..ClusterConfig::default()
    })
}

#[test]
fn cp_trace_virtual_fingerprint_invariant_across_compute_threads() {
    let t1 = cp_trace(&cluster_with_threads(1));
    let t4 = cp_trace(&cluster_with_threads(4));
    assert!(
        t1.spans.iter().any(|s| s.kind == SpanKind::Kernel),
        "trace must reach kernel depth"
    );
    assert_eq!(
        t1.fingerprint_virtual(),
        t4.fingerprint_virtual(),
        "virtual-axis trace must not depend on the real thread count"
    );
}

/// The same invariant one axis further: superstep pipelining must leave
/// the virtual-axis fingerprint — span structure plus the exact f64 bits
/// of every virtual timestamp — untouched, because deferred merges settle
/// in program order.
#[test]
fn cp_trace_virtual_fingerprint_invariant_across_pipeline_depths() {
    let cluster_with_depth = |depth: usize| {
        Cluster::new(ClusterConfig {
            workers: 4,
            compute_threads: Some(2),
            pipeline_depth: Some(depth),
            ..ClusterConfig::default()
        })
    };
    let baseline = cp_trace(&cluster_with_depth(1));
    for depth in [2usize, 4] {
        let traced = cp_trace(&cluster_with_depth(depth));
        assert_eq!(
            baseline.fingerprint_virtual(),
            traced.fingerprint_virtual(),
            "virtual-axis trace must not depend on pipeline depth {depth}"
        );
    }
}

#[test]
fn cp_trace_structure_invariant_across_backends() {
    let cluster_log = cp_trace(&cluster_with_threads(2));
    let local = LocalBackend::new(4, ClusterConfig::default().cores_per_worker);
    let local_log = cp_trace(&local);
    assert_eq!(
        local_log.fingerprint(),
        cluster_log.fingerprint(),
        "span structure (incl. ops, workers, partitions) must be backend-independent"
    );
    // Every level of the hierarchy is present on both backends.
    for kind in [
        SpanKind::Run,
        SpanKind::Phase,
        SpanKind::Operator,
        SpanKind::Superstep,
        SpanKind::Task,
        SpanKind::Kernel,
    ] {
        assert!(
            cluster_log.spans.iter().any(|s| s.kind == kind),
            "missing {kind} spans"
        );
    }
}

#[test]
fn tucker_trace_fingerprints_invariant() {
    let config = TuckerConfig {
        ranks: [2, 2, 2],
        max_iters: 2,
        initial_sets: 1,
        seed: 5,
        ..TuckerConfig::default()
    };
    let x = tensor();
    let run = |backend: &dyn Fn(&Tracer)| {
        let tracer = Tracer::enabled();
        backend(&tracer);
        tracer.finish()
    };
    let t1 = run(&|tracer| {
        let c = cluster_with_threads(1);
        tucker_factorize_distributed_instrumented(&c, &x, &config, tracer).expect("tucker");
    });
    let t4 = run(&|tracer| {
        let c = cluster_with_threads(4);
        tucker_factorize_distributed_instrumented(&c, &x, &config, tracer).expect("tucker");
    });
    let local = run(&|tracer| {
        let l = LocalBackend::new(4, ClusterConfig::default().cores_per_worker);
        tucker_factorize_distributed_instrumented(&l, &x, &config, tracer).expect("tucker");
    });
    assert_eq!(t1.fingerprint_virtual(), t4.fingerprint_virtual());
    assert_eq!(local.fingerprint(), t1.fingerprint());
    assert!(t1.spans.iter().any(|s| s.kind == SpanKind::Task));
}

#[test]
fn disabled_tracer_records_nothing_and_results_match() {
    let tracer = Tracer::disabled();
    let cluster = cluster_with_threads(2);
    let (instrumented, _) =
        factorize_instrumented(&cluster, &tensor(), &cp_config(), &tracer).expect("factorize");
    assert!(tracer.finish().spans.is_empty());

    let cluster2 = cluster_with_threads(2);
    let plain = dbtf::factorize(&cluster2, &tensor(), &cp_config()).expect("factorize");
    assert_eq!(instrumented.factors, plain.factors);
    assert_eq!(instrumented.error, plain.error);
    // Tracing never perturbs the virtual clock: exact f64 bits.
    assert_eq!(
        instrumented.stats.virtual_secs.to_bits(),
        plain.stats.virtual_secs.to_bits()
    );

    // Same holds with tracing *enabled* — capture is observation-only.
    let enabled = Tracer::enabled();
    let cluster3 = cluster_with_threads(2);
    let (traced, _) =
        factorize_instrumented(&cluster3, &tensor(), &cp_config(), &enabled).expect("factorize");
    assert_eq!(
        traced.stats.virtual_secs.to_bits(),
        plain.stats.virtual_secs.to_bits()
    );
    assert_eq!(traced.error, plain.error);
}
