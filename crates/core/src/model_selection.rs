//! Rank selection for Boolean CP factorizations.
//!
//! The Boolean rank of a tensor is NP-hard even to approximate, and the
//! paper (like its baselines) takes the target rank `R` as an input. In
//! practice a user has to pick it; the standard tool in the Boolean
//! factorization literature (e.g. Walk'n'Merge's ordering step) is the
//! **MDL principle**: choose the rank minimizing the total description
//! length of the model plus the error it leaves unexplained.
//!
//! We use the crude-but-effective two-part code common in Boolean matrix
//! factorization work:
//!
//! ```text
//! DL(R) = L(factors) + L(error)
//! L(factors) = Σ_r (|a_r|·log₂ I + |b_r|·log₂ J + |c_r|·log₂ K)   (index lists)
//! L(error)   = |X ⊕ X̃| · log₂(I·J·K)                              (cell list)
//! ```
//!
//! Sparse factors are cheap, every uncorrected cell costs one coordinate —
//! so extra components pay for themselves only while they remove more
//! error than they add model. The minimum over a candidate sweep is a
//! principled rank estimate.

use dbtf_cluster::ExecutionBackend;
use dbtf_tensor::BoolTensor;
use serde::{Deserialize, Serialize};

use crate::config::{DbtfConfig, DbtfError};
use crate::driver::factorize;
use crate::factors::FactorSet;

/// One candidate rank's outcome in a [`select_rank`] sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RankCandidate {
    /// The rank tried.
    pub rank: usize,
    /// Reconstruction error at that rank.
    pub error: u64,
    /// Description length in bits (lower is better).
    pub description_length: f64,
}

/// Outcome of a rank-selection sweep.
#[derive(Clone, Debug)]
pub struct RankSelection {
    /// Every candidate, in sweep order.
    pub candidates: Vec<RankCandidate>,
    /// The MDL-optimal rank.
    pub best_rank: usize,
    /// The factorization at the best rank.
    pub best: FactorSet,
}

/// Description length (bits) of a factor set plus its residual error on
/// `x` (see the module docs for the code).
pub fn description_length(x: &BoolTensor, factors: &FactorSet) -> f64 {
    let [i, j, k] = x.dims();
    let (li, lj, lk) = (
        (i.max(2) as f64).log2(),
        (j.max(2) as f64).log2(),
        (k.max(2) as f64).log2(),
    );
    let cell_bits = li + lj + lk;
    let model = factors.a.count_ones() as f64 * li
        + factors.b.count_ones() as f64 * lj
        + factors.c.count_ones() as f64 * lk;
    let error = factors.error(x) as f64 * cell_bits;
    model + error
}

/// Factorizes `x` at each candidate rank and returns the MDL-optimal one.
///
/// Each candidate reuses `base` with only the rank replaced, so the sweep
/// is deterministic and comparable. Candidates must be non-empty and
/// non-zero.
pub fn select_rank<B: ExecutionBackend>(
    backend: &B,
    x: &BoolTensor,
    candidate_ranks: &[usize],
    base: &DbtfConfig,
) -> Result<RankSelection, DbtfError> {
    if candidate_ranks.is_empty() {
        return Err(DbtfError::InvalidConfig(
            "need at least one candidate rank".into(),
        ));
    }
    let mut candidates = Vec::with_capacity(candidate_ranks.len());
    let mut best: Option<(f64, usize, FactorSet)> = None;
    for &rank in candidate_ranks {
        let config = DbtfConfig {
            rank,
            ..base.clone()
        };
        let result = factorize(backend, x, &config)?;
        let dl = description_length(x, &result.factors);
        candidates.push(RankCandidate {
            rank,
            error: result.error,
            description_length: dl,
        });
        if best.as_ref().is_none_or(|(bdl, _, _)| dl < *bdl) {
            best = Some((dl, rank, result.factors));
        }
    }
    let (_, best_rank, best) = best.expect("at least one candidate");
    Ok(RankSelection {
        candidates,
        best_rank,
        best,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtf_cluster::{Cluster, ClusterConfig};
    use dbtf_tensor::BitMatrix;

    fn block_tensor(nblocks: usize) -> BoolTensor {
        let mut entries = Vec::new();
        for b in 0..nblocks as u32 {
            let base = b * 5;
            for i in 0..4u32 {
                for j in 0..4u32 {
                    for k in 0..4u32 {
                        entries.push([base + i, base + j, base + k]);
                    }
                }
            }
        }
        let dim = nblocks * 5;
        BoolTensor::from_entries([dim, dim, dim], entries)
    }

    #[test]
    fn description_length_prefers_exact_sparse_models() {
        let x = block_tensor(2);
        // Exact rank-2 model.
        let dim = x.dims()[0];
        let mut a = BitMatrix::zeros(dim, 2);
        for b in 0..2 {
            for i in 0..4 {
                a.set(b * 5 + i, b, true);
            }
        }
        let exact = FactorSet {
            a: a.clone(),
            b: a.clone(),
            c: a.clone(),
        };
        assert_eq!(exact.error(&x), 0);
        // The empty model pays for every uncovered one.
        let empty = FactorSet {
            a: BitMatrix::zeros(dim, 2),
            b: BitMatrix::zeros(dim, 2),
            c: BitMatrix::zeros(dim, 2),
        };
        assert!(
            description_length(&x, &exact) < description_length(&x, &empty),
            "exact model must beat the empty model"
        );
    }

    #[test]
    fn select_rank_finds_the_planted_rank() {
        let x = block_tensor(3);
        let cluster = Cluster::new(ClusterConfig::with_workers(2));
        let base = DbtfConfig {
            initial_sets: 10,
            seed: 1,
            ..DbtfConfig::default()
        };
        let sel = select_rank(&cluster, &x, &[1, 2, 3, 5], &base).unwrap();
        assert_eq!(sel.best_rank, 3, "candidates: {:#?}", sel.candidates);
        assert_eq!(sel.best.error(&x), 0);
        // DL at the planted rank must be the sweep minimum.
        let best_dl = sel
            .candidates
            .iter()
            .map(|c| c.description_length)
            .fold(f64::INFINITY, f64::min);
        let at3 = sel
            .candidates
            .iter()
            .find(|c| c.rank == 3)
            .unwrap()
            .description_length;
        assert_eq!(at3, best_dl);
    }

    #[test]
    fn rejects_empty_candidates() {
        let x = block_tensor(1);
        let cluster = Cluster::new(ClusterConfig::with_workers(1));
        assert!(select_rank(&cluster, &x, &[], &DbtfConfig::default()).is_err());
    }
}
