//! Boolean Tucker decomposition — the extension the DBTF line of work
//! grew into (the journal version of the paper generalizes the framework
//! from Boolean CP to Boolean Tucker).
//!
//! A Boolean Tucker decomposition of `X ∈ B^{I×J×K}` is a binary *core
//! tensor* `G ∈ B^{R₁×R₂×R₃}` plus three binary factor matrices
//! `A ∈ B^{I×R₁}`, `B ∈ B^{J×R₂}`, `C ∈ B^{K×R₃}` with
//!
//! ```text
//! x̃_ijk = ⋁_{p,q,r} g_pqr ∧ a_ip ∧ b_jq ∧ c_kr .
//! ```
//!
//! Boolean CP is the special case `R₁ = R₂ = R₃ = R` with a superdiagonal
//! core; Tucker can express interactions between factor columns with far
//! fewer factor columns per mode.
//!
//! The solver is the same alternating greedy framework as the CP path:
//!
//! - **Factor updates** reduce to the CP update with the Khatri-Rao rows
//!   replaced by per-column *patterns* assembled from the core: for mode 1,
//!   `pattern_p = ⋁_{(q,r): g_pqr} c_{:r} ⊗ b_{:q}` — updating `a_ip`
//!   toggles `pattern_p` in row `i` of `X_(1)`'s reconstruction. Rows are
//!   scored greedily per column, restricted to the pattern's support
//!   (cells outside it contribute equally to both candidates).
//! - **Core updates** flip each `g_pqr` greedily, maintaining a sparse
//!   cover-count over the reconstruction so the error delta of a flip is
//!   exact (a cell leaves the reconstruction only when its count drops to
//!   zero — Boolean sums don't subtract).
//!
//! This module is the single-machine implementation; the distributed
//! driver lives in [`crate::tucker_distributed`] and reproduces it
//! bit-for-bit on the cluster engine. Both reuse the same initialization
//! and convergence conventions as [`crate::factorize`] so results are
//! comparable.

use dbtf_tensor::{BitMatrix, BitVec, BoolTensor, Mode, TensorBuilder, Unfolding};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::config::DbtfError;

/// Configuration of a Boolean Tucker run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TuckerConfig {
    /// Core ranks `[R₁, R₂, R₃]` (factor column counts per mode).
    pub ranks: [usize; 3],
    /// Maximum ALS iterations.
    pub max_iters: usize,
    /// Stop when the error change is at most `threshold × |X|`.
    pub convergence_threshold: f64,
    /// Number of random initial sets; the best after one iteration is kept.
    pub initial_sets: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TuckerConfig {
    fn default() -> Self {
        TuckerConfig {
            ranks: [4, 4, 4],
            max_iters: 10,
            convergence_threshold: 1e-4,
            initial_sets: 1,
            seed: 0,
        }
    }
}

impl TuckerConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), DbtfError> {
        if self.ranks.contains(&0) {
            return Err(DbtfError::InvalidConfig(
                "all core ranks must be at least 1".into(),
            ));
        }
        if self.ranks.iter().any(|&r| r > u16::MAX as usize) {
            return Err(DbtfError::InvalidConfig("core ranks too large".into()));
        }
        if self.max_iters == 0 {
            return Err(DbtfError::InvalidConfig("max_iters must be ≥ 1".into()));
        }
        if self.initial_sets == 0 {
            return Err(DbtfError::InvalidConfig("initial_sets must be ≥ 1".into()));
        }
        Ok(())
    }
}

/// A Boolean Tucker factorization: core plus factors.
#[derive(Clone, Debug, PartialEq)]
pub struct TuckerFactorization {
    /// The binary core tensor `G ∈ B^{R₁×R₂×R₃}`.
    pub core: BoolTensor,
    /// Mode-1 factor `A ∈ B^{I×R₁}`.
    pub a: BitMatrix,
    /// Mode-2 factor `B ∈ B^{J×R₂}`.
    pub b: BitMatrix,
    /// Mode-3 factor `C ∈ B^{K×R₃}`.
    pub c: BitMatrix,
}

impl TuckerFactorization {
    /// Materializes the Boolean reconstruction
    /// `x̃_ijk = ⋁_{p,q,r} g_pqr ∧ a_ip ∧ b_jq ∧ c_kr`.
    pub fn reconstruct(&self) -> BoolTensor {
        let mut builder = TensorBuilder::new([self.a.rows(), self.b.rows(), self.c.rows()]);
        for [p, q, r] in self.core.iter() {
            let is: Vec<usize> = self.a.column(p as usize).iter_ones().collect();
            let js: Vec<usize> = self.b.column(q as usize).iter_ones().collect();
            let ks: Vec<usize> = self.c.column(r as usize).iter_ones().collect();
            for &i in &is {
                for &j in &js {
                    for &k in &ks {
                        builder.insert(i as u32, j as u32, k as u32);
                    }
                }
            }
        }
        builder.build()
    }

    /// Reconstruction error `|X ⊕ X̃|`.
    pub fn error(&self, x: &BoolTensor) -> u64 {
        x.xor_count(&self.reconstruct()) as u64
    }

    /// Total ones across core and factors (model complexity diagnostic).
    pub fn total_ones(&self) -> usize {
        self.core.nnz() + self.a.count_ones() + self.b.count_ones() + self.c.count_ones()
    }
}

/// Outcome of [`tucker_factorize`].
#[derive(Clone, Debug)]
pub struct TuckerResult {
    /// The best factorization found.
    pub factorization: TuckerFactorization,
    /// Final reconstruction error `|X ⊕ X̃|`.
    pub error: u64,
    /// `error / |X|`.
    pub relative_error: f64,
    /// Error after each iteration.
    pub iteration_errors: Vec<u64>,
    /// Whether the convergence criterion fired.
    pub converged: bool,
    /// Iterations executed.
    pub iterations: usize,
}

/// Boolean Tucker-factorizes `x` with alternating greedy updates of
/// `A`, `B`, `C` and the core `G`.
///
/// # Errors
///
/// [`DbtfError::InvalidConfig`] for bad configurations,
/// [`DbtfError::EmptyTensor`] for zero-sized modes.
pub fn tucker_factorize(x: &BoolTensor, config: &TuckerConfig) -> Result<TuckerResult, DbtfError> {
    config.validate()?;
    let dims = x.dims();
    if dims.contains(&0) {
        return Err(DbtfError::EmptyTensor);
    }
    let unf1 = Unfolding::new(x, Mode::One);
    let unf2 = Unfolding::new(x, Mode::Two);
    let unf3 = Unfolding::new(x, Mode::Three);

    let mut best: Option<(TuckerFactorization, u64)> = None;
    for l in 0..config.initial_sets {
        let mut rng = StdRng::seed_from_u64(
            config.seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(l as u64 + 1),
        );
        let set = init_set(x, config, &mut rng);
        let (set, error) = update_round(x, &unf1, &unf2, &unf3, set);
        if best.as_ref().is_none_or(|(_, be)| error < *be) {
            best = Some((set, error));
        }
    }
    let (mut factorization, mut error) = best.expect("initial_sets ≥ 1");
    let mut iteration_errors = vec![error];
    let mut converged = error == 0;
    let threshold = config.convergence_threshold * x.nnz().max(1) as f64;
    for t in 2..=config.max_iters {
        if converged {
            break;
        }
        // Revive dead components before the round: an all-zero factor
        // column is an absorbing state (every core block through it is
        // empty, so neither the factor nor the core update can bring it
        // back). Reviving may transiently hurt, so the round's result is
        // kept only if it does not regress — reported errors stay
        // monotone.
        let mut rng = StdRng::seed_from_u64(config.seed ^ (t as u64).wrapping_mul(0xc0de));
        let revived = revive_dead_components(x, factorization.clone(), &mut rng);
        let (next, next_error) = update_round(x, &unf1, &unf2, &unf3, revived);
        if next_error > error {
            // This revival hurt: discard it and try a different
            // perturbation next iteration (the revival RNG is re-seeded
            // per iteration). Reported errors stay monotone.
            iteration_errors.push(error);
            continue;
        }
        let delta = error.abs_diff(next_error) as f64;
        let stalled = next == factorization;
        factorization = next;
        error = next_error;
        iteration_errors.push(error);
        if (delta <= threshold && stalled) || error == 0 {
            converged = true;
        }
    }
    let relative_error = if x.nnz() == 0 {
        if error == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        error as f64 / x.nnz() as f64
    };
    Ok(TuckerResult {
        iterations: iteration_errors.len(),
        converged,
        relative_error,
        error,
        factorization,
        iteration_errors,
    })
}

/// Fiber-sampled initialization (mirrors the CP path's default): `B`/`C`
/// columns seeded from fibers through random non-zeros, `A` zero, core
/// superdiagonal-ish (`g_{p, p mod R₂, p mod R₃} = 1` plus a sprinkle of
/// random couplings) so the first iteration behaves like CP and later
/// core updates discover cross-column interactions.
pub(crate) fn init_set(
    x: &BoolTensor,
    config: &TuckerConfig,
    rng: &mut StdRng,
) -> TuckerFactorization {
    let dims = x.dims();
    let [r1, r2, r3] = config.ranks;
    let mut b = BitMatrix::zeros(dims[1], r2);
    let mut c = BitMatrix::zeros(dims[2], r3);
    let entries = x.entries();
    if !entries.is_empty() {
        // Diverse sampling: re-draw (a few times) when a sampled fiber
        // duplicates an existing column — with few columns per mode,
        // duplicated seeds waste expressiveness the core can never
        // recover (e.g. two identical B columns can only reach half the
        // group interactions of a blocky tensor).
        for col in 0..r2.max(r3) {
            'attempts: for attempt in 0..8 {
                let [i, j, k] = entries[rng.gen_range(0..entries.len())];
                let lo = entries.partition_point(|e| e[0] < i);
                let hi = entries.partition_point(|e| e[0] <= i);
                let mut b_col = BitVec::zeros(dims[1]);
                let mut c_col = BitVec::zeros(dims[2]);
                for e in &entries[lo..hi] {
                    if e[2] == k {
                        b_col.set(e[1] as usize, true);
                    }
                    if e[1] == j {
                        c_col.set(e[2] as usize, true);
                    }
                }
                let dup = (0..col).any(|p| {
                    (col < r2 && p < r2 && b.column(p) == b_col)
                        || (col < r3 && p < r3 && c.column(p) == c_col)
                });
                if dup && attempt < 7 {
                    continue 'attempts;
                }
                if col < r2 {
                    for j2 in b_col.iter_ones() {
                        b.set(j2, col, true);
                    }
                }
                if col < r3 {
                    for k2 in c_col.iter_ones() {
                        c.set(k2, col, true);
                    }
                }
                break 'attempts;
            }
        }
    }
    let mut core_entries = Vec::new();
    for p in 0..r1 {
        core_entries.push([p as u32, (p % r2) as u32, (p % r3) as u32]);
    }
    // A few random couplings to let the core explore off-diagonal terms.
    for _ in 0..(r1 * r2 * r3 / 8).max(1) {
        core_entries.push([
            rng.gen_range(0..r1 as u32),
            rng.gen_range(0..r2 as u32),
            rng.gen_range(0..r3 as u32),
        ]);
    }
    TuckerFactorization {
        core: BoolTensor::from_entries([r1, r2, r3], core_entries),
        a: BitMatrix::zeros(dims[0], r1),
        b,
        c,
    }
}

/// Re-seeds *useless* factor columns — all-zero columns (absorbing: every
/// core block through them is empty) and duplicates of earlier columns
/// (redundant: they can only re-express wiring the earlier column already
/// provides) — from random fibers, coupling each revived column into the
/// core so the next round can evaluate it.
pub(crate) fn revive_dead_components(
    x: &BoolTensor,
    mut set: TuckerFactorization,
    rng: &mut StdRng,
) -> TuckerFactorization {
    let entries = x.entries();
    if entries.is_empty() {
        return set;
    }
    let [r1, r2, r3] = set.core.dims();
    let mut new_core: Vec<[u32; 3]> = set.core.iter().collect();
    let mut revived_any = false;
    for mode in 0..3usize {
        let cols = match mode {
            0 => set.a.cols(),
            1 => set.b.cols(),
            _ => set.c.cols(),
        };
        for col in 0..cols {
            let factor = match mode {
                0 => &set.a,
                1 => &set.b,
                _ => &set.c,
            };
            let dead = factor.column(col).count_ones() == 0
                || (0..col).any(|p| factor.column(p) == factor.column(col));
            if !dead {
                continue;
            }
            // Clear a duplicate before re-seeding.
            match mode {
                0 => (0..set.a.rows()).for_each(|r| set.a.set(r, col, false)),
                1 => (0..set.b.rows()).for_each(|r| set.b.set(r, col, false)),
                _ => (0..set.c.rows()).for_each(|r| set.c.set(r, col, false)),
            }
            // Seed from the fiber through a random non-zero along `mode`.
            let [i, j, k] = entries[rng.gen_range(0..entries.len())];
            for e in entries {
                match mode {
                    0 if e[1] == j && e[2] == k => set.a.set(e[0] as usize, col, true),
                    1 if e[0] == i && e[2] == k => set.b.set(e[1] as usize, col, true),
                    2 if e[0] == i && e[1] == j => set.c.set(e[2] as usize, col, true),
                    _ => {}
                }
            }
            // Couple it into the core at a random slot.
            let entry = match mode {
                0 => [
                    col as u32,
                    rng.gen_range(0..r2 as u32),
                    rng.gen_range(0..r3 as u32),
                ],
                1 => [
                    rng.gen_range(0..r1 as u32),
                    col as u32,
                    rng.gen_range(0..r3 as u32),
                ],
                _ => [
                    rng.gen_range(0..r1 as u32),
                    rng.gen_range(0..r2 as u32),
                    col as u32,
                ],
            };
            new_core.push(entry);
            revived_any = true;
        }
    }
    if revived_any {
        set.core = BoolTensor::from_entries([r1, r2, r3], new_core);
    }
    set
}

fn update_round(
    x: &BoolTensor,
    unf1: &Unfolding,
    unf2: &Unfolding,
    unf3: &Unfolding,
    set: TuckerFactorization,
) -> (TuckerFactorization, u64) {
    let TuckerFactorization { core, a, b, c } = set;
    // Core first: newly revived or re-seeded factor columns only become
    // useful once a core entry routes through them — running the (cheap)
    // core update before the factor updates lets the factors then adapt to
    // the new wiring instead of overwriting it.
    let core = update_core(x, &core, &a, &b, &c);
    // Mode-1 patterns live in X_(1)'s column space (j + k·J).
    let a = update_factor(unf1, &a, &patterns_mode1(&core, &b, &c));
    let b = update_factor(unf2, &b, &patterns_mode2(&core, &a, &c));
    let c = update_factor(unf3, &c, &patterns_mode3(&core, &a, &b));
    let core = update_core(x, &core, &a, &b, &c);
    let set = TuckerFactorization { core, a, b, c };
    let error = set.error(x);
    (set, error)
}

/// `pattern_p = ⋁_{(q,r): g_pqr} c_{:r} ⊗ b_{:q}` as a `J·K`-bit row
/// (column `j + k·J` — `X_(1)`'s layout).
fn patterns_mode1(core: &BoolTensor, b: &BitMatrix, c: &BitMatrix) -> Vec<BitVec> {
    let (j_dim, k_dim) = (b.rows(), c.rows());
    let r1 = core.dims()[0];
    let mut patterns = vec![BitVec::zeros(j_dim * k_dim); r1];
    for [p, q, r] in core.iter() {
        let pat = &mut patterns[p as usize];
        for k in c.column(r as usize).iter_ones() {
            for j in b.column(q as usize).iter_ones() {
                pat.set(j + k * j_dim, true);
            }
        }
    }
    patterns
}

/// `pattern_q = ⋁_{(p,r): g_pqr} c_{:r} ⊗ a_{:p}` (`X_(2)`: column `i + k·I`).
fn patterns_mode2(core: &BoolTensor, a: &BitMatrix, c: &BitMatrix) -> Vec<BitVec> {
    let (i_dim, k_dim) = (a.rows(), c.rows());
    let r2 = core.dims()[1];
    let mut patterns = vec![BitVec::zeros(i_dim * k_dim); r2];
    for [p, q, r] in core.iter() {
        let pat = &mut patterns[q as usize];
        for k in c.column(r as usize).iter_ones() {
            for i in a.column(p as usize).iter_ones() {
                pat.set(i + k * i_dim, true);
            }
        }
    }
    patterns
}

/// `pattern_r = ⋁_{(p,q): g_pqr} b_{:q} ⊗ a_{:p}` (`X_(3)`: column `i + j·I`).
fn patterns_mode3(core: &BoolTensor, a: &BitMatrix, b: &BitMatrix) -> Vec<BitVec> {
    let (i_dim, j_dim) = (a.rows(), b.rows());
    let r3 = core.dims()[2];
    let mut patterns = vec![BitVec::zeros(i_dim * j_dim); r3];
    for [p, q, r] in core.iter() {
        let pat = &mut patterns[r as usize];
        for j in b.column(q as usize).iter_ones() {
            for i in a.column(p as usize).iter_ones() {
                pat.set(i + j * i_dim, true);
            }
        }
    }
    patterns
}

/// Greedy per-column factor update against precomputed patterns.
///
/// For each column `p` and row `i`, both candidate values of the factor
/// entry are scored over the support of `pattern_p` (cells outside it
/// reconstruct identically under either candidate, so the comparison is
/// exact), then the whole column is applied at once — the same protocol as
/// the CP update.
fn update_factor(unf: &Unfolding, factor: &BitMatrix, patterns: &[BitVec]) -> BitMatrix {
    let ncols_rank = factor.cols();
    let nrows = factor.rows();
    debug_assert_eq!(patterns.len(), ncols_rank);
    let width = unf.ncols() as usize;
    let mut factor = factor.clone();
    let mut others = BitVec::zeros(width);
    for col in 0..ncols_rank {
        let pattern = &patterns[col];
        if pattern.count_ones() == 0 {
            // Dead pattern: both candidates reconstruct identically; prefer
            // the sparser factor.
            for r in 0..nrows {
                factor.set(r, col, false);
            }
            continue;
        }
        let mut decision = BitVec::zeros(nrows);
        for row in 0..nrows {
            // Reconstruction of this row from the *other* active columns.
            others.clear();
            for (p, other_pat) in patterns.iter().enumerate() {
                if p != col && factor.get(row, p) {
                    others.or_assign(other_pat);
                }
            }
            // Candidate 1 adds `pattern`; candidate 0 doesn't. Restrict the
            // comparison to pattern's support.
            let (mut err0, mut err1) = (0u64, 0u64);
            let actual = unf.row(row);
            // Support cells that are one in X.
            let mut ones_in_support = 0u64;
            let mut ones_covered_by_others = 0u64;
            for &cc in actual {
                if pattern.get(cc as usize) {
                    ones_in_support += 1;
                    if others.get(cc as usize) {
                        ones_covered_by_others += 1;
                    }
                }
            }
            // Support cells covered by `others` (zero or one in X alike).
            let support_covered_by_others = pattern.and_count(&others) as u64;
            let support = pattern.count_ones() as u64;
            // err0: support cells reconstruct as `others` there.
            //   mismatches = (ones in support not covered) +
            //                (covered support cells that are zero in X)
            err0 += ones_in_support - ones_covered_by_others;
            err0 +=
                support_covered_by_others - ones_covered_by_others.min(support_covered_by_others);
            // err1: the whole support reconstructs as 1.
            err1 += support - ones_in_support;
            if err1 < err0 {
                decision.set(row, true);
            }
        }
        for row in 0..nrows {
            factor.set(row, col, decision.get(row));
        }
    }
    factor
}

/// Greedy core update: flip each `g_pqr` if it reduces the error, with a
/// sparse cover-count so deltas are exact under Boolean sums.
fn update_core(
    x: &BoolTensor,
    core: &BoolTensor,
    a: &BitMatrix,
    b: &BitMatrix,
    c: &BitMatrix,
) -> BoolTensor {
    let [r1, r2, r3] = core.dims();
    // cover[cell] = number of active core entries whose block contains it.
    let mut cover: HashMap<[u32; 3], u32> = HashMap::new();
    let block = |p: usize, q: usize, r: usize| -> (Vec<usize>, Vec<usize>, Vec<usize>) {
        (
            a.column(p).iter_ones().collect(),
            b.column(q).iter_ones().collect(),
            c.column(r).iter_ones().collect(),
        )
    };
    let mut active = vec![false; r1 * r2 * r3];
    for [p, q, r] in core.iter() {
        active[(p as usize * r2 + q as usize) * r3 + r as usize] = true;
        let (is, js, ks) = block(p as usize, q as usize, r as usize);
        for &i in &is {
            for &j in &js {
                for &k in &ks {
                    *cover.entry([i as u32, j as u32, k as u32]).or_insert(0) += 1;
                }
            }
        }
    }

    for p in 0..r1 {
        for q in 0..r2 {
            for r in 0..r3 {
                let idx = (p * r2 + q) * r3 + r;
                let (is, js, ks) = block(p, q, r);
                if is.is_empty() || js.is_empty() || ks.is_empty() {
                    // Empty block: flipping it cannot change the error
                    // now, but an active entry may become meaningful once
                    // the factor updates fill its columns (e.g. the
                    // superdiagonal init runs with a still-zero A) — leave
                    // it alone.
                    continue;
                }
                if active[idx] {
                    // Would removing this entry reduce the error? Cells
                    // whose count is exactly 1 leave the reconstruction.
                    let mut delta = 0i64;
                    for &i in &is {
                        for &j in &js {
                            for &k in &ks {
                                let cell = [i as u32, j as u32, k as u32];
                                if cover.get(&cell) == Some(&1) {
                                    delta += if x.contains(cell[0], cell[1], cell[2]) {
                                        1 // losing a correctly covered one
                                    } else {
                                        -1 // dropping an overcover
                                    };
                                }
                            }
                        }
                    }
                    if delta <= 0 {
                        active[idx] = false;
                        for &i in &is {
                            for &j in &js {
                                for &k in &ks {
                                    let cell = [i as u32, j as u32, k as u32];
                                    if let Some(v) = cover.get_mut(&cell) {
                                        *v -= 1;
                                        if *v == 0 {
                                            cover.remove(&cell);
                                        }
                                    }
                                }
                            }
                        }
                    }
                } else {
                    // Would adding this entry reduce the error? Cells with
                    // count 0 join the reconstruction.
                    let mut delta = 0i64;
                    for &i in &is {
                        for &j in &js {
                            for &k in &ks {
                                let cell = [i as u32, j as u32, k as u32];
                                if !cover.contains_key(&cell) {
                                    delta += if x.contains(cell[0], cell[1], cell[2]) {
                                        -1 // newly covering a one
                                    } else {
                                        1 // new overcover
                                    };
                                }
                            }
                        }
                    }
                    if delta < 0 {
                        active[idx] = true;
                        for &i in &is {
                            for &j in &js {
                                for &k in &ks {
                                    *cover.entry([i as u32, j as u32, k as u32]).or_insert(0) += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    let entries: Vec<[u32; 3]> = (0..r1)
        .flat_map(|p| {
            let active = &active;
            (0..r2).flat_map(move |q| {
                (0..r3).filter_map(move |r| {
                    active[(p * r2 + q) * r3 + r].then_some([p as u32, q as u32, r as u32])
                })
            })
        })
        .collect();
    BoolTensor::from_entries([r1, r2, r3], entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn planted_tucker(seed: u64) -> (BoolTensor, TuckerFactorization) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = BitMatrix::random(12, 3, 0.35, &mut rng);
        let b = BitMatrix::random(10, 3, 0.35, &mut rng);
        let c = BitMatrix::random(11, 3, 0.35, &mut rng);
        let core =
            BoolTensor::from_entries([3, 3, 3], vec![[0, 0, 0], [1, 1, 1], [2, 2, 2], [0, 1, 2]]);
        let f = TuckerFactorization { core, a, b, c };
        (f.reconstruct(), f)
    }

    #[test]
    fn reconstruction_matches_definition() {
        let (x, f) = planted_tucker(1);
        // Brute force the Tucker formula.
        for i in 0..12u32 {
            for j in 0..10u32 {
                for k in 0..11u32 {
                    let expect = f.core.iter().any(|[p, q, r]| {
                        f.a.get(i as usize, p as usize)
                            && f.b.get(j as usize, q as usize)
                            && f.c.get(k as usize, r as usize)
                    });
                    assert_eq!(x.contains(i, j, k), expect, "cell ({i},{j},{k})");
                }
            }
        }
        assert_eq!(f.error(&x), 0);
    }

    #[test]
    fn patterns_match_reconstruction_rows() {
        let (x, f) = planted_tucker(2);
        let unf1 = Unfolding::new(&x, Mode::One);
        let patterns = patterns_mode1(&f.core, &f.b, &f.c);
        // Row i of X_(1) must be the OR of patterns selected by a_i:.
        for i in 0..12usize {
            let mut expect = BitVec::zeros((10 * 11) as usize);
            for (p, pattern) in patterns.iter().enumerate().take(3) {
                if f.a.get(i, p) {
                    expect.or_assign(pattern);
                }
            }
            for col in 0..(10 * 11) as u64 {
                assert_eq!(unf1.get(i, col), expect.get(col as usize), "({i}, {col})");
            }
        }
    }

    #[test]
    fn factor_update_is_monotone() {
        let (x, f) = planted_tucker(3);
        let unf1 = Unfolding::new(&x, Mode::One);
        let mut rng = StdRng::seed_from_u64(4);
        let noisy_a = BitMatrix::random(12, 3, 0.5, &mut rng);
        let patterns = patterns_mode1(&f.core, &f.b, &f.c);
        let before = TuckerFactorization {
            a: noisy_a.clone(),
            ..f.clone()
        }
        .error(&x);
        let a2 = update_factor(&unf1, &noisy_a, &patterns);
        let after = TuckerFactorization { a: a2, ..f.clone() }.error(&x);
        assert!(
            after <= before,
            "update worsened the error: {before} → {after}"
        );
    }

    #[test]
    fn factor_update_recovers_planted_factor() {
        let (x, f) = planted_tucker(5);
        let unf1 = Unfolding::new(&x, Mode::One);
        let patterns = patterns_mode1(&f.core, &f.b, &f.c);
        // Starting from zero, with true B, C, G fixed, the update must
        // reach a zero-error A (the planted one is optimal).
        let a0 = BitMatrix::zeros(12, 3);
        let a2 = update_factor(&unf1, &a0, &patterns);
        let err = TuckerFactorization { a: a2, ..f.clone() }.error(&x);
        assert_eq!(err, 0);
    }

    #[test]
    fn core_update_is_monotone_and_prunes() {
        let (x, f) = planted_tucker(6);
        // Start from a full core: the update must prune it back down
        // without increasing the error.
        let full: Vec<[u32; 3]> = (0..3u32)
            .flat_map(|p| (0..3u32).flat_map(move |q| (0..3u32).map(move |r| [p, q, r])))
            .collect();
        let noisy = TuckerFactorization {
            core: BoolTensor::from_entries([3, 3, 3], full),
            ..f.clone()
        };
        let before = noisy.error(&x);
        let core2 = update_core(&x, &noisy.core, &noisy.a, &noisy.b, &noisy.c);
        let after = TuckerFactorization {
            core: core2.clone(),
            ..f.clone()
        }
        .error(&x);
        assert!(after <= before);
        assert!(core2.nnz() < 27, "full core should be pruned");
    }

    #[test]
    fn end_to_end_on_planted_tucker() {
        let (x, _) = planted_tucker(7);
        let config = TuckerConfig {
            ranks: [3, 3, 3],
            initial_sets: 6,
            seed: 1,
            ..TuckerConfig::default()
        };
        let res = tucker_factorize(&x, &config).unwrap();
        // Monotone per-iteration errors and a real improvement over zero.
        for w in res.iteration_errors.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert!(
            (res.error as f64) < 0.8 * x.nnz() as f64,
            "error {} vs |X| {}",
            res.error,
            x.nnz()
        );
        assert_eq!(res.factorization.error(&x), res.error);
    }

    #[test]
    fn tucker_subsumes_cp_blocks() {
        // Two disjoint blocks: Tucker with a 2×2×2 core must match CP.
        let mut entries = Vec::new();
        for i in 0..4u32 {
            for j in 0..4u32 {
                for k in 0..4u32 {
                    entries.push([i, j, k]);
                    entries.push([i + 5, j + 5, k + 5]);
                }
            }
        }
        let x = BoolTensor::from_entries([9, 9, 9], entries);
        let config = TuckerConfig {
            ranks: [2, 2, 2],
            initial_sets: 16,
            seed: 0,
            ..TuckerConfig::default()
        };
        let res = tucker_factorize(&x, &config).unwrap();
        assert_eq!(res.error, 0, "core: {:?}", res.factorization.core);
        assert_eq!(res.factorization.core.nnz(), 2, "one core entry per block");
    }

    #[test]
    fn rejects_bad_configs() {
        let x = BoolTensor::from_entries([2, 2, 2], vec![[0, 0, 0]]);
        let bad = TuckerConfig {
            ranks: [0, 2, 2],
            ..TuckerConfig::default()
        };
        assert!(tucker_factorize(&x, &bad).is_err());
        let empty = BoolTensor::empty([0, 2, 2]);
        assert!(tucker_factorize(&empty, &TuckerConfig::default()).is_err());
    }

    #[test]
    fn empty_tensor_gives_empty_model() {
        let x = BoolTensor::empty([4, 4, 4]);
        let res = tucker_factorize(&x, &TuckerConfig::default()).unwrap();
        assert_eq!(res.error, 0);
        assert_eq!(res.relative_error, 0.0);
    }
}
