//! Out-of-core run support (DESIGN.md §1.2.7).
//!
//! A [`crate::config::StorageKind::Mmap`] run never holds a heap
//! [`dbtf_tensor::Unfolding`]: each mode is spilled once into an on-disk
//! columnar file ([`dbtf_tensor::columnar`]) through the bounded-memory
//! external sort in [`dbtf_tensor::stream`], and the driver partitions the
//! rows through a read-only memory map. This module owns the lifecycle of
//! those files — a uniquely named spill subdirectory created per run and
//! removed when the last handle drops, so lineage-rebuild closures held by
//! the execution backend keep the files alive for exactly as long as a
//! lost partition could still need them.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dbtf_tensor::stream::{write_unfolding_from_entries, SpillConfig, DEFAULT_CHUNK_BYTES};
use dbtf_tensor::{BoolTensor, MmapUnfolding, Mode, StoreError};

use crate::config::DbtfError;

/// Environment variable bounding the external-sort chunk buffer, in MiB.
/// Unset or malformed values fall back to
/// [`dbtf_tensor::stream::DEFAULT_CHUNK_BYTES`]. The buffer bounds *driver*
/// memory during the spill pass; it never affects the bytes written, so
/// results are identical for every budget.
pub const SPILL_BUDGET_ENV: &str = "DBTF_SPILL_BUDGET_MB";

/// Distinguishes concurrent runs sharing one spill directory (and one
/// process — the test suite spins up many runs under a single PID).
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// The sort-buffer size in bytes: `DBTF_SPILL_BUDGET_MB` MiB if set and
/// parseable, the default otherwise.
fn spill_chunk_bytes() -> usize {
    match std::env::var(SPILL_BUDGET_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(mib) if mib > 0 => mib.saturating_mul(1 << 20),
            _ => DEFAULT_CHUNK_BYTES,
        },
        Err(_) => DEFAULT_CHUNK_BYTES,
    }
}

/// A run-scoped spill directory, deleted (best-effort) when dropped.
///
/// Held behind an [`Arc`] by [`RunStores`] and by every mmap lineage
/// rebuild closure, so the files outlive any possible recompute.
#[derive(Debug)]
pub(crate) struct SpillGuard {
    dir: PathBuf,
}

impl SpillGuard {
    /// The directory the spilled unfolding files live in.
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Drop for SpillGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// The three spilled unfolding files of one out-of-core run.
#[derive(Clone, Debug)]
pub(crate) struct RunStores {
    guard: Arc<SpillGuard>,
    paths: [PathBuf; 3],
}

impl RunStores {
    /// Spills all three mode unfoldings of `x` into a fresh subdirectory of
    /// `spill_dir` (the system temporary directory if `None`), one
    /// streaming pass per mode with a bounded sort buffer
    /// ([`SPILL_BUDGET_ENV`]).
    pub(crate) fn build(x: &BoolTensor, spill_dir: Option<&str>) -> Result<RunStores, DbtfError> {
        let base = spill_dir
            .map(PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        let dir = base.join(format!(
            "dbtf-spill-{}-{}",
            std::process::id(),
            RUN_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).map_err(|e| {
            DbtfError::StorageIo(format!("create spill directory {}: {e}", dir.display()))
        })?;
        let guard = Arc::new(SpillGuard { dir });
        let spill = SpillConfig::new(guard.dir()).with_chunk_bytes(spill_chunk_bytes());
        let dims = x.dims();
        let mut paths = Vec::with_capacity(3);
        for mode in Mode::ALL {
            let path = guard
                .dir()
                .join(format!("unfold_{}.dbtfu", mode.index() + 1));
            write_unfolding_from_entries(x.iter().map(Ok), dims, mode, &path, &spill)?;
            paths.push(path);
        }
        Ok(RunStores {
            guard,
            paths: paths.try_into().expect("three modes"),
        })
    }

    /// The file holding mode `mode`'s unfolding.
    pub(crate) fn path(&self, mode: Mode) -> &Path {
        &self.paths[mode.index()]
    }

    /// The spill-directory guard; clone into any closure that may re-open
    /// the files later.
    pub(crate) fn guard(&self) -> Arc<SpillGuard> {
        Arc::clone(&self.guard)
    }

    /// Opens mode `mode`'s unfolding through a read-only map.
    pub(crate) fn open(&self, mode: Mode) -> Result<MmapUnfolding, StoreError> {
        MmapUnfolding::open(self.path(mode))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtf_tensor::{Unfolding, UnfoldingStore};

    fn tiny_tensor() -> BoolTensor {
        let mut entries = Vec::new();
        for i in 0..5u32 {
            for j in 0..4u32 {
                if (i + j) % 2 == 0 {
                    entries.push([i, j, (i * j) % 3]);
                }
            }
        }
        BoolTensor::from_entries([5, 4, 3], entries)
    }

    #[test]
    fn builds_three_openable_unfoldings_matching_heap() {
        let x = tiny_tensor();
        let stores = RunStores::build(&x, None).expect("build");
        for mode in Mode::ALL {
            let mmap = stores.open(mode).expect("open");
            let heap = Unfolding::new(&x, mode);
            assert_eq!(mmap.nrows(), heap.nrows());
            assert_eq!(mmap.nnz(), heap.nnz() as u64);
            for r in 0..heap.nrows() {
                assert_eq!(mmap.row(r), heap.row(r), "mode {mode:?} row {r}");
            }
        }
    }

    #[test]
    fn spill_directory_removed_when_last_guard_drops() {
        let x = tiny_tensor();
        let stores = RunStores::build(&x, None).expect("build");
        let dir = stores.guard().dir().to_path_buf();
        let extra = stores.guard();
        assert!(dir.is_dir());
        drop(stores);
        // A surviving guard (as a lineage closure would hold) keeps the
        // files alive.
        assert!(dir.is_dir());
        drop(extra);
        assert!(!dir.exists());
    }

    #[test]
    fn honors_explicit_spill_dir() {
        let base = std::env::temp_dir().join(format!("dbtf-ooc-base-{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        let x = tiny_tensor();
        let stores = RunStores::build(&x, Some(base.to_str().unwrap())).expect("build");
        assert!(stores.path(Mode::One).starts_with(&base));
        drop(stores);
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn unwritable_spill_dir_is_a_storage_io_error() {
        let x = tiny_tensor();
        let err = RunStores::build(&x, Some("/proc/definitely/not/writable")).unwrap_err();
        assert!(matches!(err, DbtfError::StorageIo(_)), "{err:?}");
    }
}
