//! Run statistics reported by a DBTF factorization.

use dbtf_cluster::MetricsSnapshot;
use serde::{Deserialize, Serialize};

/// Resource accounting for one [`crate::factorize`] run.
///
/// `comm` carries the communication deltas the paper analyses:
/// `bytes_shuffled` is Lemma 6's one-off `O(|X|)` partitioning shuffle;
/// `bytes_broadcast + bytes_collected` is Lemma 7's per-iteration
/// `O(T·I·R·(M + N))` traffic; `total_ops` are the Boolean word operations
/// of Lemma 4.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DbtfStats {
    /// Host wall-clock seconds spent in the run.
    pub wall_secs: f64,
    /// Virtual cluster seconds (the simulated distributed running time —
    /// the quantity the paper's running-time figures report).
    pub virtual_secs: f64,
    /// Communication/compute counter deltas for this run.
    pub comm: MetricsSnapshot,
    /// Number of vertical partitions per unfolded tensor (`N`).
    pub n_partitions: usize,
    /// Bytes of partitioned unfolded tensors resident in worker memory
    /// (the `O(|X|)` term of Lemma 5).
    pub partition_bytes: u64,
    /// Peak bytes of cached row summations across partitions during a
    /// factor update (the `O(N·I·(R/V)·2^(R/⌈R/V⌉))` term of Lemma 5).
    pub peak_cache_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = DbtfStats::default();
        assert_eq!(s.wall_secs, 0.0);
        assert_eq!(s.comm.bytes_shuffled, 0);
        assert_eq!(s.peak_cache_bytes, 0);
    }
}
