//! Factor sets and random initialization.

use dbtf_tensor::reconstruct;
use dbtf_tensor::{BitMatrix, BoolTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::config::{DbtfConfig, InitStrategy};

/// One set of Boolean CP factor matrices `(A ∈ B^{I×R}, B ∈ B^{J×R},
/// C ∈ B^{K×R})`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FactorSet {
    /// Mode-1 factor (`I × R`).
    pub a: BitMatrix,
    /// Mode-2 factor (`J × R`).
    pub b: BitMatrix,
    /// Mode-3 factor (`K × R`).
    pub c: BitMatrix,
}

impl FactorSet {
    /// The rank `R` shared by the three factors.
    pub fn rank(&self) -> usize {
        self.a.cols()
    }

    /// Materializes the Boolean CP reconstruction `⊕_r a_r ∘ b_r ∘ c_r`.
    pub fn reconstruct(&self) -> BoolTensor {
        reconstruct::reconstruct(&self.a, &self.b, &self.c)
    }

    /// Reconstruction error `|X ⊕ X̃|` against an input tensor.
    pub fn error(&self, x: &BoolTensor) -> usize {
        reconstruct::reconstruction_error(x, &self.a, &self.b, &self.c)
    }

    /// Relative reconstruction error `|X ⊕ X̃| / |X|`.
    pub fn relative_error(&self, x: &BoolTensor) -> f64 {
        reconstruct::relative_error(x, &self.a, &self.b, &self.c)
    }

    /// Total ones across the three factors (sparsity diagnostic).
    pub fn total_ones(&self) -> usize {
        self.a.count_ones() + self.b.count_ones() + self.c.count_ones()
    }
}

fn set_rng(config: &DbtfConfig, l: usize) -> StdRng {
    StdRng::seed_from_u64(config.seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(l as u64 + 1))
}

/// Draws the `L` random initial factor sets of Algorithm 2 line 6, using
/// the configured [`InitStrategy`].
///
/// Deterministic in `config.seed`; set `l` uses the substream
/// `seed ⊕ hash(l)` so adding sets never perturbs earlier ones. Both the
/// distributed driver and the sequential reference call this, which is what
/// makes them bit-for-bit comparable.
pub fn initial_factor_sets(x: &BoolTensor, config: &DbtfConfig) -> Vec<FactorSet> {
    match config.init {
        InitStrategy::Random => random_factor_sets(x.dims(), x.density(), config),
        InitStrategy::FiberSample => (0..config.initial_sets)
            .map(|l| fiber_sample_set(x, config, &mut set_rng(config, l)))
            .collect(),
    }
}

/// Uniform-random factor sets (the [`InitStrategy::Random`] ablation): the
/// factor density follows [`DbtfConfig::effective_init_density`].
pub fn random_factor_sets(dims: [usize; 3], density: f64, config: &DbtfConfig) -> Vec<FactorSet> {
    let p = config.effective_init_density(density);
    (0..config.initial_sets)
        .map(|l| {
            let mut rng = set_rng(config, l);
            FactorSet {
                a: BitMatrix::random(dims[0], config.rank, p, &mut rng),
                b: BitMatrix::random(dims[1], config.rank, p, &mut rng),
                c: BitMatrix::random(dims[2], config.rank, p, &mut rng),
            }
        })
        .collect()
}

/// One fiber-sampled factor set: component `r` seeds `b_{:r}` and `c_{:r}`
/// from the fibers through a random non-zero of `X`; `A` starts all-zero
/// (the first `UpdateFactor` call fills it in from the data).
fn fiber_sample_set(x: &BoolTensor, config: &DbtfConfig, rng: &mut StdRng) -> FactorSet {
    let dims = x.dims();
    let rank = config.rank;
    let mut b = BitMatrix::zeros(dims[1], rank);
    let mut c = BitMatrix::zeros(dims[2], rank);
    let entries = x.entries();
    if !entries.is_empty() {
        for r in 0..rank {
            let [i, j, k] = entries[rng.gen_range(0..entries.len())];
            for jj in x.fiber_mode2(i, k) {
                b.set(jj as usize, r, true); // mode-2 fiber x_{i,:,k}
            }
            for kk in x.fiber_mode3(i, j) {
                c.set(kk as usize, r, true); // mode-3 fiber x_{i,j,:}
            }
        }
    }
    FactorSet {
        a: BitMatrix::zeros(dims[0], rank),
        b,
        c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_sets_deterministic() {
        let cfg = DbtfConfig {
            initial_sets: 3,
            seed: 42,
            ..DbtfConfig::with_rank(4)
        };
        let a = random_factor_sets([5, 6, 7], 0.1, &cfg);
        let b = random_factor_sets([5, 6, 7], 0.1, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_ne!(a[0], a[1], "distinct sets must differ (w.h.p.)");
    }

    #[test]
    fn adding_sets_preserves_prefix() {
        let cfg1 = DbtfConfig {
            initial_sets: 1,
            ..DbtfConfig::with_rank(3)
        };
        let cfg2 = DbtfConfig {
            initial_sets: 4,
            ..cfg1.clone()
        };
        let one = random_factor_sets([4, 4, 4], 0.2, &cfg1);
        let four = random_factor_sets([4, 4, 4], 0.2, &cfg2);
        assert_eq!(one[0], four[0]);
    }

    #[test]
    fn factor_shapes() {
        let cfg = DbtfConfig::with_rank(5);
        let sets = random_factor_sets([3, 9, 2], 0.3, &cfg);
        let f = &sets[0];
        assert_eq!((f.a.rows(), f.a.cols()), (3, 5));
        assert_eq!((f.b.rows(), f.b.cols()), (9, 5));
        assert_eq!((f.c.rows(), f.c.cols()), (2, 5));
        assert_eq!(f.rank(), 5);
    }

    #[test]
    fn error_of_exact_reconstruction() {
        let cfg = DbtfConfig::with_rank(2);
        let f = random_factor_sets([4, 4, 4], 0.4, &cfg).remove(0);
        let x = f.reconstruct();
        assert_eq!(f.error(&x), 0);
        assert_eq!(f.relative_error(&x), 0.0);
    }
}
