//! Wire registrations for running the CP driver on the networked backend.
//!
//! The networked [`NetBackend`] executes in separate worker processes, so
//! every dataset element, broadcast value, and task the CP driver uses
//! must have a wire codec and a registry entry the worker resolves by
//! name. This module is that registry, plus the shared task bodies: each
//! driver superstep is written once as a free function, called both by
//! the in-process closure (simulated cluster / local backend) and by the
//! worker-process registration — the idiom that keeps all three backends
//! bit-identical.
//!
//! # Partition wire format
//!
//! A [`PartitionSlot`] ships only its immutable [`ModePartition`] — the
//! transient `work`/`tucker` state is `None` whenever a slot crosses the
//! wire (slots are shipped at distribute time and re-shipped after crash
//! recovery, both outside any `UpdateFactor` call). The data channel
//! carries exactly [`ModePartition::byte_size`] bytes, so the *measured*
//! wire bytes of the one-time shuffle equal the Lemma 6 meter:
//!
//! ```text
//! header   64 B: index, col_lo, col_hi, slab_width, nrows,
//!                nblocks, nnz, reserved — 8 LE u64s
//! blocks   16 B each: slab (u64), inner_lo (u32), inner_len (u32)
//! nonzeros 12 B each: row (u32), column offset in block (u64),
//!                     written in block order then CSR row order
//! ```
//!
//! Per-block non-zero counts ride the meta channel (framing, not
//! payload); block kinds are re-derived from slab geometry on decode.

use std::any::Any;
use std::sync::Arc;

use dbtf_cluster::{
    Broadcast, BroadcastStore, ClusterConfig, ClusterError, NetBackend, NetRegistry, NetTuning,
    RemoteTask, TaskContext, WorkerHost, WorkerTaskFn,
};
use dbtf_tensor::{ColumnDecision, FactorTriple};
use dbtf_wire::{Wire, WireError, WireNamed, WireReader, WireResult, WireWriter};

use crate::partition::{Block, BlockKind, ModePartition};
use crate::update::{PartitionSlot, WorkState};

/// Registry name of the distributed block-organization superstep.
pub const ORGANIZE_TASK: &str = "unfold.organize";
/// Registry name of the cache-building begin superstep (Algorithm 5).
pub const BEGIN_TASK: &str = "cp.update.begin";
/// Registry name of the apply-and-score column superstep (Algorithm 4).
pub const SWEEP_TASK: &str = "cp.update.sweep";
/// Registry name of the apply-last-column/error finish superstep.
pub const FINISH_TASK: &str = "cp.update.finish";

impl Wire for PartitionSlot {
    fn encode(&self, w: &mut WireWriter) {
        let p = &self.part;
        w.data_u64(p.index as u64);
        w.data_u64(p.col_lo);
        w.data_u64(p.col_hi);
        w.data_u64(p.slab_width as u64);
        w.data_u64(p.nrows as u64);
        w.data_u64(p.blocks.len() as u64);
        w.data_u64(p.nnz() as u64);
        w.data_u64(0); // reserved
        for b in &p.blocks {
            w.meta_u64(b.nnz() as u64);
            w.data_u64(b.slab as u64);
            w.data_u32(b.inner_lo);
            w.data_u32(b.inner_len);
        }
        for b in &p.blocks {
            for r in 0..b.nrows() {
                for &off in b.row(r) {
                    w.data_u32(r as u32);
                    w.data_u64(off as u64);
                }
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let index = r.data_u64()? as usize;
        let col_lo = r.data_u64()?;
        let col_hi = r.data_u64()?;
        let slab_width = r.data_u64()? as usize;
        let nrows = r.data_u64()? as usize;
        let nblocks = r.data_u64()? as usize;
        let total_nnz = r.data_u64()?;
        let _reserved = r.data_u64()?;
        let mut geom = Vec::with_capacity(nblocks);
        let mut shipped = 0u64;
        for _ in 0..nblocks {
            let nnz = r.meta_u64()?;
            let slab = r.data_u64()? as usize;
            let inner_lo = r.data_u32()?;
            let inner_len = r.data_u32()?;
            if inner_len == 0 || inner_lo as u64 + inner_len as u64 > slab_width as u64 {
                return Err(WireError(format!(
                    "partition block outside its slab: lo {inner_lo} len {inner_len} \
                     slab width {slab_width}"
                )));
            }
            shipped += nnz;
            geom.push((slab, inner_lo, inner_len, nnz));
        }
        if shipped != total_nnz {
            return Err(WireError(format!(
                "partition header claims {total_nnz} non-zeros, blocks carry {shipped}"
            )));
        }
        let mut blocks = Vec::with_capacity(nblocks);
        for (slab, inner_lo, inner_len, nnz) in geom {
            let mut row_offsets = vec![0u32; nrows + 1];
            let mut cols = Vec::with_capacity(nnz as usize);
            let mut last_row = 0usize;
            for _ in 0..nnz {
                let row = r.data_u32()? as usize;
                let off = r.data_u64()?;
                if row >= nrows || row < last_row || off >= inner_len as u64 {
                    return Err(WireError(format!(
                        "partition non-zero out of order or out of range: \
                         row {row} (of {nrows}), offset {off} (width {inner_len})"
                    )));
                }
                last_row = row;
                row_offsets[row + 1] += 1;
                cols.push(off as u32);
            }
            for i in 0..nrows {
                row_offsets[i + 1] += row_offsets[i];
            }
            // Block kinds are a pure function of slab geometry (Figure 5).
            let kind = match (
                inner_lo == 0,
                inner_lo as u64 + inner_len as u64 == slab_width as u64,
            ) {
                (true, true) => BlockKind::Full,
                (true, false) => BlockKind::Prefix,
                (false, true) => BlockKind::Suffix,
                (false, false) => BlockKind::Interior,
            };
            blocks.push(Block {
                slab,
                inner_lo,
                inner_len,
                kind,
                row_offsets,
                cols,
            });
        }
        Ok(PartitionSlot::new(ModePartition {
            index,
            col_lo,
            col_hi,
            slab_width,
            nrows,
            blocks,
        }))
    }
}

impl WireNamed for PartitionSlot {
    const WIRE_NAME: &'static str = "dbtf.partition_slot";
}

// ---- Shared task bodies --------------------------------------------------
// One free function per superstep; the RemoteTask closure and the worker
// registration both call it, so the two execution paths cannot drift.

fn organize_body(slot: &mut PartitionSlot, ctx: &mut TaskContext) {
    ctx.charge_kernel("kernel.organize_blocks", slot.part.nnz() as u64);
}

fn begin_body(
    slot: &mut PartitionSlot,
    factors: &FactorTriple,
    v_limit: usize,
    ctx: &mut TaskContext,
) -> u64 {
    let (state, ops) = WorkState::build(&slot.part, &factors.a, &factors.mf, &factors.ms, v_limit);
    ctx.charge_kernel("kernel.build_cache", ops);
    ctx.set_result_bytes(8);
    let bytes = state.cache_bytes();
    slot.work = Some(state);
    bytes
}

fn apply_body(slot: &mut PartitionSlot, decided: &ColumnDecision, ctx: &mut TaskContext) {
    let state = slot.work.as_mut().expect("update_factor not begun");
    state.apply_column(decided.col, &decided.values);
    ctx.charge_kernel("kernel.apply_column", decided.values.len() as u64);
}

/// Per-partition column-error pairs `(error_if_zero, error_if_one)`, one per
/// owned row of the column under consideration.
type ColumnErrors = Vec<(u64, u64)>;

fn sweep_body(
    slot: &mut PartitionSlot,
    prev: Option<&ColumnDecision>,
    col: usize,
    ctx: &mut TaskContext,
) -> ColumnErrors {
    if let Some(decided) = prev {
        apply_body(slot, decided, ctx);
    }
    let state = slot.work.as_mut().expect("update_factor not begun");
    let (errs, ops) = state.column_errors(&slot.part, col);
    ctx.charge_kernel("kernel.column_errors", ops);
    ctx.set_result_bytes(errs.len() as u64 * 16);
    errs
}

fn finish_body(
    slot: &mut PartitionSlot,
    last: &ColumnDecision,
    compute_error: bool,
    ctx: &mut TaskContext,
) -> u64 {
    apply_body(slot, last, ctx);
    let err = if compute_error {
        let state = slot.work.as_mut().expect("update_factor not begun");
        let (err, ops) = state.partition_error(&slot.part);
        ctx.charge_kernel("kernel.partition_error", ops);
        err
    } else {
        0
    };
    ctx.set_result_bytes(8);
    slot.work = None;
    err
}

// ---- Driver-side task constructors ---------------------------------------

/// The distributed block-organization superstep (Algorithm 3 line 4).
pub(crate) fn organize_task(
) -> RemoteTask<impl Fn(usize, &mut PartitionSlot, &mut TaskContext) + Send + Sync + 'static> {
    RemoteTask::new(
        ORGANIZE_TASK,
        &(),
        |_idx, slot: &mut PartitionSlot, ctx: &mut TaskContext| organize_body(slot, ctx),
    )
}

/// The cache-building begin superstep; parameters reference the factor
/// broadcast by wire id.
pub(crate) fn begin_task(
    factors: &Broadcast<FactorTriple>,
    v_limit: usize,
) -> RemoteTask<impl Fn(usize, &mut PartitionSlot, &mut TaskContext) -> u64 + Send + Sync + 'static>
{
    let factors = factors.clone();
    RemoteTask::new(
        BEGIN_TASK,
        &(factors.wire_id(), v_limit as u64),
        move |_idx, slot: &mut PartitionSlot, ctx: &mut TaskContext| {
            begin_body(slot, factors.get(), v_limit, ctx)
        },
    )
}

/// One apply-and-score column superstep of the sweep; `prev` is the
/// previous column's decision broadcast (absent for the first column).
pub(crate) fn sweep_task(
    col: usize,
    prev: Option<Broadcast<ColumnDecision>>,
) -> RemoteTask<
    impl Fn(usize, &mut PartitionSlot, &mut TaskContext) -> ColumnErrors + Send + Sync + 'static,
> {
    let prev_id = prev.as_ref().and_then(Broadcast::wire_id);
    RemoteTask::new(
        SWEEP_TASK,
        &(col as u64, prev_id),
        move |_idx, slot: &mut PartitionSlot, ctx: &mut TaskContext| {
            sweep_body(slot, prev.as_deref(), col, ctx)
        },
    )
}

/// The finish superstep: apply the last decided column, optionally compute
/// the exact partition error, drop the caches.
pub(crate) fn finish_task(
    last: &Broadcast<ColumnDecision>,
    compute_error: bool,
) -> RemoteTask<impl Fn(usize, &mut PartitionSlot, &mut TaskContext) -> u64 + Send + Sync + 'static>
{
    let last = last.clone();
    RemoteTask::new(
        FINISH_TASK,
        &(last.wire_id(), compute_error),
        move |_idx, slot: &mut PartitionSlot, ctx: &mut TaskContext| {
            finish_body(slot, last.get(), compute_error, ctx)
        },
    )
}

// ---- Worker-side registry ------------------------------------------------

fn slot_of(part: &mut (dyn Any + Send)) -> &mut PartitionSlot {
    part.downcast_mut::<PartitionSlot>()
        .expect("dataset element is a PartitionSlot")
}

fn required(id: Option<u64>, what: &str) -> WireResult<u64> {
    id.ok_or_else(|| WireError(format!("{what} broadcast id missing from task parameters")))
}

/// Builds the task/codec registry every CP worker process (and the driver
/// side of the networked backend) resolves names against.
///
/// The driver and its workers must call this same function: a worker with
/// a different registry would answer `Run` requests with
/// "unknown task" errors.
pub fn build_registry() -> Arc<NetRegistry> {
    let mut reg = NetRegistry::new();
    reg.register_part::<PartitionSlot>();
    reg.register_broadcast::<FactorTriple>();
    reg.register_broadcast::<ColumnDecision>();
    reg.register_task(ORGANIZE_TASK, |_params, _bstore| {
        Ok(
            Box::new(|_idx, part: &mut (dyn Any + Send), ctx: &mut TaskContext| {
                organize_body(slot_of(part), ctx);
                ().to_frame()
            }) as WorkerTaskFn,
        )
    });
    reg.register_task(BEGIN_TASK, |params, bstore: &BroadcastStore| {
        let (fid, v_limit) = <(Option<u64>, u64)>::from_frame(params)?;
        let factors = bstore.get::<FactorTriple>(required(fid, "factor")?);
        Ok(Box::new(
            move |_idx, part: &mut (dyn Any + Send), ctx: &mut TaskContext| {
                begin_body(slot_of(part), &factors, v_limit as usize, ctx).to_frame()
            },
        ) as WorkerTaskFn)
    });
    reg.register_task(SWEEP_TASK, |params, bstore: &BroadcastStore| {
        let (col, prev_id) = <(u64, Option<u64>)>::from_frame(params)?;
        let prev = prev_id.map(|id| bstore.get::<ColumnDecision>(id));
        Ok(Box::new(
            move |_idx, part: &mut (dyn Any + Send), ctx: &mut TaskContext| {
                sweep_body(slot_of(part), prev.as_deref(), col as usize, ctx).to_frame()
            },
        ) as WorkerTaskFn)
    });
    reg.register_task(FINISH_TASK, |params, bstore: &BroadcastStore| {
        let (lid, compute_error) = <(Option<u64>, bool)>::from_frame(params)?;
        let last = bstore.get::<ColumnDecision>(required(lid, "decision")?);
        Ok(Box::new(
            move |_idx, part: &mut (dyn Any + Send), ctx: &mut TaskContext| {
                finish_body(slot_of(part), &last, compute_error, ctx).to_frame()
            },
        ) as WorkerTaskFn)
    });
    Arc::new(reg)
}

/// Boots a [`NetBackend`] wired to the CP registry — the networked
/// equivalent of `Cluster::try_new` for `factorize` runs.
pub fn net_backend(
    config: ClusterConfig,
    host: WorkerHost,
    tuning: NetTuning,
) -> Result<NetBackend, ClusterError> {
    NetBackend::new(config, build_registry(), host, tuning)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_unfolding;
    use dbtf_tensor::{BoolTensor, Mode, Unfolding};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tensor(dims: [usize; 3], density: f64, seed: u64) -> BoolTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut entries = Vec::new();
        for i in 0..dims[0] as u32 {
            for j in 0..dims[1] as u32 {
                for k in 0..dims[2] as u32 {
                    if rng.gen_bool(density) {
                        entries.push([i, j, k]);
                    }
                }
            }
        }
        BoolTensor::from_entries(dims, entries)
    }

    #[test]
    fn partition_slot_roundtrips_with_lemma6_exact_payload() {
        let t = random_tensor([7, 9, 5], 0.2, 21);
        for mode in Mode::ALL {
            let u = Unfolding::new(&t, mode);
            for n in [1, 2, 3, 7] {
                for part in partition_unfolding(&u, n) {
                    let declared = part.byte_size();
                    let slot = PartitionSlot::new(part);
                    let frame = slot.to_frame();
                    // Measured wire payload == the Lemma 6 shuffle meter.
                    assert_eq!(frame.data_len, declared, "mode {mode:?} n {n}");
                    let back = PartitionSlot::from_frame(&frame.bytes).unwrap();
                    assert_eq!(back.part, slot.part);
                    assert!(back.work.is_none() && back.tucker.is_none());
                }
            }
        }
    }

    #[test]
    fn corrupt_partition_frames_are_rejected() {
        let t = random_tensor([4, 4, 4], 0.4, 3);
        let u = Unfolding::new(&t, Mode::One);
        let part = partition_unfolding(&u, 1).remove(0);
        let frame = PartitionSlot::new(part).to_frame();
        // Truncations anywhere must error, never panic or mis-decode.
        for cut in [frame.bytes.len() / 3, frame.bytes.len() - 4] {
            assert!(PartitionSlot::from_frame(&frame.bytes[..cut]).is_err());
        }
    }

    #[test]
    fn registry_registers_all_cp_tasks() {
        // A driver-side smoke check: every task name the CP driver emits
        // resolves in the worker registry (a worker with a partial
        // registry would fail mid-run, not at boot).
        let reg = build_registry();
        for name in [ORGANIZE_TASK, BEGIN_TASK, SWEEP_TASK, FINISH_TASK] {
            assert!(reg.has_task(name), "missing task {name}");
        }
    }
}
