//! Factor-matrix checkpointing for crash-resumable runs.
//!
//! The paper's Spark implementation can lean on lineage for everything; a
//! long-running driver process, however, survives *driver* restarts only by
//! persisting the iteration state. [`factorize`](crate::factorize) writes a
//! [`Checkpoint`] every [`DbtfConfig::checkpoint_every`](crate::DbtfConfig)
//! completed iterations and can resume from it: because the RNG is consumed
//! only by initialization, iterations ≥ 2 are pure functions of the factor
//! state, so a resumed run reproduces the uninterrupted run bit for bit.
//!
//! # File format
//!
//! A small self-describing text file (`DBTFCKPT v1`), written atomically
//! (temp file + rename) so a crash mid-write never corrupts the previous
//! checkpoint:
//!
//! ```text
//! DBTFCKPT v1
//! iteration 4
//! error 123
//! iteration_errors 400 200 150 123
//! matrix a 6 2
//! 10
//! 01
//! ...            (one 0/1 row per line; then matrices b and c)
//! ```

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use dbtf_tensor::BitMatrix;

use crate::config::DbtfError;
use crate::factors::FactorSet;

const MAGIC: &str = "DBTFCKPT v1";

/// The checkpoint format version this build writes and the newest it
/// reads. Files announcing a higher version in their magic line are
/// refused with a version-specific [`DbtfError::Checkpoint`] message.
pub const CHECKPOINT_FORMAT_VERSION: u64 = 1;

/// The resumable state of a [`crate::factorize`] run after a completed
/// iteration.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Number of completed iterations (1-based; the first, multi-set
    /// iteration counts as 1).
    pub iteration: usize,
    /// Reconstruction error after that iteration.
    pub error: u64,
    /// Error after each completed iteration (`len() == iteration`).
    pub iteration_errors: Vec<u64>,
    /// The factor matrices after that iteration.
    pub factors: FactorSet,
}

fn ck_err(path: &Path, msg: impl std::fmt::Display) -> DbtfError {
    DbtfError::Checkpoint(format!("{}: {msg}", path.display()))
}

/// Fsyncs the directory containing `path`, making a just-completed rename
/// durable. On POSIX the rename updates the directory entry, and that
/// entry lives in the directory's own data — without this fsync a crash
/// can roll the rename back, leaving `--resume` pointing at the old (or
/// no) checkpoint despite `write` having returned `Ok`.
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(parent)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        // Windows has no directory-fsync equivalent; the temp-file fsync
        // plus ReplaceFile-style rename is the best available.
        let _ = path;
    }
    Ok(())
}

fn write_matrix<W: Write>(out: &mut W, name: &str, m: &BitMatrix) -> std::io::Result<()> {
    writeln!(out, "matrix {name} {} {}", m.rows(), m.cols())?;
    let mut row = String::with_capacity(m.cols());
    for r in 0..m.rows() {
        row.clear();
        for c in 0..m.cols() {
            row.push(if m.get(r, c) { '1' } else { '0' });
        }
        writeln!(out, "{row}")?;
    }
    Ok(())
}

impl Checkpoint {
    /// Writes the checkpoint to `path`, replacing any previous file
    /// atomically *and durably*: the bytes go to `<path>.tmp` first, the
    /// temp file is fsynced before the rename (so the rename can never
    /// publish a torn file), and the parent directory is fsynced after it
    /// (so the rename itself survives a crash) — readers, including
    /// `--resume`, always see either the old complete checkpoint or the
    /// new one, even across power loss.
    pub fn write(&self, path: &Path) -> Result<(), DbtfError> {
        let tmp = path.with_extension("tmp");
        let write_all = || -> std::io::Result<()> {
            // A checkpoint path like `runs/2026-08-06/ck.dbtf` should not
            // require the user to pre-create the directory tree.
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            let file = std::fs::File::create(&tmp)?;
            let mut out = BufWriter::new(file);
            writeln!(out, "{MAGIC}")?;
            writeln!(out, "iteration {}", self.iteration)?;
            writeln!(out, "error {}", self.error)?;
            write!(out, "iteration_errors")?;
            for e in &self.iteration_errors {
                write!(out, " {e}")?;
            }
            writeln!(out)?;
            write_matrix(&mut out, "a", &self.factors.a)?;
            write_matrix(&mut out, "b", &self.factors.b)?;
            write_matrix(&mut out, "c", &self.factors.c)?;
            out.into_inner().map_err(|e| e.into_error())?.sync_all()?;
            std::fs::rename(&tmp, path)?;
            sync_parent_dir(path)
        };
        write_all().map_err(|e| ck_err(path, format!("write failed: {e}")))
    }

    /// Reads a checkpoint back from `path`.
    ///
    /// # Errors
    ///
    /// [`DbtfError::Checkpoint`] if the file cannot be read or does not
    /// parse as a complete `DBTFCKPT v1` checkpoint. (Callers handle a
    /// *missing* file separately — see [`Checkpoint::read_if_exists`].)
    pub fn read(path: &Path) -> Result<Checkpoint, DbtfError> {
        let file = std::fs::File::open(path).map_err(|e| ck_err(path, e))?;
        let mut lines = BufReader::new(file).lines();
        let mut next = |what: &str| -> Result<String, DbtfError> {
            match lines.next() {
                Some(Ok(line)) => Ok(line),
                Some(Err(e)) => Err(ck_err(path, e)),
                None => Err(ck_err(path, format!("truncated: missing {what}"))),
            }
        };
        let magic_line = next("magic header")?;
        if magic_line != MAGIC {
            // A future-versioned checkpoint ("DBTFCKPT v3") is a distinct
            // failure from a random file: the user needs a newer build,
            // not a different file.
            if let Some(version) = magic_line
                .strip_prefix("DBTFCKPT v")
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&v| v > CHECKPOINT_FORMAT_VERSION)
            {
                return Err(ck_err(
                    path,
                    format!(
                        "checkpoint format v{version} is newer than this build supports \
                         (max v{CHECKPOINT_FORMAT_VERSION}); upgrade dbtf to read it"
                    ),
                ));
            }
            return Err(ck_err(path, "not a DBTFCKPT v1 file"));
        }
        let field = |line: String, key: &str| -> Result<String, DbtfError> {
            line.strip_prefix(key)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| ck_err(path, format!("expected `{key} …`, got {line:?}")))
        };
        let iteration: usize = field(next("iteration")?, "iteration")?
            .parse()
            .map_err(|e| ck_err(path, format!("bad iteration: {e}")))?;
        let error: u64 = field(next("error")?, "error")?
            .parse()
            .map_err(|e| ck_err(path, format!("bad error: {e}")))?;
        let errs_line = next("iteration_errors")?;
        let errs_line = errs_line
            .strip_prefix("iteration_errors")
            .ok_or_else(|| ck_err(path, "expected `iteration_errors …`"))?;
        let iteration_errors: Vec<u64> = errs_line
            .split_whitespace()
            .map(|tok| {
                tok.parse()
                    .map_err(|e| ck_err(path, format!("bad iteration_errors entry {tok:?}: {e}")))
            })
            .collect::<Result<_, _>>()?;
        if iteration_errors.len() != iteration {
            return Err(ck_err(
                path,
                format!(
                    "iteration_errors has {} entries but iteration is {iteration}",
                    iteration_errors.len()
                ),
            ));
        }
        if iteration_errors.last() != Some(&error) {
            return Err(ck_err(path, "last iteration_errors entry must equal error"));
        }

        let mut read_matrix = |name: &str| -> Result<BitMatrix, DbtfError> {
            let header = next(&format!("matrix {name} header"))?;
            let mut toks = header.split_whitespace();
            if toks.next() != Some("matrix") || toks.next() != Some(name) {
                return Err(ck_err(path, format!("expected `matrix {name} R C`")));
            }
            let parse_dim = |tok: Option<&str>| -> Result<usize, DbtfError> {
                tok.and_then(|t| t.parse().ok())
                    .ok_or_else(|| ck_err(path, format!("bad dimensions for matrix {name}")))
            };
            let rows = parse_dim(toks.next())?;
            let cols = parse_dim(toks.next())?;
            let mut m = BitMatrix::zeros(rows, cols);
            for r in 0..rows {
                let line = next(&format!("row {r} of matrix {name}"))?;
                if line.len() != cols {
                    return Err(ck_err(
                        path,
                        format!(
                            "matrix {name} row {r}: expected {cols} bits, got {}",
                            line.len()
                        ),
                    ));
                }
                for (c, ch) in line.chars().enumerate() {
                    match ch {
                        '0' => {}
                        '1' => m.set(r, c, true),
                        other => {
                            return Err(ck_err(
                                path,
                                format!("matrix {name} row {r}: invalid bit {other:?}"),
                            ))
                        }
                    }
                }
            }
            Ok(m)
        };
        let a = read_matrix("a")?;
        let b = read_matrix("b")?;
        let c = read_matrix("c")?;
        Ok(Checkpoint {
            iteration,
            error,
            iteration_errors,
            factors: FactorSet { a, b, c },
        })
    }

    /// [`Checkpoint::read`], but a missing file yields `Ok(None)` (the
    /// resume-from-nothing case) while a present-but-invalid file is still
    /// an error — silently restarting over a corrupt checkpoint would mask
    /// data loss.
    pub fn read_if_exists(path: &Path) -> Result<Option<Checkpoint>, DbtfError> {
        if path.exists() {
            Checkpoint::read(path).map(Some)
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut a = BitMatrix::zeros(4, 3);
        a.set(0, 0, true);
        a.set(3, 2, true);
        let mut b = BitMatrix::zeros(2, 3);
        b.set(1, 1, true);
        let c = BitMatrix::zeros(5, 3);
        Checkpoint {
            iteration: 3,
            error: 17,
            iteration_errors: vec![40, 21, 17],
            factors: FactorSet { a, b, c },
        }
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dbtf-checkpoint-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn roundtrip() {
        let path = tmp_path("roundtrip");
        let ck = sample();
        ck.write(&path).unwrap();
        assert_eq!(Checkpoint::read(&path).unwrap(), ck);
        // Overwrite with different content and read again.
        let mut ck2 = sample();
        ck2.iteration = 4;
        ck2.error = 5;
        ck2.iteration_errors.push(5);
        ck2.write(&path).unwrap();
        assert_eq!(Checkpoint::read(&path).unwrap(), ck2);
        std::fs::remove_file(&path).unwrap();
    }

    /// The magic line's version field round-trips: a written checkpoint
    /// opens with `DBTFCKPT v1` verbatim and reads back, while a
    /// future-versioned file is refused with a message naming both the
    /// file's version and this build's ceiling (not a generic parse
    /// error).
    #[test]
    fn version_field_round_trip_and_future_version_message() {
        let path = tmp_path("version");
        let ck = sample();
        ck.write(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text.lines().next(),
            Some(format!("DBTFCKPT v{CHECKPOINT_FORMAT_VERSION}").as_str())
        );
        assert_eq!(Checkpoint::read(&path).unwrap(), ck);

        // Same body, future version stamp → version-specific refusal.
        let future = text.replacen("DBTFCKPT v1", "DBTFCKPT v3", 1);
        std::fs::write(&path, &future).unwrap();
        let err = Checkpoint::read(&path).unwrap_err();
        let DbtfError::Checkpoint(msg) = &err else {
            panic!("expected Checkpoint error, got {err:?}");
        };
        assert!(msg.contains("v3"), "{msg}");
        assert!(msg.contains("newer than this build"), "{msg}");
        assert!(msg.contains("max v1"), "{msg}");

        // v0 and garbage suffixes are *not* "newer" — plain bad files.
        for bad in ["DBTFCKPT v0", "DBTFCKPT vX"] {
            std::fs::write(&path, text.replacen("DBTFCKPT v1", bad, 1)).unwrap();
            let err = Checkpoint::read(&path).unwrap_err();
            assert!(
                err.to_string().contains("not a DBTFCKPT v1 file"),
                "{bad}: {err}"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_none_not_error() {
        let path = tmp_path("never-written");
        assert_eq!(Checkpoint::read_if_exists(&path).unwrap(), None);
        assert!(Checkpoint::read(&path).is_err());
    }

    #[test]
    fn corrupt_files_error_cleanly() {
        let path = tmp_path("corrupt");
        for bad in [
            "",
            "BOGUS v9\n",
            "DBTFCKPT v1\niteration 2\nerror 5\niteration_errors 9 5\nmatrix a 2 2\n10\n", // truncated
            "DBTFCKPT v1\niteration 2\nerror 5\niteration_errors 9\nmatrix a 0 0\nmatrix b 0 0\nmatrix c 0 0\n", // count mismatch
            "DBTFCKPT v1\niteration 1\nerror 5\niteration_errors 9\nmatrix a 0 0\nmatrix b 0 0\nmatrix c 0 0\n", // last ≠ error
            "DBTFCKPT v1\niteration 1\nerror 5\niteration_errors 5\nmatrix a 1 2\n1x\nmatrix b 0 2\nmatrix c 0 2\n", // bad bit
        ] {
            std::fs::write(&path, bad).unwrap();
            let err = Checkpoint::read(&path).expect_err(bad);
            assert!(matches!(err, DbtfError::Checkpoint(_)), "input: {bad:?}");
            assert!(
                Checkpoint::read_if_exists(&path).is_err(),
                "corrupt must not read as None: {bad:?}"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn write_creates_missing_parent_directories() {
        let dir = std::env::temp_dir().join(format!(
            "dbtf-checkpoint-tests-parents-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deeper").join("nested.ckpt");
        assert!(!dir.exists());
        let ck = sample();
        ck.write(&path).unwrap();
        assert_eq!(Checkpoint::read(&path).unwrap(), ck);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_is_atomic_no_tmp_left_behind() {
        let path = tmp_path("atomic");
        sample().write(&path).unwrap();
        assert!(path.exists());
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_file(&path).unwrap();
    }

    /// Regression (durability fix): a failing write must surface a clean
    /// `DbtfError::Checkpoint` — including failures after the content was
    /// produced (rename / directory-sync stage) — and must never clobber
    /// an existing good checkpoint.
    #[test]
    fn write_error_paths_are_clean_and_preserve_previous() {
        // Parent "directory" is actually a file → create_dir_all fails.
        let blocker = tmp_path("error-parent");
        std::fs::write(&blocker, "not a directory").unwrap();
        let path = blocker.join("ck.dbtf");
        let err = sample().write(&path).expect_err("write must fail");
        match err {
            DbtfError::Checkpoint(msg) => {
                assert!(msg.contains("write failed"), "actionable message: {msg}");
            }
            other => panic!("expected Checkpoint error, got {other:?}"),
        }

        // Destination is a directory → the rename stage fails, after the
        // temp file was written and fsynced. The error is still clean and
        // a sibling good checkpoint is untouched.
        let dir_dest = tmp_path("error-dest-dir");
        let _ = std::fs::remove_dir_all(&dir_dest);
        std::fs::create_dir_all(&dir_dest).unwrap();
        let good = tmp_path("error-good");
        sample().write(&good).unwrap();
        let err = sample().write(&dir_dest).expect_err("rename must fail");
        assert!(matches!(err, DbtfError::Checkpoint(_)));
        assert_eq!(Checkpoint::read(&good).unwrap(), sample());

        std::fs::remove_file(&blocker).unwrap();
        std::fs::remove_file(&good).unwrap();
        let _ = std::fs::remove_file(dir_dest.with_extension("tmp"));
        let _ = std::fs::remove_dir_all(&dir_dest);
    }
}
