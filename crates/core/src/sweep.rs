//! The shared greedy column sweep of Algorithm 4 — the superstep loop
//! both the CP and the distributed-Tucker factor updates are built on.
//!
//! One sweep runs `R` supersteps over a partitioned unfolding. In
//! superstep `c`, every partition first applies the previously decided
//! column (piggybacked on the broadcast, so apply and score share one
//! superstep), then scores both candidate values of every row's entry in
//! column `c` and ships the per-row `(e0, e1)` error pairs to the driver.
//! The driver sums the pairs across partitions, picks the smaller error
//! per row (ties prefer `0` — the sparser factor), writes the decision
//! into the master copy, and broadcasts the decided column for the next
//! superstep. What differs between CP and Tucker is only *how* a
//! partition applies and scores a column — callers pass those two steps
//! as closures over their partition-local work state.

use std::sync::Arc;

use dbtf_cluster::{Broadcast, ExecutionBackend, Scheduler, TaskContext};
use dbtf_tensor::{BitMatrix, BitVec};

use crate::update::PartitionSlot;

/// Trace labels for the three operators a sweep emits per column.
pub(crate) struct SweepLabels {
    /// The apply-and-score `MapPartitions` superstep.
    pub sweep: &'static str,
    /// The driver-side per-row error reduce (`DriverCompute`).
    pub reduce: &'static str,
    /// The decided-column `Broadcast`.
    pub decision: &'static str,
}

/// Runs the column sweep over `data`, mutating `master` (the driver's
/// copy of the factor being updated) column by column. Returns the last
/// decided column's broadcast — the caller's finish superstep still has
/// to apply it on the workers.
///
/// `apply(slot, col, values, ctx)` applies a decided column to the
/// partition's work state; `score(slot, col, ctx)` returns the partition's
/// per-row `(e0, e1)` error pairs for the column being decided. Both run
/// inside the same superstep task and share its cost accounting.
pub(crate) fn column_sweep<B, A, S>(
    sched: &Scheduler<'_, B>,
    labels: SweepLabels,
    data: &B::Dataset<PartitionSlot>,
    master: &mut BitMatrix,
    apply: A,
    score: S,
) -> Broadcast<(usize, BitVec)>
where
    B: ExecutionBackend,
    A: Fn(&mut PartitionSlot, usize, &BitVec, &mut TaskContext) + Send + Sync + 'static,
    S: Fn(&mut PartitionSlot, usize, &mut TaskContext) -> Vec<(u64, u64)> + Send + Sync + 'static,
{
    let rank = master.cols();
    let nrows = master.rows();
    let apply = Arc::new(apply);
    let score = Arc::new(score);
    let mut pending: Option<Broadcast<(usize, BitVec)>> = None;
    for col in 0..rank {
        let prev = pending.clone();
        let errs: Vec<Vec<(u64, u64)>> = sched.map_partitions(labels.sweep, data, {
            let apply = Arc::clone(&apply);
            let score = Arc::clone(&score);
            move |_idx, slot: &mut PartitionSlot, ctx| {
                if let Some(decided) = &prev {
                    let (c, values) = decided.get();
                    apply(slot, *c, values, ctx);
                }
                score(slot, col, ctx)
            }
        });
        // Driver: sum errors across partitions, pick the smaller per row
        // (ties prefer 0 — the sparser factor).
        let mut decision = BitVec::zeros(nrows);
        for r in 0..nrows {
            let (mut e0, mut e1) = (0u64, 0u64);
            for per_part in &errs {
                e0 += per_part[r].0;
                e1 += per_part[r].1;
            }
            if e1 < e0 {
                decision.set(r, true);
            }
            master.set(r, col, e1 < e0);
        }
        sched.charge_driver(labels.reduce, nrows as u64 * (errs.len() as u64 + 1));
        pending = Some(sched.broadcast(
            labels.decision,
            (col, decision),
            (nrows as u64).div_ceil(8) + 8,
        ));
    }
    pending.expect("rank ≥ 1")
}
