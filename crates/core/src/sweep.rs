//! The shared greedy column sweep of Algorithm 4 — the superstep loop
//! both the CP and the distributed-Tucker factor updates are built on.
//!
//! One sweep runs `R` supersteps over a partitioned unfolding. In
//! superstep `c`, every partition first applies the previously decided
//! column (piggybacked on the broadcast, so apply and score share one
//! superstep), then scores both candidate values of every row's entry in
//! column `c` and ships the per-row `(e0, e1)` error pairs to the driver.
//! The driver sums the pairs across partitions, picks the smaller error
//! per row (ties prefer `0` — the sparser factor), writes the decision
//! into the master copy, and broadcasts the decided column for the next
//! superstep. What differs between CP and Tucker is only *how* a
//! partition applies and scores a column — callers pass a task factory
//! producing the per-column superstep task. CP's factory builds
//! [`dbtf_cluster::RemoteTask`]s (so the sweep can run in separate worker
//! processes over the networked backend); Tucker's builds plain closures
//! (in-process backends only).

use dbtf_cluster::{Broadcast, ExecutionBackend, PartitionTask, Scheduler};
use dbtf_tensor::{BitMatrix, BitVec, ColumnDecision};

use crate::update::PartitionSlot;

/// Trace labels for the three operators a sweep emits per column.
pub(crate) struct SweepLabels {
    /// The apply-and-score `MapPartitions` superstep.
    pub sweep: &'static str,
    /// The driver-side per-row error reduce (`DriverCompute`).
    pub reduce: &'static str,
    /// The decided-column `Broadcast`.
    pub decision: &'static str,
}

/// Runs the column sweep over `data`, mutating `master` (the driver's
/// copy of the factor being updated) column by column. Returns the last
/// decided column's broadcast — the caller's finish superstep still has
/// to apply it on the workers.
///
/// `make_task(col, prev)` builds the superstep task for column `col`:
/// apply the previously decided column `prev` (if any), then score both
/// candidate values of every row's entry in column `col`, returning the
/// partition's per-row `(e0, e1)` error pairs.
pub(crate) fn column_sweep<B, F, K>(
    sched: &Scheduler<'_, B>,
    labels: SweepLabels,
    data: &B::Dataset<PartitionSlot>,
    master: &mut BitMatrix,
    make_task: F,
) -> Broadcast<ColumnDecision>
where
    B: ExecutionBackend,
    F: Fn(usize, Option<Broadcast<ColumnDecision>>) -> K,
    K: PartitionTask<PartitionSlot, Vec<(u64, u64)>>,
{
    let cols: Vec<usize> = (0..master.cols()).collect();
    column_sweep_subset(sched, labels, data, master, &cols, make_task)
        .expect("rank ≥ 1 means a non-empty column list")
}

/// [`column_sweep`] restricted to an explicit column subset — the
/// bounded re-sweep of the incremental-update path. Columns run in the
/// order given (callers pass them ascending for determinism); columns
/// not listed keep their current values in `master` and on the workers.
/// Returns `None` when `cols` is empty (nothing swept, nothing to
/// finish).
pub(crate) fn column_sweep_subset<B, F, K>(
    sched: &Scheduler<'_, B>,
    labels: SweepLabels,
    data: &B::Dataset<PartitionSlot>,
    master: &mut BitMatrix,
    cols: &[usize],
    make_task: F,
) -> Option<Broadcast<ColumnDecision>>
where
    B: ExecutionBackend,
    F: Fn(usize, Option<Broadcast<ColumnDecision>>) -> K,
    K: PartitionTask<PartitionSlot, Vec<(u64, u64)>>,
{
    let nrows = master.rows();
    let mut pending: Option<Broadcast<ColumnDecision>> = None;
    for &col in cols {
        let errs: Vec<Vec<(u64, u64)>> =
            sched.map_partitions_task(labels.sweep, data, make_task(col, pending.clone()));
        // Driver: sum errors across partitions, pick the smaller per row
        // (ties prefer 0 — the sparser factor).
        let mut decision = BitVec::zeros(nrows);
        for r in 0..nrows {
            let (mut e0, mut e1) = (0u64, 0u64);
            for per_part in &errs {
                e0 += per_part[r].0;
                e1 += per_part[r].1;
            }
            if e1 < e0 {
                decision.set(r, true);
            }
            master.set(r, col, e1 < e0);
        }
        sched.charge_driver(labels.reduce, nrows as u64 * (errs.len() as u64 + 1));
        pending = Some(sched.broadcast(
            labels.decision,
            ColumnDecision {
                col,
                values: decision,
            },
            (nrows as u64).div_ceil(8) + 8,
        ));
    }
    pending
}
