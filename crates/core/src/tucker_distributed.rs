//! Distributed Boolean Tucker factorization on the dataflow-plan IR.
//!
//! The key observation that lets Tucker reuse DBTF's whole distributed
//! machinery: in the mode-1 update, the reconstruction of row `i`
//! restricted to PVM slab `k` is
//!
//! ```text
//! ⋁_{p: a_ip} ⋁_{(q,r): g_pqr ∧ c_kr} b_{:q}ᵀ
//!   = Boolean sum of the rows of Bᵀ selected by  ⋁_{p: a_ip} mask(p, k),
//! where  mask(p, k) = ⋁_{r: c_kr} { q : g_pqr } .
//! ```
//!
//! A Boolean sum of row-subsets of `Bᵀ` is the row-subset of the union
//! mask — so a *single* fetch from the same [`RowSumCache`] the CP path
//! caches serves the Tucker update too. The only difference from CP is how
//! the cache key is assembled: CP ANDs the factor row with the `M_f` row;
//! Tucker ORs per-column core masks. The column sweep itself — one
//! superstep per column, driver-side reduce, decision broadcast — is the
//! shared `crate::sweep::column_sweep` helper, reused verbatim by both
//! drivers.
//!
//! The core update distributes as one superstep per core entry: partitions
//! count, within their column range, the block cells that are exclusively
//! covered by (or would be newly covered by) the entry, split by the cell's
//! value in `X`; the driver applies the greedy flip and re-broadcasts —
//! exactly the sequential [`crate::tucker`] greedy, so the two
//! implementations agree bit-for-bit (enforced by differential tests).
//!
//! Like the CP driver, everything here is generic over an
//! [`ExecutionBackend`] and emits operators through a [`Scheduler`].

use dbtf_cluster::{ExecutionBackend, PlanTrace, Scheduler, TaskContext};
use dbtf_telemetry::{SpanKind, Tracer};
use dbtf_tensor::{BitMatrix, BitVec, BoolTensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cache::{GroupLayout, RowSumCache};
use crate::config::DbtfError;
use crate::driver::distribute_unfoldings;
use crate::partition::ModePartition;
use crate::sweep::{column_sweep, SweepLabels};
use crate::tucker::{
    init_set, revive_dead_components, TuckerConfig, TuckerFactorization, TuckerResult,
};
use crate::update::PartitionSlot;

/// Worker-side state of one partition during a distributed Tucker factor
/// update.
pub(crate) struct TuckerWorkState {
    layout: GroupLayout,
    /// Working copy of the factor being updated (`P × R_t`, `R_t ≤ 64`).
    factor: BitMatrix,
    /// `block_masks[b][t]` = the `R_in`-bit mask of inner-factor columns
    /// that column `t` of the updating factor reconstructs within block
    /// `b`'s slab (the `mask(t, slab)` of the module docs).
    block_masks: Vec<Vec<u64>>,
    cache: RowSumCache,
}

impl TuckerWorkState {
    fn build(
        part: &ModePartition,
        factor: &BitMatrix,
        mf: &BitMatrix,
        core_mat: &[Vec<u64>],
        ms: &BitMatrix,
        v_limit: usize,
    ) -> (Self, u64) {
        let r_in = ms.cols();
        let r_t = factor.cols();
        let layout = GroupLayout::new(r_in, v_limit);
        let cache = RowSumCache::build(ms, &layout);
        let mut ops = cache.num_entries() as u64 * part.slab_width.div_ceil(64) as u64;
        let mut block_masks = Vec::with_capacity(part.blocks.len());
        for block in &part.blocks {
            let mut masks = vec![0u64; r_t];
            for (t, mask) in masks.iter_mut().enumerate() {
                for (oc, &m) in core_mat[t].iter().enumerate() {
                    if mf.get(block.slab, oc) {
                        *mask |= m;
                    }
                }
            }
            ops += (r_t * core_mat.first().map_or(0, Vec::len)) as u64;
            block_masks.push(masks);
        }
        (
            TuckerWorkState {
                layout,
                factor: factor.clone(),
                block_masks,
                cache,
            },
            ops,
        )
    }

    fn apply_column(&mut self, col: usize, values: &BitVec) {
        for r in 0..self.factor.rows() {
            self.factor.set(r, col, values.get(r));
        }
    }

    /// Union mask of the active columns of row `row`, optionally skipping
    /// one column (the one whose candidates are being scored).
    fn union_mask(&self, block: usize, row: usize, skip: Option<usize>) -> u64 {
        let masks = &self.block_masks[block];
        let mut union = 0u64;
        for (t, &mask) in masks.iter().enumerate() {
            if Some(t) != skip && self.factor.get(row, t) {
                union |= mask;
            }
        }
        union
    }

    /// Fetches the cached Boolean row summation for an `R_in`-bit union
    /// mask and scores it against the sparse actual row of `block`.
    fn block_error(
        &self,
        part: &ModePartition,
        block: usize,
        row: usize,
        union: u64,
        scratch: &mut [u64],
    ) -> (u64, u64) {
        let cache = &self.cache;
        let ngroups = self.layout.num_groups();
        let actual = part.blocks[block].row(row);
        let width_off = part.blocks[block].inner_lo as usize;
        let nnz = actual.len() as u64;
        let mut ops = 2 + nnz;
        let (inter, pop) = if ngroups == 1 {
            let (cached, pop) = cache.fetch_single(union);
            let mut inter = 0u64;
            for &o in actual {
                let bit = o as usize + width_off;
                inter += u64::from(cached.words()[bit / 64] & (1u64 << (bit % 64)) != 0);
            }
            // Popcount restricted to the block's columns.
            let pop_in_block = if part.blocks[block].inner_len as usize == cache.width() {
                pop as u64
            } else {
                ops += (part.blocks[block].inner_len as u64).div_ceil(64);
                cached.count_range(width_off, part.blocks[block].inner_len as usize) as u64
            };
            (inter, pop_in_block)
        } else {
            let mut keys = vec![0u64; ngroups];
            for (g, key) in keys.iter_mut().enumerate() {
                let (first, bits) = self.layout.group(g);
                *key = (union >> first) & (u64::MAX >> (64 - bits));
            }
            let words = cache.width().div_ceil(64);
            cache.fetch_or(&keys, &mut scratch[..words]);
            ops += (ngroups as u64 + 1) * words as u64;
            let mut inter = 0u64;
            let mut pop = 0u64;
            for &o in actual {
                let bit = o as usize + width_off;
                inter += u64::from(scratch[bit / 64] & (1u64 << (bit % 64)) != 0);
            }
            let lo = width_off;
            let len = part.blocks[block].inner_len as usize;
            let full = BitVec::from_words(cache.width(), scratch[..words].to_vec());
            pop += full.count_range(lo, len) as u64;
            (inter, pop)
        };
        (pop + nnz - 2 * inter, ops)
    }
}

/// Distributed Boolean Tucker factorization (see the module docs).
///
/// Produces bit-for-bit the same factorization as
/// [`crate::tucker::tucker_factorize`] for the same configuration, for any
/// backend, worker count, or partition count. All core ranks must be ≤ 64
/// (masks are single machine words).
pub fn tucker_factorize_distributed<B: ExecutionBackend>(
    backend: &B,
    x: &BoolTensor,
    config: &TuckerConfig,
) -> Result<TuckerResult, DbtfError> {
    tucker_factorize_distributed_traced(backend, x, config).map(|(result, _)| result)
}

/// [`tucker_factorize_distributed`], additionally returning the executed
/// dataflow plan (see [`crate::factorize_traced`] for the trace contract).
pub fn tucker_factorize_distributed_traced<B: ExecutionBackend>(
    backend: &B,
    x: &BoolTensor,
    config: &TuckerConfig,
) -> Result<(TuckerResult, PlanTrace), DbtfError> {
    tucker_factorize_distributed_instrumented(backend, x, config, &Tracer::disabled())
}

/// [`tucker_factorize_distributed_traced`], additionally recording a
/// hierarchical span trace into `tracer` (see
/// [`crate::factorize_instrumented`] for the span model and determinism
/// contract).
pub fn tucker_factorize_distributed_instrumented<B: ExecutionBackend>(
    backend: &B,
    x: &BoolTensor,
    config: &TuckerConfig,
    tracer: &Tracer,
) -> Result<(TuckerResult, PlanTrace), DbtfError> {
    config.validate()?;
    if config.ranks.iter().any(|&r| r > 64) {
        return Err(DbtfError::InvalidConfig(
            "distributed Tucker supports core ranks up to 64".into(),
        ));
    }
    let dims = x.dims();
    if dims.contains(&0) {
        return Err(DbtfError::EmptyTensor);
    }
    let sched = Scheduler::with_tracer(backend, tracer.clone());
    let root = tracer.begin(
        SpanKind::Run,
        "tucker.factorize",
        backend.metrics().virtual_time.as_secs_f64(),
    );
    let result = run(&sched, x, config);
    tracer.end(root, backend.metrics().virtual_time.as_secs_f64());
    if tracer.is_enabled() {
        for (name, value) in backend.metrics().named_counters() {
            tracer.set_counter(name, value);
        }
        backend.set_task_event_capture(false);
    }
    Ok((result, sched.into_trace()))
}

/// The driver body: everything after validation, emitting through `sched`.
fn run<B: ExecutionBackend>(
    sched: &Scheduler<'_, B>,
    x: &BoolTensor,
    config: &TuckerConfig,
) -> TuckerResult {
    let n_partitions = sched.backend().suggested_partitions();
    // The Tucker driver is RAM-only: its tensors are the small core-search
    // workloads, so the out-of-core path adds no value there (DESIGN.md
    // §1.2.7). RAM distribution is infallible.
    let [px1, px2, px3] = sched
        .phase("tucker.distribute", |s| {
            distribute_unfoldings(s, x, n_partitions, crate::config::StorageKind::Ram, None)
        })
        .expect("RAM distribution cannot fail")
        .0;

    let mut best: Option<(TuckerFactorization, u64)> = None;
    for l in 0..config.initial_sets {
        let mut rng = StdRng::seed_from_u64(
            config.seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(l as u64 + 1),
        );
        let set = init_set(x, config, &mut rng);
        let (set, error) = sched.phase("tucker.iteration", |s| {
            distributed_round(s, &px1, &px2, &px3, set)
        });
        if best.as_ref().is_none_or(|(_, be)| error < *be) {
            best = Some((set, error));
        }
    }
    let (mut factorization, mut error) = best.expect("initial_sets ≥ 1");
    let mut iteration_errors = vec![error];
    let mut converged = error == 0;
    let threshold = config.convergence_threshold * x.nnz().max(1) as f64;
    for t in 2..=config.max_iters {
        if converged {
            break;
        }
        let mut rng = StdRng::seed_from_u64(config.seed ^ (t as u64).wrapping_mul(0xc0de));
        let revived = revive_dead_components(x, factorization.clone(), &mut rng);
        let (next, next_error) = sched.phase("tucker.iteration", |s| {
            distributed_round(s, &px1, &px2, &px3, revived)
        });
        if next_error > error {
            iteration_errors.push(error);
            continue;
        }
        let delta = error.abs_diff(next_error) as f64;
        let stalled = next == factorization;
        factorization = next;
        error = next_error;
        iteration_errors.push(error);
        if (delta <= threshold && stalled) || error == 0 {
            converged = true;
        }
    }
    let relative_error = if x.nnz() == 0 {
        if error == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        error as f64 / x.nnz() as f64
    };
    TuckerResult {
        iterations: iteration_errors.len(),
        converged,
        relative_error,
        error,
        factorization,
        iteration_errors,
    }
}

/// One distributed round, mirroring the sequential `update_round`:
/// core, A, B, C, core, then the exact error.
fn distributed_round<B: ExecutionBackend>(
    sched: &Scheduler<'_, B>,
    px1: &B::Dataset<PartitionSlot>,
    px2: &B::Dataset<PartitionSlot>,
    px3: &B::Dataset<PartitionSlot>,
    set: TuckerFactorization,
) -> (TuckerFactorization, u64) {
    let TuckerFactorization { core, a, b, c } = set;
    let core = update_core_distributed(sched, px1, &core, &a, &b, &c);
    // Mode 1: outer C, inner B; core axes (t=p, oc=r, in=q).
    let a = update_factor_distributed(sched, px1, &a, &c, &core_masks(&core, 0, 2, 1), &b);
    // Mode 2: outer C, inner A; core axes (t=q, oc=r, in=p).
    let b = update_factor_distributed(sched, px2, &b, &c, &core_masks(&core, 1, 2, 0), &a);
    // Mode 3: outer B, inner A; core axes (t=r, oc=q, in=p).
    let c = update_factor_distributed(sched, px3, &c, &b, &core_masks(&core, 2, 1, 0), &a);
    let core = update_core_distributed(sched, px1, &core, &a, &b, &c);
    let error = distributed_error(sched, px1, &a, &c, &core_masks(&core, 0, 2, 1), &b);
    (TuckerFactorization { core, a, b, c }, error)
}

/// `core_mat[t][oc]` = the `R_in`-bit mask `{ in : g(entry) = 1 }` where
/// the core entry has coordinate `t` on `t_axis`, `oc` on `oc_axis` and
/// `in` on `in_axis`.
fn core_masks(core: &BoolTensor, t_axis: usize, oc_axis: usize, in_axis: usize) -> Vec<Vec<u64>> {
    let dims = core.dims();
    let mut mat = vec![vec![0u64; dims[oc_axis]]; dims[t_axis]];
    for e in core.iter() {
        let t = e[t_axis] as usize;
        let oc = e[oc_axis] as usize;
        let inn = e[in_axis] as usize;
        mat[t][oc] |= 1u64 << inn;
    }
    mat
}

fn matrix_bytes(m: &BitMatrix) -> u64 {
    ((m.rows() * m.cols()) as u64).div_ceil(8)
}

fn update_factor_distributed<B: ExecutionBackend>(
    sched: &Scheduler<'_, B>,
    data: &B::Dataset<PartitionSlot>,
    factor: &BitMatrix,
    mf: &BitMatrix,
    core_mat: &[Vec<u64>],
    ms: &BitMatrix,
) -> BitMatrix {
    let r_t = factor.cols();
    let bytes = matrix_bytes(factor)
        + matrix_bytes(mf)
        + matrix_bytes(ms)
        + (core_mat.len() * core_mat.first().map_or(0, Vec::len) * 8) as u64;
    let payload = sched.broadcast(
        "tucker.update.factors",
        (factor.clone(), mf.clone(), core_mat.to_vec(), ms.clone()),
        bytes,
    );

    // Begin: build the per-partition state.
    sched.map_partitions("tucker.update.begin", data, {
        let payload = payload.clone();
        move |_idx, slot: &mut PartitionSlot, ctx| {
            let (factor, mf, core_mat, ms) = payload.get();
            let (state, ops) = TuckerWorkState::build(&slot.part, factor, mf, core_mat, ms, 15);
            ctx.charge_kernel("kernel.build_cache", ops);
            slot.tucker = Some(state);
        }
    });

    // The Tucker sweep task stays a plain closure (no wire registration),
    // so distributed Tucker runs on the in-process backends only — the
    // networked backend rejects it with instructions at the first
    // superstep.
    let mut master = factor.clone();
    let last = column_sweep(
        sched,
        SweepLabels {
            sweep: "tucker.update.sweep",
            reduce: "tucker.update.reduce",
            decision: "tucker.update.decision",
        },
        data,
        &mut master,
        move |col, prev| {
            move |_idx: usize, slot: &mut PartitionSlot, ctx: &mut TaskContext| {
                if let Some(decided) = prev.as_deref() {
                    let state = slot.tucker.as_mut().expect("tucker update not begun");
                    state.apply_column(decided.col, &decided.values);
                    ctx.charge_kernel("kernel.apply_column", decided.values.len() as u64);
                }
                let state = slot.tucker.as_ref().expect("tucker update not begun");
                let part = &slot.part;
                let mut errs = vec![(0u64, 0u64); part.nrows];
                let mut scratch = vec![0u64; part.slab_width.div_ceil(64).max(1)];
                let mut ops = 0u64;
                for b in 0..part.blocks.len() {
                    let mask_t = state.block_masks[b][col];
                    if mask_t == 0 {
                        continue; // both candidates reconstruct identically
                    }
                    for (row, err) in errs.iter_mut().enumerate() {
                        let base = state.union_mask(b, row, Some(col));
                        let (e0, o0) = state.block_error(part, b, row, base, &mut scratch);
                        let (e1, o1) = state.block_error(part, b, row, base | mask_t, &mut scratch);
                        err.0 += e0;
                        err.1 += e1;
                        ops += o0 + o1 + r_t as u64;
                    }
                }
                ctx.charge_kernel("kernel.column_errors", ops);
                ctx.set_result_bytes(errs.len() as u64 * 16);
                errs
            }
        },
    );

    // Finish: apply the last column and drop the state.
    sched.map_partitions("tucker.update.finish", data, move |_idx, slot, ctx| {
        let state = slot.tucker.as_mut().expect("tucker update not begun");
        let decided = last.get();
        state.apply_column(decided.col, &decided.values);
        ctx.charge_kernel("kernel.apply_column", decided.values.len() as u64);
        slot.tucker = None;
    });
    // Every partition is back to its distribute-time state (`part` is never
    // mutated, `tucker` is None again), so crash recovery no longer needs
    // to replay this update's supersteps.
    sched.reset_lineage(data);
    master
}

/// The exact reconstruction error under the current model, computed over
/// the mode-1 partitions.
fn distributed_error<B: ExecutionBackend>(
    sched: &Scheduler<'_, B>,
    data: &B::Dataset<PartitionSlot>,
    factor: &BitMatrix,
    mf: &BitMatrix,
    core_mat: &[Vec<u64>],
    ms: &BitMatrix,
) -> u64 {
    let payload = sched.broadcast(
        "tucker.error.factors",
        (factor.clone(), mf.clone(), core_mat.to_vec(), ms.clone()),
        matrix_bytes(factor) + matrix_bytes(mf) + matrix_bytes(ms),
    );
    let errors: Vec<u64> =
        sched.map_partitions("tucker.error.map", data, move |_idx, slot, ctx| {
            let (factor, mf, core_mat, ms) = payload.get();
            let (state, build_ops) =
                TuckerWorkState::build(&slot.part, factor, mf, core_mat, ms, 15);
            let part = &slot.part;
            let mut scratch = vec![0u64; part.slab_width.div_ceil(64).max(1)];
            let mut err = 0u64;
            let mut ops = build_ops;
            for b in 0..part.blocks.len() {
                for row in 0..part.nrows {
                    let union = state.union_mask(b, row, None);
                    let (e, o) = state.block_error(part, b, row, union, &mut scratch);
                    err += e;
                    ops += o;
                }
            }
            ctx.charge_kernel("kernel.partition_error", ops);
            ctx.set_result_bytes(8);
            err
        });
    errors.iter().sum()
}

/// One distributed greedy core update: the driver walks the entries in the
/// sequential order; for each non-empty block, one superstep collects the
/// exact flip delta (exclusively-covered / newly-covered cell counts split
/// by the cell's value in `X`) and the driver applies the greedy decision.
fn update_core_distributed<B: ExecutionBackend>(
    sched: &Scheduler<'_, B>,
    px1: &B::Dataset<PartitionSlot>,
    core: &BoolTensor,
    a: &BitMatrix,
    b: &BitMatrix,
    c: &BitMatrix,
) -> BoolTensor {
    let [r1, r2, r3] = core.dims();
    let factors = sched.broadcast(
        "tucker.core.factors",
        (a.clone(), b.clone(), c.clone()),
        matrix_bytes(a) + matrix_bytes(b) + matrix_bytes(c),
    );
    let mut entries: Vec<[u32; 3]> = core.iter().collect();
    for p in 0..r1 {
        for q in 0..r2 {
            for r in 0..r3 {
                let e = [p as u32, q as u32, r as u32];
                let active = entries.binary_search(&e).is_ok();
                // Empty blocks are left alone (sequential semantics): the
                // driver can see emptiness from the master factors.
                if a.column(p).count_ones() == 0
                    || b.column(q).count_ones() == 0
                    || c.column(r).count_ones() == 0
                {
                    continue;
                }
                let current = sched.broadcast(
                    "tucker.core.entries",
                    entries.clone(),
                    entries.len() as u64 * 6 + 16,
                );
                let counts: Vec<(u64, u64)> = sched.map_partitions("tucker.core.count", px1, {
                    let factors = factors.clone();
                    let current = current.clone();
                    move |_idx, slot: &mut PartitionSlot, ctx| {
                        let (a, b, c) = factors.get();
                        let (ones, zeros, ops) =
                            flip_delta(&slot.part, current.get(), e, active, a, b, c);
                        ctx.charge_kernel("kernel.flip_delta", ops);
                        ctx.set_result_bytes(16);
                        (ones, zeros)
                    }
                });
                let ones: u64 = counts.iter().map(|&(o, _)| o).sum();
                let zeros: u64 = counts.iter().map(|&(_, z)| z).sum();
                sched.charge_driver("tucker.core.reduce", counts.len() as u64);
                if active {
                    // delta = ones − zeros; flip off when delta ≤ 0.
                    if ones <= zeros {
                        let idx = entries.binary_search(&e).expect("active entry present");
                        entries.remove(idx);
                    }
                } else {
                    // delta = zeros − ones; flip on when delta < 0.
                    if ones > zeros {
                        let idx = entries
                            .binary_search(&e)
                            .expect_err("inactive entry absent");
                        entries.insert(idx, e);
                    }
                }
            }
        }
    }
    BoolTensor::from_entries([r1, r2, r3], entries)
}

/// Counts, within this mode-1 partition, the cells of `entry`'s block that
/// are exclusively covered by it (`active = true`) or would be newly
/// covered (`active = false`), split into `(x == 1, x == 0)`.
fn flip_delta(
    part: &ModePartition,
    core_entries: &[[u32; 3]],
    entry: [u32; 3],
    active: bool,
    a: &BitMatrix,
    b: &BitMatrix,
    c: &BitMatrix,
) -> (u64, u64, u64) {
    let [p, q, r] = entry;
    let is: Vec<usize> = a.column(p as usize).iter_ones().collect();
    let mut ones = 0u64;
    let mut zeros = 0u64;
    let mut ops = 0u64;
    for block in &part.blocks {
        let k = block.slab;
        if !c.get(k, r as usize) {
            continue;
        }
        let lo = block.inner_lo as usize;
        let hi = lo + block.inner_len as usize;
        for j in b.column(q as usize).iter_ones() {
            if j < lo || j >= hi {
                continue;
            }
            for &i in &is {
                ops += core_entries.len() as u64 + 1;
                // Covered by another active entry?
                let covered_by_other = core_entries.iter().any(|&[p2, q2, r2]| {
                    [p2, q2, r2] != entry
                        && a.get(i, p2 as usize)
                        && b.get(j, q2 as usize)
                        && c.get(k, r2 as usize)
                });
                // For an active entry we need exclusively-covered cells;
                // for an inactive one, cells not covered at all. Both are
                // "no other active entry covers this cell".
                if covered_by_other {
                    continue;
                }
                let _ = active;
                let x_is_one = block.row(i).binary_search(&((j - lo) as u32)).is_ok();
                if x_is_one {
                    ones += 1;
                } else {
                    zeros += 1;
                }
            }
        }
    }
    (ones, zeros, ops)
}
