//! Incremental factor updates: bounded column re-sweeps after a tensor
//! delta (`dbtf update`).
//!
//! The full driver re-factorizes from scratch; this module updates an
//! existing factor set after a *small* change to the tensor. The key
//! observations, both consequences of how Algorithm 4 already works:
//!
//! 1. **The unfoldings don't need rebuilding.** Each delta cell maps
//!    through the Equation-1 index maps to exactly one `(row, column)`
//!    of each mode's unfolding, so a copy-on-write
//!    [`OverlayUnfolding`] over the *old* unfolding (heap or mmap)
//!    presents the updated tensor to the partitioner unchanged — and
//!    produces partitions bit-identical to a rebuild.
//! 2. **Only incident columns need re-sweeping.** A delta cell
//!    `(i, j, k)` interacts with factor column `r` only through the
//!    rows `a_i`, `b_j`, `c_k`; columns with no bit set in any of those
//!    rows for any delta cell scored the same before and after the
//!    delta, so the greedy sweep would reproduce them verbatim. The
//!    re-sweep is therefore bounded to [`affected_columns`] — unless a
//!    *set* cell is incident to no column at all, in which case no
//!    bounded subset could ever cover it and the sweep degrades
//!    gracefully to all columns.
//!
//! Because every column decision picks the per-row error minimum *with
//! the current value among the candidates*, a re-sweep over any column
//! subset can never increase the reconstruction error on the updated
//! tensor: the result is proven no worse than the pre-delta factors
//! (and the differential suite in `crates/oracle` pins the stronger
//! property that it is *bit-identical* to a full-rank refactorization
//! restricted to the same columns, across all backends and storage
//! kinds).

use std::sync::Arc;
use std::time::Instant;

use dbtf_cluster::{ExecutionBackend, PlanTrace, Scheduler};
use dbtf_telemetry::Tracer;
use dbtf_tensor::{BoolTensor, MmapUnfolding, Mode, OverlayUnfolding, TensorDelta, Unfolding};

use crate::config::{DbtfConfig, DbtfError, StorageKind};
use crate::driver::{catch_cluster, update_factor_subset, UpdateOutcome, DELTA_UPDATE_LABELS};
use crate::factors::FactorSet;
use crate::net_tasks;
use crate::ooc::RunStores;
use crate::partition::{partition_unfolding, partition_unfolding_one};
use crate::stats::DbtfStats;
use crate::update::PartitionSlot;

/// The outcome of an incremental [`update_factors`] run.
#[derive(Clone, Debug)]
pub struct DeltaResult {
    /// The updated factor set.
    pub factors: FactorSet,
    /// Reconstruction error of the updated factors on the *updated*
    /// tensor. Never exceeds [`DeltaResult::pre_error`].
    pub error: u64,
    /// Reconstruction error of the *pre-delta* factors on the updated
    /// tensor — the baseline the re-sweep is proven no worse than.
    pub pre_error: u64,
    /// The columns the bounded re-sweep ran over, ascending. Empty when
    /// the delta touched no column (the factors are returned unchanged).
    pub affected_columns: Vec<usize>,
    /// Number of re-sweep rounds executed.
    pub iterations: usize,
    /// Reconstruction error after each round.
    pub iteration_errors: Vec<u64>,
    /// Whether the rounds stopped on the convergence criterion.
    pub converged: bool,
    /// Resource accounting (the `delta.*` operator family).
    pub stats: DbtfStats,
}

/// The factor columns a delta is incident to, ascending and
/// deduplicated — the bound of the re-sweep.
///
/// Column `r` is affected iff some delta cell `(i, j, k)` has a one in
/// row `i` of `A`, row `j` of `B`, or row `k` of `C` at column `r`. A
/// *set* cell incident to no column at all can never be covered by
/// re-sweeping a subset, so it widens the answer to every column.
///
/// # Panics
///
/// Panics if a delta coordinate is out of range for the factor row
/// counts — deltas are validated against the tensor dims at parse time,
/// and the factors must share those dims.
pub fn affected_columns(delta: &TensorDelta, factors: &FactorSet) -> Vec<usize> {
    let rank = factors.rank();
    let mut hit = vec![false; rank];
    let mut orphan_set = false;
    for cell in delta.cells() {
        let [i, j, k] = [
            cell.coord[0] as usize,
            cell.coord[1] as usize,
            cell.coord[2] as usize,
        ];
        let mut any = false;
        for (r, hit_r) in hit.iter_mut().enumerate() {
            if factors.a.get(i, r) || factors.b.get(j, r) || factors.c.get(k, r) {
                *hit_r = true;
                any = true;
            }
        }
        if cell.set && !any {
            orphan_set = true;
        }
    }
    if orphan_set {
        return (0..rank).collect();
    }
    hit.iter()
        .enumerate()
        .filter_map(|(r, &h)| h.then_some(r))
        .collect()
}

/// Incrementally updates `factors` after applying `delta` to `x` (the
/// *pre-delta* tensor), on the given backend.
///
/// Runs a bounded greedy re-sweep of only the [`affected_columns`]
/// through the same superstep pipeline as [`crate::factorize`] — begin /
/// per-column sweep / finish, metered under `delta.*` operator labels —
/// over copy-on-write overlays of the existing unfoldings. Deterministic
/// for a fixed `(config, x, delta, factors)` regardless of backend,
/// worker count, or partitioning, exactly like the full driver.
///
/// # Errors
///
/// Returns [`DbtfError::InvalidConfig`] when the config is bad or the
/// factors/delta do not match `x`'s shape, and [`DbtfError::EmptyTensor`]
/// if any mode of `x` has size 0.
pub fn update_factors<B: ExecutionBackend>(
    backend: &B,
    x: &BoolTensor,
    delta: &TensorDelta,
    factors: &FactorSet,
    config: &DbtfConfig,
) -> Result<DeltaResult, DbtfError> {
    update_factors_traced(backend, x, delta, factors, config).map(|(result, _)| result)
}

/// [`update_factors`], additionally returning the executed dataflow
/// plan. The trace's fingerprint is identical across backends, thread
/// counts, and storage kinds for the same inputs — the delta pipeline
/// inherits the behavior-preservation invariant of the full driver.
pub fn update_factors_traced<B: ExecutionBackend>(
    backend: &B,
    x: &BoolTensor,
    delta: &TensorDelta,
    factors: &FactorSet,
    config: &DbtfConfig,
) -> Result<(DeltaResult, PlanTrace), DbtfError> {
    config.validate()?;
    let dims = x.dims();
    if dims.contains(&0) {
        return Err(DbtfError::EmptyTensor);
    }
    if delta.dims() != dims {
        return Err(DbtfError::InvalidConfig(format!(
            "delta was validated for dims {:?} but the tensor is {dims:?}",
            delta.dims()
        )));
    }
    let shape_ok = factors.a.rows() == dims[0]
        && factors.b.rows() == dims[1]
        && factors.c.rows() == dims[2]
        && factors.rank() == config.rank
        && factors.b.cols() == config.rank
        && factors.c.cols() == config.rank;
    if !shape_ok {
        return Err(DbtfError::InvalidConfig(format!(
            "factors are {}×{}/{}×{}/{}×{} but this update needs {}×{r}/{}×{r}/{}×{r}",
            factors.a.rows(),
            factors.a.cols(),
            factors.b.rows(),
            factors.b.cols(),
            factors.c.rows(),
            factors.c.cols(),
            dims[0],
            dims[1],
            dims[2],
            r = config.rank,
        )));
    }
    let sched = Scheduler::with_tracer(backend, Tracer::disabled());
    let result = run_delta(&sched, x, delta, factors, config);
    Ok((result?, sched.into_trace()))
}

/// The delta-driver body: everything after validation.
fn run_delta<B: ExecutionBackend>(
    sched: &Scheduler<'_, B>,
    x: &BoolTensor,
    delta: &TensorDelta,
    factors: &FactorSet,
    config: &DbtfConfig,
) -> Result<DeltaResult, DbtfError> {
    let wall_start = Instant::now();
    let metrics_start = sched.backend().metrics();
    let n_partitions = config
        .partitions
        .unwrap_or_else(|| sched.backend().suggested_partitions());

    // ---- Driver prologue: the updated tensor, the baseline error, and --
    // the re-sweep bound. All O(|X| + |Δ|·R) driver work, metered.
    let x_new = delta.apply(x);
    sched.charge_driver("delta.apply", (x.nnz() + delta.len()) as u64);
    let pre_error = factors.error(&x_new) as u64;
    sched.charge_driver("delta.pre_error", x_new.nnz().max(1) as u64);
    let cols = affected_columns(delta, factors);
    sched.charge_driver(
        "delta.affected",
        (delta.len() as u64 * config.rank as u64).max(1),
    );

    let stats = |partition_bytes, peak_cache_bytes| DbtfStats {
        wall_secs: wall_start.elapsed().as_secs_f64(),
        virtual_secs: sched
            .backend()
            .metrics()
            .since(&metrics_start)
            .virtual_time
            .as_secs_f64(),
        comm: sched.backend().metrics().since(&metrics_start),
        n_partitions,
        partition_bytes,
        peak_cache_bytes,
    };

    if cols.is_empty() {
        // No column is incident to the delta: the greedy sweep would
        // reproduce every column verbatim, so don't run it.
        return Ok(DeltaResult {
            factors: factors.clone(),
            error: pre_error,
            pre_error,
            affected_columns: cols,
            iterations: 0,
            iteration_errors: Vec::new(),
            converged: true,
            stats: stats(0, 0),
        });
    }

    // ---- Distribute the three overlaid unfoldings (no rebuild). --------
    let ([px1, px2, px3], partition_bytes) = catch_cluster(|| {
        sched.phase("delta.distribute", |s| {
            distribute_overlays(
                s,
                x,
                delta,
                n_partitions,
                config.storage,
                config.spill_dir.as_deref(),
            )
        })
    })??;

    // ---- Bounded re-sweep rounds over the affected columns only. -------
    let threshold = config.convergence_threshold * x_new.nnz().max(1) as f64;
    let mut set = factors.clone();
    let mut error = pre_error;
    let mut iteration_errors = Vec::new();
    let mut converged = false;
    let mut peak_cache_bytes = 0u64;
    for _t in 1..=config.max_iters {
        let (next, next_error, cache) = catch_cluster(|| {
            sched.phase("delta.iteration", |s| {
                delta_round(s, &px1, &px2, &px3, set.clone(), &cols, config)
            })
        })?;
        peak_cache_bytes = peak_cache_bytes.max(cache);
        let step = error.abs_diff(next_error) as f64;
        set = next;
        error = next_error;
        iteration_errors.push(error);
        if step <= threshold || error == 0 {
            converged = true;
            break;
        }
    }
    sched.drain();

    debug_assert!(
        error <= pre_error,
        "greedy re-sweep increased the error ({error} > {pre_error})"
    );
    Ok(DeltaResult {
        factors: set,
        error,
        pre_error,
        affected_columns: cols,
        iterations: iteration_errors.len(),
        converged,
        stats: stats(partition_bytes, peak_cache_bytes),
        iteration_errors,
    })
}

/// One re-sweep round: update A, B, C in turn over `cols` only,
/// computing the exact reconstruction error on the final mode (the
/// `delta.*`-labelled mirror of the full driver's `update_round`).
fn delta_round<B: ExecutionBackend>(
    sched: &Scheduler<'_, B>,
    px1: &B::Dataset<PartitionSlot>,
    px2: &B::Dataset<PartitionSlot>,
    px3: &B::Dataset<PartitionSlot>,
    set: FactorSet,
    cols: &[usize],
    config: &DbtfConfig,
) -> (FactorSet, u64, u64) {
    let v = config.cache_group_limit;
    let sweep = |data, a: &_, mf: &_, ms: &_, compute_error| -> UpdateOutcome {
        update_factor_subset(
            sched,
            data,
            a,
            mf,
            ms,
            v,
            compute_error,
            &DELTA_UPDATE_LABELS,
            cols,
        )
    };
    let o1 = sweep(px1, &set.a, &set.c, &set.b, false);
    let a = o1.a;
    let o2 = sweep(px2, &set.b, &set.c, &a, false);
    let b = o2.a;
    let o3 = sweep(px3, &set.c, &b, &a, true);
    let c = o3.a;
    let error = o3.error.expect("error requested");
    let cache = o1.cache_bytes.max(o2.cache_bytes).max(o3.cache_bytes);
    (FactorSet { a, b, c }, error, cache)
}

/// The overlay mirror of the full driver's `distribute_unfoldings`:
/// partitions each mode's *patched* unfolding — old base plus
/// copy-on-write delta rows — and distributes it with full shuffle
/// metering under `delta.unfold.*` labels. Lineage closures re-apply the
/// delta over the re-opened base, so a lost partition rebuilds to the
/// same patched bytes.
fn distribute_overlays<B: ExecutionBackend>(
    sched: &Scheduler<'_, B>,
    x: &BoolTensor,
    delta: &TensorDelta,
    n_partitions: usize,
    storage: StorageKind,
    spill_dir: Option<&str>,
) -> Result<([B::Dataset<PartitionSlot>; 3], u64), DbtfError> {
    let delta = Arc::new(delta.clone());
    let (source, stores) = match storage {
        StorageKind::Ram => (Some(Arc::new(x.clone())), None),
        StorageKind::Mmap => (None, Some(RunStores::build(x, spill_dir)?)),
    };
    let map_ops = (x.nnz() + delta.len()) as u64;
    let mut partition_bytes = 0u64;
    let mut datasets = Vec::with_capacity(3);
    for mode in Mode::ALL {
        let parts = match &stores {
            None => {
                let base = Unfolding::new(x, mode);
                let overlay = OverlayUnfolding::new(&base, &delta);
                sched.charge_driver("delta.unfold.map", map_ops);
                partition_unfolding(&overlay, n_partitions)
            }
            Some(stores) => {
                let base = stores.open(mode)?;
                let overlay = OverlayUnfolding::new(&base, &delta);
                sched.charge_driver("delta.unfold.map", map_ops);
                partition_unfolding(&overlay, n_partitions)
            }
        };
        let elems: Vec<(PartitionSlot, u64)> = parts
            .into_iter()
            .map(|p| {
                let bytes = p.byte_size();
                (PartitionSlot::new(p), bytes)
            })
            .collect();
        partition_bytes += elems.iter().map(|e| e.1).sum::<u64>();
        let data = match (&source, &stores) {
            (Some(source), _) => {
                let rebuild_src = Arc::clone(source);
                let rebuild_delta = Arc::clone(&delta);
                sched.distribute_with_lineage("delta.unfold.distribute", elems, move |idx| {
                    let base = Unfolding::new(&rebuild_src, mode);
                    let overlay = OverlayUnfolding::new(&base, &rebuild_delta);
                    let mut parts = partition_unfolding(&overlay, n_partitions);
                    PartitionSlot::new(parts.swap_remove(idx))
                })
            }
            (None, Some(stores)) => {
                // The closure holds the spill-directory guard, so the file
                // outlives every dataset that could still replay from it.
                let guard = stores.guard();
                let path = stores.path(mode).to_path_buf();
                let rebuild_delta = Arc::clone(&delta);
                sched.distribute_with_lineage("delta.unfold.distribute", elems, move |idx| {
                    let _keep_files = &guard;
                    let base = MmapUnfolding::open(&path).unwrap_or_else(|e| {
                        panic!("lineage rebuild lost its spilled unfolding: {e}")
                    });
                    let overlay = OverlayUnfolding::new(&base, &rebuild_delta);
                    PartitionSlot::new(partition_unfolding_one(&overlay, idx, n_partitions))
                })
            }
            (None, None) => unreachable!("one storage root always exists"),
        };
        drop(sched.map_partitions_task_deferred(
            "delta.unfold.organize",
            &data,
            net_tasks::organize_task(),
        ));
        sched.reset_lineage(&data);
        datasets.push(data);
    }
    let px3 = datasets.pop().expect("three modes");
    let px2 = datasets.pop().expect("three modes");
    let px1 = datasets.pop().expect("three modes");
    Ok(([px1, px2, px3], partition_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::factorize;
    use dbtf_cluster::{Cluster, ClusterConfig, LocalBackend};
    use dbtf_tensor::DeltaCell;

    /// Two disjoint 4×4×4 combinatorial blocks in an 8×8×8 tensor —
    /// rank 2 recovers them exactly.
    fn planted() -> BoolTensor {
        let mut entries = Vec::new();
        for i in 0..4u32 {
            for j in 0..4u32 {
                for k in 0..4u32 {
                    entries.push([i, j, k]);
                    entries.push([i + 4, j + 4, k + 4]);
                }
            }
        }
        BoolTensor::from_entries([8, 8, 8], entries)
    }

    fn config() -> DbtfConfig {
        DbtfConfig {
            rank: 2,
            seed: 1,
            ..DbtfConfig::default()
        }
    }

    fn fitted(x: &BoolTensor) -> FactorSet {
        let cluster = Cluster::new(ClusterConfig::with_workers(2));
        let result = factorize(&cluster, x, &config()).unwrap();
        assert_eq!(result.error, 0, "planted blocks recover exactly");
        result.factors
    }

    fn sample_delta(x: &BoolTensor) -> TensorDelta {
        TensorDelta::new(
            x.dims(),
            vec![
                DeltaCell {
                    coord: [0, 0, 0],
                    set: false,
                },
                DeltaCell {
                    coord: [1, 2, 3],
                    set: false,
                },
                DeltaCell {
                    coord: [5, 5, 1],
                    set: true,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn resweep_is_never_worse_and_bounds_its_columns() {
        let x = planted();
        let factors = fitted(&x);
        let delta = sample_delta(&x);
        let cluster = Cluster::new(ClusterConfig::with_workers(2));
        let result = update_factors(&cluster, &x, &delta, &factors, &config()).unwrap();
        assert!(
            result.error <= result.pre_error,
            "{} > {}",
            result.error,
            result.pre_error
        );
        assert_eq!(
            result.pre_error,
            factors.error(&delta.apply(&x)) as u64,
            "baseline is the old factors scored on the new tensor"
        );
        assert!(!result.affected_columns.is_empty());
        assert!(result.affected_columns.iter().all(|&c| c < 2));
        assert_eq!(
            result.error,
            result.factors.error(&delta.apply(&x)) as u64,
            "reported error is the real reconstruction error"
        );
    }

    #[test]
    fn untouched_columns_mean_no_sweep_at_all() {
        let x = planted();
        let factors = fitted(&x);
        // Clearing an already-zero cell whose rows no column covers:
        // (0, 0, 7) has a ∈ block 1 rows for modes 1–2 — pick a cell in
        // no block instead: rows of block 1 and tube of block 2 still
        // hit columns, so build an explicitly orthogonal factor set.
        let zero = FactorSet {
            a: dbtf_tensor::BitMatrix::zeros(8, 2),
            b: dbtf_tensor::BitMatrix::zeros(8, 2),
            c: dbtf_tensor::BitMatrix::zeros(8, 2),
        };
        let delta = TensorDelta::new(
            x.dims(),
            vec![DeltaCell {
                coord: [0, 0, 7],
                set: false,
            }],
        )
        .unwrap();
        assert!(affected_columns(&delta, &zero).is_empty());
        let cluster = Cluster::new(ClusterConfig::with_workers(2));
        let result = update_factors(&cluster, &x, &delta, &zero, &config()).unwrap();
        assert_eq!(result.iterations, 0);
        assert_eq!(result.factors, zero, "factors returned unchanged");
        assert_eq!(result.error, result.pre_error);
        let _ = factors;
    }

    #[test]
    fn orphan_set_cells_widen_to_every_column() {
        let x = planted();
        let zero = FactorSet {
            a: dbtf_tensor::BitMatrix::zeros(8, 2),
            b: dbtf_tensor::BitMatrix::zeros(8, 2),
            c: dbtf_tensor::BitMatrix::zeros(8, 2),
        };
        let delta = TensorDelta::new(
            x.dims(),
            vec![DeltaCell {
                coord: [0, 0, 7],
                set: true,
            }],
        )
        .unwrap();
        assert_eq!(affected_columns(&delta, &zero), vec![0, 1]);
    }

    #[test]
    fn backends_and_storage_agree_bit_for_bit() {
        let x = planted();
        let factors = fitted(&x);
        let delta = sample_delta(&x);
        // Matched topologies (2 workers × 2 cores) and pinned partitions:
        // the plan fingerprint meters per-worker broadcast bytes, so the
        // invariant is per-topology, exactly as for the full driver.
        let cluster = Cluster::new(ClusterConfig {
            workers: 2,
            cores_per_worker: 2,
            ..ClusterConfig::default()
        });
        let local = LocalBackend::new(2, 2);
        let ram = DbtfConfig {
            partitions: Some(4),
            ..config()
        };
        let mmap = DbtfConfig {
            storage: crate::StorageKind::Mmap,
            ..ram.clone()
        };
        let (r1, t1) = update_factors_traced(&cluster, &x, &delta, &factors, &ram).unwrap();
        let (r2, t2) = update_factors_traced(&local, &x, &delta, &factors, &ram).unwrap();
        let (r3, t3) = update_factors_traced(&cluster, &x, &delta, &factors, &mmap).unwrap();
        assert_eq!(r1.factors, r2.factors, "cluster vs local");
        assert_eq!(r1.factors, r3.factors, "ram vs mmap");
        assert_eq!(r1.error, r2.error);
        assert_eq!(r1.error, r3.error);
        assert_eq!(
            t1.fingerprint(),
            t2.fingerprint(),
            "plan is backend-invariant"
        );
        assert_eq!(
            t1.fingerprint(),
            t3.fingerprint(),
            "plan is storage-invariant"
        );
        assert!(
            t1.fingerprint().contains("delta."),
            "delta supersteps meter under delta.* labels"
        );
    }

    #[test]
    fn shape_mismatches_are_typed_errors() {
        let x = planted();
        let factors = fitted(&x);
        let cluster = Cluster::new(ClusterConfig::with_workers(2));
        let wrong_dims = TensorDelta::new([4, 4, 4], Vec::new()).unwrap();
        let err = update_factors(&cluster, &x, &wrong_dims, &factors, &config()).unwrap_err();
        assert!(matches!(err, DbtfError::InvalidConfig(_)), "{err}");
        let delta = sample_delta(&x);
        let wrong_rank = DbtfConfig {
            rank: 3,
            ..config()
        };
        let err = update_factors(&cluster, &x, &delta, &factors, &wrong_rank).unwrap_err();
        assert!(matches!(err, DbtfError::InvalidConfig(_)), "{err}");
    }
}
