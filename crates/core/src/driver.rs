//! The distributed DBTF driver (paper Algorithms 2 and 4).
//!
//! The driver (the calling thread) is generic over an
//! [`ExecutionBackend`] and emits a dataflow plan through a
//! [`Scheduler`] — it never talks to the engine directly. It partitions
//! and distributes the three unfolded tensors once, then iterates factor
//! updates. One `UpdateFactor` call runs `R + 2` supersteps:
//!
//! 1. **begin** — broadcast `(A, M_f, M_s)`; every partition builds its
//!    [`WorkState`] (cached row summations, sliced caches for edge blocks).
//! 2. **column `c`** (× R) — apply the previously decided column, score
//!    both candidate values of every row's entry in column `c`, and send
//!    the per-row error pairs to the driver, which picks the smaller
//!    (Algorithm 4 lines 10–12) and broadcasts the decided column. This
//!    loop is the shared [`crate::sweep::column_sweep`].
//! 3. **finish** — apply the last column; optionally compute the exact
//!    partition-local reconstruction error (for convergence and for the
//!    first-iteration selection among the `L` initial sets); drop the
//!    caches.

use std::sync::Arc;
use std::time::Instant;

use dbtf_cluster::{ClusterError, ExecutionBackend, PlanTrace, Scheduler};
use dbtf_telemetry::{SpanKind, Tracer};
use dbtf_tensor::{BitMatrix, BoolTensor, FactorTriple, MmapUnfolding, Mode, Unfolding};

use crate::checkpoint::Checkpoint;
use crate::config::{DbtfConfig, DbtfError, StorageKind};
use crate::factors::{initial_factor_sets, FactorSet};
use crate::net_tasks;
use crate::ooc::RunStores;
use crate::partition::{partition_unfolding, partition_unfolding_one};
use crate::stats::DbtfStats;
use crate::sweep::{column_sweep_subset, SweepLabels};
use crate::update::PartitionSlot;

/// The outcome of a [`factorize`] run.
#[derive(Clone, Debug)]
pub struct DbtfResult {
    /// The best factor set found.
    pub factors: FactorSet,
    /// Final reconstruction error `|X ⊕ X̃|`.
    pub error: u64,
    /// `error / |X|` (infinite if the input is empty but the
    /// reconstruction is not).
    pub relative_error: f64,
    /// Number of iterations executed (including the first, multi-set one).
    pub iterations: usize,
    /// Whether the run stopped on the convergence criterion (rather than
    /// exhausting `max_iters`).
    pub converged: bool,
    /// Reconstruction error after each iteration.
    pub iteration_errors: Vec<u64>,
    /// Resource accounting.
    pub stats: DbtfStats,
}

pub(crate) struct UpdateOutcome {
    pub(crate) a: BitMatrix,
    pub(crate) error: Option<u64>,
    pub(crate) cache_bytes: u64,
}

/// Trace labels for the supersteps of one `UpdateFactor` call, so the
/// full-sweep CP path and the bounded delta re-sweep meter under
/// distinct `cp.*` / `delta.*` operator names.
pub(crate) struct UpdateLabels {
    /// The factor-triple `Broadcast`.
    pub factors: &'static str,
    /// The cache-building begin superstep.
    pub begin: &'static str,
    /// The apply-and-score sweep superstep (per column).
    pub sweep: &'static str,
    /// The driver-side per-row reduce (per column).
    pub reduce: &'static str,
    /// The decided-column `Broadcast` (per column).
    pub decision: &'static str,
    /// The apply-last-column / error / cache-drop finish superstep.
    pub finish: &'static str,
}

/// The labels of the full CP sweep (Algorithm 4 as written).
pub(crate) const CP_UPDATE_LABELS: UpdateLabels = UpdateLabels {
    factors: "cp.update.factors",
    begin: "cp.update.begin",
    sweep: "cp.update.sweep",
    reduce: "cp.update.reduce",
    decision: "cp.update.decision",
    finish: "cp.update.finish",
};

/// The labels of the bounded delta re-sweep (`dbtf update`).
pub(crate) const DELTA_UPDATE_LABELS: UpdateLabels = UpdateLabels {
    factors: "delta.update.factors",
    begin: "delta.update.begin",
    sweep: "delta.update.sweep",
    reduce: "delta.update.reduce",
    decision: "delta.update.decision",
    finish: "delta.update.finish",
};

/// Boolean CP-factorizes `x` at the configured rank on the given backend
/// (the paper's Algorithm 2).
///
/// Deterministic for a fixed `(config, x)` regardless of backend, worker
/// count, or partitioning — the greedy updates depend only on error sums,
/// which are invariant under how columns are split across partitions
/// (verified by the differential tests against [`crate::reference`]).
///
/// # Errors
///
/// Returns [`DbtfError::InvalidConfig`] for bad configurations and
/// [`DbtfError::EmptyTensor`] if any mode of `x` has size 0.
pub fn factorize<B: ExecutionBackend>(
    backend: &B,
    x: &BoolTensor,
    config: &DbtfConfig,
) -> Result<DbtfResult, DbtfError> {
    factorize_traced(backend, x, config).map(|(result, _)| result)
}

/// [`factorize`], additionally returning the executed dataflow plan —
/// every operator the driver emitted, with its cost/byte annotations.
/// The trace is the behavior-preservation invariant in testable form:
/// its [`PlanTrace::fingerprint`] is identical across backends, thread
/// counts, and fault plans for the same `(config, x)`.
pub fn factorize_traced<B: ExecutionBackend>(
    backend: &B,
    x: &BoolTensor,
    config: &DbtfConfig,
) -> Result<(DbtfResult, PlanTrace), DbtfError> {
    factorize_instrumented(backend, x, config, &Tracer::disabled())
}

/// [`factorize_traced`], additionally recording a hierarchical span trace
/// into `tracer`: one `Run` root, a `Phase` per driver stage and
/// iteration, an `Operator`/`Superstep` per dataflow operator, and
/// `Task`/`Kernel` child spans from the backend's task events. Every span
/// is stamped on the virtual clock (deterministic — see `DESIGN.md`
/// §1.2.4) and the wall clock; the backend's counters are exported into
/// the tracer at the end. Call `tracer.finish()` afterwards for the
/// [`dbtf_telemetry::TraceLog`]. With a disabled tracer this *is*
/// [`factorize_traced`], at the cost of one branch per operator.
pub fn factorize_instrumented<B: ExecutionBackend>(
    backend: &B,
    x: &BoolTensor,
    config: &DbtfConfig,
    tracer: &Tracer,
) -> Result<(DbtfResult, PlanTrace), DbtfError> {
    config.validate()?;
    let dims = x.dims();
    if dims.contains(&0) {
        return Err(DbtfError::EmptyTensor);
    }
    let sched = Scheduler::with_tracer(backend, tracer.clone());
    let root = tracer.begin(
        SpanKind::Run,
        "cp.factorize",
        backend.metrics().virtual_time.as_secs_f64(),
    );
    let result = run(&sched, x, config);
    tracer.end(root, backend.metrics().virtual_time.as_secs_f64());
    if tracer.is_enabled() {
        for (name, value) in backend.metrics().named_counters() {
            tracer.set_counter(name, value);
        }
        backend.set_task_event_capture(false);
    }
    Ok((result?, sched.into_trace()))
}

/// Runs `f`, converting a panicking [`ClusterError`] — how backends
/// report unrecoverable cluster failures, e.g. the networked backend's
/// exhausted respawn budget — into a typed result instead of unwinding
/// through the driver. Any other panic resumes unwinding. Safe because the
/// scheduler's pending queue is empty whenever the driver is between
/// superstep waits (pipelined runs pin `pipeline_depth` to 1 on backends
/// that can raise cluster errors), so dropping mid-phase state never
/// double-panics.
pub(crate) fn catch_cluster<R>(f: impl FnOnce() -> R) -> Result<R, ClusterError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => Ok(r),
        Err(payload) => match payload.downcast::<ClusterError>() {
            Ok(err) => Err(*err),
            Err(payload) => std::panic::resume_unwind(payload),
        },
    }
}

/// Graceful degradation on an unrecoverable cluster failure: flush the
/// last *committed* iteration to the configured checkpoint path (directly,
/// not through the scheduler — the backend may be unusable) so the run can
/// later `--resume`, then surface the typed engine error. A flush failure
/// never masks the cluster error.
fn degrade(
    ckpt_path: Option<&std::path::Path>,
    factors: &FactorSet,
    iteration_errors: &[u64],
    err: ClusterError,
) -> DbtfError {
    if let (Some(path), Some(&error)) = (ckpt_path, iteration_errors.last()) {
        let _ = Checkpoint {
            iteration: iteration_errors.len(),
            error,
            iteration_errors: iteration_errors.to_vec(),
            factors: factors.clone(),
        }
        .write(path);
    }
    DbtfError::from(err)
}

/// The driver body: everything after validation, emitting through `sched`.
fn run<B: ExecutionBackend>(
    sched: &Scheduler<'_, B>,
    x: &BoolTensor,
    config: &DbtfConfig,
) -> Result<DbtfResult, DbtfError> {
    let dims = x.dims();
    let wall_start = Instant::now();
    let metrics_start = sched.backend().metrics();
    let n_partitions = config
        .partitions
        .unwrap_or_else(|| sched.backend().suggested_partitions());

    // ---- Partition the three unfolded tensors (Algorithm 2 lines 1–3). --
    // No iteration has committed yet, so an unrecoverable cluster failure
    // here degrades to the typed error with nothing to checkpoint.
    let ([px1, px2, px3], partition_bytes) = catch_cluster(|| {
        sched.phase("cp.distribute", |s| {
            distribute_unfoldings(
                s,
                x,
                n_partitions,
                config.storage,
                config.spill_dir.as_deref(),
            )
        })
    })??;

    let threshold = config.convergence_threshold * x.nnz().max(1) as f64;
    let ckpt_path = config.checkpoint_path.as_deref().map(std::path::Path::new);
    let save_if_due =
        |completed: usize, factors: &FactorSet, errors: &[u64]| -> Result<(), DbtfError> {
            if let (Some(k), Some(path)) = (config.checkpoint_every, ckpt_path) {
                if completed.is_multiple_of(k) {
                    sched.checkpoint("cp.checkpoint", || {
                        Checkpoint {
                            iteration: completed,
                            error: *errors.last().expect("at least one iteration"),
                            iteration_errors: errors.to_vec(),
                            factors: factors.clone(),
                        }
                        .write(path)
                    })?;
                }
            }
            Ok(())
        };

    // ---- Resume from a checkpoint, or initialize L factor sets ---------
    // (Algorithm 2 line 6). The RNG is consumed only here, so iterations
    // ≥ 2 are pure functions of the factor state and a resumed run
    // reproduces the uninterrupted one bit for bit.
    let resumed = if config.resume {
        let path = ckpt_path.expect("validate() requires checkpoint_path with resume");
        let ck = Checkpoint::read_if_exists(path)?;
        if let Some(ck) = &ck {
            let f = &ck.factors;
            let shape_ok = f.a.rows() == dims[0]
                && f.b.rows() == dims[1]
                && f.c.rows() == dims[2]
                && f.a.cols() == config.rank
                && f.b.cols() == config.rank
                && f.c.cols() == config.rank;
            if !shape_ok || ck.iteration == 0 {
                return Err(DbtfError::Checkpoint(format!(
                    "{}: checkpoint factors are {}×{}/{}×{}/{}×{} but this run needs \
                     {}×{r}/{}×{r}/{}×{r}",
                    path.display(),
                    f.a.rows(),
                    f.a.cols(),
                    f.b.rows(),
                    f.b.cols(),
                    f.c.rows(),
                    f.c.cols(),
                    dims[0],
                    dims[1],
                    dims[2],
                    r = config.rank,
                )));
            }
        }
        ck
    } else {
        None
    };

    let mut peak_cache_bytes = 0u64;
    let (mut factors, mut error, mut iteration_errors, mut converged) = match resumed {
        Some(ck) => {
            // Re-derive the convergence flag from the error history, so a
            // checkpoint taken after convergence does not iterate further.
            let n = ck.iteration_errors.len();
            let converged = ck.error == 0
                || (n >= 2
                    && ck.iteration_errors[n - 2].abs_diff(ck.iteration_errors[n - 1]) as f64
                        <= threshold);
            (ck.factors, ck.error, ck.iteration_errors, converged)
        }
        None => {
            let sets = initial_factor_sets(x, config);
            sched.charge_driver(
                "cp.init",
                sets.len() as u64 * (dims[0] + dims[1] + dims[2]) as u64 * config.rank as u64,
            );

            // Iteration 1: update every set, keep the best (lines 7–8).
            // A cluster failure here is before the first commit — typed
            // error, no checkpoint (a partial best over the initial sets
            // is not a committed iteration).
            let mut best: Option<(FactorSet, u64)> = None;
            for set in sets {
                let (factors, error, cache) = catch_cluster(|| {
                    sched.phase("cp.iteration", |s| {
                        update_round(s, &px1, &px2, &px3, set, config)
                    })
                })?;
                peak_cache_bytes = peak_cache_bytes.max(cache);
                if best.as_ref().is_none_or(|(_, be)| error < *be) {
                    best = Some((factors, error));
                }
            }
            let (factors, error) = best.expect("initial_sets ≥ 1");
            let iteration_errors = vec![error];
            save_if_due(1, &factors, &iteration_errors)?;
            (factors, error, iteration_errors, error == 0)
        }
    };

    // ---- Iterations 2..T (lines 9–12); a resumed run continues where ----
    // the checkpoint left off.
    for _t in (iteration_errors.len() + 1)..=config.max_iters {
        if converged {
            break;
        }
        let round = catch_cluster(|| {
            sched.phase("cp.iteration", |s| {
                update_round(s, &px1, &px2, &px3, factors.clone(), config)
            })
        });
        let (next, next_error, cache) = match round {
            Ok(r) => r,
            // The last committed iteration's factors are still in hand:
            // flush them durably, then fail with the typed engine error.
            Err(err) => return Err(degrade(ckpt_path, &factors, &iteration_errors, err)),
        };
        peak_cache_bytes = peak_cache_bytes.max(cache);
        let delta = error.abs_diff(next_error) as f64;
        factors = next;
        error = next_error;
        iteration_errors.push(error);
        if delta <= threshold || error == 0 {
            converged = true;
        }
        save_if_due(iteration_errors.len(), &factors, &iteration_errors)?;
    }

    // Settle any still-deferred supersteps before the final metric read.
    // (The phase() wrappers above already drain, so this is a no-op today —
    // but the metric snapshot must never race a pending merge.)
    sched.drain();
    let comm = sched.backend().metrics().since(&metrics_start);
    let relative_error = if x.nnz() == 0 {
        if error == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        error as f64 / x.nnz() as f64
    };
    Ok(DbtfResult {
        iterations: iteration_errors.len(),
        converged,
        relative_error,
        error,
        factors,
        stats: DbtfStats {
            wall_secs: wall_start.elapsed().as_secs_f64(),
            virtual_secs: comm.virtual_time.as_secs_f64(),
            comm,
            n_partitions,
            partition_bytes,
            peak_cache_bytes,
        },
        iteration_errors,
    })
}

/// Unfolds `x` along all three modes, partitions each unfolding into
/// `n_partitions` PVM-blocked vertical partitions (Algorithm 3), and
/// distributes them across the backend with full shuffle metering. Returns
/// the three datasets (mode order) and the total metered bytes.
///
/// With [`StorageKind::Ram`] each unfolding is materialized on the heap;
/// with [`StorageKind::Mmap`] it is spilled once to an on-disk columnar
/// file and partitioned through a read-only map, so driver memory is
/// bounded by one partition instead of one unfolding. The partitions (and
/// therefore every downstream byte, op, and clock meter) are identical
/// byte for byte either way: the spill pass is real I/O, never charged to
/// the virtual cost model.
///
/// Shared by the CP and the distributed-Tucker drivers — both operate on
/// exactly this layout.
pub(crate) fn distribute_unfoldings<B: ExecutionBackend>(
    sched: &Scheduler<'_, B>,
    x: &BoolTensor,
    n_partitions: usize,
    storage: StorageKind,
    spill_dir: Option<&str>,
) -> Result<([B::Dataset<PartitionSlot>; 3], u64), DbtfError> {
    // The lineage root: a lost partition is re-derived deterministically
    // (Spark's recompute-from-source contract). RAM runs keep a heap copy
    // of the source tensor and re-unfold it; mmap runs re-open the spilled
    // columnar file and re-slice only the lost partition's column range.
    let (source, stores) = match storage {
        StorageKind::Ram => (Some(Arc::new(x.clone())), None),
        StorageKind::Mmap => (None, Some(RunStores::build(x, spill_dir)?)),
    };
    let mut partition_bytes = 0u64;
    let mut datasets = Vec::with_capacity(3);
    for mode in Mode::ALL {
        // The driver-side unfolding map is O(|X|) (Lemma 4 part 1),
        // identical on both storage paths — mmap runs paid the same
        // logical work during the spill pass.
        let parts = match &stores {
            None => {
                let unfolding = Unfolding::new(x, mode);
                sched.charge_driver("unfold.map", x.nnz() as u64);
                partition_unfolding(&unfolding, n_partitions)
            }
            Some(stores) => {
                let unfolding = stores.open(mode)?;
                sched.charge_driver("unfold.map", x.nnz() as u64);
                partition_unfolding(&unfolding, n_partitions)
            }
        };
        let elems: Vec<(PartitionSlot, u64)> = parts
            .into_iter()
            .map(|p| {
                let bytes = p.byte_size();
                (PartitionSlot::new(p), bytes)
            })
            .collect();
        partition_bytes += elems.iter().map(|e| e.1).sum::<u64>();
        let data = match (&source, &stores) {
            (Some(source), _) => {
                let rebuild_src = Arc::clone(source);
                sched.distribute_with_lineage("unfold.distribute", elems, move |idx| {
                    let unfolding = Unfolding::new(&rebuild_src, mode);
                    let mut parts = partition_unfolding(&unfolding, n_partitions);
                    PartitionSlot::new(parts.swap_remove(idx))
                })
            }
            (None, Some(stores)) => {
                // The closure holds the spill-directory guard, so the file
                // outlives every dataset that could still replay from it.
                let guard = stores.guard();
                let path = stores.path(mode).to_path_buf();
                sched.distribute_with_lineage("unfold.distribute", elems, move |idx| {
                    let _keep_files = &guard;
                    let unfolding = MmapUnfolding::open(&path).unwrap_or_else(|e| {
                        panic!("lineage rebuild lost its spilled unfolding: {e}")
                    });
                    PartitionSlot::new(partition_unfolding_one(&unfolding, idx, n_partitions))
                })
            }
            (None, None) => unreachable!("one storage root always exists"),
        };
        // Distributed block organization (Algorithm 3 line 4): each worker
        // walks its share of the non-zeros once. The driver never reads the
        // result, so the superstep is submitted without waiting — under
        // `pipeline_depth > 1` it overlaps with unfolding/partitioning the
        // next mode (and with the driver's initial-factor sampling).
        drop(sched.map_partitions_task_deferred(
            "unfold.organize",
            &data,
            net_tasks::organize_task(),
        ));
        // Read-only superstep: partitions still equal their rebuilt form.
        sched.reset_lineage(&data);
        datasets.push(data);
    }
    let px3 = datasets.pop().expect("three modes");
    let px2 = datasets.pop().expect("three modes");
    let px1 = datasets.pop().expect("three modes");
    Ok(([px1, px2, px3], partition_bytes))
}

/// One full `UpdateFactors` round (Algorithm 2 lines 14–18): update A, B, C
/// in turn, computing the exact reconstruction error on the final mode.
fn update_round<B: ExecutionBackend>(
    sched: &Scheduler<'_, B>,
    px1: &B::Dataset<PartitionSlot>,
    px2: &B::Dataset<PartitionSlot>,
    px3: &B::Dataset<PartitionSlot>,
    set: FactorSet,
    config: &DbtfConfig,
) -> (FactorSet, u64, u64) {
    let v = config.cache_group_limit;
    // X_(1) ≈ A ∘ (C ⊙ B)ᵀ.
    let o1 = update_factor(sched, px1, &set.a, &set.c, &set.b, v, false);
    let a = o1.a;
    // X_(2) ≈ B ∘ (C ⊙ A)ᵀ.
    let o2 = update_factor(sched, px2, &set.b, &set.c, &a, v, false);
    let b = o2.a;
    // X_(3) ≈ C ∘ (B ⊙ A)ᵀ; |X_(3) ⊕ C ∘ (B ⊙ A)ᵀ| = |X ⊕ X̃|.
    let o3 = update_factor(sched, px3, &set.c, &b, &a, v, true);
    let c = o3.a;
    let error = o3.error.expect("error requested");
    let cache = o1.cache_bytes.max(o2.cache_bytes).max(o3.cache_bytes);
    (FactorSet { a, b, c }, error, cache)
}

fn matrix_bytes(m: &BitMatrix) -> u64 {
    ((m.rows() * m.cols()) as u64).div_ceil(8)
}

/// One `UpdateFactor` call (Algorithm 4): updates the factor `a` of the
/// mode whose partitioned unfolding is `data`, against the fixed Khatri-Rao
/// operands `mf` and `ms`.
fn update_factor<B: ExecutionBackend>(
    sched: &Scheduler<'_, B>,
    data: &B::Dataset<PartitionSlot>,
    a: &BitMatrix,
    mf: &BitMatrix,
    ms: &BitMatrix,
    v_limit: usize,
    compute_error: bool,
) -> UpdateOutcome {
    let cols: Vec<usize> = (0..a.cols()).collect();
    update_factor_subset(
        sched,
        data,
        a,
        mf,
        ms,
        v_limit,
        compute_error,
        &CP_UPDATE_LABELS,
        &cols,
    )
}

/// [`update_factor`] restricted to an explicit, non-empty column subset —
/// the bounded re-sweep of the incremental-update path. Columns outside
/// `cols` keep their values from `a` (and are still part of the caches,
/// error scoring, and the finish-superstep reconstruction error).
#[allow(clippy::too_many_arguments)]
pub(crate) fn update_factor_subset<B: ExecutionBackend>(
    sched: &Scheduler<'_, B>,
    data: &B::Dataset<PartitionSlot>,
    a: &BitMatrix,
    mf: &BitMatrix,
    ms: &BitMatrix,
    v_limit: usize,
    compute_error: bool,
    labels: &UpdateLabels,
    cols: &[usize],
) -> UpdateOutcome {
    assert!(!cols.is_empty(), "subset sweep needs at least one column");
    // Begin: broadcast the factors, build per-partition caches
    // (Algorithm 4 line 1 / Algorithm 5). Every superstep of the update is
    // a named `RemoteTask` whose body lives in `net_tasks`, so the same
    // plan runs unchanged over the networked multi-process backend.
    let bytes = matrix_bytes(a) + matrix_bytes(mf) + matrix_bytes(ms);
    let factors = sched.broadcast(
        labels.factors,
        FactorTriple {
            a: a.clone(),
            mf: mf.clone(),
            ms: ms.clone(),
        },
        bytes,
    );
    let cache_bytes: Vec<u64> =
        sched.map_partitions_task(labels.begin, data, net_tasks::begin_task(&factors, v_limit));
    let peak_cache: u64 = cache_bytes.iter().sum();

    // Column sweep (Algorithm 4 lines 2–12): one superstep per column.
    let mut master = a.clone();
    let last = column_sweep_subset(
        sched,
        SweepLabels {
            sweep: labels.sweep,
            reduce: labels.reduce,
            decision: labels.decision,
        },
        data,
        &mut master,
        cols,
        net_tasks::sweep_task,
    )
    .expect("cols is non-empty");

    // Finish: apply the last column; optionally compute the exact error;
    // drop the caches.
    let finish = net_tasks::finish_task(&last, compute_error);
    let errors: Option<Vec<u64>> = if compute_error {
        Some(sched.map_partitions_task(labels.finish, data, finish))
    } else {
        // All results are zero and nothing downstream reads them, so the
        // superstep is submitted without waiting — under
        // `pipeline_depth > 1` it overlaps with the next mode's broadcast
        // and cache-building begin.
        drop(sched.map_partitions_task_deferred(labels.finish, data, finish));
        None
    };
    // The partitions are back to their distribute-time state (`part` is
    // never mutated, `work` is None again), so a crash from here on only
    // needs the rebuild closure — truncating the lineage log keeps replay
    // cost bounded by one UpdateFactor instead of the whole run.
    sched.reset_lineage(data);
    UpdateOutcome {
        a: master,
        error: errors.map(|e| e.iter().sum()),
        cache_bytes: peak_cache,
    }
}
