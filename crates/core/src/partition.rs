//! Vertical partitioning of unfolded tensors with PVM-boundary blocks
//! (paper Section III-D, Algorithm 3, Figure 5).
//!
//! Each unfolded tensor `X_(n)` is split into `N` vertical partitions of
//! near-equal column ranges. Within a partition, the columns are further
//! divided into *blocks* at the boundaries of the underlying pointwise
//! vector-matrix (PVM) products `(m_{k:} ⊛ M_s)ᵀ` — the paper's *slabs* of
//! width `S`. Blocks are the unit at which the cached row summations are
//! fetched: a full-slab block reads the full-size cache directly, while the
//! at-most-two edge blocks of a partition use vertically sliced caches.

use serde::{Deserialize, Serialize};

use dbtf_tensor::UnfoldingStore;

/// The block types of the paper's Figure 5, keyed by how a block sits
/// inside its PVM slab.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockKind {
    /// Type (1): a strict interior range of one slab (the partition starts
    /// and ends inside the same slab).
    Interior,
    /// Type (2): a suffix of a slab (starts inside, runs to the slab end).
    Suffix,
    /// Type (3): a full slab.
    Full,
    /// Type (4): a prefix of a slab (starts at the slab start, ends inside).
    Prefix,
}

/// One block of a partition: a contiguous column range within a single PVM
/// slab, with the partition's rows of the unfolded tensor restricted to it.
///
/// Row data is stored CSR-style (one offsets array plus one concatenated
/// column array) rather than as per-row `Vec`s: at NELL-like shapes a
/// partition holds hundreds of blocks over tens of thousands of rows, and
/// 24-byte `Vec` headers per (row, block) pair would dwarf the data.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Index `k` of the PVM slab this block lies in (a row of `M_f`).
    pub slab: usize,
    /// First column of the block, as an offset inside the slab (`0..S`).
    pub inner_lo: u32,
    /// Width of the block (`1..=S`).
    pub inner_len: u32,
    /// Figure 5 block type.
    pub kind: BlockKind,
    /// CSR row offsets (`row_offsets.len() = nrows + 1`).
    pub(crate) row_offsets: Vec<u32>,
    /// Concatenated sorted column offsets (relative to `inner_lo`).
    pub(crate) cols: Vec<u32>,
}

impl Block {
    /// The sorted one-offsets (relative to `inner_lo`) of unfolding row
    /// `r` within this block.
    #[inline]
    pub fn row(&self, r: usize) -> &[u32] {
        &self.cols[self.row_offsets[r] as usize..self.row_offsets[r + 1] as usize]
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of ones stored in this block.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }
}

/// One vertical partition of an unfolded tensor (Algorithm 3's `p_i`),
/// split into blocks and ready to be shipped to a worker.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModePartition {
    /// Partition index (`0..N`).
    pub index: usize,
    /// Global column range `[col_lo, col_hi)` of the unfolding.
    pub col_lo: u64,
    /// End of the global column range (exclusive).
    pub col_hi: u64,
    /// PVM slab width `S` (the row count of `M_s`).
    pub slab_width: usize,
    /// Row count `P` of the unfolding (the factor matrix height).
    pub nrows: usize,
    /// The partition's blocks, in column order.
    pub blocks: Vec<Block>,
}

/// Read access to a partition's geometry and blocks — the only surface the
/// [`WorkState`](crate::update::WorkState) hot kernels touch.
///
/// Kernels are generic over this trait with static dispatch, so they
/// monomorphize to exactly the pre-refactor code for [`ModePartition`]
/// (proven flat by the `factor_update` criterion bench) while admitting
/// alternative block containers (e.g. store-backed or borrowed views)
/// without another kernel rewrite.
pub trait PartitionData {
    /// Row count `P` of the unfolding.
    fn nrows(&self) -> usize;
    /// PVM slab width `S`.
    fn slab_width(&self) -> usize;
    /// The partition's blocks, in column order.
    fn blocks(&self) -> &[Block];
}

impl PartitionData for ModePartition {
    #[inline]
    fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    fn slab_width(&self) -> usize {
        self.slab_width
    }

    #[inline]
    fn blocks(&self) -> &[Block] {
        &self.blocks
    }
}

impl ModePartition {
    /// Number of ones stored in this partition.
    pub fn nnz(&self) -> usize {
        self.blocks.iter().map(Block::nnz).sum()
    }

    /// Wire size in bytes, used to meter the shuffle (Lemma 6) and worker
    /// memory (Lemma 5): each non-zero ships as a (row, column) pair; the
    /// CSR block structure is rebuilt worker-side (Algorithm 3 line 4) and
    /// adds only per-block headers.
    pub fn byte_size(&self) -> u64 {
        64 + self.nnz() as u64 * 12 + self.blocks.len() as u64 * 16
    }
}

/// Splits the unfolding into `n_partitions` vertical partitions with
/// PVM-boundary blocks (Algorithm 3).
///
/// Column ranges are the balanced split `[p·Q/N, (p+1)·Q/N)`, satisfying
/// the algorithm's `⌊Q/N⌋ ≤ H ≤ ⌈Q/N⌉`. Partitions with an empty column
/// range (possible only when `N > Q`) carry no blocks.
///
/// Generic over [`UnfoldingStore`] (static dispatch): the heap `Unfolding`
/// and the on-disk `MmapUnfolding` yield bit-identical partitions, because
/// everything here flows through the store's `row_range` contract.
///
/// # Panics
///
/// Panics if `n_partitions == 0`.
pub fn partition_unfolding<S: UnfoldingStore>(
    unfolding: &S,
    n_partitions: usize,
) -> Vec<ModePartition> {
    assert!(n_partitions > 0, "need at least one partition");
    (0..n_partitions)
        .map(|p| partition_unfolding_one(unfolding, p, n_partitions))
        .collect()
}

/// Builds just partition `index` of the `n_partitions`-way split — the
/// lineage-recompute entry point: re-opening an unfolding store and
/// re-slicing one lost partition costs `O(partition)` instead of
/// rebuilding the whole split.
///
/// # Panics
///
/// Panics if `index >= n_partitions` or `n_partitions == 0`.
pub fn partition_unfolding_one<S: UnfoldingStore>(
    unfolding: &S,
    index: usize,
    n_partitions: usize,
) -> ModePartition {
    assert!(n_partitions > 0, "need at least one partition");
    assert!(index < n_partitions, "partition index out of range");
    let q = unfolding.ncols();
    let s = unfolding.mode().slab_width(unfolding.tensor_dims()) as u64;
    let nrows = unfolding.nrows();
    let n = n_partitions as u64;
    let p = index as u64;
    let col_lo = p * q / n;
    let col_hi = (p + 1) * q / n;
    build_partition(unfolding, index, col_lo, col_hi, s, nrows)
}

fn build_partition<S: UnfoldingStore>(
    unfolding: &S,
    index: usize,
    col_lo: u64,
    col_hi: u64,
    s: u64,
    nrows: usize,
) -> ModePartition {
    let mut blocks = Vec::new();
    let mut lo = col_lo;
    while lo < col_hi {
        let slab = lo / s;
        let slab_start = slab * s;
        let slab_end = slab_start + s;
        let hi = col_hi.min(slab_end);
        let inner_lo = (lo - slab_start) as u32;
        let inner_len = (hi - lo) as u32;
        let kind = match (inner_lo == 0, hi == slab_end) {
            (true, true) => BlockKind::Full,
            (true, false) => BlockKind::Prefix,
            (false, true) => BlockKind::Suffix,
            (false, false) => BlockKind::Interior,
        };
        let mut row_offsets = Vec::with_capacity(nrows + 1);
        let mut cols = Vec::new();
        row_offsets.push(0u32);
        for r in 0..nrows {
            for &c in unfolding.row_range(r, lo, hi) {
                cols.push((c - slab_start) as u32 - inner_lo);
            }
            row_offsets.push(u32::try_from(cols.len()).expect("block nnz exceeds u32"));
        }
        blocks.push(Block {
            slab: slab as usize,
            inner_lo,
            inner_len,
            kind,
            row_offsets,
            cols,
        });
        lo = hi;
    }
    ModePartition {
        index,
        col_lo,
        col_hi,
        slab_width: s as usize,
        nrows,
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtf_tensor::{BoolTensor, Mode, Unfolding};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tensor(dims: [usize; 3], density: f64, seed: u64) -> BoolTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut entries = Vec::new();
        for i in 0..dims[0] as u32 {
            for j in 0..dims[1] as u32 {
                for k in 0..dims[2] as u32 {
                    if rng.gen_bool(density) {
                        entries.push([i, j, k]);
                    }
                }
            }
        }
        BoolTensor::from_entries(dims, entries)
    }

    #[test]
    fn partitions_tile_columns() {
        let t = random_tensor([6, 7, 5], 0.2, 1);
        for mode in Mode::ALL {
            let u = Unfolding::new(&t, mode);
            for n in [1, 2, 3, 7, 50] {
                let parts = partition_unfolding(&u, n);
                assert_eq!(parts.len(), n);
                let mut expect_lo = 0u64;
                for p in &parts {
                    assert_eq!(p.col_lo, expect_lo);
                    assert!(p.col_hi >= p.col_lo);
                    expect_lo = p.col_hi;
                }
                assert_eq!(expect_lo, u.ncols());
            }
        }
    }

    #[test]
    fn partition_widths_balanced() {
        // Algorithm 3: ⌊Q/N⌋ ≤ H ≤ ⌈Q/N⌉.
        let t = random_tensor([5, 9, 11], 0.15, 2);
        let u = Unfolding::new(&t, Mode::One);
        let q = u.ncols();
        for n in [2usize, 3, 4, 10] {
            for p in partition_unfolding(&u, n) {
                let h = p.col_hi - p.col_lo;
                assert!(h >= q / n as u64 && h <= q.div_ceil(n as u64), "H = {h}");
            }
        }
    }

    #[test]
    fn blocks_tile_partition_at_slab_boundaries() {
        let t = random_tensor([4, 6, 8], 0.25, 3);
        for mode in Mode::ALL {
            let u = Unfolding::new(&t, mode);
            let s = mode.slab_width(t.dims()) as u64;
            for n in [1, 3, 5, 13] {
                for p in partition_unfolding(&u, n) {
                    let mut pos = p.col_lo;
                    for b in &p.blocks {
                        let global_lo = b.slab as u64 * s + b.inner_lo as u64;
                        assert_eq!(global_lo, pos, "blocks must be contiguous");
                        assert!(b.inner_len >= 1);
                        assert!(b.inner_lo as u64 + b.inner_len as u64 <= s);
                        // A block never crosses a slab boundary.
                        pos = global_lo + b.inner_len as u64;
                    }
                    assert_eq!(pos, p.col_hi);
                }
            }
        }
    }

    #[test]
    fn block_kinds_match_geometry() {
        let t = random_tensor([3, 4, 6], 0.3, 4);
        let u = Unfolding::new(&t, Mode::One);
        let s = Mode::One.slab_width(t.dims()) as u64;
        for n in [1, 2, 3, 5, 8, 24] {
            for p in partition_unfolding(&u, n) {
                for b in &p.blocks {
                    let starts_at_slab = b.inner_lo == 0;
                    let ends_at_slab = b.inner_lo as u64 + b.inner_len as u64 == s;
                    let expect = match (starts_at_slab, ends_at_slab) {
                        (true, true) => BlockKind::Full,
                        (true, false) => BlockKind::Prefix,
                        (false, true) => BlockKind::Suffix,
                        (false, false) => BlockKind::Interior,
                    };
                    assert_eq!(b.kind, expect);
                }
            }
        }
    }

    #[test]
    fn lemma3_at_most_three_block_types() {
        // Lemma 3: a partition has at most three types of blocks, with the
        // legal compositions (1) | (2) | (4) | (2)(4) | (2)(3)*(4) |
        // (3)+(4)? | (2)?(3)+.
        let t = random_tensor([4, 5, 7], 0.2, 5);
        for mode in Mode::ALL {
            let u = Unfolding::new(&t, mode);
            for n in [1, 2, 3, 4, 6, 11, 35] {
                for p in partition_unfolding(&u, n) {
                    let kinds: Vec<BlockKind> = p.blocks.iter().map(|b| b.kind).collect();
                    let distinct: std::collections::HashSet<_> = kinds.iter().collect();
                    assert!(distinct.len() <= 3, "partition with kinds {kinds:?}");
                    // Interior blocks only appear alone.
                    if kinds.contains(&BlockKind::Interior) {
                        assert_eq!(kinds.len(), 1);
                    }
                    // At most one Suffix (it must come first) and one
                    // Prefix (it must come last).
                    let suffixes = kinds.iter().filter(|&&k| k == BlockKind::Suffix).count();
                    let prefixes = kinds.iter().filter(|&&k| k == BlockKind::Prefix).count();
                    assert!(suffixes <= 1 && prefixes <= 1);
                    if suffixes == 1 {
                        assert_eq!(kinds[0], BlockKind::Suffix);
                    }
                    if prefixes == 1 {
                        assert_eq!(*kinds.last().unwrap(), BlockKind::Prefix);
                    }
                }
            }
        }
    }

    #[test]
    fn partitioning_preserves_every_one() {
        let t = random_tensor([5, 6, 4], 0.3, 6);
        for mode in Mode::ALL {
            let u = Unfolding::new(&t, mode);
            let s = mode.slab_width(t.dims()) as u64;
            for n in [1, 3, 9] {
                let parts = partition_unfolding(&u, n);
                let total: usize = parts.iter().map(ModePartition::nnz).sum();
                assert_eq!(total, u.nnz());
                // Rebuild the full set of (row, col) pairs from blocks.
                let mut rebuilt: Vec<(usize, u64)> = Vec::new();
                for p in &parts {
                    for b in &p.blocks {
                        for r in 0..u.nrows() {
                            for &o in b.row(r) {
                                let col = b.slab as u64 * s + b.inner_lo as u64 + o as u64;
                                rebuilt.push((r, col));
                            }
                        }
                    }
                }
                rebuilt.sort_unstable();
                let mut expect: Vec<(usize, u64)> = Vec::new();
                for r in 0..u.nrows() {
                    for &c in u.row(r) {
                        expect.push((r, c));
                    }
                }
                expect.sort_unstable();
                assert_eq!(rebuilt, expect, "mode {mode:?}, N = {n}");
            }
        }
    }

    #[test]
    fn more_partitions_than_columns() {
        let t = random_tensor([2, 2, 2], 0.5, 7);
        let u = Unfolding::new(&t, Mode::One);
        let parts = partition_unfolding(&u, 10);
        assert_eq!(parts.len(), 10);
        let nonempty: usize = parts.iter().filter(|p| p.col_hi > p.col_lo).count();
        assert_eq!(nonempty, u.ncols() as usize);
        let total: usize = parts.iter().map(ModePartition::nnz).sum();
        assert_eq!(total, u.nnz());
    }

    #[test]
    fn mmap_store_yields_bit_identical_partitions() {
        use dbtf_tensor::MmapUnfolding;
        let t = random_tensor([6, 7, 5], 0.25, 11);
        let dir = std::env::temp_dir().join(format!("dbtf-partition-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for mode in Mode::ALL {
            let u = Unfolding::new(&t, mode);
            let path = dir.join(format!("m{}.unf", mode.index()));
            MmapUnfolding::write_from_store(&u, &path).unwrap();
            let m = MmapUnfolding::open(&path).unwrap();
            for n in [1, 2, 3, 7] {
                let from_heap = partition_unfolding(&u, n);
                let from_mmap = partition_unfolding(&m, n);
                assert_eq!(from_heap, from_mmap, "mode {mode:?}, N = {n}");
                for (idx, expect) in from_heap.iter().enumerate() {
                    assert_eq!(
                        &partition_unfolding_one(&m, idx, n),
                        expect,
                        "single-partition rebuild, mode {mode:?}, N = {n}, idx = {idx}"
                    );
                }
            }
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn byte_size_grows_with_nnz() {
        let sparse = random_tensor([8, 8, 8], 0.05, 8);
        let dense = random_tensor([8, 8, 8], 0.5, 8);
        let pu_sparse = partition_unfolding(&Unfolding::new(&sparse, Mode::One), 2);
        let pu_dense = partition_unfolding(&Unfolding::new(&dense, Mode::One), 2);
        let total = |ps: &[ModePartition]| ps.iter().map(|p| p.byte_size()).sum::<u64>();
        assert!(total(&pu_dense) > total(&pu_sparse));
    }
}
