//! Single-machine reference implementation of the DBTF update rule.
//!
//! This module implements exactly the same greedy Boolean CP updates as the
//! distributed driver — same initialization, column order, tie-breaking and
//! convergence — but with none of DBTF's machinery: no partitioning, no
//! cached row summations, every Boolean row summation recomputed from
//! scratch (Lemma 1 applied naively).
//!
//! It serves two purposes:
//!
//! 1. **Differential testing**: [`crate::factorize`] must produce
//!    bit-for-bit identical factors for any worker count, partition count
//!    `N` and cache group limit `V` (the integration tests assert this).
//! 2. **Ablation baseline**: benchmarking it against the cached update
//!    isolates the speed-up contributed by Section III-C's caching, the
//!    paper's "most important" idea.

use dbtf_tensor::{BitMatrix, BitVec, BoolTensor, Mode, Unfolding};

use crate::config::{DbtfConfig, DbtfError};
use crate::factors::{initial_factor_sets, FactorSet};

/// Outcome of a [`factorize_reference`] run.
#[derive(Clone, Debug)]
pub struct ReferenceResult {
    /// The best factor set found.
    pub factors: FactorSet,
    /// Final reconstruction error `|X ⊕ X̃|`.
    pub error: u64,
    /// Error after each iteration.
    pub iteration_errors: Vec<u64>,
    /// Whether the convergence criterion fired.
    pub converged: bool,
    /// Iterations executed.
    pub iterations: usize,
}

/// Sequential Boolean CP factorization with the DBTF update rule (no
/// distribution, no caching). See the module docs.
pub fn factorize_reference(
    x: &BoolTensor,
    config: &DbtfConfig,
) -> Result<ReferenceResult, DbtfError> {
    config.validate()?;
    let dims = x.dims();
    if dims.contains(&0) {
        return Err(DbtfError::EmptyTensor);
    }
    let unf1 = Unfolding::new(x, Mode::One);
    let unf2 = Unfolding::new(x, Mode::Two);
    let unf3 = Unfolding::new(x, Mode::Three);

    let sets = initial_factor_sets(x, config);
    let mut best: Option<(FactorSet, u64)> = None;
    for set in sets {
        let (factors, error) = update_round(&unf1, &unf2, &unf3, set);
        if best.as_ref().is_none_or(|(_, be)| error < *be) {
            best = Some((factors, error));
        }
    }
    let (mut factors, mut error) = best.expect("initial_sets ≥ 1");
    let mut iteration_errors = vec![error];
    let mut converged = error == 0;
    let threshold = config.convergence_threshold * x.nnz().max(1) as f64;
    for _t in 2..=config.max_iters {
        if converged {
            break;
        }
        let (next, next_error) = update_round(&unf1, &unf2, &unf3, factors);
        let delta = error.abs_diff(next_error) as f64;
        factors = next;
        error = next_error;
        iteration_errors.push(error);
        if delta <= threshold || error == 0 {
            converged = true;
        }
    }
    Ok(ReferenceResult {
        factors,
        error,
        iterations: iteration_errors.len(),
        iteration_errors,
        converged,
    })
}

fn update_round(
    unf1: &Unfolding,
    unf2: &Unfolding,
    unf3: &Unfolding,
    set: FactorSet,
) -> (FactorSet, u64) {
    let a = update_factor_reference(unf1, &set.a, &set.c, &set.b);
    let b = update_factor_reference(unf2, &set.b, &set.c, &a);
    let c = update_factor_reference(unf3, &set.c, &b, &a);
    let error = matricized_error(unf3, &c, &b, &a);
    (FactorSet { a, b, c }, error)
}

/// The uncached greedy factor update: for each column and row, score both
/// candidate bit values by recomputing the Boolean row summations of
/// `M_sᵀ` from scratch over the slabs whose `M_f` row selects the column.
pub fn update_factor_reference(
    unf: &Unfolding,
    a: &BitMatrix,
    mf: &BitMatrix,
    ms: &BitMatrix,
) -> BitMatrix {
    let rank = a.cols();
    let nrows = a.rows();
    let s = ms.rows() as u64;
    let slabs = mf.rows();
    let mst = ms.transpose(); // R × S
    let mut a = a.clone();
    let mut recon = BitVec::zeros(ms.rows());
    for col in 0..rank {
        let mut decision = BitVec::zeros(nrows);
        for r in 0..nrows {
            let (mut e0, mut e1) = (0u64, 0u64);
            for k in 0..slabs {
                if !mf.get(k, col) {
                    continue; // equal contribution to both candidates
                }
                for value in [false, true] {
                    recon.clear();
                    for rr in 0..rank {
                        let bit = if rr == col { value } else { a.get(r, rr) };
                        if bit && mf.get(k, rr) {
                            recon.or_assign(&mst.row_bitvec(rr));
                        }
                    }
                    let actual = unf.row_range(r, k as u64 * s, (k as u64 + 1) * s);
                    let mut inter = 0u64;
                    for &c in actual {
                        if recon.get((c - k as u64 * s) as usize) {
                            inter += 1;
                        }
                    }
                    let err = recon.count_ones() as u64 + actual.len() as u64 - 2 * inter;
                    if value {
                        e1 += err;
                    } else {
                        e0 += err;
                    }
                }
            }
            if e1 < e0 {
                decision.set(r, true);
            }
        }
        for r in 0..nrows {
            a.set(r, col, decision.get(r));
        }
    }
    a
}

/// `|X_(n) ⊕ A ∘ (M_f ⊙ M_s)ᵀ|`, computed slab by slab without
/// materializing the Khatri-Rao product.
pub fn matricized_error(unf: &Unfolding, a: &BitMatrix, mf: &BitMatrix, ms: &BitMatrix) -> u64 {
    let rank = a.cols();
    let s = ms.rows() as u64;
    let slabs = mf.rows();
    let mst = ms.transpose();
    let mut err = 0u64;
    let mut recon = BitVec::zeros(ms.rows());
    for r in 0..a.rows() {
        for k in 0..slabs {
            recon.clear();
            for rr in 0..rank {
                if a.get(r, rr) && mf.get(k, rr) {
                    recon.or_assign(&mst.row_bitvec(rr));
                }
            }
            let actual = unf.row_range(r, k as u64 * s, (k as u64 + 1) * s);
            let mut inter = 0u64;
            for &c in actual {
                if recon.get((c - k as u64 * s) as usize) {
                    inter += 1;
                }
            }
            err += recon.count_ones() as u64 + actual.len() as u64 - 2 * inter;
        }
    }
    err
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtf_tensor::reconstruct::reconstruct;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tensor(dims: [usize; 3], density: f64, seed: u64) -> BoolTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut entries = Vec::new();
        for i in 0..dims[0] as u32 {
            for j in 0..dims[1] as u32 {
                for k in 0..dims[2] as u32 {
                    if rng.gen_bool(density) {
                        entries.push([i, j, k]);
                    }
                }
            }
        }
        BoolTensor::from_entries(dims, entries)
    }

    #[test]
    fn matricized_error_equals_tensor_error() {
        let dims = [5, 6, 4];
        let x = random_tensor(dims, 0.2, 30);
        let mut rng = StdRng::seed_from_u64(31);
        let a = BitMatrix::random(dims[0], 3, 0.4, &mut rng);
        let b = BitMatrix::random(dims[1], 3, 0.4, &mut rng);
        let c = BitMatrix::random(dims[2], 3, 0.4, &mut rng);
        let x_hat = reconstruct(&a, &b, &c);
        let expect = x.xor_count(&x_hat) as u64;
        let unf3 = Unfolding::new(&x, Mode::Three);
        assert_eq!(matricized_error(&unf3, &c, &b, &a), expect);
        let unf1 = Unfolding::new(&x, Mode::One);
        assert_eq!(matricized_error(&unf1, &a, &c, &b), expect);
    }

    /// A factor update never increases the matricized error.
    #[test]
    fn update_is_monotone() {
        let dims = [6, 5, 7];
        let x = random_tensor(dims, 0.25, 32);
        let unf1 = Unfolding::new(&x, Mode::One);
        let mut rng = StdRng::seed_from_u64(33);
        for trial in 0..5 {
            let a = BitMatrix::random(dims[0], 4, 0.3, &mut rng);
            let b = BitMatrix::random(dims[1], 4, 0.3, &mut rng);
            let c = BitMatrix::random(dims[2], 4, 0.3, &mut rng);
            let before = matricized_error(&unf1, &a, &c, &b);
            let a2 = update_factor_reference(&unf1, &a, &c, &b);
            let after = matricized_error(&unf1, &a2, &c, &b);
            assert!(after <= before, "trial {trial}: {after} > {before}");
        }
    }

    /// An exactly factorizable tensor with its own factors as the start
    /// point stays at zero error.
    #[test]
    fn exact_input_stays_exact() {
        let mut rng = StdRng::seed_from_u64(34);
        let a = BitMatrix::random(5, 2, 0.4, &mut rng);
        let b = BitMatrix::random(6, 2, 0.4, &mut rng);
        let c = BitMatrix::random(4, 2, 0.4, &mut rng);
        let x = reconstruct(&a, &b, &c);
        let unf1 = Unfolding::new(&x, Mode::One);
        let a2 = update_factor_reference(&unf1, &a, &c, &b);
        assert_eq!(matricized_error(&unf1, &a2, &c, &b), 0);
    }

    #[test]
    fn reference_runs_end_to_end() {
        let x = random_tensor([8, 8, 8], 0.1, 35);
        let cfg = DbtfConfig {
            rank: 3,
            max_iters: 4,
            ..DbtfConfig::default()
        };
        let res = factorize_reference(&x, &cfg).unwrap();
        assert_eq!(res.iterations, res.iteration_errors.len());
        // Iteration errors never increase (ALS-style monotonicity).
        for w in res.iteration_errors.windows(2) {
            assert!(w[1] <= w[0], "errors increased: {:?}", res.iteration_errors);
        }
        // The reported error matches the factors.
        assert_eq!(res.factors.error(&x) as u64, res.error);
    }

    #[test]
    fn rejects_empty_mode() {
        let x = BoolTensor::empty([0, 3, 3]);
        assert!(matches!(
            factorize_reference(&x, &DbtfConfig::default()),
            Err(DbtfError::EmptyTensor)
        ));
    }
}
