//! DBTF configuration.

use serde::{Deserialize, Serialize};

/// Errors reported by [`DbtfConfig::validate`] and the factorization entry
/// points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbtfError {
    /// The configuration is invalid; the message says why.
    InvalidConfig(String),
    /// The input tensor has a zero-sized mode.
    EmptyTensor,
    /// Writing or reading a factor checkpoint failed; the message carries
    /// the path and the underlying cause. A *missing* checkpoint on resume
    /// is not an error (the run starts fresh); a corrupt or mismatched one
    /// is.
    Checkpoint(String),
    /// Booting the execution engine failed (e.g. the OS refused to spawn a
    /// worker's compute-pool threads). Carries the rendered engine error;
    /// the variant stores a `String` because this enum is `Clone + Eq` and
    /// the underlying `std::io::Error` is neither.
    Engine(String),
    /// An out-of-core unfolding file does not start with the `DBTFUNFD`
    /// magic — it is not a columnar unfolding at all.
    StorageBadMagic(String),
    /// An out-of-core unfolding file ends before a declared section (header,
    /// row index, or column data) — a partial write or external truncation.
    StorageTruncated(String),
    /// A checksum over an out-of-core unfolding section did not match the
    /// stored digest: the bytes on disk were corrupted after the write.
    StorageChecksum(String),
    /// An out-of-core unfolding file was written by an unsupported format
    /// version.
    StorageVersionSkew(String),
    /// Reading or writing spilled unfolding files failed at the OS level
    /// (permissions, disk full, missing spill directory).
    StorageIo(String),
    /// A spilled unfolding is structurally inconsistent (geometry or row
    /// index do not describe a valid unfolding) or the ingest stream was
    /// malformed.
    StorageInvalid(String),
}

impl std::fmt::Display for DbtfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbtfError::InvalidConfig(msg) => write!(f, "invalid DBTF configuration: {msg}"),
            DbtfError::EmptyTensor => write!(f, "input tensor has a zero-sized mode"),
            DbtfError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            DbtfError::Engine(msg) => write!(f, "engine error: {msg}"),
            DbtfError::StorageBadMagic(msg) => write!(f, "storage error: {msg}"),
            DbtfError::StorageTruncated(msg) => write!(f, "storage error: {msg}"),
            DbtfError::StorageChecksum(msg) => write!(f, "storage error: {msg}"),
            DbtfError::StorageVersionSkew(msg) => write!(f, "storage error: {msg}"),
            DbtfError::StorageIo(msg) => write!(f, "storage error: {msg}"),
            DbtfError::StorageInvalid(msg) => write!(f, "storage error: {msg}"),
        }
    }
}

impl std::error::Error for DbtfError {}

impl From<dbtf_cluster::ClusterError> for DbtfError {
    fn from(err: dbtf_cluster::ClusterError) -> Self {
        DbtfError::Engine(err.to_string())
    }
}

impl From<dbtf_tensor::StoreError> for DbtfError {
    fn from(err: dbtf_tensor::StoreError) -> Self {
        use dbtf_tensor::StoreError;
        let msg = err.to_string();
        match err {
            StoreError::BadMagic { .. } => DbtfError::StorageBadMagic(msg),
            StoreError::Truncated { .. } => DbtfError::StorageTruncated(msg),
            StoreError::ChecksumMismatch { .. } => DbtfError::StorageChecksum(msg),
            StoreError::VersionSkew { .. } => DbtfError::StorageVersionSkew(msg),
            StoreError::Io { .. } => DbtfError::StorageIo(msg),
            StoreError::Invalid { .. } => DbtfError::StorageInvalid(msg),
        }
    }
}

impl From<dbtf_tensor::stream::IngestError> for DbtfError {
    fn from(err: dbtf_tensor::stream::IngestError) -> Self {
        match err {
            dbtf_tensor::stream::IngestError::Store(e) => e.into(),
            dbtf_tensor::stream::IngestError::Parse(e) => DbtfError::StorageInvalid(e.to_string()),
        }
    }
}

/// How the `L` initial factor sets are drawn.
///
/// The paper only says "initialize L sets of factor matrices randomly"
/// (Algorithm 2 line 6). Data-oblivious uniform random factors make the
/// greedy update collapse to all-zero factors on realistic tensors — every
/// candidate component adds `≈ |b_r|·|c_r|` random cells that intersect
/// almost nothing, so every bit scores worse than zero (the `init_collapse`
/// ablation bench demonstrates this). We therefore default to random
/// *data-driven* sampling, the standard practice in Boolean factorization
/// implementations, and keep the uniform variant for ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum InitStrategy {
    /// Each component `r` samples a random non-zero `(i, j, k)` of `X` and
    /// seeds `b_{:r}` with the mode-2 fiber `x_{i,:,k}` and `c_{:r}` with
    /// the mode-3 fiber `x_{i,j,:}`; `A` starts all-zero and is computed by
    /// the first update. Different sets sample different fibers.
    #[default]
    FiberSample,
    /// I.i.d. Bernoulli factors with density
    /// [`DbtfConfig::effective_init_density`].
    Random,
}

/// Which execution backend runs the driver's dataflow plan.
///
/// Both backends produce bit-identical factors, errors, op counts, and
/// Lemma 6/7 byte counters for the same configuration; they differ only
/// in *physical* execution and costing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum BackendKind {
    /// The simulated multi-worker cluster: real worker threads, network
    /// costing under the `NetworkModel`, and optional fault injection.
    #[default]
    Cluster,
    /// Pure-local inline execution: no worker threads, no network-model
    /// costing (virtual time is compute-only), no fault injection.
    Local,
    /// The networked multi-process backend: workers are separate OS
    /// processes behind TCP, the Lemma 6/7 counters are *measured* wire
    /// bytes, and fault injection kills real processes. Results and every
    /// declared counter stay bit-identical to the other backends.
    Net,
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BackendKind::Cluster => "cluster",
            BackendKind::Local => "local",
            BackendKind::Net => "net",
        })
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cluster" => Ok(BackendKind::Cluster),
            "local" => Ok(BackendKind::Local),
            "net" => Ok(BackendKind::Net),
            other => Err(format!("unknown backend {other:?} (cluster|local|net)")),
        }
    }
}

/// Where the driver materializes the three unfolded tensors it partitions
/// (DESIGN.md §1.2.7).
///
/// Both backends produce bit-identical factors, errors, op counts, Lemma
/// 6/7 byte counters, virtual clocks, and trace fingerprints for the same
/// configuration: the partitions a run distributes are equal byte for byte
/// regardless of where the unfolding rows were read from, and file I/O is
/// never charged to the virtual cost model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum StorageKind {
    /// Heap-resident unfoldings ([`dbtf_tensor::Unfolding`]): each mode's
    /// row lists live in memory while the driver partitions them.
    #[default]
    Ram,
    /// Out-of-core unfoldings ([`dbtf_tensor::MmapUnfolding`]): each mode
    /// is spilled to an on-disk columnar file in one streaming pass with a
    /// bounded sort buffer, then partitioned through a read-only memory
    /// map. Peak driver memory is bounded by the partition size instead of
    /// the tensor size, and lineage recompute re-opens the file instead of
    /// re-unfolding a heap copy of the tensor.
    Mmap,
}

impl std::fmt::Display for StorageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StorageKind::Ram => "ram",
            StorageKind::Mmap => "mmap",
        })
    }
}

impl std::str::FromStr for StorageKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ram" => Ok(StorageKind::Ram),
            "mmap" => Ok(StorageKind::Mmap),
            other => Err(format!("unknown storage {other:?} (ram|mmap)")),
        }
    }
}

/// Configuration of a DBTF factorization run (the paper's Algorithm 2
/// inputs plus the initialization knobs the paper leaves open).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DbtfConfig {
    /// Rank `R`: the number of rank-1 components.
    pub rank: usize,
    /// Maximum number of iterations `T` (paper default: 10).
    pub max_iters: usize,
    /// Number of random initial factor sets `L` (paper default: 1). All `L`
    /// sets are updated in the first iteration and the best one is kept.
    pub initial_sets: usize,
    /// Number of vertical partitions `N` per unfolded tensor. `None` means
    /// one partition per worker core, the natural level of parallelism.
    pub partitions: Option<usize>,
    /// Cache-table group limit `V` (paper default: 15): when `R > V` the
    /// rank rows are split into `⌈R/V⌉` groups with a
    /// `2^(R/⌈R/V⌉)`-entry table each (Lemma 2).
    pub cache_group_limit: usize,
    /// Convergence threshold: stop when the error change between two
    /// consecutive iterations is at most `threshold × |X|`
    /// (the paper's "does not change significantly"). A negative value
    /// disables early stopping — exactly `max_iters` iterations run
    /// (useful for complexity measurements).
    pub convergence_threshold: f64,
    /// Initialization strategy (see [`InitStrategy`]).
    pub init: InitStrategy,
    /// For [`InitStrategy::Random`]: density of the random initial factor
    /// matrices. `None` derives
    /// `p = min(0.5, (d/R)^(1/3))` from the tensor density `d`, so that the
    /// expected density of the initial reconstruction (≈ `R·p³`) matches
    /// the input.
    pub init_density: Option<f64>,
    /// RNG seed for the random initialization (runs are deterministic).
    pub seed: u64,
    /// Write a factor checkpoint every `K` completed iterations (`None`
    /// disables checkpointing). The file at [`DbtfConfig::checkpoint_path`]
    /// is replaced atomically, so a crash mid-write never corrupts the
    /// previous checkpoint.
    pub checkpoint_every: Option<usize>,
    /// Path of the checkpoint file (required when `checkpoint_every` or
    /// `resume` is set).
    pub checkpoint_path: Option<String>,
    /// Resume from [`DbtfConfig::checkpoint_path`] if the file exists:
    /// initialization and the already-completed iterations are skipped and
    /// the run continues from the checkpointed factors. Because the RNG is
    /// only consumed by initialization, a resumed run converges to exactly
    /// the factors an uninterrupted run produces. A missing file falls back
    /// to a fresh run; a corrupt file is an error.
    pub resume: bool,
    /// Which execution backend the caller intends to run the plan on.
    ///
    /// Advisory: [`crate::factorize`] is generic over the backend it is
    /// handed, but entry points that *construct* the backend (the CLI,
    /// benchmarks) read this field to pick between the simulated cluster
    /// and the local backend.
    pub backend: BackendKind,
    /// Where the driver materializes the unfolded tensors (see
    /// [`StorageKind`]). Results are bit-identical across storage kinds.
    #[serde(default)]
    pub storage: StorageKind,
    /// For [`StorageKind::Mmap`]: the directory the spilled unfolding
    /// files live in. Each run creates (and on completion removes) a
    /// uniquely named subdirectory, so concurrent runs can share a spill
    /// directory. `None` uses the system temporary directory.
    #[serde(default)]
    pub spill_dir: Option<String>,
}

impl Default for DbtfConfig {
    fn default() -> Self {
        DbtfConfig {
            rank: 10,
            max_iters: 10,
            initial_sets: 1,
            partitions: None,
            cache_group_limit: 15,
            convergence_threshold: 1e-4,
            init: InitStrategy::default(),
            init_density: None,
            seed: 0,
            checkpoint_every: None,
            checkpoint_path: None,
            resume: false,
            backend: BackendKind::default(),
            storage: StorageKind::default(),
            spill_dir: None,
        }
    }
}

impl DbtfConfig {
    /// A configuration with the given rank and paper defaults elsewhere.
    pub fn with_rank(rank: usize) -> Self {
        DbtfConfig {
            rank,
            ..DbtfConfig::default()
        }
    }

    /// Checks the configuration for internal consistency.
    pub fn validate(&self) -> Result<(), DbtfError> {
        if self.rank == 0 {
            return Err(DbtfError::InvalidConfig("rank must be at least 1".into()));
        }
        if self.max_iters == 0 {
            return Err(DbtfError::InvalidConfig(
                "max_iters must be at least 1".into(),
            ));
        }
        if self.initial_sets == 0 {
            return Err(DbtfError::InvalidConfig(
                "initial_sets must be at least 1".into(),
            ));
        }
        if self.cache_group_limit == 0 || self.cache_group_limit > 24 {
            return Err(DbtfError::InvalidConfig(format!(
                "cache_group_limit must be in 1..=24 (got {}; a group of v bits \
                 stores 2^v cached summations)",
                self.cache_group_limit
            )));
        }
        if let Some(n) = self.partitions {
            if n == 0 {
                return Err(DbtfError::InvalidConfig(
                    "partitions must be at least 1".into(),
                ));
            }
        }
        if let Some(d) = self.init_density {
            if !(0.0..=1.0).contains(&d) {
                return Err(DbtfError::InvalidConfig(format!(
                    "init_density must be in [0, 1] (got {d})"
                )));
            }
        }
        if !self.convergence_threshold.is_finite() {
            return Err(DbtfError::InvalidConfig(
                "convergence_threshold must be finite".into(),
            ));
        }
        if self.checkpoint_every == Some(0) {
            return Err(DbtfError::InvalidConfig(
                "checkpoint_every must be at least 1".into(),
            ));
        }
        if (self.checkpoint_every.is_some() || self.resume) && self.checkpoint_path.is_none() {
            return Err(DbtfError::InvalidConfig(
                "checkpoint_every/resume require checkpoint_path".into(),
            ));
        }
        if self.spill_dir.is_some() && self.storage != StorageKind::Mmap {
            return Err(DbtfError::InvalidConfig(
                "spill_dir requires storage = mmap".into(),
            ));
        }
        Ok(())
    }

    /// The initial factor density for a tensor of density `d` (see
    /// [`DbtfConfig::init_density`]).
    pub fn effective_init_density(&self, tensor_density: f64) -> f64 {
        self.init_density.unwrap_or_else(|| {
            let p = (tensor_density.max(1e-12) / self.rank as f64).cbrt();
            p.clamp(1e-3, 0.5)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(DbtfConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_zero_rank() {
        let cfg = DbtfConfig {
            rank: 0,
            ..Default::default()
        };
        assert!(matches!(cfg.validate(), Err(DbtfError::InvalidConfig(_))));
    }

    #[test]
    fn rejects_huge_cache_groups() {
        let cfg = DbtfConfig {
            cache_group_limit: 40,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn cluster_error_converts_to_engine_variant() {
        let err = dbtf_cluster::ClusterError::WorkerSpawn {
            worker: 2,
            source: std::io::Error::other("out of threads"),
        };
        let rendered = err.to_string();
        let converted = DbtfError::from(err);
        assert_eq!(converted, DbtfError::Engine(rendered.clone()));
        assert_eq!(converted.to_string(), format!("engine error: {rendered}"));
    }

    #[test]
    fn rejects_bad_density() {
        let cfg = DbtfConfig {
            init_density: Some(1.5),
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_inconsistent_checkpoint_config() {
        let no_path = DbtfConfig {
            checkpoint_every: Some(2),
            ..Default::default()
        };
        assert!(no_path.validate().is_err());
        let resume_no_path = DbtfConfig {
            resume: true,
            ..Default::default()
        };
        assert!(resume_no_path.validate().is_err());
        let zero = DbtfConfig {
            checkpoint_every: Some(0),
            checkpoint_path: Some("ckpt".into()),
            ..Default::default()
        };
        assert!(zero.validate().is_err());
        let ok = DbtfConfig {
            checkpoint_every: Some(3),
            checkpoint_path: Some("ckpt".into()),
            resume: true,
            ..Default::default()
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn backend_kind_round_trips_through_str() {
        for kind in [BackendKind::Cluster, BackendKind::Local, BackendKind::Net] {
            assert_eq!(kind.to_string().parse::<BackendKind>(), Ok(kind));
        }
        assert!("spark".parse::<BackendKind>().is_err());
        assert_eq!(DbtfConfig::default().backend, BackendKind::Cluster);
    }

    #[test]
    fn storage_kind_round_trips_through_str() {
        for kind in [StorageKind::Ram, StorageKind::Mmap] {
            assert_eq!(kind.to_string().parse::<StorageKind>(), Ok(kind));
        }
        assert!("disk".parse::<StorageKind>().is_err());
        assert_eq!(DbtfConfig::default().storage, StorageKind::Ram);
    }

    #[test]
    fn rejects_spill_dir_without_mmap() {
        let cfg = DbtfConfig {
            spill_dir: Some("/tmp/spill".into()),
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let ok = DbtfConfig {
            storage: StorageKind::Mmap,
            spill_dir: Some("/tmp/spill".into()),
            ..Default::default()
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn store_errors_map_to_distinct_variants() {
        use dbtf_tensor::StoreError;
        let path = String::from("u.dbtfu");
        type Check = fn(&DbtfError) -> bool;
        let cases: [(StoreError, Check); 5] = [
            (StoreError::BadMagic { path: path.clone() }, |e| {
                matches!(e, DbtfError::StorageBadMagic(_))
            }),
            (
                StoreError::Truncated {
                    path: path.clone(),
                    section: "row index",
                },
                |e| matches!(e, DbtfError::StorageTruncated(_)),
            ),
            (
                StoreError::ChecksumMismatch {
                    path: path.clone(),
                    section: "header",
                },
                |e| matches!(e, DbtfError::StorageChecksum(_)),
            ),
            (
                StoreError::VersionSkew {
                    path: path.clone(),
                    found: 9,
                    supported: 1,
                },
                |e| matches!(e, DbtfError::StorageVersionSkew(_)),
            ),
            (
                StoreError::Invalid {
                    path,
                    detail: "row index not monotone".into(),
                },
                |e| matches!(e, DbtfError::StorageInvalid(_)),
            ),
        ];
        for (err, is_expected) in cases {
            let rendered = err.to_string();
            let converted = DbtfError::from(err);
            assert!(is_expected(&converted), "wrong variant for {converted:?}");
            assert_eq!(converted.to_string(), format!("storage error: {rendered}"));
        }
    }

    #[test]
    fn derived_init_density_tracks_input() {
        let cfg = DbtfConfig::with_rank(10);
        let p = cfg.effective_init_density(0.01);
        // R·p³ ≈ d.
        assert!((10.0 * p.powi(3) - 0.01).abs() < 1e-9);
        // Dense inputs stay within the clamp range.
        let dense = DbtfConfig::with_rank(1).effective_init_density(1.0);
        assert_eq!(dense, 0.5);
        // Explicit value wins.
        let cfg = DbtfConfig {
            init_density: Some(0.2),
            ..cfg
        };
        assert_eq!(cfg.effective_init_density(0.01), 0.2);
    }
}
