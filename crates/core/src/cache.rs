//! Cached Boolean row summations (paper Section III-C, Algorithm 5,
//! Lemma 2).
//!
//! The inner loop of the DBTF factor update repeatedly forms Boolean sums of
//! subsets of the rows of `M_sᵀ` (equivalently, of the columns of the second
//! Khatri-Rao operand `M_s`). A [`RowSumCache`] precomputes *all* `2^R`
//! such sums; when the rank `R` exceeds the group limit `V`, the `R` rank
//! indices are split evenly into `⌈R/V⌉` groups with a `2^(R/⌈R/V⌉)`-entry
//! table each, and a fetch ORs one cached row per group (Lemma 2's
//! space/time trade-off).

use dbtf_tensor::{BitMatrix, BitVec};

/// How the `R` rank indices are split into cache-table groups.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupLayout {
    /// `(first_rank_index, bit_count)` per group, contiguous and covering
    /// `0..R`.
    groups: Vec<(usize, usize)>,
    rank: usize,
}

impl GroupLayout {
    /// Splits `rank` indices into `⌈rank / v_limit⌉` near-even groups
    /// (Lemma 2).
    ///
    /// # Panics
    ///
    /// Panics if `rank == 0` or `v_limit == 0`.
    pub fn new(rank: usize, v_limit: usize) -> Self {
        assert!(rank > 0, "rank must be positive");
        assert!(v_limit > 0, "group limit must be positive");
        let ngroups = rank.div_ceil(v_limit);
        let base = rank / ngroups;
        let extra = rank % ngroups;
        let mut groups = Vec::with_capacity(ngroups);
        let mut first = 0;
        for g in 0..ngroups {
            let bits = base + usize::from(g < extra);
            groups.push((first, bits));
            first += bits;
        }
        debug_assert_eq!(first, rank);
        GroupLayout { groups, rank }
    }

    /// The rank this layout covers.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of groups (`⌈R/V⌉`).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// `(first_rank_index, bit_count)` of group `g`.
    pub fn group(&self, g: usize) -> (usize, usize) {
        self.groups[g]
    }

    /// The group containing rank index `r` and `r`'s bit offset within it.
    pub fn locate(&self, r: usize) -> (usize, usize) {
        assert!(r < self.rank, "rank index {r} out of range");
        for (g, &(first, bits)) in self.groups.iter().enumerate() {
            if r < first + bits {
                return (g, r - first);
            }
        }
        unreachable!("groups cover 0..rank")
    }

    /// Extracts the per-group key masks of row `row` of `m` (an `? × R`
    /// bit matrix) into `out`.
    pub fn row_masks(&self, m: &BitMatrix, row: usize, out: &mut [u64]) {
        debug_assert_eq!(out.len(), self.groups.len());
        for (g, &(first, bits)) in self.groups.iter().enumerate() {
            out[g] = m.row_word(row, first, bits);
        }
    }
}

/// One group's table: the Boolean sums of every subset of its rank rows.
#[derive(Clone, Debug)]
struct GroupTable {
    /// `rows[mask]` = OR of the cached base rows selected by `mask`.
    rows: Vec<BitVec>,
    /// Popcount of each cached row (precomputed so single-group fetches
    /// never rescan).
    pops: Vec<u32>,
}

/// All cached Boolean row summations for one caching unit `M_sᵀ`
/// (paper Figure 4), possibly split into groups (Lemma 2).
///
/// The *width* is the number of columns of the cached rows — the slab width
/// `S` for the full-size cache, or a block's width for the sliced caches of
/// edge blocks (Section III-D).
#[derive(Clone, Debug)]
pub struct RowSumCache {
    width: usize,
    tables: Vec<GroupTable>,
}

impl RowSumCache {
    /// Builds the cache for the columns of `ms` (`S × R`): entry `mask` of
    /// group `g` holds `⊕_{r ∈ mask} (m_s)_{:r}ᵀ`.
    ///
    /// Construction is incremental — each entry is one OR of a previous
    /// entry with a single base row (`O(S)` per entry), as assumed by the
    /// Lemma 4 cost analysis.
    pub fn build(ms: &BitMatrix, layout: &GroupLayout) -> Self {
        assert_eq!(ms.cols(), layout.rank(), "factor rank mismatch");
        let width = ms.rows();
        let mst = ms.transpose(); // R × S: row r = column r of M_s.
        let mut tables = Vec::with_capacity(layout.num_groups());
        for g in 0..layout.num_groups() {
            let (first, bits) = layout.group(g);
            let size = 1usize << bits;
            let mut rows = Vec::with_capacity(size);
            let mut pops = Vec::with_capacity(size);
            rows.push(BitVec::zeros(width));
            pops.push(0);
            for mask in 1..size {
                let low = mask & mask.wrapping_sub(1); // mask without lowest bit
                let bit = mask.trailing_zeros() as usize;
                let mut row = rows[low].clone();
                row.or_assign(&mst.row_bitvec(first + bit));
                pops.push(row.count_ones() as u32);
                rows.push(row);
            }
            tables.push(GroupTable { rows, pops });
        }
        RowSumCache { width, tables }
    }

    /// Width (columns) of the cached rows.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of group tables.
    pub fn num_groups(&self) -> usize {
        self.tables.len()
    }

    /// Total number of cached rows across groups (Lemma 2's
    /// `⌈R/V⌉ · 2^(R/⌈R/V⌉)`).
    pub fn num_entries(&self) -> usize {
        self.tables.iter().map(|t| t.rows.len()).sum()
    }

    /// Approximate heap footprint in bytes (for Lemma 5 memory metering).
    pub fn byte_size(&self) -> u64 {
        let row_bytes = self.width.div_ceil(64) as u64 * 8;
        self.num_entries() as u64 * (row_bytes + 4)
    }

    /// Single-group fast path: the cached row and popcount for `key`.
    ///
    /// # Panics
    ///
    /// Debug-panics if the cache has more than one group.
    #[inline]
    pub fn fetch_single(&self, key: u64) -> (&BitVec, u32) {
        debug_assert_eq!(self.tables.len(), 1, "fetch_single on multi-group cache");
        let t = &self.tables[0];
        (&t.rows[key as usize], t.pops[key as usize])
    }

    /// General fetch: ORs the cached row of each group's key into
    /// `scratch` (which must hold `width().div_ceil(64)` words and is
    /// cleared first). Returns the popcount of the combined row.
    pub fn fetch_or(&self, keys: &[u64], scratch: &mut [u64]) -> u32 {
        debug_assert_eq!(keys.len(), self.tables.len(), "one key per group");
        scratch.fill(0);
        for (t, &key) in self.tables.iter().zip(keys) {
            for (d, s) in scratch.iter_mut().zip(t.rows[key as usize].words()) {
                *d |= s;
            }
        }
        scratch.iter().map(|w| w.count_ones()).sum()
    }

    /// The cached row of group `g` for `key` (no OR), for callers that
    /// combine group rows themselves — e.g. the column superstep, which
    /// shares the OR of all non-candidate groups between both candidates.
    #[inline]
    pub fn group_row(&self, g: usize, key: u64) -> &BitVec {
        &self.tables[g].rows[key as usize]
    }

    /// The per-group cached rows for `keys` (no OR), for callers that can
    /// test bits across groups themselves.
    #[inline]
    pub fn group_rows<'a>(&'a self, keys: &[u64]) -> impl Iterator<Item = &'a BitVec> + 'a {
        let keys: Vec<u64> = keys.to_vec();
        self.tables
            .iter()
            .zip(keys)
            .map(|(t, key)| &t.rows[key as usize])
    }

    /// Derives the vertically sliced cache for an edge block covering
    /// columns `[lo, lo + len)` of the caching unit (Algorithm 5 line 4):
    /// a single pass over the full-size cache.
    pub fn slice(&self, lo: usize, len: usize) -> RowSumCache {
        assert!(lo + len <= self.width, "slice out of bounds");
        let tables = self
            .tables
            .iter()
            .map(|t| {
                let rows: Vec<BitVec> = t.rows.iter().map(|r| r.slice(lo, len)).collect();
                let pops = rows.iter().map(|r| r.count_ones() as u32).collect();
                GroupTable { rows, pops }
            })
            .collect();
        RowSumCache { width: len, tables }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtf_tensor::ops::or_selected_rows;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn layout_single_group() {
        let l = GroupLayout::new(10, 15);
        assert_eq!(l.num_groups(), 1);
        assert_eq!(l.group(0), (0, 10));
        assert_eq!(l.locate(7), (0, 7));
    }

    #[test]
    fn layout_paper_example() {
        // Paper: R = 18, V = 10 → two tables of 2⁹.
        let l = GroupLayout::new(18, 10);
        assert_eq!(l.num_groups(), 2);
        assert_eq!(l.group(0), (0, 9));
        assert_eq!(l.group(1), (9, 9));
    }

    #[test]
    fn layout_uneven_split() {
        let l = GroupLayout::new(20, 9); // ⌈20/9⌉ = 3 groups: 7+7+6.
        assert_eq!(l.num_groups(), 3);
        let total: usize = (0..3).map(|g| l.group(g).1).sum();
        assert_eq!(total, 20);
        assert!((0..3).all(|g| l.group(g).1 <= 9));
        assert_eq!(l.locate(0), (0, 0));
        assert_eq!(l.locate(19), (2, 5));
    }

    #[test]
    fn layout_groups_contiguous() {
        for (rank, v) in [(1, 1), (5, 2), (64, 15), (60, 15), (33, 16)] {
            let l = GroupLayout::new(rank, v);
            let mut next = 0;
            for g in 0..l.num_groups() {
                let (first, bits) = l.group(g);
                assert_eq!(first, next);
                assert!(bits >= 1 && bits <= v);
                next = first + bits;
            }
            assert_eq!(next, rank);
        }
    }

    /// Every cached entry must equal the naive Boolean row summation.
    #[test]
    fn cache_matches_naive_summation() {
        let mut rng = StdRng::seed_from_u64(9);
        let r = 6;
        let ms = BitMatrix::random(20, r, 0.4, &mut rng); // S = 20
        let mst = ms.transpose();
        let layout = GroupLayout::new(r, 15);
        let cache = RowSumCache::build(&ms, &layout);
        assert_eq!(cache.num_groups(), 1);
        assert_eq!(cache.num_entries(), 64);
        for mask in 0u64..64 {
            let sel = BitVec::from_words(r, vec![mask]);
            let expect = or_selected_rows(&mst, &sel);
            let (row, pop) = cache.fetch_single(mask);
            assert_eq!(row, &expect, "mask {mask:#b}");
            assert_eq!(pop as usize, expect.count_ones());
        }
    }

    #[test]
    fn multi_group_fetch_matches_naive() {
        let mut rng = StdRng::seed_from_u64(10);
        let r = 7;
        let ms = BitMatrix::random(70, r, 0.3, &mut rng);
        let mst = ms.transpose();
        let layout = GroupLayout::new(r, 3); // 3 groups: 3+2+2 bits.
        assert_eq!(layout.num_groups(), 3);
        let cache = RowSumCache::build(&ms, &layout);
        let mut scratch = vec![0u64; 70usize.div_ceil(64)];
        for mask in [0u64, 1, 0b1010101, 0b1111111, 0b0110010] {
            // Split the full mask into group keys.
            let mut keys = vec![0u64; layout.num_groups()];
            for (g, key) in keys.iter_mut().enumerate() {
                let (first, bits) = layout.group(g);
                *key = (mask >> first) & ((1 << bits) - 1);
            }
            let pop = cache.fetch_or(&keys, &mut scratch);
            let sel = BitVec::from_words(r, vec![mask]);
            let expect = or_selected_rows(&mst, &sel);
            assert_eq!(BitVec::from_words(70, scratch.clone()), expect);
            assert_eq!(pop as usize, expect.count_ones());
        }
    }

    #[test]
    fn lemma2_table_counts() {
        // Lemma 2: ⌈R/V⌉ tables of 2^(R/⌈R/V⌉) each (up to rounding).
        let layout = GroupLayout::new(18, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let ms = BitMatrix::random(8, 18, 0.5, &mut rng);
        let cache = RowSumCache::build(&ms, &layout);
        assert_eq!(cache.num_groups(), 2);
        assert_eq!(cache.num_entries(), 2 * (1 << 9));
    }

    #[test]
    fn sliced_cache_equals_slicing_entries() {
        let mut rng = StdRng::seed_from_u64(12);
        let ms = BitMatrix::random(100, 5, 0.3, &mut rng);
        let layout = GroupLayout::new(5, 15);
        let full = RowSumCache::build(&ms, &layout);
        let sliced = full.slice(30, 45);
        assert_eq!(sliced.width(), 45);
        for mask in 0u64..32 {
            let (full_row, _) = full.fetch_single(mask);
            let (slice_row, pop) = sliced.fetch_single(mask);
            assert_eq!(slice_row, &full_row.slice(30, 45));
            assert_eq!(pop as usize, slice_row.count_ones());
        }
    }

    #[test]
    fn byte_size_positive() {
        let ms = BitMatrix::zeros(10, 4);
        let cache = RowSumCache::build(&ms, &GroupLayout::new(4, 15));
        assert!(cache.byte_size() > 0);
    }

    #[test]
    fn empty_mask_is_zero_row() {
        let mut rng = StdRng::seed_from_u64(13);
        let ms = BitMatrix::random(10, 4, 0.9, &mut rng);
        let cache = RowSumCache::build(&ms, &GroupLayout::new(4, 15));
        let (row, pop) = cache.fetch_single(0);
        assert_eq!(pop, 0);
        assert_eq!(row.count_ones(), 0);
    }
}
