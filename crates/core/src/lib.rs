//! # DBTF — Distributed Boolean Tensor Factorization
//!
//! A from-scratch Rust implementation of **DBTF** from *Fast and Scalable
//! Distributed Boolean Tensor Factorization* (Namyong Park, Sejoon Oh,
//! U Kang — ICDE 2017): Boolean CP decomposition of large binary three-way
//! tensors on a distributed cluster.
//!
//! Given a binary tensor `X ∈ B^{I×J×K}` and a rank `R`, DBTF finds binary
//! factor matrices `A ∈ B^{I×R}`, `B ∈ B^{J×R}`, `C ∈ B^{K×R}` minimizing
//! `|X ⊕ ⊕_r a_r ∘ b_r ∘ c_r|` under Boolean arithmetic (`1 + 1 = 1`).
//! The three ideas of the paper, all implemented here:
//!
//! 1. **Distributed generation & minimal transfer of intermediate data**
//!    (Section III-B): only the small factor matrices are broadcast; each
//!    machine generates the rows of the Khatri-Rao product it needs; the
//!    unfolded tensors are shuffled once and never again.
//! 2. **Caching of intermediate computation results** (Section III-C):
//!    all `2^R` Boolean row summations of `M_sᵀ` are precomputed per
//!    partition ([`cache::RowSumCache`]), split into `⌈R/V⌉` group tables
//!    when `R` exceeds the limit `V` (Lemma 2).
//! 3. **Careful partitioning of the workload** (Section III-D): vertical
//!    partitions subdivided into blocks at pointwise vector-matrix product
//!    boundaries ([`partition`]), so every block fetches cached summations
//!    directly (edge blocks get vertically sliced caches).
//!
//! The distributed substrate is [`dbtf_cluster`] — a hand-rolled engine
//! reproducing the slice of Spark the paper uses, with a virtual-time cost
//! model for scalability experiments.
//!
//! # Quick start
//!
//! ```
//! use dbtf::{factorize, DbtfConfig};
//! use dbtf_cluster::{Cluster, ClusterConfig};
//! use dbtf_tensor::BoolTensor;
//!
//! // A tiny 8×8×8 tensor: two disjoint combinatorial blocks.
//! let mut entries = Vec::new();
//! for i in 0..4u32 {
//!     for j in 0..4u32 {
//!         for k in 0..4u32 {
//!             entries.push([i, j, k]);
//!             entries.push([i + 4, j + 4, k + 4]);
//!         }
//!     }
//! }
//! let x = BoolTensor::from_entries([8, 8, 8], entries);
//!
//! let cluster = Cluster::new(ClusterConfig::with_workers(2));
//! let config = DbtfConfig { rank: 2, seed: 1, ..DbtfConfig::default() };
//! let result = factorize(&cluster, &x, &config).unwrap();
//! assert_eq!(result.error, 0); // both blocks recovered exactly
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod checkpoint;
mod config;
mod delta;
mod driver;
mod factors;
pub mod model_selection;
pub mod net_tasks;
mod ooc;
pub mod partition;
pub mod reference;
mod stats;
mod sweep;
pub mod tucker;
pub mod tucker_distributed;
pub mod update;

pub use checkpoint::{Checkpoint, CHECKPOINT_FORMAT_VERSION};
pub use config::{BackendKind, DbtfConfig, DbtfError, InitStrategy, StorageKind};
pub use delta::{affected_columns, update_factors, update_factors_traced, DeltaResult};
pub use driver::{factorize, factorize_instrumented, factorize_traced, DbtfResult};
pub use factors::{initial_factor_sets, random_factor_sets, FactorSet};
pub use ooc::SPILL_BUDGET_ENV;
pub use stats::DbtfStats;
pub use update::{PartitionSlot, WorkState};
