//! Worker-side state and inner loops of the factor update (paper
//! Section III-A/III-C, Algorithm 4).
//!
//! During one `UpdateFactor` call, every partition holds a transient
//! [`WorkState`]: the per-row group key masks of the factor being updated,
//! the per-block key masks of `M_f`, and the cached Boolean row summations
//! of `M_sᵀ` (full-size plus vertically sliced caches for the partition's
//! edge blocks). The driver drives one superstep per factor column; each
//! superstep scores both candidate values of every row's entry in that
//! column against the partition's share of the unfolded tensor.
//!
//! # Hot-path design
//!
//! The column superstep is DBTF's innermost loop, so [`WorkState`] is built
//! for zero per-superstep heap allocation and minimal redundant work:
//!
//! - **Incremental key masks.** The working factor copy is held directly as
//!   the `P × G` group-key buffer `row_masks`; [`WorkState::apply_column`]
//!   patches the changed column's single bit per row (word-wise over the
//!   broadcast column) instead of rebuilding the whole buffer each call.
//! - **Owned scratch.** Key and OR scratch buffers live in the state, sized
//!   once in [`WorkState::build`].
//! - **Density-adaptive intersection.** Each block chooses, at build time,
//!   between probing its sparse ones against the cached row (cost
//!   `O(nnz)`) and a word-wise AND + popcount against a dense bitmap of
//!   its rows (cost `O(width/64)` per row) — whichever is cheaper.

use dbtf_tensor::{BitMatrix, BitVec};

use crate::cache::{GroupLayout, RowSumCache};
use crate::partition::{Block, BlockKind, ModePartition, PartitionData};

/// A partition plus its transient update state; the element type stored in
/// the cluster's distributed datasets.
pub struct PartitionSlot {
    /// The immutable partitioned unfolding (cached across the whole run).
    pub part: ModePartition,
    /// Per-`UpdateFactor` state (CP path); `None` outside an update.
    pub(crate) work: Option<WorkState>,
    /// Per-`UpdateFactor` state (Tucker path); `None` outside an update.
    pub(crate) tucker: Option<crate::tucker_distributed::TuckerWorkState>,
}

impl PartitionSlot {
    /// Wraps a partition with no active update state.
    pub fn new(part: ModePartition) -> Self {
        PartitionSlot {
            part,
            work: None,
            tucker: None,
        }
    }
}

/// Per-block cache handle: full blocks share the partition's full-size
/// cache; edge blocks own a sliced cache (Algorithm 5 line 4).
enum BlockCache {
    Full,
    Sliced(RowSumCache),
}

/// A dense row-major bitmap of one block's rows, built when the block is
/// dense enough that word-wise AND + popcount beats per-nonzero probing.
struct DenseRows {
    /// Words per row (`inner_len.div_ceil(64)`).
    words: usize,
    /// `nrows × words` bitmap; bit `c` of row `r` ⇔ block one at `(r, c)`.
    data: Vec<u64>,
}

impl DenseRows {
    /// Builds the bitmap from the block's CSR rows.
    fn build(block: &Block, nrows: usize) -> Self {
        let words = (block.inner_len as usize).div_ceil(64);
        let mut data = vec![0u64; nrows * words];
        for r in 0..nrows {
            let row = &mut data[r * words..(r + 1) * words];
            for &o in block.row(r) {
                row[(o / 64) as usize] |= 1u64 << (o % 64);
            }
        }
        DenseRows { words, data }
    }

    /// The bitmap words of row `r`.
    #[inline]
    fn row(&self, r: usize) -> &[u64] {
        &self.data[r * self.words..(r + 1) * self.words]
    }

    /// Heap bytes held.
    fn byte_size(&self) -> u64 {
        self.data.len() as u64 * 8
    }
}

/// Whether `block` should intersect via a dense bitmap: per-row probing
/// costs `O(nnz)` over the block, the dense path `O(nrows × words)`, so
/// the bitmap wins once the ones outnumber the words. Deterministic per
/// block, so virtual-time ops never depend on the execution schedule.
fn use_dense(block: &Block, nrows: usize) -> bool {
    let words = (block.inner_len as usize).div_ceil(64);
    block.nnz() >= nrows * words
}

/// Transient state of one partition during an `UpdateFactor` call.
///
/// Public so benchmarks can drive the column-superstep kernel directly;
/// within the crate it is owned by [`PartitionSlot`].
pub struct WorkState {
    layout: GroupLayout,
    /// Row count `P` of the factor being updated.
    nrows: usize,
    /// The working factor copy, held directly in key form: `P × G` group
    /// key words, `row_masks[r·G + g]` = group-`g` bits of factor row `r`.
    /// Maintained incrementally by [`WorkState::apply_column`].
    row_masks: Vec<u64>,
    /// Per-block group key masks of the owning `M_f` row
    /// (`mf_masks[b][g] = group-g bits of m_{f, slab(b)}`).
    mf_masks: Vec<Vec<u64>>,
    full_cache: RowSumCache,
    block_caches: Vec<BlockCache>,
    /// Per-block dense bitmaps for blocks past the density threshold.
    dense_rows: Vec<Option<DenseRows>>,
    /// Scratch: one key word per group.
    keys: Vec<u64>,
    /// Scratch: OR of the cached rows of all groups except the superstep's.
    scratch_base: Vec<u64>,
    /// Scratch: combined cached row under candidate 0 / the current keys.
    scratch0: Vec<u64>,
    /// Scratch: combined cached row under candidate 1.
    scratch1: Vec<u64>,
}

/// Ops-accounting constants: one unit ≈ one 64-bit word operation.
mod cost {
    /// Key construction per (row, block, group).
    pub const KEY: u64 = 1;
    /// Per word ORed or popcounted.
    pub const WORD: u64 = 1;
    /// Per sparse one tested against a cached row.
    pub const NNZ_TEST: u64 = 1;
    /// Per word ANDed + popcounted on the dense intersection path.
    pub const DENSE_AND: u64 = 1;
}

impl WorkState {
    /// Builds the update state for `part`: caches all Boolean row
    /// summations of `M_sᵀ` (sliced per edge block), extracts the
    /// per-block `M_f` key masks, converts `a` into the incremental
    /// row-key buffer, and sizes all kernel scratch. Returns the state and
    /// the charged ops.
    pub fn build<P: PartitionData + ?Sized>(
        part: &P,
        a: &BitMatrix,
        mf: &BitMatrix,
        ms: &BitMatrix,
        v_limit: usize,
    ) -> (Self, u64) {
        let rank = a.cols();
        debug_assert_eq!(mf.cols(), rank);
        debug_assert_eq!(ms.cols(), rank);
        debug_assert_eq!(
            ms.rows(),
            part.slab_width(),
            "M_s height must be the slab width"
        );
        let layout = GroupLayout::new(rank, v_limit);
        let ngroups = layout.num_groups();

        let full_cache = RowSumCache::build(ms, &layout);
        let width_words = part.slab_width().div_ceil(64) as u64;
        let mut ops = full_cache.num_entries() as u64 * width_words;

        let mut mf_masks = Vec::with_capacity(part.blocks().len());
        let mut block_caches = Vec::with_capacity(part.blocks().len());
        let mut dense_rows = Vec::with_capacity(part.blocks().len());
        for block in part.blocks() {
            let mut masks = vec![0u64; ngroups];
            layout.row_masks(mf, block.slab, &mut masks);
            mf_masks.push(masks);
            ops += ngroups as u64 * cost::KEY;
            match block.kind {
                BlockKind::Full => block_caches.push(BlockCache::Full),
                _ => {
                    let sliced =
                        full_cache.slice(block.inner_lo as usize, block.inner_len as usize);
                    ops += sliced.num_entries() as u64
                        * (block.inner_len as u64).div_ceil(64)
                        * cost::WORD;
                    block_caches.push(BlockCache::Sliced(sliced));
                }
            }
            if use_dense(block, part.nrows()) {
                let dense = DenseRows::build(block, part.nrows());
                ops += dense.data.len() as u64 * cost::WORD;
                dense_rows.push(Some(dense));
            } else {
                dense_rows.push(None);
            }
        }

        // Seed the incremental key buffer from the initial factor copy.
        let mut row_masks = vec![0u64; part.nrows() * ngroups];
        for r in 0..part.nrows() {
            layout.row_masks(a, r, &mut row_masks[r * ngroups..(r + 1) * ngroups]);
        }
        ops += (part.nrows() * ngroups) as u64 * cost::KEY;

        let scratch_words = part.slab_width().div_ceil(64).max(1);
        let state = WorkState {
            layout,
            nrows: part.nrows(),
            row_masks,
            mf_masks,
            full_cache,
            block_caches,
            dense_rows,
            keys: vec![0u64; ngroups],
            scratch_base: vec![0u64; scratch_words],
            scratch0: vec![0u64; scratch_words],
            scratch1: vec![0u64; scratch_words],
        };
        (state, ops)
    }

    /// Total bytes held by this state's caches and dense bitmaps (for
    /// memory reporting).
    pub fn cache_bytes(&self) -> u64 {
        let sliced: u64 = self
            .block_caches
            .iter()
            .map(|c| match c {
                BlockCache::Full => 0,
                BlockCache::Sliced(s) => s.byte_size(),
            })
            .sum();
        let dense: u64 = self
            .dense_rows
            .iter()
            .flatten()
            .map(DenseRows::byte_size)
            .sum();
        self.full_cache.byte_size() + sliced + dense
    }

    /// Applies a decided column to the working factor copy by patching the
    /// affected group key word of every row — the incremental counterpart
    /// of the former full `P × G` rebuild. The broadcast column is read
    /// whole words at a time.
    pub fn apply_column(&mut self, col: usize, values: &BitVec) {
        debug_assert_eq!(values.len(), self.nrows);
        let ngroups = self.layout.num_groups();
        let (gc, off) = self.layout.locate(col);
        let col_bit = 1u64 << off;
        for (wi, &word) in values.words().iter().enumerate() {
            let row0 = wi * 64;
            let in_word = (self.nrows - row0).min(64);
            for i in 0..in_word {
                let idx = (row0 + i) * ngroups + gc;
                // Branchless single-bit patch from the value word.
                #[allow(unused_mut)]
                let mut bit = (word >> i) & 1;
                // Seeded kernel bug for the differential harness's teeth
                // test (crates/oracle/tests/teeth.rs): the decided column
                // is applied inverted to row 0.
                #[cfg(feature = "mutation")]
                if wi == 0 && i == 0 {
                    bit ^= 1;
                }
                self.row_masks[idx] = (self.row_masks[idx] & !col_bit) | (bit * col_bit);
            }
        }
    }

    /// Scores both candidate values of column `col` for every row
    /// (Algorithm 4 lines 4–10).
    ///
    /// Returns `(err0, err1)` per row, summed over this partition's blocks
    /// whose `M_f` row has a one in column `col` — blocks without it
    /// contribute identically to both candidates, so skipping them leaves
    /// every `err1 − err0` comparison exact. Also returns the charged ops.
    ///
    /// Aside from the returned vector (the task's result payload), this
    /// performs no heap allocation: all scratch lives in the state.
    pub fn column_errors<P: PartitionData + ?Sized>(
        &mut self,
        part: &P,
        col: usize,
    ) -> (Vec<(u64, u64)>, u64) {
        let nrows = part.nrows();
        let ngroups = self.layout.num_groups();
        let (gc, off) = self.layout.locate(col);
        let col_bit = 1u64 << off;
        let mut ops = 0u64;
        let mut errs = vec![(0u64, 0u64); nrows];

        for (b, block) in part.blocks().iter().enumerate() {
            let mf = &self.mf_masks[b];
            if (mf[gc] & col_bit) == 0 {
                continue; // irrelevant: both candidates reconstruct equally
            }
            let cache = match &self.block_caches[b] {
                BlockCache::Full => &self.full_cache,
                BlockCache::Sliced(s) => s,
            };
            let dense = self.dense_rows[b].as_ref();
            // Loop-invariant per block: word width of the cached rows.
            let cache_words = cache.width().div_ceil(64);
            if ngroups == 1 {
                let mf0 = mf[0];
                for (r, err) in errs.iter_mut().enumerate() {
                    let base = self.row_masks[r * ngroups] & mf0;
                    let key0 = base & !col_bit;
                    let key1 = base | col_bit;
                    let (row0, pop0) = cache.fetch_single(key0);
                    let (row1, pop1) = cache.fetch_single(key1);
                    let (inter0, inter1);
                    let nnz = block.row(r).len() as u64;
                    match dense {
                        Some(d) => {
                            let (mut i0, mut i1) = (0u64, 0u64);
                            let dr = d.row(r);
                            for (w, &dw) in dr.iter().enumerate() {
                                i0 += (row0.words()[w] & dw).count_ones() as u64;
                                i1 += (row1.words()[w] & dw).count_ones() as u64;
                            }
                            (inter0, inter1) = (i0, i1);
                            ops += cost::KEY + 2 * cache_words as u64 * cost::DENSE_AND;
                        }
                        None => {
                            let (mut i0, mut i1) = (0u64, 0u64);
                            for &o in block.row(r) {
                                let w = (o / 64) as usize;
                                let bit = 1u64 << (o % 64);
                                i0 += u64::from(row0.words()[w] & bit != 0);
                                i1 += u64::from(row1.words()[w] & bit != 0);
                            }
                            (inter0, inter1) = (i0, i1);
                            ops += cost::KEY + 2 * nnz * cost::NNZ_TEST;
                        }
                    }
                    err.0 += pop0 as u64 + nnz - 2 * inter0;
                    err.1 += pop1 as u64 + nnz - 2 * inter1;
                }
            } else {
                for (r, err) in errs.iter_mut().enumerate() {
                    let base = r * ngroups;
                    for (g, key) in self.keys.iter_mut().enumerate() {
                        *key = self.row_masks[base + g] & mf[g];
                    }
                    // The two candidates differ only in group `gc`, so OR
                    // the other groups once and share the result.
                    let sb = &mut self.scratch_base[..cache_words];
                    sb.fill(0);
                    for g in 0..ngroups {
                        if g != gc {
                            for (d, s) in
                                sb.iter_mut().zip(cache.group_row(g, self.keys[g]).words())
                            {
                                *d |= s;
                            }
                        }
                    }
                    let key0 = self.keys[gc] & !col_bit;
                    let key1 = self.keys[gc] | col_bit;
                    let row0 = cache.group_row(gc, key0).words();
                    let row1 = cache.group_row(gc, key1).words();
                    let nnz = block.row(r).len() as u64;
                    let (mut pop0, mut pop1) = (0u64, 0u64);
                    let (inter0, inter1);
                    match dense {
                        Some(d) => {
                            let (mut i0, mut i1) = (0u64, 0u64);
                            let dr = d.row(r);
                            for w in 0..cache_words {
                                let w0 = self.scratch_base[w] | row0[w];
                                let w1 = self.scratch_base[w] | row1[w];
                                pop0 += w0.count_ones() as u64;
                                pop1 += w1.count_ones() as u64;
                                i0 += (w0 & dr[w]).count_ones() as u64;
                                i1 += (w1 & dr[w]).count_ones() as u64;
                            }
                            (inter0, inter1) = (i0, i1);
                            ops += ngroups as u64 * cost::KEY
                                + cache_words as u64 * (ngroups as u64 - 1) * cost::WORD
                                + 2 * cache_words as u64 * (cost::WORD + cost::DENSE_AND);
                        }
                        None => {
                            for w in 0..cache_words {
                                let w0 = self.scratch_base[w] | row0[w];
                                let w1 = self.scratch_base[w] | row1[w];
                                pop0 += w0.count_ones() as u64;
                                pop1 += w1.count_ones() as u64;
                                self.scratch0[w] = w0;
                                self.scratch1[w] = w1;
                            }
                            let (mut i0, mut i1) = (0u64, 0u64);
                            for &o in block.row(r) {
                                let w = (o / 64) as usize;
                                let bit = 1u64 << (o % 64);
                                i0 += u64::from(self.scratch0[w] & bit != 0);
                                i1 += u64::from(self.scratch1[w] & bit != 0);
                            }
                            (inter0, inter1) = (i0, i1);
                            ops += ngroups as u64 * cost::KEY
                                + cache_words as u64 * (ngroups as u64 - 1) * cost::WORD
                                + 2 * cache_words as u64 * cost::WORD
                                + 2 * nnz * cost::NNZ_TEST;
                        }
                    }
                    err.0 += pop0 + nnz - 2 * inter0;
                    err.1 += pop1 + nnz - 2 * inter1;
                }
            }
        }
        (errs, ops)
    }

    /// Exact reconstruction error of this partition's column range under
    /// the *current* working factor copy:
    /// `Σ_rows |[X_(n)]_{r, lo..hi} ⊕ [A ∘ (M_f ⊙ M_s)ᵀ]_{r, lo..hi}|`.
    pub fn partition_error<P: PartitionData + ?Sized>(&mut self, part: &P) -> (u64, u64) {
        let nrows = part.nrows();
        let ngroups = self.layout.num_groups();
        let mut ops = 0u64;
        let mut err = 0u64;
        for (b, block) in part.blocks().iter().enumerate() {
            let mf = &self.mf_masks[b];
            let cache = match &self.block_caches[b] {
                BlockCache::Full => &self.full_cache,
                BlockCache::Sliced(s) => s,
            };
            let dense = self.dense_rows[b].as_ref();
            // Loop-invariant per block: word width of the cached rows.
            let cache_words = cache.width().div_ceil(64);
            for r in 0..nrows {
                let base = r * ngroups;
                let nnz = block.row(r).len() as u64;
                let (pop, inter);
                if ngroups == 1 {
                    let (row, row_pop) = cache.fetch_single(self.row_masks[r] & mf[0]);
                    pop = row_pop as u64;
                    match dense {
                        Some(d) => {
                            let mut i = 0u64;
                            for (w, &dw) in d.row(r).iter().enumerate() {
                                i += (row.words()[w] & dw).count_ones() as u64;
                            }
                            inter = i;
                            ops += cost::KEY + cache_words as u64 * cost::DENSE_AND;
                        }
                        None => {
                            let mut i = 0u64;
                            for &o in block.row(r) {
                                let w = (o / 64) as usize;
                                i += u64::from(row.words()[w] & (1u64 << (o % 64)) != 0);
                            }
                            inter = i;
                            ops += cost::KEY + nnz * cost::NNZ_TEST;
                        }
                    }
                } else {
                    for (g, key) in self.keys.iter_mut().enumerate() {
                        *key = self.row_masks[base + g] & mf[g];
                    }
                    pop = cache.fetch_or(&self.keys, &mut self.scratch0[..cache_words]) as u64;
                    match dense {
                        Some(d) => {
                            let mut i = 0u64;
                            for (w, &dw) in d.row(r).iter().enumerate() {
                                i += (self.scratch0[w] & dw).count_ones() as u64;
                            }
                            inter = i;
                            ops += ngroups as u64 * cost::KEY
                                + cache_words as u64 * (ngroups as u64 + 1) * cost::WORD
                                + cache_words as u64 * cost::DENSE_AND;
                        }
                        None => {
                            let mut i = 0u64;
                            for &o in block.row(r) {
                                let w = (o / 64) as usize;
                                i += u64::from(self.scratch0[w] & (1u64 << (o % 64)) != 0);
                            }
                            inter = i;
                            ops += ngroups as u64 * cost::KEY
                                + cache_words as u64 * (ngroups as u64 + 1) * cost::WORD
                                + nnz * cost::NNZ_TEST;
                        }
                    }
                }
                err += pop + nnz - 2 * inter;
            }
        }
        (err, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_unfolding;
    use dbtf_tensor::ops::{bool_matmul, khatri_rao};
    use dbtf_tensor::reconstruct::reconstruct;
    use dbtf_tensor::{BoolTensor, Mode, Unfolding};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tensor(dims: [usize; 3], density: f64, seed: u64) -> BoolTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut entries = Vec::new();
        for i in 0..dims[0] as u32 {
            for j in 0..dims[1] as u32 {
                for k in 0..dims[2] as u32 {
                    if rng.gen_bool(density) {
                        entries.push([i, j, k]);
                    }
                }
            }
        }
        BoolTensor::from_entries(dims, entries)
    }

    /// Reference: |X_(1) ⊕ A ∘ (M_f ⊙ M_s)ᵀ| restricted to a column range.
    fn naive_range_error(
        unf: &Unfolding,
        a: &BitMatrix,
        mf: &BitMatrix,
        ms: &BitMatrix,
        lo: u64,
        hi: u64,
    ) -> u64 {
        let recon = bool_matmul(a, &khatri_rao(mf, ms).transpose());
        let mut err = 0u64;
        for r in 0..unf.nrows() {
            for c in lo..hi {
                let x = unf.get(r, c);
                let y = recon.get(r, c as usize);
                err += u64::from(x != y);
            }
        }
        err
    }

    /// The partition_error of every partition must sum to the full
    /// matricized reconstruction error, for any partitioning and grouping.
    #[test]
    fn partition_error_sums_to_full_error() {
        let dims = [5, 6, 7];
        let t = random_tensor(dims, 0.2, 20);
        let mut rng = StdRng::seed_from_u64(21);
        let rank = 4;
        let a = BitMatrix::random(dims[0], rank, 0.4, &mut rng);
        let b = BitMatrix::random(dims[1], rank, 0.4, &mut rng);
        let c = BitMatrix::random(dims[2], rank, 0.4, &mut rng);
        let unf = Unfolding::new(&t, Mode::One);
        let full = naive_range_error(&unf, &a, &c, &b, 0, unf.ncols());
        // Cross-check against the tensor-level error.
        let x_hat = reconstruct(&a, &b, &c);
        assert_eq!(full, t.xor_count(&x_hat) as u64);

        for n in [1usize, 2, 5, 11] {
            for v in [15usize, 2, 1] {
                let parts = partition_unfolding(&unf, n);
                let mut total = 0u64;
                for p in &parts {
                    let (mut ws, _) = WorkState::build(p, &a, &c, &b, v);
                    let (err, _) = ws.partition_error(p);
                    total += err;
                }
                assert_eq!(total, full, "N = {n}, V = {v}");
            }
        }
    }

    /// column_errors must report, for each row, exactly the error of the
    /// relevant blocks under both candidate bit values.
    #[test]
    fn column_errors_match_naive() {
        let dims = [4, 5, 6];
        let t = random_tensor(dims, 0.25, 22);
        let mut rng = StdRng::seed_from_u64(23);
        let rank = 3;
        let a = BitMatrix::random(dims[0], rank, 0.5, &mut rng);
        let b = BitMatrix::random(dims[1], rank, 0.5, &mut rng);
        let c = BitMatrix::random(dims[2], rank, 0.5, &mut rng);
        let unf = Unfolding::new(&t, Mode::One);
        let s = Mode::One.slab_width(dims) as u64;

        for n in [1usize, 3, 7] {
            for v in [15usize, 1] {
                let parts = partition_unfolding(&unf, n);
                for col in 0..rank {
                    // Gather distributed (err0, err1) sums per row.
                    let mut sums = vec![(0u64, 0u64); dims[0]];
                    for p in &parts {
                        let (mut ws, _) = WorkState::build(p, &a, &c, &b, v);
                        let (errs, _) = ws.column_errors(p, col);
                        for (r, (e0, e1)) in errs.into_iter().enumerate() {
                            sums[r].0 += e0;
                            sums[r].1 += e1;
                        }
                    }
                    // Naive: for each candidate value, error over the
                    // columns belonging to slabs with m_f[k][col] = 1.
                    for val in [false, true] {
                        let mut a_mod = a.clone();
                        for r in 0..dims[0] {
                            a_mod.set(r, col, val);
                        }
                        let recon = bool_matmul(&a_mod, &khatri_rao(&c, &b).transpose());
                        for (r, &sum) in sums.iter().enumerate() {
                            let mut expect = 0u64;
                            for k in 0..dims[2] {
                                if !c.get(k, col) {
                                    continue;
                                }
                                for cc in (k as u64 * s)..((k as u64 + 1) * s) {
                                    expect +=
                                        u64::from(unf.get(r, cc) != recon.get(r, cc as usize));
                                }
                            }
                            let got = if val { sum.1 } else { sum.0 };
                            assert_eq!(got, expect, "N={n} V={v} col={col} row={r} val={val}");
                        }
                    }
                }
            }
        }
    }

    /// Applying a column must change subsequent error computations.
    #[test]
    fn apply_column_updates_state() {
        let dims = [3, 4, 5];
        let t = random_tensor(dims, 0.3, 24);
        let mut rng = StdRng::seed_from_u64(25);
        let a = BitMatrix::random(dims[0], 2, 0.5, &mut rng);
        let b = BitMatrix::random(dims[1], 2, 0.5, &mut rng);
        let c = BitMatrix::random(dims[2], 2, 0.5, &mut rng);
        let unf = Unfolding::new(&t, Mode::One);
        let parts = partition_unfolding(&unf, 1);
        let (mut ws, _) = WorkState::build(&parts[0], &a, &c, &b, 15);
        let (before, _) = ws.partition_error(&parts[0]);
        // Flip column 0 to all-ones and recompute.
        let all = BitVec::ones(dims[0]);
        ws.apply_column(0, &all);
        let mut a_mod = a.clone();
        for r in 0..dims[0] {
            a_mod.set(r, 0, true);
        }
        let expect = naive_range_error(&unf, &a_mod, &c, &b, 0, unf.ncols());
        let (after, _) = ws.partition_error(&parts[0]);
        assert_eq!(after, expect);
        // (`before` is almost surely different, but don't rely on chance.)
        let expect_before = naive_range_error(&unf, &a, &c, &b, 0, unf.ncols());
        assert_eq!(before, expect_before);
    }

    /// The incremental mask maintenance must agree with rebuilding the
    /// state from the modified factor, across multi-group layouts and
    /// repeated column applications.
    #[test]
    fn incremental_masks_match_rebuild() {
        let dims = [6, 5, 7];
        let t = random_tensor(dims, 0.3, 28);
        let mut rng = StdRng::seed_from_u64(29);
        let rank = 5;
        let a = BitMatrix::random(dims[0], rank, 0.5, &mut rng);
        let b = BitMatrix::random(dims[1], rank, 0.5, &mut rng);
        let c = BitMatrix::random(dims[2], rank, 0.5, &mut rng);
        let unf = Unfolding::new(&t, Mode::One);
        for v in [15usize, 2, 1] {
            let parts = partition_unfolding(&unf, 3);
            for p in &parts {
                let (mut ws, _) = WorkState::build(p, &a, &c, &b, v);
                let mut a_mod = a.clone();
                // Apply a pseudo-random column sequence to both copies.
                for (step, col) in [0usize, 3, 1, 4, 2, 0, 4].into_iter().enumerate() {
                    let mut vals = BitVec::zeros(dims[0]);
                    for r in 0..dims[0] {
                        let bit = (r + step + col) % 3 != 0;
                        vals.set(r, bit);
                        a_mod.set(r, col, bit);
                    }
                    ws.apply_column(col, &vals);
                }
                let (mut fresh, _) = WorkState::build(p, &a_mod, &c, &b, v);
                let (err_inc, ops_inc) = ws.partition_error(p);
                let (err_fresh, ops_fresh) = fresh.partition_error(p);
                assert_eq!(err_inc, err_fresh, "V = {v}, partition {}", p.index);
                assert_eq!(ops_inc, ops_fresh, "ops must not depend on history");
                for col in 0..rank {
                    let (e_inc, _) = ws.column_errors(p, col);
                    let (e_fresh, _) = fresh.column_errors(p, col);
                    assert_eq!(e_inc, e_fresh, "V = {v}, col {col}");
                }
            }
        }
    }

    /// A dense block must take the bitmap path and produce identical
    /// errors to the sparse probe path (exercised via a sparse tensor).
    #[test]
    fn dense_path_matches_sparse_semantics() {
        let dims = [4, 6, 5];
        // Density 0.9 ⇒ every block passes the nnz ≥ nrows × words
        // threshold (words = 1 at these widths).
        let t = random_tensor(dims, 0.9, 30);
        let mut rng = StdRng::seed_from_u64(31);
        let rank = 3;
        let a = BitMatrix::random(dims[0], rank, 0.5, &mut rng);
        let b = BitMatrix::random(dims[1], rank, 0.5, &mut rng);
        let c = BitMatrix::random(dims[2], rank, 0.5, &mut rng);
        let unf = Unfolding::new(&t, Mode::One);
        let parts = partition_unfolding(&unf, 2);
        let mut used_dense = false;
        for p in &parts {
            for block in &p.blocks {
                used_dense |= use_dense(block, p.nrows);
            }
            for v in [15usize, 2] {
                let (mut ws, _) = WorkState::build(p, &a, &c, &b, v);
                let (err, _) = ws.partition_error(p);
                let lo = p.col_lo;
                let hi = p.col_hi;
                assert_eq!(err, naive_range_error(&unf, &a, &c, &b, lo, hi));
            }
        }
        assert!(used_dense, "test tensor should trigger the dense path");
    }

    #[test]
    fn cache_bytes_reported() {
        let dims = [3, 4, 5];
        let t = random_tensor(dims, 0.3, 26);
        let mut rng = StdRng::seed_from_u64(27);
        let a = BitMatrix::random(dims[0], 2, 0.5, &mut rng);
        let b = BitMatrix::random(dims[1], 2, 0.5, &mut rng);
        let c = BitMatrix::random(dims[2], 2, 0.5, &mut rng);
        let unf = Unfolding::new(&t, Mode::One);
        // 3 partitions over 20 columns with S = 4 → edge blocks exist.
        let parts = partition_unfolding(&unf, 3);
        let (ws, ops) = WorkState::build(&parts[0], &a, &c, &b, 15);
        assert!(ws.cache_bytes() > 0);
        assert!(ops > 0);
    }
}
