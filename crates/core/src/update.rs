//! Worker-side state and inner loops of the factor update (paper
//! Section III-A/III-C, Algorithm 4).
//!
//! During one `UpdateFactor` call, every partition holds a transient
//! [`WorkState`]: a working copy of the factor matrix being updated, the
//! per-block key masks of `M_f`, and the cached Boolean row summations of
//! `M_sᵀ` (full-size plus vertically sliced caches for the partition's edge
//! blocks). The driver drives one superstep per factor column; each
//! superstep scores both candidate values of every row's entry in that
//! column against the partition's share of the unfolded tensor.

use dbtf_tensor::{BitMatrix, BitVec};

use crate::cache::{GroupLayout, RowSumCache};
use crate::partition::{BlockKind, ModePartition};

/// A partition plus its transient update state; the element type stored in
/// the cluster's distributed datasets.
pub struct PartitionSlot {
    /// The immutable partitioned unfolding (cached across the whole run).
    pub part: ModePartition,
    /// Per-`UpdateFactor` state (CP path); `None` outside an update.
    pub(crate) work: Option<WorkState>,
    /// Per-`UpdateFactor` state (Tucker path); `None` outside an update.
    pub(crate) tucker: Option<crate::tucker_distributed::TuckerWorkState>,
}

impl PartitionSlot {
    /// Wraps a partition with no active update state.
    pub fn new(part: ModePartition) -> Self {
        PartitionSlot {
            part,
            work: None,
            tucker: None,
        }
    }
}

/// Per-block cache handle: full blocks share the partition's full-size
/// cache; edge blocks own a sliced cache (Algorithm 5 line 4).
enum BlockCache {
    Full,
    Sliced(RowSumCache),
}

/// Transient state of one partition during an `UpdateFactor` call.
pub(crate) struct WorkState {
    layout: GroupLayout,
    /// Working copy of the factor matrix being updated (`P × R`). Kept in
    /// sync with the driver's master copy via per-column broadcasts.
    a: BitMatrix,
    /// Per-block group key masks of the owning `M_f` row
    /// (`mf_masks[b][g] = group-g bits of m_{f, slab(b)}`).
    mf_masks: Vec<Vec<u64>>,
    full_cache: RowSumCache,
    block_caches: Vec<BlockCache>,
    /// Scratch row-mask buffer (`P × G`), refreshed each column superstep.
    row_masks: Vec<u64>,
}

/// Ops-accounting constants: one unit ≈ one 64-bit word operation.
mod cost {
    /// Key construction per (row, block, group).
    pub const KEY: u64 = 1;
    /// Per word ORed or popcounted.
    pub const WORD: u64 = 1;
    /// Per sparse one tested against a cached row.
    pub const NNZ_TEST: u64 = 1;
}

impl WorkState {
    /// Builds the update state for `part`: caches all Boolean row
    /// summations of `M_sᵀ` (sliced per edge block) and extracts the
    /// per-block `M_f` key masks. Returns the state and the charged ops.
    pub(crate) fn build(
        part: &ModePartition,
        a: &BitMatrix,
        mf: &BitMatrix,
        ms: &BitMatrix,
        v_limit: usize,
    ) -> (Self, u64) {
        let rank = a.cols();
        debug_assert_eq!(mf.cols(), rank);
        debug_assert_eq!(ms.cols(), rank);
        debug_assert_eq!(ms.rows(), part.slab_width, "M_s height must be the slab width");
        let layout = GroupLayout::new(rank, v_limit);
        let ngroups = layout.num_groups();

        let full_cache = RowSumCache::build(ms, &layout);
        let width_words = part.slab_width.div_ceil(64) as u64;
        let mut ops = full_cache.num_entries() as u64 * width_words;

        let mut mf_masks = Vec::with_capacity(part.blocks.len());
        let mut block_caches = Vec::with_capacity(part.blocks.len());
        for block in &part.blocks {
            let mut masks = vec![0u64; ngroups];
            layout.row_masks(mf, block.slab, &mut masks);
            mf_masks.push(masks);
            ops += ngroups as u64 * cost::KEY;
            match block.kind {
                BlockKind::Full => block_caches.push(BlockCache::Full),
                _ => {
                    let sliced =
                        full_cache.slice(block.inner_lo as usize, block.inner_len as usize);
                    ops += sliced.num_entries() as u64
                        * (block.inner_len as u64).div_ceil(64)
                        * cost::WORD;
                    block_caches.push(BlockCache::Sliced(sliced));
                }
            }
        }

        let state = WorkState {
            layout,
            a: a.clone(),
            mf_masks,
            full_cache,
            block_caches,
            row_masks: vec![0u64; part.nrows * ngroups],
        };
        (state, ops)
    }

    /// Total bytes held by this state's caches (for memory reporting).
    pub(crate) fn cache_bytes(&self) -> u64 {
        let sliced: u64 = self
            .block_caches
            .iter()
            .map(|c| match c {
                BlockCache::Full => 0,
                BlockCache::Sliced(s) => s.byte_size(),
            })
            .sum();
        self.full_cache.byte_size() + sliced
    }

    /// Applies a decided column to the working factor copy.
    pub(crate) fn apply_column(&mut self, col: usize, values: &BitVec) {
        debug_assert_eq!(values.len(), self.a.rows());
        for r in 0..self.a.rows() {
            self.a.set(r, col, values.get(r));
        }
    }

    /// Refreshes the per-row group key masks from the working factor copy.
    fn refresh_row_masks(&mut self) {
        let ngroups = self.layout.num_groups();
        for r in 0..self.a.rows() {
            let base = r * ngroups;
            for g in 0..ngroups {
                let (first, bits) = self.layout.group(g);
                self.row_masks[base + g] = self.a.row_word(r, first, bits);
            }
        }
    }

    /// Scores both candidate values of column `col` for every row
    /// (Algorithm 4 lines 4–10).
    ///
    /// Returns `(err0, err1)` per row, summed over this partition's blocks
    /// whose `M_f` row has a one in column `col` — blocks without it
    /// contribute identically to both candidates, so skipping them leaves
    /// every `err1 − err0` comparison exact. Also returns the charged ops.
    pub(crate) fn column_errors(
        &mut self,
        part: &ModePartition,
        col: usize,
    ) -> (Vec<(u64, u64)>, u64) {
        let nrows = part.nrows;
        let ngroups = self.layout.num_groups();
        let (gc, off) = self.layout.locate(col);
        let col_bit = 1u64 << off;
        self.refresh_row_masks();
        let mut ops = (nrows * ngroups) as u64 * cost::KEY;
        let mut errs = vec![(0u64, 0u64); nrows];
        let scratch_words = part.slab_width.div_ceil(64).max(1);
        let mut scratch0 = vec![0u64; scratch_words];
        let mut scratch1 = vec![0u64; scratch_words];

        for (b, block) in part.blocks.iter().enumerate() {
            let mf = &self.mf_masks[b];
            if (mf[gc] & col_bit) == 0 {
                continue; // irrelevant: both candidates reconstruct equally
            }
            let cache = match &self.block_caches[b] {
                BlockCache::Full => &self.full_cache,
                BlockCache::Sliced(s) => s,
            };
            if ngroups == 1 {
                for r in 0..nrows {
                    let base = self.row_masks[r] & mf[0];
                    let key0 = base & !col_bit;
                    let key1 = base | col_bit;
                    let (row0, pop0) = cache.fetch_single(key0);
                    let (row1, pop1) = cache.fetch_single(key1);
                    let actual = block.row(r);
                    let (mut inter0, mut inter1) = (0u64, 0u64);
                    for &o in actual {
                        let w = (o / 64) as usize;
                        let bit = 1u64 << (o % 64);
                        inter0 += u64::from(row0.words()[w] & bit != 0);
                        inter1 += u64::from(row1.words()[w] & bit != 0);
                    }
                    let nnz = actual.len() as u64;
                    errs[r].0 += pop0 as u64 + nnz - 2 * inter0;
                    errs[r].1 += pop1 as u64 + nnz - 2 * inter1;
                    ops += cost::KEY + 2 * nnz * cost::NNZ_TEST;
                }
            } else {
                let mut keys0 = vec![0u64; ngroups];
                let mut keys1 = vec![0u64; ngroups];
                let words = (block.inner_len as u64).div_ceil(64);
                for r in 0..nrows {
                    let base = r * ngroups;
                    for g in 0..ngroups {
                        let key = self.row_masks[base + g] & mf[g];
                        keys0[g] = key;
                        keys1[g] = key;
                    }
                    keys0[gc] &= !col_bit;
                    keys1[gc] |= col_bit;
                    let cache_words = cache.width().div_ceil(64);
                    let pop0 = cache.fetch_or(&keys0, &mut scratch0[..cache_words]);
                    let pop1 = cache.fetch_or(&keys1, &mut scratch1[..cache_words]);
                    let actual = block.row(r);
                    let (mut inter0, mut inter1) = (0u64, 0u64);
                    for &o in actual {
                        let w = (o / 64) as usize;
                        let bit = 1u64 << (o % 64);
                        inter0 += u64::from(scratch0[w] & bit != 0);
                        inter1 += u64::from(scratch1[w] & bit != 0);
                    }
                    let nnz = actual.len() as u64;
                    errs[r].0 += pop0 as u64 + nnz - 2 * inter0;
                    errs[r].1 += pop1 as u64 + nnz - 2 * inter1;
                    ops += ngroups as u64 * cost::KEY
                        + 2 * words * (ngroups as u64 + 1) * cost::WORD
                        + 2 * nnz * cost::NNZ_TEST;
                }
            }
        }
        (errs, ops)
    }

    /// Exact reconstruction error of this partition's column range under
    /// the *current* working factor copy:
    /// `Σ_rows |[X_(n)]_{r, lo..hi} ⊕ [A ∘ (M_f ⊙ M_s)ᵀ]_{r, lo..hi}|`.
    pub(crate) fn partition_error(&mut self, part: &ModePartition) -> (u64, u64) {
        let nrows = part.nrows;
        let ngroups = self.layout.num_groups();
        self.refresh_row_masks();
        let mut ops = (nrows * ngroups) as u64 * cost::KEY;
        let mut err = 0u64;
        let mut keys = vec![0u64; ngroups];
        let scratch_words = part.slab_width.div_ceil(64).max(1);
        let mut scratch = vec![0u64; scratch_words];
        for (b, block) in part.blocks.iter().enumerate() {
            let mf = &self.mf_masks[b];
            let cache = match &self.block_caches[b] {
                BlockCache::Full => &self.full_cache,
                BlockCache::Sliced(s) => s,
            };
            for r in 0..nrows {
                let base = r * ngroups;
                for g in 0..ngroups {
                    keys[g] = self.row_masks[base + g] & mf[g];
                }
                let actual = block.row(r);
                let nnz = actual.len() as u64;
                if ngroups == 1 {
                    let (row, pop) = cache.fetch_single(keys[0]);
                    let mut inter = 0u64;
                    for &o in actual {
                        let w = (o / 64) as usize;
                        inter += u64::from(row.words()[w] & (1u64 << (o % 64)) != 0);
                    }
                    err += pop as u64 + nnz - 2 * inter;
                    ops += cost::KEY + nnz * cost::NNZ_TEST;
                } else {
                    let cache_words = cache.width().div_ceil(64);
                    let pop = cache.fetch_or(&keys, &mut scratch[..cache_words]);
                    let mut inter = 0u64;
                    for &o in actual {
                        let w = (o / 64) as usize;
                        inter += u64::from(scratch[w] & (1u64 << (o % 64)) != 0);
                    }
                    err += pop as u64 + nnz - 2 * inter;
                    ops += ngroups as u64 * cost::KEY
                        + (block.inner_len as u64).div_ceil(64) * (ngroups as u64 + 1)
                        + nnz * cost::NNZ_TEST;
                }
            }
        }
        (err, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_unfolding;
    use dbtf_tensor::ops::{bool_matmul, khatri_rao};
    use dbtf_tensor::reconstruct::reconstruct;
    use dbtf_tensor::{BoolTensor, Mode, Unfolding};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tensor(dims: [usize; 3], density: f64, seed: u64) -> BoolTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut entries = Vec::new();
        for i in 0..dims[0] as u32 {
            for j in 0..dims[1] as u32 {
                for k in 0..dims[2] as u32 {
                    if rng.gen_bool(density) {
                        entries.push([i, j, k]);
                    }
                }
            }
        }
        BoolTensor::from_entries(dims, entries)
    }

    /// Reference: |X_(1) ⊕ A ∘ (M_f ⊙ M_s)ᵀ| restricted to a column range.
    fn naive_range_error(
        unf: &Unfolding,
        a: &BitMatrix,
        mf: &BitMatrix,
        ms: &BitMatrix,
        lo: u64,
        hi: u64,
    ) -> u64 {
        let recon = bool_matmul(a, &khatri_rao(mf, ms).transpose());
        let mut err = 0u64;
        for r in 0..unf.nrows() {
            for c in lo..hi {
                let x = unf.get(r, c);
                let y = recon.get(r, c as usize);
                err += u64::from(x != y);
            }
        }
        err
    }

    /// The partition_error of every partition must sum to the full
    /// matricized reconstruction error, for any partitioning and grouping.
    #[test]
    fn partition_error_sums_to_full_error() {
        let dims = [5, 6, 7];
        let t = random_tensor(dims, 0.2, 20);
        let mut rng = StdRng::seed_from_u64(21);
        let rank = 4;
        let a = BitMatrix::random(dims[0], rank, 0.4, &mut rng);
        let b = BitMatrix::random(dims[1], rank, 0.4, &mut rng);
        let c = BitMatrix::random(dims[2], rank, 0.4, &mut rng);
        let unf = Unfolding::new(&t, Mode::One);
        let full = naive_range_error(&unf, &a, &c, &b, 0, unf.ncols());
        // Cross-check against the tensor-level error.
        let x_hat = reconstruct(&a, &b, &c);
        assert_eq!(full, t.xor_count(&x_hat) as u64);

        for n in [1usize, 2, 5, 11] {
            for v in [15usize, 2, 1] {
                let parts = partition_unfolding(&unf, n);
                let mut total = 0u64;
                for p in &parts {
                    let (mut ws, _) = WorkState::build(p, &a, &c, &b, v);
                    let (err, _) = ws.partition_error(p);
                    total += err;
                }
                assert_eq!(total, full, "N = {n}, V = {v}");
            }
        }
    }

    /// column_errors must report, for each row, exactly the error of the
    /// relevant blocks under both candidate bit values.
    #[test]
    fn column_errors_match_naive() {
        let dims = [4, 5, 6];
        let t = random_tensor(dims, 0.25, 22);
        let mut rng = StdRng::seed_from_u64(23);
        let rank = 3;
        let a = BitMatrix::random(dims[0], rank, 0.5, &mut rng);
        let b = BitMatrix::random(dims[1], rank, 0.5, &mut rng);
        let c = BitMatrix::random(dims[2], rank, 0.5, &mut rng);
        let unf = Unfolding::new(&t, Mode::One);
        let s = Mode::One.slab_width(dims) as u64;

        for n in [1usize, 3, 7] {
            for v in [15usize, 1] {
                let parts = partition_unfolding(&unf, n);
                for col in 0..rank {
                    // Gather distributed (err0, err1) sums per row.
                    let mut sums = vec![(0u64, 0u64); dims[0]];
                    for p in &parts {
                        let (mut ws, _) = WorkState::build(p, &a, &c, &b, v);
                        let (errs, _) = ws.column_errors(p, col);
                        for (r, (e0, e1)) in errs.into_iter().enumerate() {
                            sums[r].0 += e0;
                            sums[r].1 += e1;
                        }
                    }
                    // Naive: for each candidate value, error over the
                    // columns belonging to slabs with m_f[k][col] = 1.
                    for val in [false, true] {
                        let mut a_mod = a.clone();
                        for r in 0..dims[0] {
                            a_mod.set(r, col, val);
                        }
                        let recon = bool_matmul(&a_mod, &khatri_rao(&c, &b).transpose());
                        for r in 0..dims[0] {
                            let mut expect = 0u64;
                            for k in 0..dims[2] {
                                if !c.get(k, col) {
                                    continue;
                                }
                                for cc in (k as u64 * s)..((k as u64 + 1) * s) {
                                    expect +=
                                        u64::from(unf.get(r, cc) != recon.get(r, cc as usize));
                                }
                            }
                            let got = if val { sums[r].1 } else { sums[r].0 };
                            assert_eq!(got, expect, "N={n} V={v} col={col} row={r} val={val}");
                        }
                    }
                }
            }
        }
    }

    /// Applying a column must change subsequent error computations.
    #[test]
    fn apply_column_updates_state() {
        let dims = [3, 4, 5];
        let t = random_tensor(dims, 0.3, 24);
        let mut rng = StdRng::seed_from_u64(25);
        let a = BitMatrix::random(dims[0], 2, 0.5, &mut rng);
        let b = BitMatrix::random(dims[1], 2, 0.5, &mut rng);
        let c = BitMatrix::random(dims[2], 2, 0.5, &mut rng);
        let unf = Unfolding::new(&t, Mode::One);
        let parts = partition_unfolding(&unf, 1);
        let (mut ws, _) = WorkState::build(&parts[0], &a, &c, &b, 15);
        let (before, _) = ws.partition_error(&parts[0]);
        // Flip column 0 to all-ones and recompute.
        let all = BitVec::ones(dims[0]);
        ws.apply_column(0, &all);
        let mut a_mod = a.clone();
        for r in 0..dims[0] {
            a_mod.set(r, 0, true);
        }
        let expect = naive_range_error(&unf, &a_mod, &c, &b, 0, unf.ncols());
        let (after, _) = ws.partition_error(&parts[0]);
        assert_eq!(after, expect);
        // (`before` is almost surely different, but don't rely on chance.)
        let expect_before = naive_range_error(&unf, &a, &c, &b, 0, unf.ncols());
        assert_eq!(before, expect_before);
    }

    #[test]
    fn cache_bytes_reported() {
        let dims = [3, 4, 5];
        let t = random_tensor(dims, 0.3, 26);
        let mut rng = StdRng::seed_from_u64(27);
        let a = BitMatrix::random(dims[0], 2, 0.5, &mut rng);
        let b = BitMatrix::random(dims[1], 2, 0.5, &mut rng);
        let c = BitMatrix::random(dims[2], 2, 0.5, &mut rng);
        let unf = Unfolding::new(&t, Mode::One);
        // 3 partitions over 20 columns with S = 4 → edge blocks exist.
        let parts = partition_unfolding(&unf, 3);
        let (ws, ops) = WorkState::build(&parts[0], &a, &c, &b, 15);
        assert!(ws.cache_bytes() > 0);
        assert!(ops > 0);
    }
}
