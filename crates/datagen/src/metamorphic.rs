//! Seeded tensor families and metamorphic relations for the verification
//! sweeps (`crates/oracle`).
//!
//! A differential sweep needs two things from its input generator:
//!
//! - **Families** ([`Family`]): a seeded, deterministic sampler over
//!   qualitatively different tensors — uniform random clouds, planted
//!   factorizations with and without noise — so one `u64` seed pins an
//!   entire test point.
//! - **Metamorphic relations** ([`mode_permutations`],
//!   [`permute_factors`]): transformations of a tensor with a *known*
//!   effect on the ground truth. Permuting the modes of `X` and permuting
//!   a CP factor triple `(A, B, C)` the same way leaves the reconstruction
//!   error `|X ⊖ X̂|` invariant — an oracle can check an implementation
//!   against itself on inputs it has never seen, without knowing the
//!   correct output for either.

use dbtf_tensor::{BitMatrix, BoolTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::noise::NoiseSpec;
use crate::planted::{PlantedConfig, PlantedTensor};
use crate::random::uniform_random;

/// A seeded tensor family: everything needed to regenerate the input of a
/// differential test point.
#[derive(Clone, Debug, PartialEq)]
pub enum Family {
    /// i.i.d. Bernoulli cells (no planted structure).
    Uniform {
        /// Tensor shape.
        dims: [usize; 3],
        /// Cell density.
        density: f64,
        /// Generation seed.
        seed: u64,
    },
    /// A planted factorization, optionally noisy — tensors a Boolean CP
    /// method should fit well, with known ground-truth factors.
    Planted(PlantedConfig),
}

impl Family {
    /// Draws a family from `seed`: shape, density/rank and noise are all
    /// derived from one `StdRng` stream, so equal seeds give equal
    /// families. Dimensions stay small (≤ 14 per mode) — sweep points are
    /// checked against cell-by-cell oracles that walk every `I·J·K` cell.
    pub fn from_seed(seed: u64) -> Family {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA111E5);
        let dims = [
            rng.gen_range(3..=14usize),
            rng.gen_range(3..=14usize),
            rng.gen_range(3..=14usize),
        ];
        if rng.gen_bool(0.5) {
            Family::Uniform {
                dims,
                density: rng.gen_range(0.05..0.35),
                seed: seed ^ 0x7E45,
            }
        } else {
            Family::Planted(PlantedConfig {
                dims,
                rank: rng.gen_range(2..=4),
                factor_density: rng.gen_range(0.2..0.5),
                noise: if rng.gen_bool(0.5) {
                    NoiseSpec::none()
                } else {
                    NoiseSpec::additive(rng.gen_range(0.0..0.15))
                },
                seed: seed ^ 0x9A17ED,
            })
        }
    }

    /// Materializes the family's tensor.
    pub fn generate(&self) -> BoolTensor {
        match self {
            Family::Uniform {
                dims,
                density,
                seed,
            } => uniform_random(*dims, *density, *seed),
            Family::Planted(cfg) => PlantedTensor::generate(*cfg).tensor,
        }
    }

    /// The tensor shape this family generates.
    pub fn dims(&self) -> [usize; 3] {
        match self {
            Family::Uniform { dims, .. } => *dims,
            Family::Planted(cfg) => cfg.dims,
        }
    }

    /// A short human-readable descriptor for reports.
    pub fn describe(&self) -> String {
        match self {
            Family::Uniform {
                dims,
                density,
                seed,
            } => format!(
                "uniform {}x{}x{} d={density:.3} seed={seed}",
                dims[0], dims[1], dims[2]
            ),
            Family::Planted(cfg) => format!(
                "planted {}x{}x{} rank={} fd={:.2} noise=+{:.2}/-{:.2} seed={}",
                cfg.dims[0],
                cfg.dims[1],
                cfg.dims[2],
                cfg.rank,
                cfg.factor_density,
                cfg.noise.additive,
                cfg.noise.destructive,
                cfg.seed,
            ),
        }
    }
}

/// All six mode permutations, identity first. Each entry `perm` is usable
/// directly with [`BoolTensor::permute_modes`] and [`permute_factors`].
pub fn mode_permutations() -> [[usize; 3]; 6] {
    [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ]
}

/// Permutes a CP factor triple to match `x.permute_modes(perm)`: mode `m`
/// of the permuted tensor is mode `perm[m]` of the original, so its factor
/// is the original triple's `perm[m]`-th matrix. The metamorphic relation:
///
/// ```
/// use dbtf_datagen::metamorphic::permute_factors;
/// use dbtf_datagen::{PlantedConfig, PlantedTensor};
/// use dbtf_tensor::reconstruct::reconstruction_error;
///
/// let p = PlantedTensor::generate(PlantedConfig {
///     dims: [6, 5, 4], rank: 2, factor_density: 0.4,
///     noise: dbtf_datagen::NoiseSpec::additive(0.1), seed: 7,
/// });
/// let (a, b, c) = p.factors.clone();
/// let perm = [2, 0, 1];
/// let y = p.tensor.permute_modes(perm);
/// let [pa, pb, pc] = permute_factors([&a, &b, &c], perm);
/// assert_eq!(
///     reconstruction_error(&p.tensor, &a, &b, &c),
///     reconstruction_error(&y, &pa, &pb, &pc),
/// );
/// ```
pub fn permute_factors(factors: [&BitMatrix; 3], perm: [usize; 3]) -> [BitMatrix; 3] {
    [
        factors[perm[0]].clone(),
        factors[perm[1]].clone(),
        factors[perm[2]].clone(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtf_tensor::reconstruct::{reconstruct, reconstruction_error};

    #[test]
    fn families_are_deterministic_and_diverse() {
        let mut uniform = 0;
        let mut planted = 0;
        for seed in 0..32 {
            let f = Family::from_seed(seed);
            assert_eq!(f, Family::from_seed(seed));
            assert_eq!(f.generate(), f.generate());
            assert_eq!(f.generate().dims(), f.dims());
            match f {
                Family::Uniform { .. } => uniform += 1,
                Family::Planted(_) => planted += 1,
            }
        }
        assert!(uniform > 4, "only {uniform}/32 uniform");
        assert!(planted > 4, "only {planted}/32 planted");
    }

    #[test]
    fn descriptors_name_the_family() {
        for seed in 0..8 {
            let f = Family::from_seed(seed);
            let d = f.describe();
            match f {
                Family::Uniform { .. } => assert!(d.starts_with("uniform"), "{d}"),
                Family::Planted(_) => assert!(d.starts_with("planted"), "{d}"),
            }
        }
    }

    /// The headline metamorphic relation: `|X ⊖ X̂|` is invariant under
    /// simultaneous mode permutation of the tensor and the factors — for
    /// every permutation, on both planted and arbitrary factors.
    #[test]
    fn error_is_invariant_under_mode_permutation() {
        let p = PlantedTensor::generate(PlantedConfig {
            dims: [7, 5, 6],
            rank: 3,
            factor_density: 0.35,
            noise: NoiseSpec::additive(0.1),
            seed: 11,
        });
        let (a, b, c) = &p.factors;
        let base = reconstruction_error(&p.tensor, a, b, c);
        assert!(base > 0, "noise must make the error non-trivial");
        for perm in mode_permutations() {
            let y = p.tensor.permute_modes(perm);
            let [pa, pb, pc] = permute_factors([a, b, c], perm);
            assert_eq!(
                reconstruction_error(&y, &pa, &pb, &pc),
                base,
                "perm {perm:?}"
            );
        }
    }

    /// Reconstruction commutes with mode permutation:
    /// `recon(π(A,B,C)) = π(recon(A,B,C))`.
    #[test]
    fn reconstruction_commutes_with_permutation() {
        let p = PlantedTensor::generate(PlantedConfig {
            dims: [5, 6, 4],
            rank: 2,
            factor_density: 0.4,
            noise: NoiseSpec::none(),
            seed: 3,
        });
        let (a, b, c) = &p.factors;
        let x = reconstruct(a, b, c);
        for perm in mode_permutations() {
            let [pa, pb, pc] = permute_factors([a, b, c], perm);
            assert_eq!(
                reconstruct(&pa, &pb, &pc),
                x.permute_modes(perm),
                "{perm:?}"
            );
        }
    }
}
