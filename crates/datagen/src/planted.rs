//! Planted-factorization tensors for the reconstruction-error experiments
//! (paper Section IV-D).

use dbtf_tensor::reconstruct::reconstruct;
use dbtf_tensor::{BitMatrix, BoolTensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::noise::{add_noise, NoiseSpec};

/// Parameters of a planted tensor: the four axes the paper's error
/// experiments sweep (factor density, rank, additive noise, destructive
/// noise), "when we vary one aspect, others are fixed".
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlantedConfig {
    /// Tensor shape.
    pub dims: [usize; 3],
    /// Number of planted rank-1 components.
    pub rank: usize,
    /// Density of the ground-truth factor matrices.
    pub factor_density: f64,
    /// Noise applied to the noise-free tensor.
    pub noise: NoiseSpec,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantedConfig {
    /// The paper's *Synthetic-error* base point (Table III, scaled): a
    /// rank-10 cube with 0.2-dense factors and 10% additive noise.
    fn default() -> Self {
        PlantedConfig {
            dims: [64, 64, 64],
            rank: 10,
            factor_density: 0.2,
            noise: NoiseSpec::additive(0.10),
            seed: 0,
        }
    }
}

/// A planted tensor together with its ground truth.
#[derive(Clone, Debug)]
pub struct PlantedTensor {
    /// The observed (noisy) tensor.
    pub tensor: BoolTensor,
    /// The noise-free tensor the factors generate.
    pub clean: BoolTensor,
    /// Ground-truth factors `(A, B, C)`.
    pub factors: (BitMatrix, BitMatrix, BitMatrix),
    /// The generating configuration.
    pub config: PlantedConfig,
}

impl PlantedTensor {
    /// Draws ground-truth factors, reconstructs the noise-free tensor and
    /// applies the configured noise.
    pub fn generate(config: PlantedConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let a = BitMatrix::random(config.dims[0], config.rank, config.factor_density, &mut rng);
        let b = BitMatrix::random(config.dims[1], config.rank, config.factor_density, &mut rng);
        let c = BitMatrix::random(config.dims[2], config.rank, config.factor_density, &mut rng);
        let clean = reconstruct(&a, &b, &c);
        let tensor = add_noise(&clean, config.noise, config.seed ^ 0x5eed);
        PlantedTensor {
            tensor,
            clean,
            factors: (a, b, c),
            config,
        }
    }

    /// The reconstruction error an oracle that knows the true factors
    /// achieves on the noisy tensor — exactly the injected noise. A
    /// factorization method "wins" when it approaches this floor.
    pub fn oracle_error(&self) -> usize {
        self.tensor.xor_count(&self.clean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_free_generation_is_exact() {
        let p = PlantedTensor::generate(PlantedConfig {
            dims: [16, 16, 16],
            rank: 3,
            factor_density: 0.3,
            noise: NoiseSpec::none(),
            seed: 1,
        });
        assert_eq!(p.tensor, p.clean);
        assert_eq!(p.oracle_error(), 0);
        let (a, b, c) = &p.factors;
        assert_eq!(reconstruct(a, b, c), p.clean);
    }

    #[test]
    fn oracle_error_equals_injected_noise() {
        let p = PlantedTensor::generate(PlantedConfig {
            dims: [16, 16, 16],
            rank: 3,
            factor_density: 0.3,
            noise: NoiseSpec {
                additive: 0.10,
                destructive: 0.05,
            },
            seed: 2,
        });
        let n = p.clean.nnz();
        let expect = (n as f64 * 0.10).round() as usize + (n as f64 * 0.05).round() as usize;
        assert_eq!(p.oracle_error(), expect);
    }

    #[test]
    fn deterministic() {
        let cfg = PlantedConfig {
            seed: 77,
            ..PlantedConfig::default()
        };
        let a = PlantedTensor::generate(cfg);
        let b = PlantedTensor::generate(cfg);
        assert_eq!(a.tensor, b.tensor);
    }

    #[test]
    fn density_scales_with_factor_density() {
        let sparse = PlantedTensor::generate(PlantedConfig {
            dims: [24, 24, 24],
            factor_density: 0.1,
            noise: NoiseSpec::none(),
            seed: 3,
            rank: 5,
        });
        let dense = PlantedTensor::generate(PlantedConfig {
            dims: [24, 24, 24],
            factor_density: 0.3,
            noise: NoiseSpec::none(),
            seed: 3,
            rank: 5,
        });
        assert!(dense.tensor.nnz() > sparse.tensor.nnz());
    }
}
