//! Workload generators for the DBTF evaluation (paper Section IV-A1).
//!
//! Three families of inputs, all seeded and deterministic:
//!
//! - [`random`]: uniform random Boolean tensors for the dimensionality and
//!   density scalability sweeps (Figures 1(a) and 1(b)).
//! - [`planted`]: tensors built from known random factor matrices with
//!   additive/destructive noise, for the reconstruction-error experiments
//!   (Section IV-D): "we generate three random factor matrices, construct a
//!   noise-free tensor from them, and then add noise".
//! - [`proxies`]: synthetic stand-ins for the paper's six real-world
//!   datasets (Table III). The originals (Facebook, DBLP, CAIDA-DDoS,
//!   NELL) are not redistributable here, so each proxy reproduces the
//!   original's mode sizes, density and coarse structure (temporal bursts,
//!   power-law degrees, blocky communities) at a configurable scale —
//!   the properties that drive the running-time behaviour of all three
//!   factorization methods.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod metamorphic;
pub mod noise;
pub mod planted;
pub mod proxies;
pub mod random;

pub use metamorphic::{mode_permutations, permute_factors, Family};
pub use noise::{add_noise, NoiseSpec};
pub use planted::{PlantedConfig, PlantedTensor};
pub use proxies::{generate_proxy, proxy_specs, DatasetSpec};
pub use random::{stream_uniform_random, uniform_random};
