//! Uniform random Boolean tensors.

use dbtf_tensor::{BoolTensor, TensorBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a tensor whose cells are i.i.d. Bernoulli(`density`).
///
/// Used for the paper's scalability sweeps (Figure 1(a): `I = J = K` from
/// 2⁶ to 2¹³ at density 0.01; Figure 1(b): densities 0.01–0.3 at
/// `I = 2⁸`).
///
/// Sampling is sparse: instead of flipping a coin per cell, geometric gap
/// sampling walks the linear index space in `O(|X|)` expected time, so
/// generating a density-0.01 2¹³-cube touches ~5.5 G cells' worth of index
/// space with ~55 M draws.
///
/// # Panics
///
/// Panics if `density` is outside `[0, 1]`.
pub fn uniform_random(dims: [usize; 3], density: f64, seed: u64) -> BoolTensor {
    let cells = dims[0] as u128 * dims[1] as u128 * dims[2] as u128;
    let expected = (cells as f64 * density) as usize;
    let mut builder = TensorBuilder::with_capacity(dims, expected + expected / 16 + 16);
    stream_uniform_random(dims, density, seed, |[i, j, k]| builder.insert(i, j, k));
    builder.build()
}

/// Streaming form of [`uniform_random`]: invokes `sink` once per one-cell,
/// in strictly increasing lexicographic order, without materializing the
/// tensor. For a given `(dims, density, seed)` the entry sequence is
/// identical to the entries of the tensor [`uniform_random`] returns, so
/// piping this into a streaming writer reproduces the materialized output
/// byte for byte.
///
/// # Panics
///
/// Panics if `density` is outside `[0, 1]`.
pub fn stream_uniform_random<F: FnMut([u32; 3])>(
    dims: [usize; 3],
    density: f64,
    seed: u64,
    mut sink: F,
) {
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    let cells = dims[0] as u128 * dims[1] as u128 * dims[2] as u128;
    let mut rng = StdRng::seed_from_u64(seed);
    if cells == 0 || density == 0.0 {
        return;
    }
    let (dj, dk) = (dims[1] as u128, dims[2] as u128);
    if density >= 1.0 {
        for i in 0..dims[0] as u32 {
            for j in 0..dims[1] as u32 {
                for k in 0..dims[2] as u32 {
                    sink([i, j, k]);
                }
            }
        }
        return;
    }
    // Geometric gap sampling: successive one-cells are `1 + Geom(p)` apart
    // in the linearized index space.
    let ln_q = (1.0 - density).ln();
    let mut pos: u128 = 0;
    loop {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let gap = (u.ln() / ln_q).floor() as u128;
        pos = pos.saturating_add(gap);
        if pos >= cells {
            break;
        }
        let i = (pos / (dj * dk)) as u32;
        let rem = pos % (dj * dk);
        let j = (rem / dk) as u32;
        let k = (rem % dk) as u32;
        sink([i, j, k]);
        pos += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_is_respected() {
        let t = uniform_random([64, 64, 64], 0.05, 7);
        let d = t.density();
        assert!((0.045..0.055).contains(&d), "density {d}");
        assert_eq!(t.dims(), [64, 64, 64]);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = uniform_random([20, 20, 20], 0.1, 1);
        let b = uniform_random([20, 20, 20], 0.1, 1);
        let c = uniform_random([20, 20, 20], 0.1, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_density_is_empty() {
        assert_eq!(uniform_random([10, 10, 10], 0.0, 0).nnz(), 0);
    }

    #[test]
    fn full_density_is_full() {
        let t = uniform_random([4, 5, 6], 1.0, 0);
        assert_eq!(t.nnz(), 120);
    }

    #[test]
    fn entries_spread_across_modes() {
        let t = uniform_random([16, 16, 16], 0.1, 3);
        // With ~410 entries, every mode should see many distinct indices.
        for m in 0..3 {
            let distinct: std::collections::HashSet<u32> = t.iter().map(|e| e[m]).collect();
            assert!(distinct.len() > 8, "mode {m} too concentrated");
        }
    }

    #[test]
    fn tiny_dims() {
        let t = uniform_random([1, 1, 1], 0.5, 9);
        assert!(t.nnz() <= 1);
    }

    #[test]
    fn stream_matches_materialized_entries_exactly() {
        let dims = [24, 18, 12];
        let t = uniform_random(dims, 0.08, 42);
        let mut streamed = Vec::new();
        stream_uniform_random(dims, 0.08, 42, |e| streamed.push(e));
        assert_eq!(streamed, t.iter().collect::<Vec<_>>());
        assert!(
            streamed.windows(2).all(|w| w[0] < w[1]),
            "stream must be strictly increasing"
        );
    }
}
