//! Synthetic proxies for the paper's real-world datasets (Table III).
//!
//! The six datasets the paper evaluates on (Facebook temporal friendship,
//! DBLP publications, CAIDA-DDoS network attack traces, NELL knowledge
//! base) cannot be redistributed with this reproduction, so each gets a
//! seeded generator that matches the original's **mode sizes** (at a
//! configurable linear scale factor), scales its **non-zero count** by the
//! `s^1.5` law of [`DatasetSpec::scaled_nnz`], and mimics its **coarse
//! structure** — the properties that determine how long each factorization
//! method runs on it:
//!
//! - *Facebook*: user × user × time; blocky friend communities whose
//!   activity is bursty over time.
//! - *DBLP*: author × conference × year; power-law author degrees,
//!   authors publish in a few venues over contiguous year windows.
//! - *CAIDA-DDoS*: source IP × destination IP × time; a sparse scanning
//!   background plus dense attack waves (many sources × few victims ×
//!   short window).
//! - *NELL*: subject × object × relation; entities cluster into
//!   categories, each relation links a category pair.
//!
//! Mode sizes and non-zero counts follow Table III; where the paper's
//! table does not spell out a mode (time bins for Facebook, years for
//! DBLP) we use the natural value from the dataset descriptions.

use dbtf_tensor::{BoolTensor, TensorBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which structural generator a proxy uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProxyKind {
    /// Temporal communities (Facebook-like).
    TemporalCommunities,
    /// Power-law bipartite publications (DBLP-like).
    Publications,
    /// Scanning background plus dense attack waves (CAIDA-DDoS-like).
    AttackTraffic,
    /// Category-pair relations (NELL-like knowledge base).
    KnowledgeBase,
}

/// One Table III dataset: original shape, non-zero count and structure.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name as in Table III.
    pub name: &'static str,
    /// Original mode sizes `[I, J, K]`.
    pub dims: [usize; 3],
    /// Original number of non-zeros.
    pub nnz: u64,
    /// Structural generator.
    pub kind: ProxyKind,
}

impl DatasetSpec {
    /// Density of the original dataset.
    pub fn density(&self) -> f64 {
        let cells = self.dims[0] as f64 * self.dims[1] as f64 * self.dims[2] as f64;
        self.nnz as f64 / cells
    }

    /// Mode sizes after applying a linear `scale` (each mode floored at 4).
    pub fn scaled_dims(&self, scale: f64) -> [usize; 3] {
        let f = |d: usize| ((d as f64 * scale).round() as usize).max(4);
        [f(self.dims[0]), f(self.dims[1]), f(self.dims[2])]
    }

    /// Target non-zeros at `scale`: `nnz · scale^1.5`, capped at 30% of
    /// the scaled cell count.
    ///
    /// Mode sizes scale linearly, so preserving density would shrink the
    /// non-zeros cubically and leave nothing to factorize (Facebook at
    /// scale 0.01 would keep 2 of its 1.5 M ones). The `s^1.5` law — between
    /// the `s²` of a tensor face and the `s³` of its volume — keeps scaled
    /// instances meaningfully populated while preserving the *relative*
    /// size ordering across datasets, which is what the Figure 6
    /// comparison depends on.
    pub fn scaled_nnz(&self, scale: f64) -> u64 {
        let d = self.scaled_dims(scale);
        let cells = d[0] as f64 * d[1] as f64 * d[2] as f64;
        let target = self.nnz as f64 * scale.powf(1.5);
        target.min(0.3 * cells).round().max(1.0) as u64
    }
}

/// The six Table III datasets.
///
/// Facebook's 870 time bins and DBLP's 50 publication years come from the
/// dataset descriptions (the table's K column for these rows is implicit
/// in the source).
pub fn proxy_specs() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "Facebook",
            dims: [64_000, 64_000, 870],
            nnz: 1_500_000,
            kind: ProxyKind::TemporalCommunities,
        },
        DatasetSpec {
            name: "DBLP",
            dims: [418_000, 3_500, 50],
            nnz: 1_300_000,
            kind: ProxyKind::Publications,
        },
        DatasetSpec {
            name: "CAIDA-DDoS-S",
            dims: [9_000, 9_000, 4_000],
            nnz: 22_000_000,
            kind: ProxyKind::AttackTraffic,
        },
        DatasetSpec {
            name: "CAIDA-DDoS-L",
            dims: [9_000, 9_000, 393_000],
            nnz: 331_000_000,
            kind: ProxyKind::AttackTraffic,
        },
        DatasetSpec {
            name: "NELL-S",
            dims: [15_000, 15_000, 29_000],
            nnz: 77_000_000,
            kind: ProxyKind::KnowledgeBase,
        },
        DatasetSpec {
            name: "NELL-L",
            dims: [112_000, 112_000, 213_000],
            nnz: 18_000_000,
            kind: ProxyKind::KnowledgeBase,
        },
    ]
}

/// Generates the proxy tensor for `spec` at linear `scale`.
///
/// The result has the scaled mode sizes and a non-zero count within a few
/// percent of [`DatasetSpec::scaled_nnz`] (structured entries are topped up
/// with background noise until the budget is met).
pub fn generate_proxy(spec: &DatasetSpec, scale: f64, seed: u64) -> BoolTensor {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let dims = spec.scaled_dims(scale);
    let target = spec.scaled_nnz(scale) as usize;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0da7_a5e7);
    let mut builder = TensorBuilder::with_capacity(dims, target + target / 8 + 16);
    // Structured entries fill ~80% of the budget; background the rest.
    let structured_budget = target * 4 / 5;
    match spec.kind {
        ProxyKind::TemporalCommunities => {
            temporal_communities(&mut builder, dims, structured_budget, &mut rng)
        }
        ProxyKind::Publications => publications(&mut builder, dims, structured_budget, &mut rng),
        ProxyKind::AttackTraffic => attack_traffic(&mut builder, dims, structured_budget, &mut rng),
        ProxyKind::KnowledgeBase => knowledge_base(&mut builder, dims, structured_budget, &mut rng),
    }
    // Background noise up to the budget (duplicates collapse in build()).
    while builder.len() < target {
        builder.insert(
            rng.gen_range(0..dims[0] as u32),
            rng.gen_range(0..dims[1] as u32),
            rng.gen_range(0..dims[2] as u32),
        );
    }
    builder.build()
}

/// A Zipf-ish random size in `[lo, hi]` (mass concentrated near `lo`).
fn zipf_size(rng: &mut StdRng, lo: usize, hi: usize) -> usize {
    let lo = lo.max(1);
    let hi = hi.max(lo);
    let u: f64 = rng.gen_range(0.0f64..1.0);
    // Inverse-power sampling with exponent ~2.
    let x = lo as f64 / (1.0 - u).sqrt();
    (x.round() as usize).clamp(lo, hi)
}

fn sample_subset(rng: &mut StdRng, n: usize, size: usize) -> Vec<u32> {
    let size = size.min(n);
    // BTreeSet: deterministic iteration order (HashSet's RandomState would
    // make proxy generation non-reproducible across processes).
    let mut set = std::collections::BTreeSet::new();
    while set.len() < size {
        set.insert(rng.gen_range(0..n as u32));
    }
    set.into_iter().collect()
}

fn temporal_communities(
    builder: &mut TensorBuilder,
    dims: [usize; 3],
    budget: usize,
    rng: &mut StdRng,
) {
    // Communities of users, each active in a contiguous time window with
    // bursty within-block density.
    while builder.len() < budget {
        let size = zipf_size(rng, 3, (dims[0] / 4).max(3));
        let users: Vec<u32> = sample_subset(rng, dims[0].min(dims[1]), size);
        let w = zipf_size(rng, 1, dims[2].max(1));
        let t0 = rng.gen_range(0..dims[2].saturating_sub(w).max(1)) as u32;
        let density = rng.gen_range(0.05f64..0.4);
        for &u in &users {
            for &v in &users {
                if u == v {
                    continue;
                }
                for t in t0..t0 + w as u32 {
                    if rng.gen_bool(density) {
                        builder.insert(u, v, t);
                    }
                    if builder.len() >= budget {
                        return;
                    }
                }
            }
        }
    }
}

fn publications(builder: &mut TensorBuilder, dims: [usize; 3], budget: usize, rng: &mut StdRng) {
    // Authors with power-law productivity publish in a few venues over a
    // contiguous year window.
    while builder.len() < budget {
        let author = rng.gen_range(0..dims[0] as u32);
        let npubs = zipf_size(rng, 1, 60);
        let nvenues = zipf_size(rng, 1, 3.min(dims[1]));
        let venues = sample_subset(rng, dims[1], nvenues);
        let span = zipf_size(rng, 1, dims[2].min(15));
        let y0 = rng.gen_range(0..dims[2].saturating_sub(span).max(1)) as u32;
        for _ in 0..npubs {
            let venue = venues[rng.gen_range(0..venues.len())];
            let year = y0 + rng.gen_range(0..span as u32);
            builder.insert(author, venue, year);
            if builder.len() >= budget {
                return;
            }
        }
    }
}

fn attack_traffic(builder: &mut TensorBuilder, dims: [usize; 3], budget: usize, rng: &mut StdRng) {
    // Dense attack waves: many sources hammer a few victims over a short
    // window — the dense blocks Walk'n'Merge mines.
    while builder.len() < budget {
        let nsrc = zipf_size(rng, dims[0] / 20 + 1, dims[0] / 2 + 1);
        let sources = sample_subset(rng, dims[0], nsrc);
        let nvictims = zipf_size(rng, 1, 4);
        let victims = sample_subset(rng, dims[1], nvictims);
        let w = zipf_size(rng, 1, (dims[2] / 8).max(1));
        let t0 = rng.gen_range(0..dims[2].saturating_sub(w).max(1)) as u32;
        // Flood traffic is near-saturation dense within a wave.
        let density = rng.gen_range(0.65f64..0.95);
        for &s in &sources {
            for &d in &victims {
                for t in t0..t0 + w as u32 {
                    if rng.gen_bool(density) {
                        builder.insert(s, d, t);
                    }
                    if builder.len() >= budget {
                        return;
                    }
                }
            }
        }
    }
}

fn knowledge_base(builder: &mut TensorBuilder, dims: [usize; 3], budget: usize, rng: &mut StdRng) {
    // Entities cluster into categories; each relation links one category
    // pair (subject-category × object-category).
    let ncats = (dims[0] as f64).sqrt().ceil() as usize;
    let cat_of = |e: u32, rng_seed: u64| -> usize {
        // Deterministic hash-based category assignment.
        let h = (e as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ rng_seed;
        (h % ncats as u64) as usize
    };
    let cat_seed: u64 = rng.gen();
    while builder.len() < budget {
        let relation = rng.gen_range(0..dims[2] as u32);
        let (cs, co) = (rng.gen_range(0..ncats), rng.gen_range(0..ncats));
        let tries = zipf_size(rng, 10, 4000);
        for _ in 0..tries {
            let s = rng.gen_range(0..dims[0] as u32);
            let o = rng.gen_range(0..dims[1] as u32);
            if cat_of(s, cat_seed) == cs && cat_of(o, cat_seed.rotate_left(7)) == co {
                builder.insert(s, o, relation);
                if builder.len() >= budget {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_specs_match_table3() {
        let specs = proxy_specs();
        assert_eq!(specs.len(), 6);
        let names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "Facebook",
                "DBLP",
                "CAIDA-DDoS-S",
                "CAIDA-DDoS-L",
                "NELL-S",
                "NELL-L"
            ]
        );
        // Spot-check Table III numbers.
        assert_eq!(specs[0].dims, [64_000, 64_000, 870]);
        assert_eq!(specs[3].nnz, 331_000_000);
    }

    #[test]
    fn scaled_dims_and_nnz() {
        let spec = proxy_specs()[0];
        let d = spec.scaled_dims(0.01);
        assert_eq!(d, [640, 640, 9]);
        // nnz follows the s^1.5 law: 1.5M × 0.001 = 1500.
        assert_eq!(spec.scaled_nnz(0.01), 1500);
        // Relative ordering across datasets is preserved at any scale.
        let specs = proxy_specs();
        for s in [0.005f64, 0.02] {
            for a in &specs {
                for b in &specs {
                    if a.nnz < b.nnz && a.scaled_nnz(s) > 16 && b.scaled_nnz(s) > 16 {
                        assert!(
                            a.scaled_nnz(s) <= b.scaled_nnz(s),
                            "{} vs {} at {s}",
                            a.name,
                            b.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn generators_hit_their_budget() {
        for spec in proxy_specs() {
            let scale = 0.004;
            let t = generate_proxy(&spec, scale, 42);
            let target = spec.scaled_nnz(scale) as f64;
            let got = t.nnz() as f64;
            assert!(
                got >= target * 0.6 && got <= target * 1.05,
                "{}: got {got}, target {target}",
                spec.name
            );
            assert_eq!(t.dims(), spec.scaled_dims(scale));
        }
    }

    #[test]
    fn deterministic() {
        let spec = proxy_specs()[2];
        let a = generate_proxy(&spec, 0.003, 7);
        let b = generate_proxy(&spec, 0.003, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn attack_traffic_has_dense_blocks() {
        // The DDoS proxy must contain at least one reasonably dense
        // sub-block (what Walk'n'Merge exploits): find a victim column
        // with many sources.
        let spec = proxy_specs()[2];
        // 0.05 scale → ~2.7 K non-zeros; enough mass to see concentration.
        let t = generate_proxy(&spec, 0.05, 9);
        let mut per_victim = std::collections::HashMap::new();
        for e in t.iter() {
            *per_victim.entry(e[1]).or_insert(0usize) += 1;
        }
        let max = per_victim.values().max().copied().unwrap_or(0);
        let avg = t.nnz() / per_victim.len().max(1);
        assert!(max > 2 * avg, "no concentration: max {max}, avg {avg}");
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn rejects_bad_scale() {
        generate_proxy(&proxy_specs()[0], 0.0, 0);
    }
}
