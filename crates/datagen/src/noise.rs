//! Additive and destructive noise (paper Section IV-A1).
//!
//! "The amount of noise is determined by the number of 1s in the noise-free
//! tensor. For example, 10% additive noise indicates that we add 10% more
//! 1s to the noise-free tensor, and 5% destructive noise means that we
//! delete 5% of the 1s."

use dbtf_tensor::BoolTensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Noise levels relative to the number of ones of the clean tensor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NoiseSpec {
    /// Fraction of `|X|` new ones inserted at random zero cells
    /// (e.g. `0.10` = 10% additive noise).
    pub additive: f64,
    /// Fraction of `|X|` existing ones deleted
    /// (e.g. `0.05` = 5% destructive noise).
    pub destructive: f64,
}

impl NoiseSpec {
    /// No noise.
    pub fn none() -> Self {
        NoiseSpec::default()
    }

    /// Only additive noise.
    pub fn additive(level: f64) -> Self {
        NoiseSpec {
            additive: level,
            destructive: 0.0,
        }
    }

    /// Only destructive noise.
    pub fn destructive(level: f64) -> Self {
        NoiseSpec {
            additive: 0.0,
            destructive: level,
        }
    }
}

/// Applies `spec` to `clean`: first deletes `destructive·|X|` random ones,
/// then inserts `additive·|X|` ones at cells that are zero in the clean
/// tensor.
///
/// # Panics
///
/// Panics if either level is negative, or if the additive level exceeds
/// the available zero cells.
pub fn add_noise(clean: &BoolTensor, spec: NoiseSpec, seed: u64) -> BoolTensor {
    assert!(
        spec.additive >= 0.0 && spec.destructive >= 0.0,
        "noise levels must be non-negative"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let dims = clean.dims();
    let n = clean.nnz();
    let delete = ((n as f64) * spec.destructive).round() as usize;
    let insert = ((n as f64) * spec.additive).round() as usize;
    let cells = dims[0] as u128 * dims[1] as u128 * dims[2] as u128;
    assert!(
        (insert as u128) <= cells - n as u128,
        "additive noise exceeds available zero cells"
    );

    // Destructive: drop a uniform sample of the ones.
    let mut entries: Vec<[u32; 3]> = clean.iter().collect();
    entries.shuffle(&mut rng);
    entries.truncate(n.saturating_sub(delete));

    // Additive: rejection-sample zero cells of the *clean* tensor. The
    // acceptance rate is `1 − density`, high for all evaluation tensors.
    let mut added = 0usize;
    while added < insert {
        let e = [
            rng.gen_range(0..dims[0] as u32),
            rng.gen_range(0..dims[1] as u32),
            rng.gen_range(0..dims[2] as u32),
        ];
        if !clean.contains(e[0], e[1], e[2]) {
            entries.push(e);
            added += 1;
        }
    }
    // Duplicates among the inserted cells are removed by from_entries;
    // compensate by re-checking and topping up.
    let mut out = BoolTensor::from_entries(dims, entries);
    while out.nnz() < n - delete + insert {
        let e = [
            rng.gen_range(0..dims[0] as u32),
            rng.gen_range(0..dims[1] as u32),
            rng.gen_range(0..dims[2] as u32),
        ];
        if !out.contains(e[0], e[1], e[2]) && !clean.contains(e[0], e[1], e[2]) {
            out = out.or(&BoolTensor::from_entries(dims, vec![e]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::uniform_random;

    #[test]
    fn no_noise_is_identity() {
        let x = uniform_random([12, 12, 12], 0.1, 1);
        assert_eq!(add_noise(&x, NoiseSpec::none(), 0), x);
    }

    #[test]
    fn additive_adds_exactly() {
        let x = uniform_random([16, 16, 16], 0.05, 2);
        let n = x.nnz();
        let noisy = add_noise(&x, NoiseSpec::additive(0.10), 3);
        assert_eq!(noisy.nnz(), n + (n as f64 * 0.10).round() as usize);
        // Every clean one survives.
        assert_eq!(noisy.and_count(&x), n);
    }

    #[test]
    fn destructive_removes_exactly() {
        let x = uniform_random([16, 16, 16], 0.05, 4);
        let n = x.nnz();
        let noisy = add_noise(&x, NoiseSpec::destructive(0.20), 5);
        assert_eq!(noisy.nnz(), n - (n as f64 * 0.20).round() as usize);
        // No new ones appear.
        assert_eq!(noisy.and_count(&x), noisy.nnz());
    }

    #[test]
    fn combined_noise_counts() {
        let x = uniform_random([16, 16, 16], 0.08, 6);
        let n = x.nnz();
        let noisy = add_noise(
            &x,
            NoiseSpec {
                additive: 0.10,
                destructive: 0.05,
            },
            7,
        );
        let expect = n - (n as f64 * 0.05).round() as usize + (n as f64 * 0.10).round() as usize;
        assert_eq!(noisy.nnz(), expect);
    }

    #[test]
    fn deterministic() {
        let x = uniform_random([10, 10, 10], 0.1, 8);
        let a = add_noise(&x, NoiseSpec::additive(0.2), 9);
        let b = add_noise(&x, NoiseSpec::additive(0.2), 9);
        assert_eq!(a, b);
    }
}
