//! Criterion microbenchmarks for the factor-update hot kernel
//! (Algorithm 4's column superstep): `column_errors` and
//! `partition_error` on sparse (probe-path) and dense (bitmap-path)
//! blocks, single- and multi-group cache layouts, plus the incremental
//! `apply_column` and a whole simulated superstep.
//!
//! `WorkState` is built once per benchmark — the measured loops perform
//! no heap allocation beyond the per-call result vector.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dbtf::partition::partition_unfolding;
use dbtf::WorkState;
use dbtf_tensor::{BitMatrix, BitVec, Mode, Unfolding};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One benchmark fixture: a partitioned mode-1 unfolding plus factors.
struct Fixture {
    parts: Vec<dbtf::partition::ModePartition>,
    a: BitMatrix,
    b: BitMatrix,
    c: BitMatrix,
    rank: usize,
}

impl Fixture {
    fn new(dim: usize, density: f64, rank: usize, n_parts: usize, seed: u64) -> Self {
        let x = dbtf_datagen::uniform_random([dim, dim, dim], density, seed);
        let unf = Unfolding::new(&x, Mode::One);
        let parts = partition_unfolding(&unf, n_parts);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let a = BitMatrix::random(dim, rank, 0.3, &mut rng);
        let b = BitMatrix::random(dim, rank, 0.3, &mut rng);
        let c = BitMatrix::random(dim, rank, 0.3, &mut rng);
        Fixture {
            parts,
            a,
            b,
            c,
            rank,
        }
    }

    fn work_state(&self, part: usize, v_limit: usize) -> WorkState {
        let (ws, _) = WorkState::build(&self.parts[part], &self.a, &self.c, &self.b, v_limit);
        ws
    }
}

fn tensor_for(label: &str) -> Fixture {
    match label {
        // ~1.6M cells at density 0.005 → every block far below the dense
        // threshold: exercises the per-nonzero probe path.
        "sparse" => Fixture::new(96, 0.005, 10, 4, 40),
        // Density 0.4 → blocks cross nnz ≥ nrows × words: bitmap path.
        "dense" => Fixture::new(96, 0.4, 10, 4, 41),
        _ => unreachable!(),
    }
}

fn bench_column_errors(c: &mut Criterion) {
    for label in ["sparse", "dense"] {
        let fx = tensor_for(label);
        // Single-group layout (V = 15 ≥ R = 10): fetch_single fast path.
        let mut ws = fx.work_state(0, 15);
        c.bench_function(&format!("update/column_errors_{label}_v15"), |bench| {
            let mut col = 0;
            bench.iter(|| {
                let out = ws.column_errors(&fx.parts[0], col);
                col = (col + 1) % fx.rank;
                black_box(out)
            })
        });
        // Multi-group layout (V = 4 → ⌈10/4⌉ = 3 tables): shared-base OR.
        let mut ws = fx.work_state(0, 4);
        c.bench_function(&format!("update/column_errors_{label}_v4"), |bench| {
            let mut col = 0;
            bench.iter(|| {
                let out = ws.column_errors(&fx.parts[0], col);
                col = (col + 1) % fx.rank;
                black_box(out)
            })
        });
    }
}

fn bench_partition_error(c: &mut Criterion) {
    for label in ["sparse", "dense"] {
        let fx = tensor_for(label);
        let mut ws = fx.work_state(0, 15);
        c.bench_function(&format!("update/partition_error_{label}"), |bench| {
            bench.iter(|| black_box(ws.partition_error(&fx.parts[0])))
        });
    }
}

fn bench_apply_column(c: &mut Criterion) {
    let fx = tensor_for("sparse");
    let mut ws = fx.work_state(0, 4);
    let nrows = fx.parts[0].nrows;
    let mut vals = BitVec::zeros(nrows);
    for r in (0..nrows).step_by(3) {
        vals.set(r, true);
    }
    c.bench_function("update/apply_column_r10_v4", |bench| {
        let mut col = 0;
        bench.iter(|| {
            ws.apply_column(col, &vals);
            col = (col + 1) % fx.rank;
            black_box(col);
        })
    });
}

/// One full simulated superstep over all partitions: score a column,
/// decide per-row winners, apply the decision — the unit the cluster
/// engine fans out across compute threads.
fn bench_superstep(c: &mut Criterion) {
    for label in ["sparse", "dense"] {
        let fx = tensor_for(label);
        let mut states: Vec<WorkState> =
            (0..fx.parts.len()).map(|p| fx.work_state(p, 15)).collect();
        let nrows = fx.parts[0].nrows;
        c.bench_function(&format!("update/superstep_{label}_all_parts"), |bench| {
            let mut col = 0;
            bench.iter(|| {
                let mut sums = vec![(0u64, 0u64); nrows];
                for (p, ws) in states.iter_mut().enumerate() {
                    let (errs, _) = ws.column_errors(&fx.parts[p], col);
                    for (r, (e0, e1)) in errs.into_iter().enumerate() {
                        sums[r].0 += e0;
                        sums[r].1 += e1;
                    }
                }
                let mut vals = BitVec::zeros(nrows);
                for (r, &(e0, e1)) in sums.iter().enumerate() {
                    vals.set(r, e1 < e0);
                }
                for ws in states.iter_mut() {
                    ws.apply_column(col, &vals);
                }
                col = (col + 1) % fx.rank;
                black_box(vals)
            })
        });
    }
}

/// End-to-end factor updates through the engine, with and without a
/// (disabled) tracer threaded through. Telemetry's disabled path is one
/// branch per kernel charge, so these two must be within noise of each
/// other — CI's trace smoke job compares them to assert the
/// zero-overhead-when-disabled contract.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let x = dbtf_datagen::uniform_random([48, 48, 48], 0.05, 11);
    let config = dbtf::DbtfConfig {
        rank: 4,
        max_iters: 2,
        initial_sets: 1,
        seed: 9,
        ..dbtf::DbtfConfig::default()
    };
    c.bench_function("update/factorize_local_plain", |bench| {
        bench.iter(|| {
            let backend = dbtf_cluster::LocalBackend::new(4, 2);
            black_box(dbtf::factorize(&backend, &x, &config).expect("factorize"))
        })
    });
    c.bench_function("update/factorize_local_telemetry_disabled", |bench| {
        bench.iter(|| {
            let backend = dbtf_cluster::LocalBackend::new(4, 2);
            let tracer = dbtf_telemetry::Tracer::disabled();
            black_box(
                dbtf::factorize_instrumented(&backend, &x, &config, &tracer).expect("factorize"),
            )
        })
    });
}

/// End-to-end factor updates through the cluster engine at pipeline depth
/// 1 (barrier execution) vs 4 (overlapped supersteps). Results are
/// bit-identical by contract; the delta measures the wall-clock value of
/// hiding driver-side merge/decision work behind worker compute.
fn bench_pipeline_depth(c: &mut Criterion) {
    let x = dbtf_datagen::uniform_random([48, 48, 48], 0.05, 11);
    let config = dbtf::DbtfConfig {
        rank: 4,
        max_iters: 2,
        initial_sets: 1,
        seed: 9,
        ..dbtf::DbtfConfig::default()
    };
    for depth in [1usize, 4] {
        c.bench_function(&format!("update/factorize_cluster_depth{depth}"), |bench| {
            bench.iter(|| {
                let cluster = dbtf_cluster::Cluster::new(dbtf_cluster::ClusterConfig {
                    workers: 4,
                    compute_threads: Some(2),
                    pipeline_depth: Some(depth),
                    ..dbtf_cluster::ClusterConfig::paper_cluster()
                });
                black_box(dbtf::factorize(&cluster, &x, &config).expect("factorize"))
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_column_errors, bench_partition_error, bench_apply_column, bench_superstep,
        bench_telemetry_overhead, bench_pipeline_depth
}
criterion_main!(benches);
