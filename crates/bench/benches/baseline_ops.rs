//! Criterion benchmarks for the baselines' inner loops.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dbtf_baselines::{asso, bcp_als, walk_n_merge, AssoConfig, BcpAlsConfig, WnmConfig};
use dbtf_tensor::BoolTensor;

fn bench_asso(c: &mut Criterion) {
    let x = dbtf_datagen::uniform_random([48, 8, 8], 0.15, 11);
    let unf = dbtf_tensor::Unfolding::new(&x, dbtf_tensor::Mode::One);
    let rows: Vec<&[u64]> = (0..unf.nrows()).map(|r| unf.row(r)).collect();
    let cfg = AssoConfig {
        rank: 6,
        ..AssoConfig::default()
    };
    c.bench_function("asso/48x64_r6", |bench| {
        bench.iter(|| black_box(asso(&rows, unf.ncols() as usize, &cfg, None).unwrap().error))
    });
}

fn bench_bcp_als(c: &mut Criterion) {
    let x = dbtf_datagen::uniform_random([16, 16, 16], 0.1, 12);
    let cfg = BcpAlsConfig {
        rank: 4,
        max_iters: 2,
        ..BcpAlsConfig::default()
    };
    c.bench_function("bcp_als/16^3_r4_t2", |bench| {
        bench.iter(|| black_box(bcp_als(&x, &cfg, None).unwrap().error))
    });
}

fn bench_walk_n_merge(c: &mut Criterion) {
    let mut entries = Vec::new();
    for i in 0..6u32 {
        for j in 0..6u32 {
            for k in 0..6u32 {
                entries.push([i, j, k]);
                entries.push([i + 8, j + 8, k + 8]);
            }
        }
    }
    let x = BoolTensor::from_entries([16, 16, 16], entries);
    let cfg = WnmConfig {
        merge_threshold: 0.9,
        seed: 3,
        ..WnmConfig::default()
    };
    c.bench_function("walk_n_merge/two_blocks_16^3", |bench| {
        bench.iter(|| black_box(walk_n_merge(&x, &cfg, None).unwrap().blocks.len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_asso, bench_bcp_als, bench_walk_n_merge
}
criterion_main!(benches);
