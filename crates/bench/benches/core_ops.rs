//! Criterion microbenchmarks for the core Boolean-algebra and DBTF
//! primitives, including the headline caching ablation: fetching a cached
//! Boolean row summation vs recomputing it (paper Section III-C).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use dbtf::cache::{GroupLayout, RowSumCache};
use dbtf::partition::partition_unfolding;
use dbtf_tensor::ops::{bool_matmul, khatri_rao, or_selected_rows};
use dbtf_tensor::{BitMatrix, BitVec, BoolTensor, Mode, Unfolding};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_tensor(dim: usize, density: f64, seed: u64) -> BoolTensor {
    dbtf_datagen::uniform_random([dim, dim, dim], density, seed)
}

fn bench_bitvec(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = BitMatrix::random(1, 4096, 0.3, &mut rng).row_bitvec(0);
    let b = BitMatrix::random(1, 4096, 0.3, &mut rng).row_bitvec(0);
    c.bench_function("bitvec/or_4096", |bench| {
        bench.iter_batched(
            || a.clone(),
            |mut v| {
                v.or_assign(&b);
                v
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("bitvec/xor_count_4096", |bench| {
        bench.iter(|| black_box(a.xor_count(&b)))
    });
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let a = BitMatrix::random(128, 64, 0.2, &mut rng);
    let b = BitMatrix::random(64, 512, 0.2, &mut rng);
    c.bench_function("ops/bool_matmul_128x64x512", |bench| {
        bench.iter(|| black_box(bool_matmul(&a, &b)))
    });
    let f1 = BitMatrix::random(64, 10, 0.2, &mut rng);
    let f2 = BitMatrix::random(64, 10, 0.2, &mut rng);
    c.bench_function("ops/khatri_rao_64x64_r10", |bench| {
        bench.iter(|| black_box(khatri_rao(&f1, &f2)))
    });
}

fn bench_unfold_partition(c: &mut Criterion) {
    let x = random_tensor(64, 0.02, 3);
    c.bench_function("unfold/mode1_64^3", |bench| {
        bench.iter(|| black_box(Unfolding::new(&x, Mode::One)))
    });
    let unf = Unfolding::new(&x, Mode::One);
    c.bench_function("partition/N32_64^3", |bench| {
        bench.iter(|| black_box(partition_unfolding(&unf, 32)))
    });
}

fn bench_cache(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let ms = BitMatrix::random(256, 10, 0.1, &mut rng); // S = 256, R = 10
    let layout = GroupLayout::new(10, 15);
    c.bench_function("cache/build_r10_s256", |bench| {
        bench.iter(|| black_box(RowSumCache::build(&ms, &layout)))
    });
    let layout20 = GroupLayout::new(20, 10); // two group tables
    let ms20 = BitMatrix::random(256, 20, 0.1, &mut rng);
    c.bench_function("cache/build_r20_v10_s256", |bench| {
        bench.iter(|| black_box(RowSumCache::build(&ms20, &layout20)))
    });

    // The Section III-C ablation: cached fetch vs naive recomputation of
    // the same Boolean row summation.
    let cache = RowSumCache::build(&ms, &layout);
    let mst = ms.transpose();
    let keys: Vec<u64> = (0..1024).map(|_| rng.gen_range(0..1u64 << 10)).collect();
    c.bench_function("rowsum/cached_fetch_x1024", |bench| {
        bench.iter(|| {
            let mut acc = 0usize;
            for &k in &keys {
                let (row, pop) = cache.fetch_single(k);
                acc += pop as usize + row.words()[0] as usize % 2;
            }
            black_box(acc)
        })
    });
    c.bench_function("rowsum/naive_recompute_x1024", |bench| {
        bench.iter(|| {
            let mut acc = 0usize;
            for &k in &keys {
                let mask = BitVec::from_words(10, vec![k]);
                let row = or_selected_rows(&mst, &mask);
                acc += row.count_ones();
            }
            black_box(acc)
        })
    });
}

fn bench_reconstruct(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let a = BitMatrix::random(64, 8, 0.2, &mut rng);
    let b = BitMatrix::random(64, 8, 0.2, &mut rng);
    let f = BitMatrix::random(64, 8, 0.2, &mut rng);
    c.bench_function("reconstruct/64^3_r8", |bench| {
        bench.iter(|| black_box(dbtf_tensor::reconstruct::reconstruct(&a, &b, &f)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bitvec, bench_matmul, bench_unfold_partition, bench_cache, bench_reconstruct
}
criterion_main!(benches);
