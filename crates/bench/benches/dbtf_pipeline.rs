//! Criterion benchmarks of the end-to-end DBTF pipeline and its ablation
//! against the uncached sequential reference.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dbtf::reference::update_factor_reference;
use dbtf::{factorize, initial_factor_sets, DbtfConfig};
use dbtf_cluster::{Cluster, ClusterConfig};
use dbtf_tensor::{Mode, Unfolding};

fn bench_factorize(c: &mut Criterion) {
    for dim in [32usize, 64] {
        let x = dbtf_datagen::uniform_random([dim, dim, dim], 0.02, 7);
        let config = DbtfConfig {
            rank: 8,
            max_iters: 2,
            seed: 0,
            ..DbtfConfig::default()
        };
        c.bench_function(&format!("dbtf/factorize_{dim}^3_r8_t2"), |bench| {
            bench.iter(|| {
                let cluster = Cluster::new(ClusterConfig::with_workers(2));
                black_box(factorize(&cluster, &x, &config).unwrap().error)
            })
        });
    }
}

fn bench_update_ablation(c: &mut Criterion) {
    // One full mode-1 factor update: cached/distributed vs uncached
    // reference (the paper's Section III-C claim in microcosm).
    let x = dbtf_datagen::uniform_random([48, 48, 48], 0.05, 8);
    let config = DbtfConfig {
        rank: 10,
        max_iters: 1,
        seed: 0,
        ..DbtfConfig::default()
    };
    let set = initial_factor_sets(&x, &config).remove(0);
    let unf1 = Unfolding::new(&x, Mode::One);
    c.bench_function("update/uncached_reference_48^3_r10", |bench| {
        bench.iter(|| black_box(update_factor_reference(&unf1, &set.a, &set.c, &set.b)))
    });
    c.bench_function("update/dbtf_full_iteration_48^3_r10", |bench| {
        bench.iter(|| {
            let cluster = Cluster::new(ClusterConfig::with_workers(1));
            black_box(factorize(&cluster, &x, &config).unwrap().error)
        })
    });
}

fn bench_tucker(c: &mut Criterion) {
    use dbtf::tucker::{tucker_factorize, TuckerConfig};
    let x = dbtf_datagen::uniform_random([24, 24, 24], 0.05, 9);
    let config = TuckerConfig {
        ranks: [4, 4, 4],
        max_iters: 2,
        seed: 0,
        ..TuckerConfig::default()
    };
    c.bench_function("tucker/factorize_24^3_r4", |bench| {
        bench.iter(|| black_box(tucker_factorize(&x, &config).unwrap().error))
    });
}

fn bench_rank_selection(c: &mut Criterion) {
    use dbtf::model_selection::select_rank;
    let x = dbtf_datagen::uniform_random([20, 20, 20], 0.08, 10);
    let base = DbtfConfig {
        max_iters: 2,
        seed: 0,
        ..DbtfConfig::default()
    };
    c.bench_function("model_selection/sweep_r1_to_4", |bench| {
        bench.iter(|| {
            let cluster = Cluster::new(ClusterConfig::with_workers(2));
            black_box(
                select_rank(&cluster, &x, &[1, 2, 4], &base)
                    .unwrap()
                    .best_rank,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_factorize, bench_update_ablation, bench_tucker, bench_rank_selection
}
criterion_main!(benches);
