//! Figure 6: running time on the real-world datasets (via the Table III
//! proxies).
//!
//! Paper setup: rank 10, 12-hour cap, 32 GB machines. Observed there:
//! DBTF handles all six datasets; Walk'n'Merge finishes only Facebook
//! (21× slower than DBTF); BCP_ALS goes O.O.M. everywhere except DBLP,
//! where it goes O.O.T.
//!
//! Here each dataset is a structure-preserving synthetic proxy at
//! `--scale` (default 0.01) and BCP_ALS's 32 GB budget is rescaled so it
//! trips exactly when the original would (see
//! `dbtf_bench::scaled_memory_budget`).

use dbtf::DbtfConfig;
use dbtf_bench::{
    print_header, print_row, run_bcp_als, run_dbtf, run_walk_n_merge, scaled_memory_budget, Args,
};
use dbtf_datagen::proxies::{generate_proxy, proxy_specs};

fn main() {
    let args = Args::parse();
    let scale = args.get("scale", 0.01f64);
    let rank = args.get("rank", 10usize);
    let oot_secs = args.get("oot-secs", 60.0f64);
    let workers = args.get("workers", 16usize);
    let seed = args.get("seed", 0u64);

    println!("Figure 6 — real-world datasets (synthetic proxies at scale {scale})");
    println!("rank {rank}, O.O.T. cap {oot_secs}s, BCP_ALS budget rescaled from 32 GB");
    println!("(DBTF: virtual seconds on {workers} simulated workers; baselines: wall seconds)");
    print_header(
        "running time (secs)",
        "dataset",
        &["DBTF", "BCP_ALS", "WalkNMerge"],
    );

    for spec in proxy_specs() {
        let x = generate_proxy(&spec, scale, seed);
        let config = DbtfConfig {
            rank,
            seed,
            ..DbtfConfig::default()
        };
        let dbtf = run_dbtf(&x, &config, workers);
        let budget = scaled_memory_budget(&spec, scale, rank);
        let bcp = run_bcp_als(&x, rank, oot_secs, Some(budget));
        let wnm = run_walk_n_merge(&x, rank, 0.0, oot_secs);
        let dims = x.dims();
        print_row(
            &format!(
                "{:<13} {}x{}x{} |X|={}",
                spec.name,
                dims[0],
                dims[1],
                dims[2],
                x.nnz()
            ),
            &[dbtf.cell(), bcp.cell(), wnm.cell()],
        );
    }
}
