//! Table I: qualitative scalability comparison.
//!
//! The paper summarizes Figure 1 as a High/Low matrix: Walk'n'Merge is Low
//! on dimensionality and density; BCP_ALS is Low on dimensionality; DBTF
//! is High everywhere and the only distributed method. This harness
//! regenerates the verdicts from quick probe runs: a method is **Low** on
//! an axis if it blows the time cap while DBTF completes at the same
//! point, **High** if it tracks DBTF to the end of the probe sweep.

use dbtf::DbtfConfig;
use dbtf_bench::{run_bcp_als, run_dbtf, run_walk_n_merge, Args, Outcome};
use dbtf_datagen::uniform_random;

fn verdict(outcomes: &[Outcome]) -> &'static str {
    if outcomes.iter().all(|o| o.secs().is_some()) {
        "High"
    } else {
        "Low"
    }
}

fn main() {
    let args = Args::parse();
    let oot_secs = args.get("oot-secs", 30.0f64);
    let workers = args.get("workers", 16usize);
    let seed = args.get("seed", 0u64);
    let config = |rank: usize| DbtfConfig {
        rank,
        seed,
        ..DbtfConfig::default()
    };

    println!("Table I — scalability comparison (probe caps: {oot_secs}s per run)");

    // Dimensionality probe: grow the cube until baselines crack.
    let dims_probe: Vec<_> = [64usize, 128]
        .iter()
        .map(|&d| uniform_random([d, d, d], 0.01, seed))
        .collect();
    let dim_dbtf: Vec<_> = dims_probe
        .iter()
        .map(|x| run_dbtf(x, &config(10), workers))
        .collect();
    let dim_bcp: Vec<_> = dims_probe
        .iter()
        .map(|x| run_bcp_als(x, 10, oot_secs, None))
        .collect();
    let dim_wnm: Vec<_> = dims_probe
        .iter()
        .map(|x| run_walk_n_merge(x, 10, 0.0, oot_secs))
        .collect();

    // Density probe at a fixed small cube.
    let dens_probe: Vec<_> = [0.05f64, 0.2]
        .iter()
        .map(|&d| uniform_random([64, 64, 64], d, seed))
        .collect();
    let den_dbtf: Vec<_> = dens_probe
        .iter()
        .map(|x| run_dbtf(x, &config(10), workers))
        .collect();
    let den_bcp: Vec<_> = dens_probe
        .iter()
        .map(|x| run_bcp_als(x, 10, oot_secs, None))
        .collect();
    let den_wnm: Vec<_> = dens_probe
        .iter()
        .map(|x| run_walk_n_merge(x, 10, 0.0, oot_secs))
        .collect();

    // Rank probe.
    let x = uniform_random([64, 64, 64], 0.05, seed);
    let rank_dbtf: Vec<_> = [10usize, 40]
        .iter()
        .map(|&r| run_dbtf(&x, &config(r), workers))
        .collect();
    let rank_bcp: Vec<_> = [10usize, 40]
        .iter()
        .map(|&r| run_bcp_als(&x, r, oot_secs, None))
        .collect();
    let rank_wnm: Vec<_> = [10usize, 40]
        .iter()
        .map(|&r| run_walk_n_merge(&x, r, 0.0, oot_secs))
        .collect();

    println!(
        "\n{:<14} {:>15} {:>10} {:>10} {:>12}",
        "Method", "Dimensionality", "Density", "Rank", "Distributed"
    );
    println!("{}", "-".repeat(66));
    println!(
        "{:<14} {:>15} {:>10} {:>10} {:>12}",
        "Walk'n'Merge",
        verdict(&dim_wnm),
        verdict(&den_wnm),
        verdict(&rank_wnm),
        "No"
    );
    println!(
        "{:<14} {:>15} {:>10} {:>10} {:>12}",
        "BCP_ALS",
        verdict(&dim_bcp),
        verdict(&den_bcp),
        verdict(&rank_bcp),
        "No"
    );
    println!(
        "{:<14} {:>15} {:>10} {:>10} {:>12}",
        "DBTF",
        verdict(&dim_dbtf),
        verdict(&den_dbtf),
        verdict(&rank_dbtf),
        "Yes"
    );
    println!("\n(paper's Table I: Walk'n'Merge Low/Low/High, BCP_ALS Low/High/High, DBTF High/High/High)");
}
