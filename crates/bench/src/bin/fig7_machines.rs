//! Figure 7: machine scalability.
//!
//! Paper setup: `I = J = K = 2¹²`, density 0.01, rank 10; machines
//! M = 4 → 16; reports the speed-up `T₄ / T_M`, observing near-linear
//! scaling (≈2.2× from 4 to 16 machines).
//!
//! Here the running time is the engine's virtual makespan, so this is a
//! direct measurement of load balance plus communication under the cost
//! model. The partition count `N` is held fixed across M (otherwise the
//! workload itself would change shape).
//!
//! Default: `I = 2¹⁰` (`--paper-scale` for 2¹²).

use dbtf::DbtfConfig;
use dbtf_bench::{print_header, print_row, run_dbtf, Args};
use dbtf_datagen::uniform_random;

fn main() {
    let args = Args::parse();
    let exp = if args.has("paper-scale") {
        12u32
    } else {
        args.get("exp", 10u32)
    };
    let density = args.get("density", 0.01f64);
    let rank = args.get("rank", 10usize);
    let partitions = args.get("partitions", 128usize);
    let seed = args.get("seed", 0u64);
    let dim = 1usize << exp;

    let x = uniform_random([dim, dim, dim], density, seed);
    println!("Figure 7 — machine scalability");
    println!(
        "I=J=K=2^{exp} ({dim}), density {density}, rank {rank}, N={partitions}, |X|={}",
        x.nnz()
    );
    println!("(virtual seconds; speed-up normalized to M=4 as in the paper)");
    print_header("machine scalability", "machines", &["T_M (s)", "T4/TM"]);

    let machines = [4usize, 8, 12, 16];
    let mut t4: Option<f64> = None;
    for &m in &machines {
        let config = DbtfConfig {
            rank,
            partitions: Some(partitions),
            seed,
            ..DbtfConfig::default()
        };
        let outcome = run_dbtf(&x, &config, m);
        let secs = outcome.secs().expect("DBTF completes");
        if t4.is_none() {
            t4 = Some(secs);
        }
        let speedup = t4.unwrap() / secs;
        print_row(
            &format!("{m}"),
            &[format!("{secs:10.3}"), format!("{speedup:10.2}")],
        );
    }
}
