//! Chaos sweep: fault-recovery overhead across fault rates × worker
//! counts.
//!
//! For each (workers, fault-rate) cell the same workload runs fault-free
//! and under a fault plan that combines a worker crash, transient task
//! failures at the given rate, and slow tasks. The run **asserts** the
//! engine's headline invariant — bit-identical factors, error, and op
//! counts — and reports the recovery overhead (virtual-time stretch) plus
//! the recovery counters.
//!
//! With `--net`, the faulty runs execute on the **networked backend**
//! (TCP workers, thread-hosted) under a process-kill plan at the given
//! rate instead of transient faults; each cell additionally asserts that
//! the payload bytes measured on the wire equal the Lemma 6/7 meters,
//! and the JSON report gains the wire counters.
//!
//! Output is an ASCII table on stdout and, with `--json FILE`, a
//! hand-written JSON report for tooling (no external serializer needed).
//!
//! ```text
//! cargo run --release -p dbtf-bench --bin chaos -- [--exp 9] [--rank 8]
//!     [--density 0.02] [--seed 0] [--json chaos.json] [--net]
//! ```

use std::fmt::Write as _;

use dbtf::{factorize, net_tasks, DbtfConfig, DbtfResult};
use dbtf_bench::{print_header, print_row, Args};
use dbtf_cluster::{
    Cluster, ClusterConfig, ExecutionBackend, FaultPlan, MetricsSnapshot, NetTuning, WorkerHost,
};
use dbtf_datagen::uniform_random;
use dbtf_oracle::check_wire_meters;
use dbtf_tensor::BoolTensor;

struct Cell {
    workers: usize,
    rate: f64,
    clean_secs: f64,
    faulty_secs: f64,
    recovery_secs: f64,
    respawns: u64,
    retries: u64,
    recomputed: u64,
    reshipped: u64,
    speculative: u64,
    /// Wire counters of the faulty run — zero in the simulated sweep.
    wire_sent: u64,
    wire_received: u64,
    wire_overhead: u64,
    wire_reship: u64,
}

fn cluster_config(workers: usize, plan: Option<FaultPlan>) -> ClusterConfig {
    ClusterConfig {
        workers,
        cores_per_worker: 8,
        fault_plan: plan,
        ..ClusterConfig::default()
    }
}

fn run(
    x: &BoolTensor,
    config: &DbtfConfig,
    workers: usize,
    plan: Option<FaultPlan>,
) -> (DbtfResult, MetricsSnapshot) {
    let cluster = Cluster::new(cluster_config(workers, plan));
    let result = factorize(&cluster, x, config).expect("factorization succeeds");
    let metrics = cluster.metrics();
    (result, metrics)
}

/// Runs the same plan on the networked backend (thread-hosted TCP
/// workers — same wire protocol and recovery path as real processes,
/// kills delivered as `Die` frames).
fn run_net(
    x: &BoolTensor,
    config: &DbtfConfig,
    workers: usize,
    plan: Option<FaultPlan>,
) -> (DbtfResult, MetricsSnapshot) {
    let backend = net_tasks::net_backend(
        cluster_config(workers, plan),
        WorkerHost::Thread(net_tasks::build_registry()),
        NetTuning {
            respawn_budget: 1024,
            ..NetTuning::default()
        },
    )
    .expect("net backend binds and spawns");
    let result = factorize(&backend, x, config).expect("factorization succeeds");
    let metrics = backend.metrics();
    (result, metrics)
}

fn main() {
    let args = Args::parse();
    let net = args.has("net");
    // The networked sweep moves every byte over real sockets, so it
    // defaults to a smaller tensor than the simulated one.
    let exp = args.get("exp", if net { 7u32 } else { 9u32 });
    let rank = args.get("rank", 8usize);
    let density = args.get("density", 0.02f64);
    let seed = args.get("seed", 0u64);
    let dim = 1usize << exp;

    let x = uniform_random([dim, dim, dim], density, seed);
    let config = DbtfConfig {
        rank,
        max_iters: 3,
        partitions: Some(64),
        seed,
        ..DbtfConfig::default()
    };
    if net {
        println!("Chaos sweep — process-kill recovery on the networked backend");
    } else {
        println!("Chaos sweep — fault-recovery overhead");
    }
    println!(
        "I=J=K=2^{exp} ({dim}), density {density}, rank {rank}, |X|={}",
        x.nnz()
    );
    println!("(every faulty run is asserted bit-identical to the fault-free run)");
    if net {
        println!("(and the wire payload is asserted equal to the Lemma 6/7 meters)");
    }
    print_header(
        "recovery overhead",
        "workers/rate",
        &[
            "T_clean", "T_fault", "overhead", "respawn", "retries", "recomp", "spec",
        ],
    );

    let worker_counts = [4usize, 8];
    let rates = [0.0f64, 0.02, 0.05, 0.10];
    let mut cells: Vec<Cell> = Vec::new();
    for &workers in &worker_counts {
        let (clean, clean_m) = run(&x, &config, workers, None);
        for &rate in &rates {
            let plan = if net {
                FaultPlan {
                    // One scheduled mid-run kill in every faulty cell;
                    // the rate drives seeded worker kills on top.
                    worker_crashes: vec![(15, workers - 1)],
                    process_kill_rate: rate,
                    ..FaultPlan::with_seed(seed ^ 0xc0de)
                }
            } else {
                FaultPlan {
                    // One mid-run crash in every faulty cell; rate drives
                    // the transient/slow noise on top.
                    worker_crashes: vec![(15, workers - 1)],
                    task_failure_rate: rate,
                    slow_task_rate: rate / 2.0,
                    ..FaultPlan::with_seed(seed ^ 0xc0de)
                }
            };
            let (faulty, m) = if net {
                run_net(&x, &config, workers, Some(plan))
            } else {
                run(&x, &config, workers, Some(plan))
            };
            assert_eq!(clean.factors, faulty.factors, "bit-identical factors");
            assert_eq!(clean.error, faulty.error, "bit-identical error");
            assert_eq!(
                clean_m.total_ops, m.total_ops,
                "bit-identical op counts (w={workers}, rate={rate})"
            );
            if net {
                let violations = check_wire_meters(&m);
                assert!(
                    violations.is_empty(),
                    "wire bytes must equal the lemma meters: {violations:?}"
                );
            }
            let cell = Cell {
                workers,
                rate,
                clean_secs: clean_m.virtual_time.as_secs_f64(),
                faulty_secs: m.virtual_time.as_secs_f64(),
                recovery_secs: m.recovery_time.as_secs_f64(),
                respawns: m.worker_respawns,
                retries: m.task_retries,
                recomputed: m.partitions_recomputed,
                reshipped: m.bytes_reshipped,
                speculative: m.speculative_tasks,
                wire_sent: m.net_wire_bytes_sent,
                wire_received: m.net_wire_bytes_received,
                wire_overhead: m.net_wire_overhead_bytes,
                wire_reship: m.net_wire_reship_bytes,
            };
            let overhead = 100.0 * (cell.faulty_secs - cell.clean_secs) / cell.clean_secs;
            print_row(
                &format!("{workers}w @ {rate:.2}"),
                &[
                    format!("{:10.3}", cell.clean_secs),
                    format!("{:10.3}", cell.faulty_secs),
                    format!("{overhead:9.1}%"),
                    format!("{:10}", cell.respawns),
                    format!("{:10}", cell.retries),
                    format!("{:10}", cell.recomputed),
                    format!("{:10}", cell.speculative),
                ],
            );
            cells.push(cell);
        }
    }

    if let Some(path) = {
        let p = args.get("json", String::new());
        (!p.is_empty()).then_some(p)
    } {
        let mut json = format!(
            "{{\n  \"experiment\": \"{}\",\n  \"cells\": [\n",
            if net { "chaos_net" } else { "chaos" }
        );
        for (i, c) in cells.iter().enumerate() {
            let wire = if net {
                format!(
                    ", \"wire_bytes_sent\": {}, \"wire_bytes_received\": {}, \
                     \"wire_overhead_bytes\": {}, \"wire_reship_bytes\": {}, \
                     \"wire_matches_lemma_meters\": true",
                    c.wire_sent, c.wire_received, c.wire_overhead, c.wire_reship
                )
            } else {
                String::new()
            };
            let _ = writeln!(
                json,
                "    {{\"workers\": {}, \"fault_rate\": {}, \"clean_virtual_secs\": {}, \
                 \"faulty_virtual_secs\": {}, \"recovery_virtual_secs\": {}, \
                 \"worker_respawns\": {}, \"task_retries\": {}, \
                 \"partitions_recomputed\": {}, \"bytes_reshipped\": {}, \
                 \"speculative_tasks\": {}, \"bit_identical\": true{}}}{}",
                c.workers,
                c.rate,
                c.clean_secs,
                c.faulty_secs,
                c.recovery_secs,
                c.respawns,
                c.retries,
                c.recomputed,
                c.reshipped,
                c.speculative,
                wire,
                if i + 1 < cells.len() { "," } else { "" },
            );
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write JSON report");
        println!("wrote {path}");
    }
}
