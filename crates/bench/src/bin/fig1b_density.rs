//! Figure 1(b): running time vs. tensor density.
//!
//! Paper setup: density 0.01 → 0.3 at `I = J = K = 2⁸`, rank 10. Expected
//! shape: DBTF near-flat in density; BCP_ALS completes but slower;
//! Walk'n'Merge blows past the cap once density exceeds ~0.1 (its walk
//! count and merge phase scale with `|X|`).
//!
//! Default here: `I = 2⁶` with a 60 s cap (`--exp 8 --oot-secs 21600` for
//! the paper point).

use dbtf::DbtfConfig;
use dbtf_bench::{print_header, print_row, run_bcp_als, run_dbtf, run_walk_n_merge, Args};
use dbtf_datagen::uniform_random;

fn main() {
    let args = Args::parse();
    let exp = if args.has("paper-scale") {
        8u32
    } else {
        args.get("exp", 6u32)
    };
    let rank = args.get("rank", 10usize);
    let oot_secs = args.get("oot-secs", 60.0f64);
    let workers = args.get("workers", 16usize);
    let seed = args.get("seed", 0u64);
    let dim = 1usize << exp;
    let densities = [0.01f64, 0.05, 0.1, 0.2, 0.3];

    println!("Figure 1(b) — scalability w.r.t. density");
    println!("I=J=K=2^{exp} ({dim}), rank {rank}, O.O.T. cap {oot_secs}s");
    println!("(DBTF: virtual seconds on {workers} simulated workers; baselines: wall seconds)");
    print_header(
        "running time (secs)",
        "density",
        &["DBTF", "BCP_ALS", "WalkNMerge"],
    );

    for (i, &density) in densities.iter().enumerate() {
        let x = uniform_random([dim, dim, dim], density, seed + i as u64);
        let config = DbtfConfig {
            rank,
            seed,
            ..DbtfConfig::default()
        };
        let dbtf = run_dbtf(&x, &config, workers);
        let bcp = run_bcp_als(&x, rank, oot_secs, None);
        let wnm = run_walk_n_merge(&x, rank, 0.0, oot_secs);
        print_row(
            &format!("{density:<5} |X|={}", x.nnz()),
            &[dbtf.cell(), bcp.cell(), wnm.cell()],
        );
    }
}
