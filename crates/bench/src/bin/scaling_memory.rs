//! Peak-RSS demonstration of the out-of-core unfolding path.
//!
//! Runs the full streaming pipeline — generate a tensor straight to a COO
//! file, external-sort it into the three on-disk columnar unfoldings with a
//! deliberately tiny sort budget, then mmap each unfolding and build its
//! vertical partitions one at a time (evicting pages in between) — and
//! reports the **peak resident set** of each phase against what the heap
//! path would have to hold (the materialized tensor plus all three heap
//! unfoldings). Nothing in the pipeline ever materializes the tensor, so
//! peak memory is bounded by the sort budget plus one partition, not by
//! `|X|`.
//!
//! Peaks are measured with `VmHWM` from `/proc/self/status`, reset between
//! phases via `/proc/self/clear_refs`; on kernels where the reset is
//! unavailable the numbers are reported but the bound is not enforced.
//!
//! With `--json FILE` the datapoints are also written as a machine-readable
//! report (same hand-rolled JSON as the chaos sweep) — `BENCH_ooc.json` in
//! the repo root tracks this across commits.
//!
//! ```text
//! cargo run --release -p dbtf-bench --bin scaling_memory -- \
//!     [--dim 384] [--density 0.05] [--seed 0] [--budget-mb 2] \
//!     [--partitions 16] [--json BENCH_ooc.json] [--scratch DIR] [--keep]
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use dbtf::partition::partition_unfolding_one;
use dbtf_bench::{print_header, print_row, Args};
use dbtf_datagen::stream_uniform_random;
use dbtf_tensor::stream::{write_unfolding_from_entries, SpillConfig};
use dbtf_tensor::{io as tio, MmapUnfolding, Mode, UnfoldingStore};

/// Current peak resident set (`VmHWM`) in bytes, if the kernel exposes it.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Resets `VmHWM` to the current RSS so per-phase peaks are measurable.
/// Returns false when the kernel refuses (then peaks are cumulative).
fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

fn mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

fn main() {
    let args = Args::parse();
    let dim = args.get("dim", 384usize);
    let density = args.get("density", 0.05f64);
    let seed = args.get("seed", 0u64);
    let budget_mb = args.get("budget-mb", 2usize);
    let n_partitions = args.get("partitions", 16usize);
    let json_path = args.get("json", String::new());

    let dims = [dim, dim, dim];
    let scratch = PathBuf::from(
        args.get(
            "scratch",
            std::env::temp_dir()
                .join(format!("dbtf-memscale-{}", std::process::id()))
                .display()
                .to_string(),
        ),
    );
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let resettable = reset_peak_rss();
    let measured = peak_rss_bytes().is_some();

    // Phase 1 — generate: entry stream straight to a binary COO file.
    let coo = scratch.join("x.coo");
    let t0 = Instant::now();
    let mut writer = tio::StreamingTensorWriter::create(&coo, dims, true).expect("create COO file");
    stream_uniform_random(dims, density, seed, |e| {
        writer.push(e).expect("write COO entry");
    });
    let nnz = writer.finish().expect("finish COO file");
    let gen_secs = t0.elapsed().as_secs_f64();

    // Phase 2 — ingest: external-sort each mode's unfolding onto disk under
    // a sort budget far below the tensor's size.
    reset_peak_rss();
    let spill = SpillConfig::new(scratch.join("spill")).with_chunk_bytes(budget_mb << 20);
    let t0 = Instant::now();
    let mut unfolding_paths: Vec<PathBuf> = Vec::new();
    let mut disk_bytes = 0u64;
    for mode in [Mode::One, Mode::Two, Mode::Three] {
        let path = scratch.join(format!("unfold_{}.dbtfu", mode.index() + 1));
        let entries = tio::TensorStream::open(&coo).expect("reopen COO stream");
        let written =
            write_unfolding_from_entries(entries, dims, mode, &path, &spill).expect("ingest");
        assert_eq!(written, nnz, "ingest must keep every distinct entry");
        disk_bytes += std::fs::metadata(&path).expect("stat unfolding").len();
        unfolding_paths.push(path);
    }
    let ingest_secs = t0.elapsed().as_secs_f64();
    let ingest_peak = peak_rss_bytes();

    // Phase 3 — sweep: mmap each unfolding and build its partitions one at
    // a time, evicting the mapped pages between partitions. This is the
    // access pattern the driver's distribute step and lineage recompute use.
    reset_peak_rss();
    let t0 = Instant::now();
    let mut part_bytes_max = 0u64;
    let mut part_nnz_total = 0u64;
    for path in &unfolding_paths {
        let store = MmapUnfolding::open(path).expect("open unfolding");
        assert_eq!(store.nnz(), nnz);
        for p in 0..n_partitions {
            let part = partition_unfolding_one(&store, p, n_partitions);
            part_bytes_max = part_bytes_max.max(part.byte_size());
            part_nnz_total += part.nnz() as u64;
            store.evict();
        }
    }
    let sweep_secs = t0.elapsed().as_secs_f64();
    let sweep_peak = peak_rss_bytes();
    assert_eq!(part_nnz_total, 3 * nnz, "partitions must cover every entry");

    // What the heap path holds at its peak: the materialized tensor
    // (12 B/entry) plus one heap unfolding per mode (8 B/entry + row Vecs).
    let heap_estimate = nnz * 12 + 3 * (nnz * 8 + (dim as u64 + 1) * 24);

    print_header(
        &format!(
            "Out-of-core memory scaling — {dim}^3, density {density}, |X| = {nnz}, \
             sort budget {budget_mb} MiB, {n_partitions} partitions"
        ),
        "phase",
        &["secs", "peak MiB"],
    );
    let peak_cell =
        |p: Option<u64>| p.map_or_else(|| format!("{:>10}", "n/a"), |b| format!("{:>10}", mib(b)));
    print_row(
        "generate -> COO",
        &[format!("{gen_secs:10.3}"), format!("{:>10}", "-")],
    );
    print_row(
        "ingest (3 modes)",
        &[format!("{ingest_secs:10.3}"), peak_cell(ingest_peak)],
    );
    print_row(
        "partition sweep",
        &[format!("{sweep_secs:10.3}"), peak_cell(sweep_peak)],
    );
    println!(
        "\non-disk unfoldings: {} MiB | largest partition: {} MiB | heap path would hold: {} MiB",
        mib(disk_bytes),
        mib(part_bytes_max),
        mib(heap_estimate)
    );

    // The bound this bench exists to demonstrate: with the peak reset
    // working and a workload big enough to rise above allocator noise, the
    // out-of-core sweep must stay well under the heap path's footprint.
    let enforce = resettable && measured && heap_estimate >= 64 << 20;
    if enforce {
        let peak = sweep_peak.expect("measured");
        assert!(
            peak < heap_estimate / 2,
            "partition sweep peak RSS {} MiB is not under half the heap \
             path's {} MiB — the out-of-core bound regressed",
            mib(peak),
            mib(heap_estimate)
        );
        println!(
            "bound holds: sweep peak {} MiB < {} MiB (half the heap path)",
            mib(sweep_peak.unwrap_or(0)),
            mib(heap_estimate / 2)
        );
    } else {
        println!("bound not enforced (VmHWM reset unavailable or workload too small)");
    }

    if !json_path.is_empty() {
        let mut json = format!(
            "{{\n  \"bench\": \"scaling_memory\",\n  \"dim\": {dim},\n  \"density\": {density},\n  \
             \"seed\": {seed},\n  \"nnz\": {nnz},\n  \"sort_budget_mib\": {budget_mb},\n  \
             \"partitions\": {n_partitions},\n  \"enforced\": {enforce},\n  \"phases\": [\n"
        );
        let phases = [
            ("generate", gen_secs, None),
            ("ingest", ingest_secs, ingest_peak),
            ("sweep", sweep_secs, sweep_peak),
        ];
        for (i, (name, secs, peak)) in phases.iter().enumerate() {
            let _ = writeln!(
                json,
                "    {{ \"phase\": \"{name}\", \"secs\": {secs:.3}, \"peak_rss_bytes\": {} }}{}",
                peak.map_or_else(|| "null".to_string(), |b| b.to_string()),
                if i + 1 < phases.len() { "," } else { "" }
            );
        }
        let _ = write!(
            json,
            "  ],\n  \"disk_bytes\": {disk_bytes},\n  \"largest_partition_bytes\": \
             {part_bytes_max},\n  \"heap_estimate_bytes\": {heap_estimate}\n}}\n"
        );
        std::fs::write(&json_path, json).expect("write JSON report");
        println!("wrote {json_path}");
    }

    if args.has("keep") {
        println!("kept scratch dir: {}", scratch.display());
    } else {
        std::fs::remove_dir_all(&scratch).ok();
    }
}
