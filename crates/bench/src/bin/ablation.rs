//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! 1. **Caching** (paper Section III-C, "the most important" idea): the
//!    Boolean row summations the update evaluates `2·I·R` times per
//!    factor, fetched from the precomputed table vs recomputed from
//!    scratch (the BCP_ALS / reference path). Single-threaded, public
//!    API only, so the ratio isolates caching.
//! 2. **Initialization**: data-driven fiber sampling (our default) vs the
//!    literal uniform-random reading of "initialize randomly" — the latter
//!    collapses to all-zero factors on realistic tensors.
//! 3. **Partition count `N`**: virtual-time sensitivity to the level of
//!    parallelism (Section III-D's motivation for vertical partitioning).

use std::time::Instant;

use dbtf::{factorize, DbtfConfig, InitStrategy};
use dbtf_bench::Args;
use dbtf_cluster::{Cluster, ClusterConfig};
use dbtf_datagen::{NoiseSpec, PlantedConfig, PlantedTensor};

fn main() {
    let args = Args::parse();
    let dim = args.get("dim", 64usize);
    let seed = args.get("seed", 0u64);
    let planted = PlantedTensor::generate(PlantedConfig {
        dims: [dim, dim, dim],
        rank: 12,
        factor_density: 0.25,
        noise: NoiseSpec::additive(0.10),
        seed,
    });
    let x = &planted.tensor;
    println!("Ablations on a planted {dim}³ tensor, |X| = {}\n", x.nnz());

    // --- 1. Cached vs naive Boolean row summations. -----------------------
    // The operation the update performs 2·I·R times per factor
    // (Section III-C): Boolean-sum the rows of M_sᵀ selected by a key.
    // Cached: one table lookup (after an amortized 2^R-entry build).
    // Naive: OR the selected rows from scratch every time (the
    // BCP_ALS/reference path).
    {
        use dbtf::cache::{GroupLayout, RowSumCache};
        use dbtf_tensor::ops::or_selected_rows;
        use dbtf_tensor::{BitMatrix, BitVec};
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let (rank, s, fetches) = (15usize, 256usize, 200_000usize);
        let ms = BitMatrix::random(s, rank, 0.25, &mut rng);
        let mst = ms.transpose();
        let layout = GroupLayout::new(rank, 15);
        let keys: Vec<u64> = (0..fetches)
            .map(|_| rng.gen_range(0..1u64 << rank))
            .collect();

        let t0 = Instant::now();
        let cache = RowSumCache::build(&ms, &layout);
        let build_secs = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let mut acc = 0usize;
        for &k in &keys {
            let (_, pop) = cache.fetch_single(k);
            acc += pop as usize;
        }
        let cached_secs = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let mut acc2 = 0usize;
        for &k in &keys {
            let mask = BitVec::from_words(rank, vec![k]);
            acc2 += or_selected_rows(&mst, &mask).count_ones();
        }
        let naive_secs = t0.elapsed().as_secs_f64();
        assert_eq!(acc, acc2);
        println!("1. caching (Section III-C): {fetches} Boolean row summations, R={rank}, S={s}:");
        println!("   naive recomputation: {naive_secs:.3}s");
        println!(
            "   cached fetch:        {cached_secs:.3}s (+{build_secs:.3}s one-off table build)"
        );
        println!(
            "   → {:.0}x per summation; the table amortizes across all 2·I·R \
             evaluations of every partition\n",
            naive_secs / cached_secs.max(1e-9)
        );
    }

    // --- 2. Init strategy. ------------------------------------------------
    println!("2. initialization strategy (relative error after T=10, L=4):");
    for (name, init) in [
        ("fiber-sample (default)", InitStrategy::FiberSample),
        ("uniform random (paper, literal)", InitStrategy::Random),
    ] {
        let cluster = Cluster::new(ClusterConfig::with_workers(4));
        let res = factorize(
            &cluster,
            x,
            &DbtfConfig {
                rank: 10,
                initial_sets: 4,
                init,
                seed,
                ..DbtfConfig::default()
            },
        )
        .unwrap();
        println!(
            "   {name:<33} rel_err = {:.3}  (factor ones: {})",
            res.relative_error,
            res.factors.total_ones()
        );
    }
    println!(
        "   (oracle / injected-noise floor: {:.3})\n",
        planted.oracle_error() as f64 / x.nnz() as f64
    );

    // --- 3. Partition count. ----------------------------------------------
    // A larger uniform tensor so compute is visible against the fixed
    // superstep latencies: too few partitions starve the cluster, too many
    // pay per-column collection overhead (the U-shape motivating
    // Section III-D's default).
    let big = dbtf_datagen::uniform_random([512, 512, 512], 0.02, seed);
    println!(
        "3. partition count N (virtual seconds, 16 workers, 512^3 |X|={}):",
        big.nnz()
    );
    for n in [1usize, 16, 128, 2048] {
        let cluster = Cluster::new(ClusterConfig::paper_cluster());
        let res = factorize(
            &cluster,
            &big,
            &DbtfConfig {
                rank: 10,
                partitions: Some(n),
                seed,
                ..DbtfConfig::default()
            },
        )
        .unwrap();
        let busy = &res.stats.comm.worker_busy_secs;
        let max_busy = busy.iter().copied().fold(0.0f64, f64::max);
        let sum_busy: f64 = busy.iter().sum();
        println!(
            "   N = {n:<5} virtual {:.3}s  busiest worker {:.3}s of {:.3}s total compute",
            res.stats.virtual_secs, max_busy, sum_busy
        );
    }
}
