//! Wall-clock scaling of the factor-update supersteps across real
//! per-worker compute threads and superstep pipeline depths.
//!
//! Runs the same factorization with `--threads 1,2,4` (default) compute
//! threads per worker at a fixed `--pipeline-depth D` (default 1 =
//! barrier execution) and reports **host wall-clock** seconds side by
//! side with the (identical) virtual seconds, asserting that the final
//! error is bit-identical across settings — real parallelism must never
//! change results. Numbers land in EXPERIMENTS.md; note that speedup is
//! bounded by the host's physical core count, not the thread setting.
//!
//! With `--json FILE` the datapoints are also written as a
//! machine-readable report (same hand-rolled JSON as the chaos sweep),
//! so the perf trajectory can be tracked across commits.
//!
//! ```text
//! cargo run --release -p dbtf-bench --bin scaling_threads -- \
//!     --dim 96 --density 0.05 --rank 10 --workers 4 --threads 1,2,4 \
//!     --pipeline-depth 4 [--json target/scaling_threads.json]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use dbtf::DbtfConfig;
use dbtf_bench::{print_header, print_row, run_dbtf_threads_depth, Args};
use dbtf_datagen::uniform_random;

fn main() {
    let args = Args::parse();
    let dim = args.get("dim", 96usize);
    let density = args.get("density", 0.05f64);
    let rank = args.get("rank", 10usize);
    let workers = args.get("workers", 4usize);
    let seed = args.get("seed", 0u64);
    let depth = args.get("pipeline-depth", 1usize);
    let threads_raw: String = args.get("threads", "1,2,4".to_string());
    let threads: Vec<usize> = threads_raw
        .split(',')
        .map(|t| t.trim().parse().expect("--threads takes integers"))
        .collect();

    let x = uniform_random([dim, dim, dim], density, seed);
    let config = DbtfConfig {
        rank,
        seed,
        ..DbtfConfig::default()
    };

    print_header(
        &format!(
            "Compute-thread scaling — {dim}^3, density {density}, rank {rank}, {workers} workers, \
             pipeline depth {depth} (host cores: {})",
            std::thread::available_parallelism().map_or(0, |n| n.get())
        ),
        "threads/worker",
        &["wall s", "virtual s", "error", "speedup"],
    );

    let mut base_wall = None;
    let mut base_result = None;
    let mut points: Vec<(usize, f64, f64, u64)> = Vec::new();
    for &t in &threads {
        let start = Instant::now();
        let outcome = run_dbtf_threads_depth(&x, &config, workers, Some(t), Some(depth));
        let wall = start.elapsed().as_secs_f64();
        let (vsecs, error) = (
            outcome.secs().expect("run completed"),
            outcome.error().expect("run completed"),
        );
        match base_result {
            None => base_result = Some((vsecs, error)),
            Some(base) => assert_eq!(
                base,
                (vsecs, error),
                "thread count changed results — determinism broken"
            ),
        }
        let base = *base_wall.get_or_insert(wall);
        points.push((t, wall, vsecs, error));
        print_row(
            &format!("{t}"),
            &[
                format!("{wall:10.3}"),
                format!("{vsecs:10.3}"),
                format!("{error:10}"),
                format!("{:9.2}x", base / wall),
            ],
        );
    }
    println!("\nresults identical across all thread counts ✓");

    if let Some(path) = {
        let p = args.get("json", String::new());
        (!p.is_empty()).then_some(p)
    } {
        let mut json = format!(
            "{{\n  \"experiment\": \"scaling_threads\",\n  \"dim\": {dim}, \
             \"density\": {density}, \"rank\": {rank}, \"workers\": {workers}, \
             \"pipeline_depth\": {depth},\n  \"cells\": [\n"
        );
        for (i, (t, wall, vsecs, error)) in points.iter().enumerate() {
            let _ = writeln!(
                json,
                "    {{\"threads\": {t}, \"wall_secs\": {wall}, \
                 \"virtual_secs\": {vsecs}, \"error\": {error}, \
                 \"bit_identical\": true}}{}",
                if i + 1 < points.len() { "," } else { "" },
            );
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write JSON report");
        println!("wrote {path}");
    }
}
