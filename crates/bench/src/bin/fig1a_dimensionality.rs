//! Figure 1(a): running time vs. tensor dimensionality.
//!
//! Paper setup: `I = J = K` from 2⁶ to 2¹³, density 0.01, rank 10;
//! 6-hour out-of-time cap. DBTF runs on 16 machines; the baselines on one.
//!
//! Default here: 2⁵..2⁹ with a 60 s cap (`--min-exp`, `--max-exp`,
//! `--oot-secs` to change; `--paper-scale` runs the paper grid). Expected
//! shape: Walk'n'Merge and then BCP_ALS hit the cap at small scales while
//! DBTF keeps going with near-linear growth in the number of non-zeros.

use dbtf::DbtfConfig;
use dbtf_bench::{print_header, print_row, run_bcp_als, run_dbtf, run_walk_n_merge, Args, Outcome};
use dbtf_datagen::uniform_random;

fn main() {
    let args = Args::parse();
    let (min_exp, max_exp) = if args.has("paper-scale") {
        (6u32, 13u32)
    } else {
        (args.get("min-exp", 5u32), args.get("max-exp", 10u32))
    };
    let density = args.get("density", 0.01f64);
    let rank = args.get("rank", 10usize);
    let oot_secs = args.get("oot-secs", 60.0f64);
    let workers = args.get("workers", 16usize);
    let seed = args.get("seed", 0u64);

    println!("Figure 1(a) — scalability w.r.t. dimensionality");
    println!(
        "I=J=K in 2^{min_exp}..2^{max_exp}, density {density}, rank {rank}, \
         O.O.T. cap {oot_secs}s"
    );
    println!("(DBTF: virtual seconds on {workers} simulated workers; baselines: wall seconds)");
    print_header(
        "running time (secs)",
        "I=J=K",
        &["DBTF", "BCP_ALS", "WalkNMerge"],
    );

    // Once a method times out it will only get slower; skip larger sizes
    // (mirrors the paper's O.O.T. entries).
    let mut bcp_dead = false;
    let mut wnm_dead = false;
    for exp in min_exp..=max_exp {
        let dim = 1usize << exp;
        let x = uniform_random([dim, dim, dim], density, seed + exp as u64);
        let config = DbtfConfig {
            rank,
            seed,
            ..DbtfConfig::default()
        };
        let dbtf = run_dbtf(&x, &config, workers);
        let bcp = if bcp_dead {
            Outcome::OutOfTime
        } else {
            let o = run_bcp_als(&x, rank, oot_secs, None);
            bcp_dead = o.secs().is_none();
            o
        };
        let wnm = if wnm_dead {
            Outcome::OutOfTime
        } else {
            let o = run_walk_n_merge(&x, rank, 0.0, oot_secs);
            wnm_dead = o.secs().is_none();
            o
        };
        print_row(
            &format!("2^{exp} ({dim}), |X|={}", x.nnz()),
            &[dbtf.cell(), bcp.cell(), wnm.cell()],
        );
    }
}
