//! Table III: summary of real-world and synthetic tensors.
//!
//! Prints the paper's dataset table (original sizes) alongside the
//! measured shapes of the generated proxies at `--scale`.

use dbtf_bench::Args;
use dbtf_datagen::proxies::{generate_proxy, proxy_specs};
use dbtf_datagen::uniform_random;

fn human(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.1}B", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

fn main() {
    let args = Args::parse();
    let scale = args.get("scale", 0.01f64);
    let seed = args.get("seed", 0u64);

    println!("Table III — summary of real-world and synthetic tensors");
    println!("(original numbers from the paper; proxies generated at scale {scale})\n");
    println!(
        "{:<14} {:>24} {:>10} | {:>20} {:>10} {:>10}",
        "Name", "original I×J×K", "nnz", "proxy I×J×K", "nnz", "density"
    );
    println!("{}", "-".repeat(98));
    for spec in proxy_specs() {
        let t = generate_proxy(&spec, scale, seed);
        let d = t.dims();
        println!(
            "{:<14} {:>24} {:>10} | {:>20} {:>10} {:>10.2e}",
            spec.name,
            format!(
                "{}×{}×{}",
                human(spec.dims[0] as u64),
                human(spec.dims[1] as u64),
                human(spec.dims[2] as u64)
            ),
            human(spec.nnz),
            format!("{}×{}×{}", d[0], d[1], d[2]),
            human(t.nnz() as u64),
            t.density(),
        );
    }

    // The two synthetic families (scaled instances).
    let scal = uniform_random([256, 256, 256], 0.01, seed);
    println!(
        "{:<14} {:>24} {:>10} | {:>20} {:>10} {:>10.2e}",
        "Synth-scal.",
        "2¹³ per mode",
        "5.5B",
        "256×256×256",
        human(scal.nnz() as u64),
        scal.density(),
    );
    let planted = dbtf_datagen::PlantedTensor::generate(dbtf_datagen::PlantedConfig::default());
    let d = planted.tensor.dims();
    println!(
        "{:<14} {:>24} {:>10} | {:>20} {:>10} {:>10.2e}",
        "Synth-error",
        "2⁷ per mode",
        "240K",
        format!("{}×{}×{}", d[0], d[1], d[2]),
        human(planted.tensor.nnz() as u64),
        planted.tensor.density(),
    );
}
