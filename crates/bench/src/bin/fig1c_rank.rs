//! Figure 1(c): running time vs. rank.
//!
//! Paper setup: rank 10 → 60 at `I = J = K = 2⁸`, density 0.05, cache
//! group limit `V = 15`. Expected shape: all three methods reach rank 60;
//! DBTF fastest; Walk'n'Merge flat in rank (it mines however many blocks
//! the data holds — the rank only selects the top blocks afterwards).
//!
//! Default here: `I = 2⁶` with a 60 s cap (`--paper-scale` for 2⁸).

use dbtf::DbtfConfig;
use dbtf_bench::{print_header, print_row, run_bcp_als, run_dbtf, run_walk_n_merge, Args, Outcome};
use dbtf_datagen::uniform_random;

fn main() {
    let args = Args::parse();
    let exp = if args.has("paper-scale") {
        8u32
    } else {
        args.get("exp", 6u32)
    };
    let density = args.get("density", 0.05f64);
    let oot_secs = args.get("oot-secs", 60.0f64);
    let workers = args.get("workers", 16usize);
    let v_limit = args.get("v", 15usize);
    let seed = args.get("seed", 0u64);
    let dim = 1usize << exp;
    let ranks = [10usize, 20, 30, 40, 50, 60];

    let x = uniform_random([dim, dim, dim], density, seed);
    println!("Figure 1(c) — scalability w.r.t. rank");
    println!(
        "I=J=K=2^{exp} ({dim}), density {density}, V={v_limit}, |X|={}, O.O.T. cap {oot_secs}s",
        x.nnz()
    );
    println!("(DBTF: virtual seconds on {workers} simulated workers; baselines: wall seconds)");
    print_header(
        "running time (secs)",
        "rank",
        &["DBTF", "BCP_ALS", "WalkNMerge"],
    );

    // Walk'n'Merge's mining is rank-independent: run it once, reuse the
    // wall time for every rank row (exactly why the paper's WnM curve is
    // flat).
    let wnm_once = run_walk_n_merge(&x, ranks[0], 0.0, oot_secs);
    for &rank in &ranks {
        let config = DbtfConfig {
            rank,
            cache_group_limit: v_limit,
            seed,
            ..DbtfConfig::default()
        };
        let dbtf = run_dbtf(&x, &config, workers);
        let bcp = run_bcp_als(&x, rank, oot_secs, None);
        let wnm = match &wnm_once {
            Outcome::Done { secs, .. } => Outcome::Done {
                secs: *secs,
                error: 0,
            },
            other => other.clone(),
        };
        print_row(&format!("{rank}"), &[dbtf.cell(), bcp.cell(), wnm.cell()]);
    }
}
