//! Serving-path traffic replay: drives a real in-process `dbtf serve`
//! endpoint (TCP loopback, line-delimited JSON) with seeded query mixes
//! and reports per-request-line latency percentiles and throughput over
//! a query-mix × batch-size grid.
//!
//! Two load shapes per cell:
//!
//! - **closed loop** — one outstanding line per connection; the next
//!   request is sent the moment the reply lands. Measures the server's
//!   native service latency and peak per-connection throughput.
//! - **open loop** — lines are sent on a fixed arrival schedule
//!   (`--rate` lines/sec) regardless of replies; latency is measured
//!   from the *scheduled* send time, so queueing delay shows up the way
//!   it would for real independent clients.
//!
//! Run with
//! `cargo run --release -p dbtf-bench --bin traffic_replay -- [--queries N]
//!  [--rate R] [--dims I,J,K] [--rank R] [--density D] [--seed S]
//!  [--out BENCH_serve.json]`.

use std::io::Write as _;
use std::time::{Duration, Instant};

use dbtf::{random_factor_sets, DbtfConfig};
use dbtf_bench::Args;
use dbtf_serve::{
    FactorStore, QueryMix, Request, SeededQueries, ServeClient, ServeHarness, ServeLimits,
    ServerConfig,
};

const BATCHES: [usize; 3] = [1, 16, 64];

fn encode(request: &Request, id: u64) -> String {
    match request {
        Request::Point { i, j, k } => {
            format!("{{\"id\":{id},\"q\":\"point\",\"i\":{i},\"j\":{j},\"k\":{k}}}")
        }
        Request::Slice { free_mode, lo, hi } => {
            let (lo_name, hi_name) = match free_mode {
                0 => ("j", "k"),
                1 => ("i", "k"),
                _ => ("i", "j"),
            };
            format!(
                "{{\"id\":{id},\"q\":\"slice\",\"mode\":{},\"{lo_name}\":{lo},\"{hi_name}\":{hi}}}",
                free_mode + 1
            )
        }
        Request::Topk { mode, entity, k } => format!(
            "{{\"id\":{id},\"q\":\"topk\",\"mode\":{},\"entity\":{entity},\"k\":{k}}}",
            mode + 1
        ),
        other => unreachable!("sweeps generate only data queries: {other:?}"),
    }
}

/// Pre-encoded request lines for one cell: `queries` requests grouped
/// into lines of `batch` (a lone request stays a bare object).
fn encode_lines(
    seed: u64,
    dims: [usize; 3],
    mix: &QueryMix,
    queries: usize,
    batch: usize,
) -> Vec<String> {
    let requests: Vec<Request> = SeededQueries::new(seed, dims, *mix).take(queries).collect();
    requests
        .chunks(batch)
        .enumerate()
        .map(|(n, chunk)| {
            if batch == 1 {
                encode(&chunk[0], n as u64)
            } else {
                let parts: Vec<String> = chunk
                    .iter()
                    .enumerate()
                    .map(|(j, r)| encode(r, j as u64))
                    .collect();
                format!("[{}]", parts.join(","))
            }
        })
        .collect()
}

struct CellResult {
    mix: &'static str,
    batch: usize,
    shape: &'static str,
    lines: usize,
    queries: usize,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    qps: f64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn summarize(
    mix: &'static str,
    batch: usize,
    shape: &'static str,
    queries: usize,
    mut latencies: Vec<u64>,
    elapsed: Duration,
) -> CellResult {
    latencies.sort_unstable();
    CellResult {
        mix,
        batch,
        shape,
        lines: latencies.len(),
        queries,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
        qps: queries as f64 / elapsed.as_secs_f64(),
    }
}

/// Closed loop: send, wait for the reply, send the next line.
fn run_closed(client: &mut ServeClient, lines: &[String]) -> (Vec<u64>, Duration) {
    let mut latencies = Vec::with_capacity(lines.len());
    let start = Instant::now();
    for line in lines {
        let sent = Instant::now();
        client.raw_line(line).expect("closed-loop reply");
        latencies.push(sent.elapsed().as_micros() as u64);
    }
    (latencies, start.elapsed())
}

/// Open loop: lines leave on schedule; latency includes queueing from
/// the scheduled departure, not the actual (possibly late) send.
fn run_open(client: &mut ServeClient, lines: &[String], line_rate: f64) -> (Vec<u64>, Duration) {
    let gap = Duration::from_secs_f64(1.0 / line_rate);
    let mut latencies = Vec::with_capacity(lines.len());
    let start = Instant::now();
    for (n, line) in lines.iter().enumerate() {
        let scheduled = start + gap * n as u32;
        if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        client.raw_line(line).expect("open-loop reply");
        latencies.push(scheduled.elapsed().as_micros() as u64);
    }
    (latencies, start.elapsed())
}

fn json(results: &[CellResult], args: &GridArgs) -> String {
    let mut out = String::from("{\n  \"bench\": \"traffic_replay\",\n");
    out.push_str(&format!(
        "  \"dims\": [{}, {}, {}],\n  \"rank\": {},\n  \"density\": {},\n  \"seed\": {},\n",
        args.dims[0], args.dims[1], args.dims[2], args.rank, args.density, args.seed
    ));
    out.push_str(&format!(
        "  \"queries_per_cell\": {},\n  \"open_loop_rate\": {},\n  \"cells\": [\n",
        args.queries, args.rate
    ));
    for (n, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"mix\": \"{}\", \"batch\": {}, \"loop\": \"{}\", \"lines\": {}, \
             \"queries\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"qps\": {:.0} }}{}\n",
            r.mix,
            r.batch,
            r.shape,
            r.lines,
            r.queries,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.qps,
            if n + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

struct GridArgs {
    dims: [usize; 3],
    rank: usize,
    density: f64,
    seed: u64,
    queries: usize,
    rate: f64,
}

fn main() {
    let args = Args::parse();
    let dims_raw: String = args.get("dims", "96,80,64".to_string());
    let dims: Vec<usize> = dims_raw
        .split(',')
        .map(|p| p.trim().parse().expect("--dims i,j,k"))
        .collect();
    assert_eq!(dims.len(), 3, "--dims wants three values");
    let grid = GridArgs {
        dims: [dims[0], dims[1], dims[2]],
        rank: args.get("rank", 12),
        density: args.get("density", 0.3),
        seed: args.get("seed", 1),
        queries: args.get("queries", 20_000),
        rate: args.get("rate", 5_000.0),
    };
    let out_path: String = args.get("out", "BENCH_serve.json".to_string());

    let cfg = DbtfConfig {
        seed: grid.seed,
        ..DbtfConfig::with_rank(grid.rank)
    };
    let factors = random_factor_sets(grid.dims, grid.density, &cfg).remove(0);
    let harness = ServeHarness::start_with(
        FactorStore::from_factor_set(1, &factors),
        ServerConfig {
            cache_fibers: 4096,
            limits: ServeLimits::default(),
            ..ServerConfig::default()
        },
    );
    let addr = harness.addr();
    println!(
        "replaying {} queries/cell against {} ({} × {} × {}, rank {})",
        grid.queries, addr, grid.dims[0], grid.dims[1], grid.dims[2], grid.rank
    );
    println!(
        "{:<8} {:>6} {:>8} {:>10} {:>10} {:>10} {:>12}",
        "mix", "batch", "loop", "p50 µs", "p95 µs", "p99 µs", "queries/s"
    );

    let mixes: [(&'static str, QueryMix); 2] = [
        ("points", QueryMix::points_only()),
        ("mixed", QueryMix::default_mix()),
    ];
    let mut results = Vec::new();
    for (mix_name, mix) in &mixes {
        for batch in BATCHES {
            let lines = encode_lines(grid.seed, grid.dims, mix, grid.queries, batch);
            for shape in ["closed", "open"] {
                let mut client = ServeClient::connect(addr).expect("connect");
                // One warm-up pass primes the fiber cache so every cell
                // measures the steady state, not cold compulsory misses.
                let (_, _) = run_closed(&mut client, &lines[..lines.len().min(256)]);
                let (latencies, elapsed) = match shape {
                    "closed" => run_closed(&mut client, &lines),
                    _ => run_open(&mut client, &lines, grid.rate / batch as f64),
                };
                let cell = summarize(mix_name, batch, shape, grid.queries, latencies, elapsed);
                println!(
                    "{:<8} {:>6} {:>8} {:>10} {:>10} {:>10} {:>12.0}",
                    cell.mix,
                    cell.batch,
                    cell.shape,
                    cell.p50_us,
                    cell.p95_us,
                    cell.p99_us,
                    cell.qps
                );
                results.push(cell);
            }
        }
    }

    let served: u64 = harness
        .metrics()
        .named_counters()
        .iter()
        .filter(|(name, _)| name.ends_with(".queries"))
        .map(|(_, v)| *v as u64)
        .sum();
    let payload = json(&results, &grid);
    let mut file = std::fs::File::create(&out_path).expect("create bench json");
    file.write_all(payload.as_bytes())
        .expect("write bench json");
    let drained = harness.shutdown();
    println!("server counted {served} queries; drained: {drained}");
    println!("wrote {out_path}");
}
