//! Section IV-D: reconstruction error experiments.
//!
//! Paper setup: planted tensors from three random factor matrices plus
//! noise (Table III's *Synthetic-error*, 240 K non-zeros), sweeping one
//! axis at a time: factor-matrix density, rank, additive noise level, and
//! destructive noise level. Reconstruction error is `|X ⊕ X̃|`; we also
//! print it relative to `|X|` and the *oracle* error (what the planted
//! factors themselves score — the injected-noise floor).
//!
//! Run one axis with `--axis density|rank|additive|destructive|all`.
//! Default tensor: 48³ (`--dim` to change), rank 10, factor density 0.2,
//! 10% additive noise where not swept.

use dbtf::DbtfConfig;
use dbtf_bench::{print_header, print_row, run_bcp_als, run_dbtf, run_walk_n_merge, Args};
use dbtf_datagen::{NoiseSpec, PlantedConfig, PlantedTensor};

struct Point {
    label: String,
    planted: PlantedTensor,
    rank: usize,
    destructive: f64,
}

fn run_axis(axis: &str, dim: usize, oot_secs: f64, workers: usize, sets: usize, seed: u64) {
    let base = PlantedConfig {
        dims: [dim, dim, dim],
        rank: 10,
        factor_density: 0.2,
        noise: NoiseSpec::additive(0.10),
        seed,
    };
    let points: Vec<Point> = match axis {
        "density" => [0.1f64, 0.15, 0.2, 0.25, 0.3]
            .iter()
            .map(|&d| Point {
                label: format!("factor density {d}"),
                planted: PlantedTensor::generate(PlantedConfig {
                    factor_density: d,
                    ..base
                }),
                rank: base.rank,
                destructive: 0.0,
            })
            .collect(),
        "rank" => [5usize, 10, 15, 20]
            .iter()
            .map(|&r| Point {
                label: format!("rank {r}"),
                planted: PlantedTensor::generate(PlantedConfig { rank: r, ..base }),
                rank: r,
                destructive: 0.0,
            })
            .collect(),
        "additive" => [0.0f64, 0.05, 0.10, 0.20, 0.30]
            .iter()
            .map(|&n| Point {
                label: format!("additive noise {:.0}%", n * 100.0),
                planted: PlantedTensor::generate(PlantedConfig {
                    noise: NoiseSpec::additive(n),
                    ..base
                }),
                rank: base.rank,
                destructive: 0.0,
            })
            .collect(),
        "destructive" => [0.0f64, 0.05, 0.10, 0.20]
            .iter()
            .map(|&n| Point {
                label: format!("destructive noise {:.0}%", n * 100.0),
                planted: PlantedTensor::generate(PlantedConfig {
                    noise: NoiseSpec {
                        additive: 0.10,
                        destructive: n,
                    },
                    ..base
                }),
                rank: base.rank,
                destructive: n,
            })
            .collect(),
        other => panic!("unknown axis {other:?}; use density|rank|additive|destructive|all"),
    };

    print_header(
        &format!("reconstruction error vs {axis} (|X ⊕ X̃| / |X|)"),
        "point",
        &["DBTF", "BCP_ALS", "WalkNMerge", "oracle"],
    );
    for p in points {
        let x = &p.planted.tensor;
        let nnz = x.nnz().max(1) as f64;
        let config = DbtfConfig {
            rank: p.rank,
            initial_sets: sets,
            seed,
            ..DbtfConfig::default()
        };
        let rel = |e: Option<u64>| match e {
            Some(e) => format!("{:10.3}", e as f64 / nnz),
            None => format!("{:>10}", "—"),
        };
        let dbtf = run_dbtf(x, &config, workers);
        let bcp = run_bcp_als(x, p.rank, oot_secs, None);
        let wnm = run_walk_n_merge(x, p.rank, p.destructive, oot_secs);
        let oracle = p.planted.oracle_error() as f64 / nnz;
        print_row(
            &format!("{} |X|={}", p.label, x.nnz()),
            &[
                rel(dbtf.error()),
                rel(bcp.error()),
                rel(wnm.error()),
                format!("{oracle:10.3}"),
            ],
        );
    }
}

fn main() {
    let args = Args::parse();
    let axis: String = args.get("axis", "all".to_string());
    let dim = args.get("dim", 48usize);
    let oot_secs = args.get("oot-secs", 120.0f64);
    let workers = args.get("workers", 16usize);
    let sets = args.get("initial-sets", 16usize);
    let seed = args.get("seed", 0u64);

    println!("Section IV-D — reconstruction error (planted {dim}³ tensors, L={sets})");
    println!("(relative error; `oracle` = injected-noise floor; — = did not finish)");
    if axis == "all" {
        for a in ["density", "rank", "additive", "destructive"] {
            run_axis(a, dim, oot_secs, workers, sets, seed);
        }
    } else {
        run_axis(&axis, dim, oot_secs, workers, sets, seed);
    }
}
