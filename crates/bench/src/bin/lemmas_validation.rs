//! Lemmas 4–7: empirical validation of the paper's complexity analysis.
//!
//! The engine meters exactly the quantities the lemmas bound:
//!
//! - **Lemma 6** — the partitioning shuffle is `O(|X|)`: doubling the
//!   non-zeros should roughly double `bytes_shuffled` and leave it
//!   unaffected by `T`, `R`, `M`.
//! - **Lemma 7** — post-partitioning traffic is `O(T·I·R·(M + N))`: it
//!   should scale linearly in the iteration count and the rank.
//! - **Lemma 5** — worker memory is the partitioned tensors (`O(|X|)`)
//!   plus the cache tables (`O(N·I·(R/V)·2^(R/⌈R/V⌉))`).
//! - **Lemma 4** — charged ops per iteration dominated by the cached
//!   row-summation construction and the `2·I·R` error evaluations.
//!
//! The harness prints measured counters next to the lemma-predicted
//! scaling factor; the integration tests assert the same shapes.

use dbtf::{factorize, DbtfConfig, DbtfResult};
use dbtf_bench::Args;
use dbtf_cluster::{Cluster, ClusterConfig};
use dbtf_datagen::uniform_random;
use dbtf_tensor::BoolTensor;

fn run(x: &BoolTensor, rank: usize, iters: usize, workers: usize, n: usize) -> DbtfResult {
    let cluster = Cluster::new(ClusterConfig {
        workers,
        ..ClusterConfig::paper_cluster()
    });
    let config = DbtfConfig {
        rank,
        max_iters: iters,
        convergence_threshold: -1.0, // never stop early: run all T iterations
        partitions: Some(n),
        seed: 0,
        ..DbtfConfig::default()
    };
    factorize(&cluster, x, &config).expect("factorization succeeds")
}

fn main() {
    let args = Args::parse();
    let dim = args.get("dim", 128usize);
    let workers = args.get("workers", 8usize);
    let n = args.get("partitions", 64usize);

    println!("Lemma validation (I=J=K={dim}, M={workers}, N={n})\n");

    // --- Lemma 6: shuffle ∝ |X|, independent of T and R. -----------------
    let x1 = uniform_random([dim, dim, dim], 0.01, 1);
    let x2 = uniform_random([dim, dim, dim], 0.02, 1);
    let a = run(&x1, 8, 2, workers, n);
    let b = run(&x2, 8, 2, workers, n);
    let c = run(&x1, 8, 4, workers, n);
    let d = run(&x1, 16, 2, workers, n);
    println!("Lemma 6 — bytes_shuffled is O(|X|), one-off:");
    println!(
        "  2x nnz      → shuffle ratio {:.2} (expected ≈ 2, |X| {} → {})",
        b.stats.comm.bytes_shuffled as f64 / a.stats.comm.bytes_shuffled as f64,
        x1.nnz(),
        x2.nnz()
    );
    println!(
        "  2x iters    → shuffle ratio {:.2} (expected ≈ 1)",
        c.stats.comm.bytes_shuffled as f64 / a.stats.comm.bytes_shuffled as f64
    );
    println!(
        "  2x rank     → shuffle ratio {:.2} (expected ≈ 1)",
        d.stats.comm.bytes_shuffled as f64 / a.stats.comm.bytes_shuffled as f64
    );

    // --- Lemma 7: iteration traffic ∝ T and ∝ R. -------------------------
    let traffic = |r: &DbtfResult| r.stats.comm.bytes_broadcast + r.stats.comm.bytes_collected;
    println!("\nLemma 7 — broadcast+collect is O(T·I·R·(M+N)):");
    println!(
        "  2x iters    → traffic ratio {:.2} (expected ≈ 2; iterations {} → {})",
        traffic(&c) as f64 / traffic(&a) as f64,
        a.iterations,
        c.iterations
    );
    println!(
        "  2x rank     → traffic ratio {:.2} (expected ≈ 2)",
        traffic(&d) as f64 / traffic(&a) as f64
    );

    // --- Lemma 5: memory = partitions O(|X|) + cache tables. -------------
    println!("\nLemma 5 — worker memory:");
    println!(
        "  partitioned unfoldings: {} B for |X| = {} ({:.1} B per non-zero, 3 modes)",
        a.stats.partition_bytes,
        x1.nnz(),
        a.stats.partition_bytes as f64 / x1.nnz() as f64
    );
    println!(
        "  peak cache tables: {} B at R=8 vs {} B at R=16 (Lemma 2: 2^R growth until V splits)",
        a.stats.peak_cache_bytes, d.stats.peak_cache_bytes
    );

    // --- Lemma 4: charged ops. -------------------------------------------
    println!("\nLemma 4 — charged Boolean word ops:");
    println!(
        "  total ops: {} (R=8, T=2) vs {} (R=8, T=4): ratio {:.2} (≈ (L+T) scaling)",
        a.stats.comm.total_ops,
        c.stats.comm.total_ops,
        c.stats.comm.total_ops as f64 / a.stats.comm.total_ops as f64
    );
    println!(
        "  virtual time: {:.3}s vs {:.3}s",
        a.stats.virtual_secs, c.stats.virtual_secs
    );
}
