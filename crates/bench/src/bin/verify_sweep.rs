//! Randomized differential verification sweep (see `crates/oracle`).
//!
//! Each point draws a `(tensor family, rank, config, backend shape,
//! thread count, fault plan)` tuple from one seed and runs the full DBTF
//! pipeline under the sequential reference, the cluster backend, the
//! local backend and (on sampled points) a fault-injected replica,
//! checking every oracle: bit-identity, plan-trace fingerprints,
//! cell-by-cell error, Lemma 6/7 communication formulas, recovery
//! counters, checkpoint/resume, mode-permutation metamorphic relations,
//! and the Tucker driver.
//!
//! Exits non-zero on any violation, so it doubles as a CI gate.
//!
//! ```text
//! cargo run --release -p dbtf-bench --bin verify-sweep --
//!     [--points 25] [--seed0 0] [--json report.json] [--quiet]
//! ```

use std::io::Write as _;

use dbtf_bench::Args;
use dbtf_oracle::{run_point, SamplePoint, SweepReport};

fn main() {
    let args = Args::parse();
    let points = args.get("points", 25u64);
    let seed0 = args.get("seed0", 0u64);
    let quiet = args.has("quiet");

    println!(
        "Differential verification sweep — {points} points, seeds {seed0}..{}",
        seed0 + points
    );
    let mut report = SweepReport::default();
    for seed in seed0..seed0 + points {
        let point = SamplePoint::from_seed(seed);
        let outcome = run_point(&point);
        if !quiet || !outcome.passed() {
            println!(
                "  seed {seed:>6}  {}  {}",
                if outcome.passed() { "ok  " } else { "FAIL" },
                point.describe()
            );
        }
        for violation in &outcome.violations {
            println!("          !! {violation}");
        }
        report.push(outcome);
    }
    println!("{}", report.summary());

    if let Some(path) = args
        .has("json")
        .then(|| args.get("json", String::new()))
        .filter(|p| !p.is_empty())
    {
        let mut f = std::fs::File::create(&path).expect("create JSON report");
        f.write_all(report.to_json().as_bytes())
            .expect("write JSON report");
        println!("JSON report written to {path}");
    }

    if !report.all_passed() {
        std::process::exit(1);
    }
}
