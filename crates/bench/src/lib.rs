//! Shared harness for regenerating every table and figure of the DBTF
//! paper's evaluation (Section IV).
//!
//! Each experiment is a binary under `src/bin/` (run with
//! `cargo run --release -p dbtf-bench --bin <name>`); this library holds
//! the common pieces: method runners with out-of-time/out-of-memory caps,
//! scaled memory budgets, ASCII table formatting and a tiny flag parser.
//!
//! **Time semantics**: DBTF rows report *virtual cluster seconds* — the
//! simulated running time of the paper's 16-worker cluster under the
//! engine's cost model. Baseline rows report host wall-clock seconds on
//! this single machine, matching the paper's single-machine baseline runs.
//! Absolute values are therefore not comparable to the paper's; the shapes
//! (who completes, who blows up, slopes and crossovers) are what
//! EXPERIMENTS.md tracks.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::Instant;

use dbtf::{factorize, DbtfConfig};
use dbtf_baselines::{bcp_als, walk_n_merge, BaselineError, BcpAlsConfig, Deadline, WnmConfig};
use dbtf_cluster::{Cluster, ClusterConfig};
use dbtf_datagen::proxies::DatasetSpec;
use dbtf_tensor::BoolTensor;

/// Outcome of running one method on one workload.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Finished; carries `(reported_seconds, reconstruction_error)`.
    Done {
        /// Virtual seconds for DBTF, wall seconds for the baselines.
        secs: f64,
        /// `|X ⊕ X̃|`.
        error: u64,
    },
    /// Exceeded the time cap (the paper's O.O.T.).
    OutOfTime,
    /// Exceeded the modeled memory budget (the paper's O.O.M.).
    OutOfMemory,
}

impl Outcome {
    /// Formats like the paper's figures: a time, `O.O.T.` or `O.O.M.`.
    pub fn cell(&self) -> String {
        match self {
            Outcome::Done { secs, .. } => format!("{secs:10.3}"),
            Outcome::OutOfTime => format!("{:>10}", "O.O.T."),
            Outcome::OutOfMemory => format!("{:>10}", "O.O.M."),
        }
    }

    /// The reported seconds, if the run completed.
    pub fn secs(&self) -> Option<f64> {
        match self {
            Outcome::Done { secs, .. } => Some(*secs),
            _ => None,
        }
    }

    /// The reconstruction error, if the run completed.
    pub fn error(&self) -> Option<u64> {
        match self {
            Outcome::Done { error, .. } => Some(*error),
            _ => None,
        }
    }
}

/// Runs DBTF on a fresh paper-shaped cluster (16 workers × 8 cores by
/// default) and reports **virtual** seconds.
pub fn run_dbtf(x: &BoolTensor, config: &DbtfConfig, workers: usize) -> Outcome {
    run_dbtf_threads(x, config, workers, None)
}

/// Like [`run_dbtf`] but pinning the number of *real* compute threads per
/// worker (`None` = one per simulated core). Results and virtual-time
/// metrics are identical for every setting; only host wall-clock changes.
pub fn run_dbtf_threads(
    x: &BoolTensor,
    config: &DbtfConfig,
    workers: usize,
    compute_threads: Option<usize>,
) -> Outcome {
    run_dbtf_threads_depth(x, config, workers, compute_threads, None)
}

/// Like [`run_dbtf_threads`] but also pinning the superstep pipeline depth
/// (`None` = barrier execution, depth 1). Results and virtual-time metrics
/// are bit-identical for every `(threads, depth)` pair; only host
/// wall-clock changes.
pub fn run_dbtf_threads_depth(
    x: &BoolTensor,
    config: &DbtfConfig,
    workers: usize,
    compute_threads: Option<usize>,
    pipeline_depth: Option<usize>,
) -> Outcome {
    let cluster = Cluster::new(ClusterConfig {
        workers,
        compute_threads,
        pipeline_depth,
        ..ClusterConfig::paper_cluster()
    });
    match factorize(&cluster, x, config) {
        Ok(result) => Outcome::Done {
            secs: result.stats.virtual_secs,
            error: result.error,
        },
        Err(e) => panic!("DBTF failed: {e}"),
    }
}

/// Runs BCP_ALS with the paper's O.O.T./O.O.M. caps; reports wall seconds.
pub fn run_bcp_als(
    x: &BoolTensor,
    rank: usize,
    oot_secs: f64,
    memory_budget: Option<u64>,
) -> Outcome {
    let config = BcpAlsConfig {
        rank,
        memory_budget_bytes: memory_budget,
        ..BcpAlsConfig::default()
    };
    let deadline = Deadline::in_secs(oot_secs);
    let start = Instant::now();
    match bcp_als(x, &config, Some(&deadline)) {
        Ok(result) => Outcome::Done {
            secs: start.elapsed().as_secs_f64(),
            error: result.error,
        },
        Err(BaselineError::OutOfTime) => Outcome::OutOfTime,
        Err(BaselineError::OutOfMemory { .. }) => Outcome::OutOfMemory,
        Err(e) => panic!("BCP_ALS failed: {e}"),
    }
}

/// Runs Walk'n'Merge with the paper's parameter choices
/// (`t = 1 − n_d`, 4×4×4 minimum blocks, length-5 walks); reports wall
/// seconds and the error of its top-`rank` blocks.
pub fn run_walk_n_merge(
    x: &BoolTensor,
    rank: usize,
    destructive_noise: f64,
    oot_secs: f64,
) -> Outcome {
    let config = WnmConfig {
        merge_threshold: (1.0 - destructive_noise).clamp(0.0, 1.0),
        ..WnmConfig::default()
    };
    let deadline = Deadline::in_secs(oot_secs);
    let start = Instant::now();
    match walk_n_merge(x, &config, Some(&deadline)) {
        Ok(result) => Outcome::Done {
            secs: start.elapsed().as_secs_f64(),
            error: result.error(x, rank),
        },
        Err(BaselineError::OutOfTime) => Outcome::OutOfTime,
        Err(e) => panic!("Walk'n'Merge failed: {e}"),
    }
}

/// The paper's single-machine memory budget (32 GB), rescaled so a scaled
/// proxy trips it exactly when the original dataset would: the budget
/// shrinks by the same factor as BCP_ALS's modeled peak requirement
/// (dominated by ASSO's `O(cols²)` association structures).
pub fn scaled_memory_budget(spec: &DatasetSpec, scale: f64, rank: usize) -> u64 {
    const PAPER_BUDGET: f64 = 32e9;
    let orig = dbtf_baselines::bcp_als::bcp_memory_estimate(spec.dims, rank) as f64;
    let scaled = dbtf_baselines::bcp_als::bcp_memory_estimate(spec.scaled_dims(scale), rank) as f64;
    (PAPER_BUDGET * scaled / orig.max(1.0)).max(1.0) as u64
}

/// Prints one row of an experiment table.
pub fn print_row(label: &str, cells: &[String]) {
    print!("{label:<24}");
    for c in cells {
        print!(" {c}");
    }
    println!();
}

/// Prints a table header followed by a separator.
pub fn print_header(title: &str, label: &str, columns: &[&str]) {
    println!("\n=== {title} ===");
    print!("{label:<24}");
    for c in columns {
        print!(" {c:>10}");
    }
    println!();
    println!("{}", "-".repeat(24 + 11 * columns.len()));
}

/// A tiny `--flag value` parser for the experiment binaries.
pub struct Args {
    args: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn parse() -> Self {
        Args {
            args: std::env::args().skip(1).collect(),
        }
    }

    /// The value of `--name <value>` parsed as `T`, or `default`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let flag = format!("--{name}");
        self.args
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether the bare flag `--name` is present.
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.args.iter().any(|a| a == &flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtf_datagen::proxies::proxy_specs;

    #[test]
    fn outcome_cells() {
        assert!(Outcome::Done {
            secs: 1.5,
            error: 3
        }
        .cell()
        .contains("1.500"));
        assert!(Outcome::OutOfTime.cell().contains("O.O.T."));
        assert!(Outcome::OutOfMemory.cell().contains("O.O.M."));
    }

    #[test]
    fn scaled_budget_preserves_verdicts() {
        use dbtf_baselines::bcp_als::bcp_memory_estimate;
        const PAPER_BUDGET: u64 = 32_000_000_000;
        for spec in proxy_specs() {
            for scale in [0.002f64, 0.01, 0.05] {
                for rank in [10usize, 30] {
                    let budget = scaled_memory_budget(&spec, scale, rank);
                    let orig_ooms = bcp_memory_estimate(spec.dims, rank) > PAPER_BUDGET;
                    let scaled_ooms = bcp_memory_estimate(spec.scaled_dims(scale), rank) > budget;
                    assert_eq!(orig_ooms, scaled_ooms, "{} at scale {scale}", spec.name);
                }
            }
        }
    }

    #[test]
    fn args_parse() {
        let args = Args {
            args: vec!["--scale".into(), "0.5".into(), "--paper-scale".into()],
        };
        assert_eq!(args.get("scale", 1.0f64), 0.5);
        assert_eq!(args.get("missing", 7u32), 7);
        assert!(args.has("paper-scale"));
        assert!(!args.has("other"));
    }
}
