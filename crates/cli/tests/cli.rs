//! End-to-end tests of the `dbtf` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn dbtf(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dbtf"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbtf_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_and_unknown_command() {
    let out = dbtf(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("factorize"));

    let out = dbtf(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_options_fail_cleanly() {
    let out = dbtf(&["factorize"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--input"));
}

#[test]
fn generate_stats_factorize_pipeline() {
    let dir = tempdir("pipeline");
    let x = dir.join("x.txt");
    let out = dbtf(&[
        "generate",
        "random",
        "--dims",
        "16,16,16",
        "--density",
        "0.1",
        "--seed",
        "3",
        "--output",
        x.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = dbtf(&["stats", "--input", x.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("16 × 16 × 16"), "{text}");

    let prefix = dir.join("f");
    let out = dbtf(&[
        "factorize",
        "--input",
        x.to_str().unwrap(),
        "--rank",
        "3",
        "--iters",
        "2",
        "--workers",
        "2",
        "--output",
        prefix.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    for suffix in ["A", "B", "C"] {
        let p = dir.join(format!("f.{suffix}.txt"));
        let m = dbtf_tensor::matrix_io::read_matrix_file(&p).unwrap();
        assert_eq!(m.rows(), 16);
        assert_eq!(m.cols(), 3);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn binary_roundtrip_through_cli() {
    let dir = tempdir("binary");
    let x = dir.join("x.dbtf");
    let out = dbtf(&[
        "generate",
        "planted",
        "--dims",
        "12,12,12",
        "--rank",
        "2",
        "--factor-density",
        "0.4",
        "--additive",
        "0.05",
        "--output",
        x.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // `.dbtf` extension implies binary on both ends.
    let t = dbtf_tensor::io::read_tensor_binary_file(&x).unwrap();
    assert_eq!(t.dims(), [12, 12, 12]);

    let out = dbtf(&["stats", "--input", x.to_str().unwrap()]);
    assert!(out.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tucker_and_select_rank() {
    let dir = tempdir("tucker");
    let x = dir.join("x.txt");
    assert!(dbtf(&[
        "generate",
        "planted",
        "--dims",
        "14,14,14",
        "--rank",
        "2",
        "--factor-density",
        "0.35",
        "--output",
        x.to_str().unwrap(),
    ])
    .status
    .success());

    let prefix = dir.join("t");
    let out = dbtf(&[
        "tucker",
        "--input",
        x.to_str().unwrap(),
        "--ranks",
        "2,2,2",
        "--sets",
        "4",
        "--output",
        prefix.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dir.join("t.core.txt").exists());

    let out = dbtf(&[
        "select-rank",
        "--input",
        x.to_str().unwrap(),
        "--candidates",
        "1,2,3",
        "--workers",
        "2",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("← best"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_proxy_name_lists_options() {
    let out = dbtf(&[
        "generate",
        "proxy",
        "--name",
        "nonsense",
        "--output",
        "/dev/null",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("Facebook"));
}

#[test]
fn usage_and_runtime_errors_use_distinct_exit_codes() {
    // Bad invocation: usage banner + exit 2.
    let out = dbtf(&["factorize", "--rank", "3"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    // Runtime failure (input file does not exist): message only + exit 1.
    let out = dbtf(&[
        "factorize",
        "--input",
        "/nonexistent/never/x.txt",
        "--rank",
        "3",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.starts_with("dbtf: "), "{stderr}");
    assert!(
        !stderr.contains("usage:"),
        "runtime errors must not print the usage banner: {stderr}"
    );
}

#[test]
fn trace_out_roundtrips_through_stats() {
    let dir = tempdir("trace");
    let x = dir.join("x.txt");
    assert!(dbtf(&[
        "generate",
        "random",
        "--dims",
        "16,16,16",
        "--density",
        "0.1",
        "--seed",
        "3",
        "--output",
        x.to_str().unwrap(),
    ])
    .status
    .success());

    let trace = dir.join("trace.json");
    let out = dbtf(&[
        "factorize",
        "--input",
        x.to_str().unwrap(),
        "--rank",
        "3",
        "--iters",
        "2",
        "--workers",
        "2",
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = dbtf(&["stats", "--trace", trace.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("complete events"), "{text}");
    assert!(text.contains("cp.update.sweep"), "{text}");

    // A non-trace file fails validation with exit 1 (runtime error).
    let out = dbtf(&["stats", "--trace", x.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid trace"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tucker_trace_out_needs_workers() {
    let out = dbtf(&[
        "tucker",
        "--input",
        "/dev/null",
        "--ranks",
        "2,2,2",
        "--trace-out",
        "/dev/null",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--workers"));
}
