//! End-to-end tests of `--backend net` against the real binary: workers
//! are separate OS processes spawned via the `worker` subcommand, kills
//! are literal `SIGKILL`s, and the bytes are measured on real sockets.

use std::path::PathBuf;
use std::process::{Command, Output};

fn dbtf(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dbtf"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbtf_net_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn generate(dir: &std::path::Path) -> String {
    let x = dir.join("x.txt");
    let out = dbtf(&[
        "generate",
        "planted",
        "--dims",
        "24,20,16",
        "--rank",
        "3",
        "--factor-density",
        "0.4",
        "--additive",
        "0.05",
        "--seed",
        "7",
        "--output",
        x.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    x.to_str().unwrap().to_string()
}

fn factorize(x: &str, backend: &str, prefix: &str, extra: &[&str]) -> Output {
    let mut args = vec![
        "factorize",
        "--input",
        x,
        "--rank",
        "3",
        "--iters",
        "3",
        "--workers",
        "3",
        "--backend",
        backend,
        "--output",
        prefix,
    ];
    args.extend_from_slice(extra);
    dbtf(&args)
}

fn read_factors(prefix: &str) -> Vec<String> {
    ["A", "B", "C"]
        .iter()
        .map(|s| std::fs::read_to_string(format!("{prefix}.{s}.txt")).unwrap())
        .collect()
}

/// First line of the run summary ("factorized … |X ⊕ X̃| = …") — the
/// algorithmic outcome, identical across backends.
fn summary_line(out: &Output) -> String {
    let text = String::from_utf8_lossy(&out.stdout);
    let line = text
        .lines()
        .find(|l| l.starts_with("factorized"))
        .unwrap_or_else(|| panic!("no summary in {text:?}"))
        .to_string();
    line
}

/// Real worker processes, no faults: factors and the error summary are
/// byte-identical to the simulated cluster, and the wire line reports
/// measured payload equal to the Lemma 6/7 meters.
#[test]
fn net_processes_match_cluster_bit_for_bit() {
    let dir = tempdir("parity");
    let x = generate(&dir);
    let sim_prefix = dir.join("sim").to_str().unwrap().to_string();
    let net_prefix = dir.join("net").to_str().unwrap().to_string();

    let sim = factorize(&x, "cluster", &sim_prefix, &[]);
    assert!(
        sim.status.success(),
        "{}",
        String::from_utf8_lossy(&sim.stderr)
    );
    let net = factorize(&x, "net", &net_prefix, &[]);
    assert!(
        net.status.success(),
        "{}",
        String::from_utf8_lossy(&net.stderr)
    );

    assert_eq!(summary_line(&sim), summary_line(&net));
    assert_eq!(read_factors(&sim_prefix), read_factors(&net_prefix));

    // The meters line differs only in the backend name, and the wire
    // line confirms measured payload == shuffle + broadcast meters.
    let sim_text = String::from_utf8_lossy(&sim.stdout).to_string();
    let net_text = String::from_utf8_lossy(&net.stdout).to_string();
    let meters = |text: &str, tag: &str| {
        text.lines()
            .find_map(|l| l.strip_prefix(tag))
            .unwrap_or_else(|| panic!("no {tag} line in {text:?}"))
            .to_string()
    };
    assert_eq!(
        meters(&sim_text, "cluster:"),
        meters(&net_text, "net:"),
        "virtual time and byte meters must match"
    );
    assert!(net_text.contains("wire:"), "{net_text}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Seeded SIGKILLs of real worker processes: the run recovers through
/// respawn + lineage recompute and the factors, error summary, and byte
/// meters all stay identical to the kill-free run.
#[test]
fn sigkill_riddled_net_run_stays_bit_identical() {
    let dir = tempdir("sigkill");
    let x = generate(&dir);
    let clean_prefix = dir.join("clean").to_str().unwrap().to_string();
    let killed_prefix = dir.join("killed").to_str().unwrap().to_string();

    let clean = factorize(&x, "net", &clean_prefix, &[]);
    assert!(
        clean.status.success(),
        "{}",
        String::from_utf8_lossy(&clean.stderr)
    );
    let killed = factorize(
        &x,
        "net",
        &killed_prefix,
        &[
            "--fault-kill-rate",
            "0.15",
            "--fault-seed",
            "11",
            "--net-respawn-budget",
            "64",
        ],
    );
    assert!(
        killed.status.success(),
        "{}",
        String::from_utf8_lossy(&killed.stderr)
    );

    assert_eq!(summary_line(&clean), summary_line(&killed));
    assert_eq!(read_factors(&clean_prefix), read_factors(&killed_prefix));
    let text = String::from_utf8_lossy(&killed.stdout).to_string();
    let recovery = text
        .lines()
        .find(|l| l.starts_with("recovery:"))
        .unwrap_or_else(|| panic!("no recovery line in {text:?}"));
    assert!(
        !recovery.contains(" 0 respawns"),
        "kills at rate 0.15 must have fired: {recovery}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Exhausting the respawn budget exits with the runtime-failure code and
/// a typed message — never a hang or an unexplained abort — after
/// flushing the last committed iteration to the checkpoint.
#[test]
fn respawn_exhaustion_degrades_cleanly() {
    let dir = tempdir("exhaust");
    let x = generate(&dir);
    let ckpt = dir.join("run.ckpt");
    let out = dbtf(&[
        "factorize",
        "--input",
        &x,
        "--rank",
        "3",
        "--iters",
        "8",
        "--workers",
        "3",
        "--backend",
        "net",
        "--fault-kill-rate",
        "0.06",
        "--fault-seed",
        "3",
        "--net-respawn-budget",
        "2",
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--checkpoint-every",
        "100",
    ]);
    assert_eq!(out.status.code(), Some(1), "runtime failure, not a crash");
    let err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(err.contains("respawn budget"), "{err}");
    assert!(
        !err.contains("panicked"),
        "degradation must not surface as a panic: {err}"
    );
    // With periodic checkpoints effectively off (every 100 iterations),
    // the file can only come from the degradation flush.
    assert!(
        ckpt.exists(),
        "degradation must flush the committed prefix to the checkpoint"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The worker subcommand validates its arguments like every other
/// command instead of connecting nowhere.
#[test]
fn worker_subcommand_rejects_bad_invocations() {
    let out = dbtf(&["worker"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--connect"));

    let out = dbtf(&["worker", "--connect", "not-an-addr", "--id", "0"]);
    assert_eq!(out.status.code(), Some(2));
}
