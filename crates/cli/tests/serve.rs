//! End-to-end tests of the serving subcommands against the real binary:
//! `export-factors` round-trips a checkpoint into a `DBTFFSET` store,
//! `stats` recognizes both file kinds, and a spawned `dbtf serve`
//! process answers a scripted `dbtf query` session — including the
//! oracle-backed agreement sweep — before draining cleanly.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn dbtf(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dbtf"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbtf_serve_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stdout(out: &Output) -> String {
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Generates a planted tensor, factorizes it with checkpointing on, and
/// returns the checkpoint path.
fn make_checkpoint(dir: &std::path::Path) -> String {
    let x = dir.join("x.txt");
    let out = dbtf(&[
        "generate",
        "planted",
        "--dims",
        "24,20,16",
        "--rank",
        "3",
        "--factor-density",
        "0.4",
        "--additive",
        "0.05",
        "--seed",
        "7",
        "--output",
        x.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let prefix = dir.join("run");
    let ck = dir.join("run.ckpt");
    let out = dbtf(&[
        "factorize",
        "--input",
        x.to_str().unwrap(),
        "--rank",
        "3",
        "--iters",
        "2",
        "--seed",
        "3",
        "--output",
        prefix.to_str().unwrap(),
        "--checkpoint",
        ck.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    ck.to_str().unwrap().to_string()
}

/// Exports the checkpoint to a binary store and returns the store path.
fn export(dir: &std::path::Path, ck: &str) -> String {
    let store = dir.join("factors.dbtfs");
    let text = stdout(&dbtf(&[
        "export-factors",
        "--checkpoint",
        ck,
        "--output",
        store.to_str().unwrap(),
    ]));
    assert!(text.contains("exported factor set"), "{text}");
    store.to_str().unwrap().to_string()
}

#[test]
fn export_factors_round_trip_and_stats_recognize_both_formats() {
    let dir = tempdir("export");
    let ck = make_checkpoint(&dir);
    let store = export(&dir, &ck);

    // `stats` must recognize both serving formats by magic, not suffix.
    let text = stdout(&dbtf(&["stats", "--input", &ck]));
    assert!(text.contains("checkpoint (DBTFCKPT v1)"), "{text}");
    assert!(text.contains("24 × 20 × 16, rank 3"), "{text}");
    assert!(text.contains("iteration: 2"), "{text}");

    let text = stdout(&dbtf(&["stats", "--input", &store]));
    assert!(text.contains("factor store (DBTFFSET v1)"), "{text}");
    assert!(text.contains("24 × 20 × 16, rank 3"), "{text}");
    assert!(text.contains("set version: 2"), "{text}");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Piping CLI output into a consumer that closes early (`| head`) must
/// end the process via the default SIGPIPE disposition, not a panic.
#[cfg(unix)]
#[test]
fn closed_stdout_pipe_kills_quietly_instead_of_panicking() {
    use std::os::unix::process::ExitStatusExt;
    let dir = tempdir("sigpipe");
    let ck = make_checkpoint(&dir);
    let mut child = Command::new(env!("CARGO_BIN_EXE_dbtf"))
        .args(["stats", "--input", &ck])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dbtf stats");
    // Close the read end immediately; the first flushed write after
    // that raises SIGPIPE.
    drop(child.stdout.take());
    let out = child.wait_with_output().unwrap();
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!err.contains("panicked"), "{err}");
    assert!(
        out.status.code().is_none() && out.status.signal() == Some(13) || out.status.success(),
        "expected SIGPIPE death or clean exit, got {:?} ({err})",
        out.status
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stats_refuses_future_checkpoint_version_with_clear_message() {
    let dir = tempdir("future");
    let path = dir.join("future.ckpt");
    std::fs::write(&path, "DBTFCKPT v3\nwhatever follows\n").unwrap();
    let out = dbtf(&["stats", "--input", path.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("checkpoint format v3 is newer than this build"),
        "{err}"
    );
    assert!(err.contains("max v1"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn serve_on_checkpoint_with_mmap_points_at_export_factors() {
    let dir = tempdir("mmapck");
    let ck = make_checkpoint(&dir);
    let out = dbtf(&[
        "serve",
        "--store",
        &ck,
        "--source",
        "mmap",
        "--addr",
        "127.0.0.1:0",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("export-factors"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The full scripted session: serve in the background on an ephemeral
/// port, run every query subcommand against it, gate on the oracle
/// sweep, then shut the server down and check it drained.
#[test]
fn serve_process_answers_scripted_query_session() {
    let dir = tempdir("session");
    let ck = make_checkpoint(&dir);
    let store = export(&dir, &ck);

    let mut server = Command::new(env!("CARGO_BIN_EXE_dbtf"))
        .args([
            "serve",
            "--store",
            &store,
            "--addr",
            "127.0.0.1:0",
            "--cache-fibers",
            "64",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn dbtf serve");
    let mut lines = BufReader::new(server.stdout.take().unwrap()).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before listening")
            .unwrap();
        if let Some(addr) = line.strip_prefix("listening on ") {
            break addr.to_string();
        }
    };

    let query = |extra: &[&str]| {
        let mut args = vec!["query", "--connect", addr.as_str()];
        args.extend_from_slice(extra);
        dbtf(&args)
    };

    assert_eq!(stdout(&query(&["--ping"])).trim(), "pong");

    let info = stdout(&query(&["--info"]));
    assert!(
        info.contains("factor set v2 24 × 20 × 16 rank 3 (ram)"),
        "{info}"
    );

    let point = stdout(&query(&["--point", "0,0,0"]));
    assert!(point.trim() == "true" || point.trim() == "false", "{point}");

    // Slice indices are in-range for the free mode.
    let slice = stdout(&query(&["--slice", "3:1,2"]));
    for index in slice.split_whitespace() {
        assert!(index.parse::<usize>().unwrap() < 16, "{slice}");
    }

    let topk = stdout(&query(&["--topk", "1:0:3"]));
    assert!(topk.lines().count() <= 3, "{topk}");

    let stats = stdout(&query(&["--stats"]));
    assert!(stats.contains("serve.point.queries 1"), "{stats}");
    assert!(stats.contains("serve.conns.opened"), "{stats}");

    // A bad query spec is an argument error (exit 2), not a crash.
    let out = query(&["--slice", "5:0,0"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The agreement gate the CI smoke script relies on.
    let check = stdout(&query(&[
        "--oracle-check",
        &store,
        "--seed",
        "42",
        "--count",
        "200",
    ]));
    assert!(
        check.contains("oracle-check: 200 queries agree (seed 42)"),
        "{check}"
    );

    assert_eq!(
        stdout(&query(&["--shutdown-server"])).trim(),
        "server draining"
    );
    let status = server.wait().expect("serve exits");
    assert!(status.success(), "serve exited {status:?}");
    let rest: Vec<String> = lines.map(|l| l.unwrap()).collect();
    assert!(
        rest.iter().any(|l| l == "drained cleanly"),
        "missing drain message in {rest:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
