//! `dbtf` — command-line interface to the DBTF reproduction.
//!
//! ```text
//! dbtf factorize   --input X.txt --rank 10 [--workers 16] [--iters 10]
//!                  [--sets 1] [--seed 0] [--partitions N] [--v 15]
//!                  [--compute-threads T] [--pipeline-depth D]
//!                  [--backend cluster|local|net] [--output PREFIX]
//!                  [--storage ram|mmap] [--spill-dir DIR]
//!                  [--net-respawn-budget N]
//!                  [--checkpoint FILE] [--checkpoint-every K] [--resume]
//!                  [--fault-crash S:W,…] [--fault-task-failure-rate F]
//!                  [--fault-slow-rate F] [--fault-slow-factor M]
//!                  [--fault-kill-rate F] [--fault-drop-rate F]
//!                  [--fault-delay-rate F] [--fault-delay-ms MS]
//!                  [--fault-seed N] [--no-speculation] [--trace-out FILE]
//! dbtf worker      --connect ADDR --id N [--incarnation N]
//! dbtf tucker      --input X.txt --ranks 4,4,4 [--iters 10] [--sets 1]
//!                  [--seed 0] [--output PREFIX] [--trace-out FILE]
//! dbtf select-rank --input X.txt --candidates 2,4,6,8 [--sets 4]
//! dbtf generate random  --dims I,J,K --density D --output X.txt
//! dbtf generate planted --dims I,J,K --rank R --factor-density D
//!                  [--additive A] [--destructive Dn] --output X.txt
//! dbtf generate proxy   --name Facebook --scale 0.01 --output X.txt
//! dbtf stats       --input X.txt
//! dbtf stats       --trace TRACE.json
//! ```
//!
//! Tensor files use the text format (`i j k` per line, `# dims` header) or
//! the `DBTFBIN1` binary format with `--binary`. Factors are written as
//! `PREFIX.A.txt`, `PREFIX.B.txt`, `PREFIX.C.txt` (and `PREFIX.core.txt`
//! for Tucker) in the sparse matrix text format.

mod args;
mod serve_cmd;
mod stats_cmd;
mod update_cmd;

use std::process::ExitCode;

use args::{ArgError, ParsedArgs};
use dbtf::model_selection::select_rank;
use dbtf::tucker::{tucker_factorize, TuckerConfig};
use dbtf::tucker_distributed::tucker_factorize_distributed_instrumented;
use dbtf::{factorize_instrumented, BackendKind, DbtfConfig, StorageKind};
use dbtf_cluster::{
    Cluster, ClusterConfig, ExecutionBackend, FaultPlan, LocalBackend, NetTuning, WorkerHost,
};
use dbtf_datagen::proxies::{generate_proxy, proxy_specs};
use dbtf_datagen::{stream_uniform_random, NoiseSpec, PlantedConfig, PlantedTensor};
use dbtf_telemetry::{write_chrome_trace, Tracer};
use dbtf_tensor::{io as tio, matrix_io, BoolTensor};

const USAGE: &str =
    "usage: dbtf <factorize|update|tucker|select-rank|generate|stats|serve|export-factors|query> [options]
run `dbtf help` for the full option list";

/// Rust ignores `SIGPIPE` by default, turning `dbtf stats | head` into a
/// broken-pipe panic; restore the default disposition so piped output
/// ends the process quietly like any Unix CLI.
#[cfg(unix)]
fn restore_sigpipe() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGPIPE: i32 = 13;
    const SIG_DFL: usize = 0;
    unsafe {
        signal(SIGPIPE, SIG_DFL);
    }
}

#[cfg(not(unix))]
fn restore_sigpipe() {}

fn main() -> ExitCode {
    restore_sigpipe();
    // `ClusterError` panics are typed control flow: the engine unwinds to
    // the driver's catch, which flushes a final checkpoint and converts
    // them into `DbtfError`. The default hook's backtrace would dress
    // that graceful degradation up as a crash, so silence it for exactly
    // that payload type.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !info.payload().is::<dbtf_cluster::ClusterError>() {
            default_hook(info);
        }
    }));
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dbtf: {e}");
            // The usage banner only helps when the command line itself was
            // wrong. Runtime failures (I/O, algorithm errors) keep their
            // message and get a distinct exit code so scripts can tell the
            // two apart: 2 = bad invocation, 1 = the run itself failed.
            if e.is::<ArgError>() {
                eprintln!("{USAGE}");
                ExitCode::from(2)
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

fn run(argv: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    let parsed = ParsedArgs::parse(argv)?;
    match parsed.command.first().map(String::as_str) {
        Some("factorize") => cmd_factorize(&parsed),
        Some("update") => update_cmd::cmd_update(&parsed),
        Some("worker") => cmd_worker(&parsed),
        Some("tucker") => cmd_tucker(&parsed),
        Some("select-rank") => cmd_select_rank(&parsed),
        Some("generate") => cmd_generate(&parsed),
        Some("stats") => stats_cmd::cmd_stats(&parsed),
        Some("serve") => serve_cmd::cmd_serve(&parsed),
        Some("export-factors") => serve_cmd::cmd_export_factors(&parsed),
        Some("query") => serve_cmd::cmd_query(&parsed),
        Some("help") | None => {
            println!("{}", long_help());
            Ok(())
        }
        Some(other) => Err(Box::new(ArgError(format!("unknown command {other:?}")))),
    }
}

fn long_help() -> &'static str {
    "dbtf — distributed Boolean tensor factorization (DBTF, ICDE 2017)

commands:
  factorize    Boolean CP factorization on a simulated cluster
  update       incremental re-sweep after a tensor delta (and optional
               live reload of a running `dbtf serve`)
  worker       networked worker process (spawned by --backend net)
  tucker       Boolean Tucker factorization (single machine)
  select-rank  MDL sweep over candidate ranks
  generate     synthetic workloads: random | planted | proxy
  stats        shape/density summary of a tensor, checkpoint, or store file
  serve        answer reconstruction queries from a factor store over TCP
  export-factors  convert a checkpoint into a binary DBTFFSET factor store
  query        one-shot client for a running `dbtf serve`

common options:
  --input FILE     input tensor (text format; --binary for DBTFBIN1)
  --output PREFIX  where results are written
  --seed N         RNG seed (default 0)

factorize: --rank R [--workers 16] [--iters 10] [--sets 1]
           [--partitions N] [--v 15] [--compute-threads T] [--output PREFIX]
           [--pipeline-depth D]
                 keep up to D supersteps in flight (default 1 = barrier
                 execution; DBTF_PIPELINE_DEPTH also works). Results and
                 every metric are bit-identical for every D; crash-plan
                 runs pin D to 1. No effect on --backend local
           [--backend cluster|local|net]
                 cluster (default): simulated multi-worker engine with
                 network-model costing and optional fault injection;
                 local: same plan inline in one process — identical
                 factors/errors/byte counters, but virtual time excludes
                 all network costs and --fault-* options are rejected;
                 net: workers are separate OS processes (this binary's
                 `worker` subcommand) over TCP — identical factors/errors
                 and byte counters, with shuffle/broadcast bytes measured
                 on the wire and process kills delivered as real SIGKILLs
           [--net-respawn-budget N]
                 respawns per worker before a net run degrades to a typed
                 error with a final checkpoint flush (default 3)
           [--storage ram|mmap]
                 where the driver materializes the unfolded tensors.
                 ram (default): on the heap; mmap: spilled once to
                 on-disk columnar files (bounded sort buffer, see
                 DBTF_SPILL_BUDGET_MB) and partitioned through a
                 read-only memory map, bounding driver memory by the
                 partition size instead of the tensor size. Factors,
                 errors, and every meter are bit-identical either way.
                 DBTF_STORAGE also works; the flag wins
           [--spill-dir DIR]
                 where --storage mmap spills its unfolding files
                 (default: the system temp dir); each run uses and
                 removes its own subdirectory
  checkpointing:
           [--checkpoint FILE]    write factors to FILE every K iterations
           [--checkpoint-every K] (default 1 when --checkpoint is given)
           [--resume]             continue from FILE if it exists
  fault injection (deterministic; results stay bit-identical):
           [--fault-crash S:W,…]          kill worker W at superstep S
           [--fault-task-failure-rate F]  transient task-launch failures
           [--fault-slow-rate F]          slow-task (hang) probability
           [--fault-slow-factor M]        slowdown multiplier (default 4)
           [--fault-kill-rate F]          per-worker-superstep kill rate
                 (simulated crash on cluster, real SIGKILL on net — same
                 seeded schedule, so results stay identical)
           [--fault-drop-rate F]          connection-drop rate (net only)
           [--fault-delay-rate F]         response-delay rate (net only)
           [--fault-delay-ms MS]          injected delay (default 5 ms)
           [--fault-seed N]               fault-decision seed (default 0)
           [--no-speculation]             disable speculative re-execution
  tracing:
           [--trace-out FILE]  record a span trace (driver phases, operator
                 supersteps, per-task and per-kernel spans on the virtual
                 clock) and write it as Chrome trace-event JSON — open in
                 chrome://tracing or Perfetto, or summarize with
                 `dbtf stats --trace FILE`
update:    --input X.txt --delta DELTA.txt --factors STORE --output FILE
           [--set-version N]  (default: input store's version + 1)
           [--workers 16] [--iters 10] [--partitions N] [--v 15]
           [--backend cluster|local|net] [--storage ram|mmap]
           [--spill-dir DIR] [--net-respawn-budget N] [--fault-* …]
                 X.txt is the *pre-delta* tensor; DELTA.txt lists edits
                 (`+ i j k` sets a cell, `- i j k` clears one, `#`
                 comments). STORE (DBTFFSET or DBTFCKPT) holds factors
                 fitted to the pre-delta tensor; the rank comes from it.
                 Only the factor columns the delta is incident to are
                 re-swept — through copy-on-write overlays of the old
                 unfoldings, never a rebuild — and the result is proven
                 no worse than the old factors on the updated tensor.
                 Bit-identical across backends and storage kinds
           [--reload ADDR [--reload-source ram|mmap]]
                 after writing --output, ask the `dbtf serve` at ADDR to
                 hot-swap to it (the delta file is passed along, so only
                 the cached fibers it touched are invalidated)
worker:    --connect ADDR --id N [--incarnation N]
                 connect to a --backend net driver and serve tasks; spawned
                 automatically, only useful directly for debugging
tucker:    --ranks R1,R2,R3 [--iters 10] [--sets 1] [--workers M]\n           [--output PREFIX]   (--workers runs the distributed driver)
select-rank: --candidates R1,R2,… [--sets 4]
stats:     --input X.txt | --trace TRACE.json
                 (--trace validates the trace file and prints a
                 per-superstep/operator time breakdown; tensor stats
                 stream the file in constant memory, and DBTFUNFD
                 columnar-unfolding files are summarized from the
                 header and row index alone)
serve:     --store FILE (DBTFFSET export or DBTFCKPT checkpoint)
           [--addr HOST:PORT]    listen address (default 127.0.0.1:7450)
           [--source ram|mmap]   factor rows on the heap or served from a
                 read-only map of the DBTFFSET file (checkpoints: ram only)
           [--cache-fibers N]    LRU fiber-cache entries (default 1024;
                 0 disables caching)
           [--max-line-bytes N] [--max-batch N]  protocol limits
                 the protocol is line-delimited JSON; each line is one
                 request object or an array of them (a batch), answered
                 in order with typed errors, never dropped connections.
                 a client `shutdown` request drains the server: in-flight
                 requests are answered, then every connection closes.
                 a `reload` request hot-swaps the factor set in place
                 (see `dbtf update --reload`): queries already in flight
                 finish against the old generation, new ones see the new
export-factors: --checkpoint CKPT --output FILE [--set-version N]
                 (default set version: the checkpoint's iteration count)
query:     --connect ADDR, plus exactly one of
           --point i,j,k         print true/false for cell X̃[i,j,k]
           --slice MODE:LO,HI    nonzero indices of a fiber; MODE is the
                 free axis (1=i 2=j 3=k), LO,HI the fixed indices in
                 ascending mode order
           --topk MODE:ENTITY:K  strongest factor columns for an entity
           --ping | --info | --stats | --shutdown-server
           --oracle-check FACTORS [--seed N] [--count N]
                 replay a seeded query sweep and compare every answer
                 against the oracle reconstruction of FACTORS
generate random:  --dims I,J,K --density D --output FILE
generate planted: --dims I,J,K --rank R --factor-density D
                  [--additive A] [--destructive D] --output FILE
generate proxy:   --name NAME --scale S --output FILE
                  (names: Facebook DBLP CAIDA-DDoS-S CAIDA-DDoS-L NELL-S NELL-L)"
}

fn load_tensor(parsed: &ParsedArgs) -> Result<BoolTensor, Box<dyn std::error::Error>> {
    let path = parsed
        .get_str("input")
        .ok_or_else(|| ArgError("missing required option --input".into()))?;
    let tensor = if parsed.has_flag("binary") || path.ends_with(".dbtf") {
        tio::read_tensor_binary_file(path)?
    } else {
        tio::read_tensor_file(path)?
    };
    Ok(tensor)
}

fn save_tensor(
    tensor: &BoolTensor,
    parsed: &ParsedArgs,
) -> Result<String, Box<dyn std::error::Error>> {
    let path = parsed
        .get_str("output")
        .ok_or_else(|| ArgError("missing required option --output".into()))?;
    if parsed.has_flag("binary") || path.ends_with(".dbtf") {
        tio::write_tensor_binary_file(tensor, path)?;
    } else {
        tio::write_tensor_file(tensor, path)?;
    }
    Ok(path.to_string())
}

fn cmd_factorize(parsed: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let x = load_tensor(parsed)?;
    let workers: usize = parsed.get("workers", 16)?;
    // `--compute-threads N` pins the real per-worker thread count (the
    // `DBTF_COMPUTE_THREADS` env var also works); results are identical
    // for every setting, only host wall-clock changes.
    let compute_threads: Option<usize> = match parsed.get_str("compute-threads") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| ArgError(format!("invalid value for --compute-threads: {raw:?}")))?,
        ),
        None => None,
    };
    // `--pipeline-depth D` admits up to D supersteps in flight
    // (`DBTF_PIPELINE_DEPTH` also works); results and metrics are
    // bit-identical for every setting, only host wall-clock changes.
    let pipeline_depth: Option<usize> = match parsed.get_str("pipeline-depth") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| ArgError(format!("invalid value for --pipeline-depth: {raw:?}")))?,
        ),
        None => None,
    };
    let checkpoint_path = parsed.get_str("checkpoint").map(str::to_string);
    let config = DbtfConfig {
        rank: parsed.require("rank")?,
        max_iters: parsed.get("iters", 10)?,
        initial_sets: parsed.get("sets", 1)?,
        partitions: parsed
            .get_str("partitions")
            .map(str::parse)
            .transpose()
            .map_err(|_| ArgError("invalid value for --partitions".into()))?,
        cache_group_limit: parsed.get("v", 15)?,
        seed: parsed.get("seed", 0)?,
        checkpoint_every: checkpoint_path
            .is_some()
            .then(|| parsed.get("checkpoint-every", 1))
            .transpose()?,
        checkpoint_path,
        resume: parsed.has_flag("resume"),
        backend: parsed.get("backend", BackendKind::default())?,
        storage: resolve_storage(
            parsed.get_str("storage"),
            std::env::var("DBTF_STORAGE").ok().as_deref(),
        )?,
        spill_dir: parsed.get_str("spill-dir").map(str::to_string),
        ..DbtfConfig::default()
    };
    let trace_out = parsed.get_str("trace-out");
    let tracer = if trace_out.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };
    let fault_plan = parse_fault_plan(parsed)?;
    let cluster_config = ClusterConfig {
        workers,
        compute_threads,
        pipeline_depth,
        fault_plan: fault_plan.clone(),
        ..ClusterConfig::paper_cluster()
    };
    // Factors/errors/byte counters are identical on all three backends;
    // the local one skips the network model (virtual time is compute-only)
    // and cannot inject faults; the net one runs workers as separate OS
    // processes over TCP and measures the Lemma 6/7 bytes on the wire.
    let (result, recovery, wire) = match config.backend {
        BackendKind::Cluster => {
            let cluster = Cluster::try_new(cluster_config)?;
            let result = factorize_instrumented(&cluster, &x, &config, &tracer)?.0;
            let recovery = fault_plan.is_some().then(|| cluster.metrics());
            (result, recovery, None)
        }
        BackendKind::Local => {
            if fault_plan.is_some() {
                return Err(Box::new(ArgError(
                    "--fault-* options need --backend cluster or net \
                     (the local backend injects no faults)"
                        .into(),
                )));
            }
            let backend = LocalBackend::from_cluster_config(&cluster_config);
            (
                factorize_instrumented(&backend, &x, &config, &tracer)?.0,
                None,
                None,
            )
        }
        BackendKind::Net => {
            let tuning = NetTuning {
                respawn_budget: parsed
                    .get("net-respawn-budget", NetTuning::default().respawn_budget)?,
                ..NetTuning::default()
            };
            let host = WorkerHost::Process {
                program: std::env::current_exe()?,
                args: vec!["worker".into()],
            };
            let backend = dbtf::net_tasks::net_backend(cluster_config, host, tuning)?;
            let result = factorize_instrumented(&backend, &x, &config, &tracer)?.0;
            let metrics = backend.metrics();
            let recovery = fault_plan.is_some().then(|| metrics.clone());
            (result, recovery, Some(metrics))
        }
    };
    if let Some(path) = trace_out {
        write_trace(&tracer, path)?;
        println!("wrote {path}");
    }
    println!(
        "factorized {:?} at rank {}: |X ⊕ X̃| = {} ({:.2}% of |X|), {} iterations{}",
        x,
        config.rank,
        result.error,
        100.0 * result.relative_error,
        result.iterations,
        if result.converged { " (converged)" } else { "" }
    );
    println!(
        "{}: {:.3} virtual s on {} workers; shuffled {} B, broadcast {} B, collected {} B",
        config.backend,
        result.stats.virtual_secs,
        workers,
        result.stats.comm.bytes_shuffled,
        result.stats.comm.bytes_broadcast,
        result.stats.comm.bytes_collected
    );
    if config.storage == StorageKind::Mmap {
        println!(
            "storage: mmap (unfoldings spilled under {})",
            config.spill_dir.as_deref().unwrap_or("the system temp dir")
        );
    }
    if let Some(m) = &wire {
        println!(
            "wire: {} B sent, {} B received (payload, equal to the meters \
             above), {} B framing overhead, {} B re-shipped, {} reconnects",
            m.net_wire_bytes_sent,
            m.net_wire_bytes_received,
            m.net_wire_overhead_bytes,
            m.net_wire_reship_bytes,
            m.net_reconnects,
        );
    }
    if let Some(m) = recovery {
        println!(
            "recovery: {} respawns, {} partitions recomputed, {} B re-shipped, \
             {} task retries, {} speculative ({} won), {:.3} virtual s of {:.3} total",
            m.worker_respawns,
            m.partitions_recomputed,
            m.bytes_reshipped,
            m.task_retries,
            m.speculative_tasks,
            m.speculative_wins,
            m.recovery_time.as_secs_f64(),
            m.virtual_time.as_secs_f64(),
        );
    }
    if let Some(prefix) = parsed.get_str("output") {
        for (name, m) in [
            ("A", &result.factors.a),
            ("B", &result.factors.b),
            ("C", &result.factors.c),
        ] {
            let path = format!("{prefix}.{name}.txt");
            matrix_io::write_matrix_file(m, &path)?;
            println!("wrote {path}");
        }
    }
    Ok(())
}

/// Resolves the unfolding storage backend: the `--storage` flag wins over
/// the `DBTF_STORAGE` environment variable. A malformed flag is an
/// argument error; a malformed environment value warns on stderr and
/// falls back to the default, so a stale environment never breaks an
/// otherwise-valid invocation.
fn resolve_storage(flag: Option<&str>, env: Option<&str>) -> Result<StorageKind, ArgError> {
    if let Some(raw) = flag {
        return raw
            .parse()
            .map_err(|e| ArgError(format!("invalid value for --storage: {e}")));
    }
    match env {
        Some(raw) => match raw.parse() {
            Ok(kind) => Ok(kind),
            Err(e) => {
                eprintln!("dbtf: ignoring DBTF_STORAGE: {e}");
                Ok(StorageKind::default())
            }
        },
        None => Ok(StorageKind::default()),
    }
}

/// Builds a [`FaultPlan`] from the `--fault-*` options, or `None` if no
/// fault option was given.
fn parse_fault_plan(parsed: &ParsedArgs) -> Result<Option<FaultPlan>, Box<dyn std::error::Error>> {
    let crashes: Vec<(u64, usize)> = match parsed.get_str("fault-crash") {
        Some(spec) => spec
            .split(',')
            .map(|pair| {
                let (step, worker) = pair.split_once(':').ok_or_else(|| {
                    ArgError(format!(
                        "--fault-crash entries are SUPERSTEP:WORKER, got {pair:?}"
                    ))
                })?;
                Ok((
                    step.parse()
                        .map_err(|_| ArgError(format!("bad superstep in {pair:?}")))?,
                    worker
                        .parse()
                        .map_err(|_| ArgError(format!("bad worker in {pair:?}")))?,
                ))
            })
            .collect::<Result<_, ArgError>>()?,
        None => Vec::new(),
    };
    let plan = FaultPlan {
        worker_crashes: crashes,
        task_failure_rate: parsed.get("fault-task-failure-rate", 0.0)?,
        slow_task_rate: parsed.get("fault-slow-rate", 0.0)?,
        slow_task_factor: parsed.get("fault-slow-factor", 4.0)?,
        process_kill_rate: parsed.get("fault-kill-rate", 0.0)?,
        connection_drop_rate: parsed.get("fault-drop-rate", 0.0)?,
        response_delay_rate: parsed.get("fault-delay-rate", 0.0)?,
        response_delay_ms: parsed.get("fault-delay-ms", 5)?,
        speculation: !parsed.has_flag("no-speculation"),
        ..FaultPlan::with_seed(parsed.get("fault-seed", 0)?)
    };
    Ok(plan.is_active().then_some(plan))
}

/// `dbtf worker --connect ADDR --id N [--incarnation N]`: the networked
/// worker process. `--backend net` drivers spawn this subcommand (via
/// [`WorkerHost::Process`]) once per worker and again on every respawn;
/// it connects back to the driver, registers the same task bodies the
/// driver schedules (see `dbtf::net_tasks`), and serves supersteps until
/// told to exit or killed.
fn cmd_worker(parsed: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let addr: std::net::SocketAddr = parsed.require("connect")?;
    let id: usize = parsed.require("id")?;
    let incarnation: u64 = parsed.get("incarnation", 0)?;
    dbtf_cluster::worker_main(addr, id, incarnation, dbtf::net_tasks::build_registry())?;
    Ok(())
}

fn cmd_tucker(parsed: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let x = load_tensor(parsed)?;
    let config = TuckerConfig {
        ranks: parsed.require_triple("ranks")?,
        max_iters: parsed.get("iters", 10)?,
        initial_sets: parsed.get("sets", 1)?,
        seed: parsed.get("seed", 0)?,
        ..TuckerConfig::default()
    };
    let trace_out = parsed.get_str("trace-out");
    let tracer = if trace_out.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };
    // With --workers, run the distributed driver (identical results);
    // --backend local runs the same plan without the network model.
    let result = match parsed.get_str("workers") {
        Some(w) => {
            let cluster_config = ClusterConfig {
                workers: w
                    .parse()
                    .map_err(|_| ArgError(format!("invalid --workers {w:?}")))?,
                ..ClusterConfig::paper_cluster()
            };
            match parsed.get("backend", BackendKind::default())? {
                BackendKind::Cluster => {
                    let cluster = Cluster::try_new(cluster_config)?;
                    tucker_factorize_distributed_instrumented(&cluster, &x, &config, &tracer)?.0
                }
                BackendKind::Local => {
                    let backend = LocalBackend::from_cluster_config(&cluster_config);
                    tucker_factorize_distributed_instrumented(&backend, &x, &config, &tracer)?.0
                }
                // Tucker's supersteps are plain closures (its broadcast
                // tuples have no registered wire codecs), so they cannot
                // cross a process boundary.
                BackendKind::Net => {
                    return Err(Box::new(ArgError(
                        "tucker supports --backend cluster|local only \
                         (its tasks are not wire-encodable)"
                            .into(),
                    )))
                }
            }
        }
        None => {
            if trace_out.is_some() {
                return Err(Box::new(ArgError(
                    "--trace-out needs the distributed driver; add --workers N".into(),
                )));
            }
            tucker_factorize(&x, &config)?
        }
    };
    if let Some(path) = trace_out {
        write_trace(&tracer, path)?;
        println!("wrote {path}");
    }
    println!(
        "tucker-factorized {:?} with core {:?}: |X ⊕ X̃| = {} ({:.2}% of |X|), \
         {} core entries, {} iterations",
        x,
        config.ranks,
        result.error,
        100.0 * result.relative_error,
        result.factorization.core.nnz(),
        result.iterations
    );
    if let Some(prefix) = parsed.get_str("output") {
        for (name, m) in [
            ("A", &result.factorization.a),
            ("B", &result.factorization.b),
            ("C", &result.factorization.c),
        ] {
            let path = format!("{prefix}.{name}.txt");
            matrix_io::write_matrix_file(m, &path)?;
            println!("wrote {path}");
        }
        let core_path = format!("{prefix}.core.txt");
        tio::write_tensor_file(&result.factorization.core, &core_path)?;
        println!("wrote {core_path}");
    }
    Ok(())
}

fn cmd_select_rank(parsed: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let x = load_tensor(parsed)?;
    let candidates = parsed.require_list("candidates")?;
    let base = DbtfConfig {
        initial_sets: parsed.get("sets", 4)?,
        seed: parsed.get("seed", 0)?,
        ..DbtfConfig::default()
    };
    let cluster = Cluster::new(ClusterConfig::with_workers(parsed.get("workers", 8)?));
    let selection = select_rank(&cluster, &x, &candidates, &base)?;
    println!("{:>6} {:>12} {:>16}", "rank", "error", "DL (bits)");
    for c in &selection.candidates {
        let marker = if c.rank == selection.best_rank {
            "  ← best"
        } else {
            ""
        };
        println!(
            "{:>6} {:>12} {:>16.0}{marker}",
            c.rank, c.error, c.description_length
        );
    }
    Ok(())
}

fn cmd_generate(parsed: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = parsed.get("seed", 0)?;
    let tensor = match parsed.command.get(1).map(String::as_str) {
        Some("random") => {
            // Streamed straight to the output file: the entries go from the
            // gap sampler into the writer one at a time, so generating a
            // tensor far larger than memory works — and the bytes are
            // identical to materializing and saving (the sampler and the
            // writer both use strictly increasing lexicographic order).
            let dims = parsed.require_triple("dims")?;
            let density: f64 = parsed.require("density")?;
            let path = parsed
                .get_str("output")
                .ok_or_else(|| ArgError("missing required option --output".into()))?;
            let binary = parsed.has_flag("binary") || path.ends_with(".dbtf");
            let mut writer = tio::StreamingTensorWriter::create(path, dims, binary)?;
            let mut io_err: Option<std::io::Error> = None;
            stream_uniform_random(dims, density, seed, |e| {
                if io_err.is_none() {
                    if let Err(err) = writer.push(e) {
                        io_err = Some(err);
                    }
                }
            });
            if let Some(err) = io_err {
                return Err(err.into());
            }
            let count = writer.finish()?;
            println!(
                "wrote BoolTensor[{}×{}×{}, |X| = {count}] to {path}",
                dims[0], dims[1], dims[2]
            );
            return Ok(());
        }
        Some("planted") => {
            let planted = PlantedTensor::generate(PlantedConfig {
                dims: parsed.require_triple("dims")?,
                rank: parsed.require("rank")?,
                factor_density: parsed.require("factor-density")?,
                noise: NoiseSpec {
                    additive: parsed.get("additive", 0.0)?,
                    destructive: parsed.get("destructive", 0.0)?,
                },
                seed,
            });
            planted.tensor
        }
        Some("proxy") => {
            let name: String = parsed.require("name")?;
            let spec = proxy_specs()
                .into_iter()
                .find(|s| s.name.eq_ignore_ascii_case(&name))
                .ok_or_else(|| {
                    ArgError(format!(
                        "unknown proxy {name:?}; known: {}",
                        proxy_specs()
                            .iter()
                            .map(|s| s.name)
                            .collect::<Vec<_>>()
                            .join(" ")
                    ))
                })?;
            generate_proxy(&spec, parsed.get("scale", 0.01)?, seed)
        }
        other => {
            return Err(Box::new(ArgError(format!(
                "generate needs a kind (random|planted|proxy), got {other:?}"
            ))))
        }
    };
    let path = save_tensor(&tensor, parsed)?;
    println!("wrote {tensor:?} to {path}");
    Ok(())
}

/// Serializes the tracer's finished log as Chrome trace-event JSON.
fn write_trace(tracer: &Tracer, path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let log = tracer.finish();
    let mut buf = Vec::new();
    write_chrome_trace(&log, &mut buf)?;
    std::fs::write(path, buf)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_flag_wins_over_env() {
        assert_eq!(
            resolve_storage(Some("mmap"), Some("ram")).unwrap(),
            StorageKind::Mmap
        );
        assert_eq!(
            resolve_storage(None, Some("mmap")).unwrap(),
            StorageKind::Mmap
        );
        assert_eq!(resolve_storage(None, None).unwrap(), StorageKind::Ram);
    }

    #[test]
    fn malformed_env_warns_and_defaults_but_malformed_flag_errors() {
        assert_eq!(
            resolve_storage(None, Some("floppy")).unwrap(),
            StorageKind::Ram
        );
        assert!(resolve_storage(Some("floppy"), None).is_err());
    }
}
