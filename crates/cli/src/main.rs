//! `dbtf` — command-line interface to the DBTF reproduction.
//!
//! ```text
//! dbtf factorize   --input X.txt --rank 10 [--workers 16] [--iters 10]
//!                  [--sets 1] [--seed 0] [--partitions N] [--v 15]
//!                  [--compute-threads T] [--pipeline-depth D]
//!                  [--backend cluster|local] [--output PREFIX]
//!                  [--checkpoint FILE] [--checkpoint-every K] [--resume]
//!                  [--fault-crash S:W,…] [--fault-task-failure-rate F]
//!                  [--fault-slow-rate F] [--fault-slow-factor M]
//!                  [--fault-seed N] [--no-speculation] [--trace-out FILE]
//! dbtf tucker      --input X.txt --ranks 4,4,4 [--iters 10] [--sets 1]
//!                  [--seed 0] [--output PREFIX] [--trace-out FILE]
//! dbtf select-rank --input X.txt --candidates 2,4,6,8 [--sets 4]
//! dbtf generate random  --dims I,J,K --density D --output X.txt
//! dbtf generate planted --dims I,J,K --rank R --factor-density D
//!                  [--additive A] [--destructive Dn] --output X.txt
//! dbtf generate proxy   --name Facebook --scale 0.01 --output X.txt
//! dbtf stats       --input X.txt
//! dbtf stats       --trace TRACE.json
//! ```
//!
//! Tensor files use the text format (`i j k` per line, `# dims` header) or
//! the `DBTFBIN1` binary format with `--binary`. Factors are written as
//! `PREFIX.A.txt`, `PREFIX.B.txt`, `PREFIX.C.txt` (and `PREFIX.core.txt`
//! for Tucker) in the sparse matrix text format.

mod args;

use std::process::ExitCode;

use args::{ArgError, ParsedArgs};
use dbtf::model_selection::select_rank;
use dbtf::tucker::{tucker_factorize, TuckerConfig};
use dbtf::tucker_distributed::tucker_factorize_distributed_instrumented;
use dbtf::{factorize_instrumented, BackendKind, DbtfConfig};
use dbtf_cluster::{Cluster, ClusterConfig, FaultPlan, LocalBackend};
use dbtf_datagen::proxies::{generate_proxy, proxy_specs};
use dbtf_datagen::{uniform_random, NoiseSpec, PlantedConfig, PlantedTensor};
use dbtf_telemetry::{validate_chrome_trace, write_chrome_trace, Tracer};
use dbtf_tensor::{io as tio, matrix_io, BoolTensor};

const USAGE: &str = "usage: dbtf <factorize|tucker|select-rank|generate|stats> [options]
run `dbtf help` for the full option list";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dbtf: {e}");
            // The usage banner only helps when the command line itself was
            // wrong. Runtime failures (I/O, algorithm errors) keep their
            // message and get a distinct exit code so scripts can tell the
            // two apart: 2 = bad invocation, 1 = the run itself failed.
            if e.is::<ArgError>() {
                eprintln!("{USAGE}");
                ExitCode::from(2)
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

fn run(argv: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    let parsed = ParsedArgs::parse(argv)?;
    match parsed.command.first().map(String::as_str) {
        Some("factorize") => cmd_factorize(&parsed),
        Some("tucker") => cmd_tucker(&parsed),
        Some("select-rank") => cmd_select_rank(&parsed),
        Some("generate") => cmd_generate(&parsed),
        Some("stats") => cmd_stats(&parsed),
        Some("help") | None => {
            println!("{}", long_help());
            Ok(())
        }
        Some(other) => Err(Box::new(ArgError(format!("unknown command {other:?}")))),
    }
}

fn long_help() -> &'static str {
    "dbtf — distributed Boolean tensor factorization (DBTF, ICDE 2017)

commands:
  factorize    Boolean CP factorization on a simulated cluster
  tucker       Boolean Tucker factorization (single machine)
  select-rank  MDL sweep over candidate ranks
  generate     synthetic workloads: random | planted | proxy
  stats        shape/density summary of a tensor file

common options:
  --input FILE     input tensor (text format; --binary for DBTFBIN1)
  --output PREFIX  where results are written
  --seed N         RNG seed (default 0)

factorize: --rank R [--workers 16] [--iters 10] [--sets 1]
           [--partitions N] [--v 15] [--compute-threads T] [--output PREFIX]
           [--pipeline-depth D]
                 keep up to D supersteps in flight (default 1 = barrier
                 execution; DBTF_PIPELINE_DEPTH also works). Results and
                 every metric are bit-identical for every D; crash-plan
                 runs pin D to 1. No effect on --backend local
           [--backend cluster|local]
                 cluster (default): simulated multi-worker engine with
                 network-model costing and optional fault injection;
                 local: same plan inline in one process — identical
                 factors/errors/byte counters, but virtual time excludes
                 all network costs and --fault-* options are rejected
  checkpointing:
           [--checkpoint FILE]    write factors to FILE every K iterations
           [--checkpoint-every K] (default 1 when --checkpoint is given)
           [--resume]             continue from FILE if it exists
  fault injection (deterministic; results stay bit-identical):
           [--fault-crash S:W,…]          kill worker W at superstep S
           [--fault-task-failure-rate F]  transient task-launch failures
           [--fault-slow-rate F]          slow-task (hang) probability
           [--fault-slow-factor M]        slowdown multiplier (default 4)
           [--fault-seed N]               fault-decision seed (default 0)
           [--no-speculation]             disable speculative re-execution
  tracing:
           [--trace-out FILE]  record a span trace (driver phases, operator
                 supersteps, per-task and per-kernel spans on the virtual
                 clock) and write it as Chrome trace-event JSON — open in
                 chrome://tracing or Perfetto, or summarize with
                 `dbtf stats --trace FILE`
tucker:    --ranks R1,R2,R3 [--iters 10] [--sets 1] [--workers M]\n           [--output PREFIX]   (--workers runs the distributed driver)
select-rank: --candidates R1,R2,… [--sets 4]
stats:     --input X.txt | --trace TRACE.json
                 (--trace validates the trace file and prints a
                 per-superstep/operator time breakdown)
generate random:  --dims I,J,K --density D --output FILE
generate planted: --dims I,J,K --rank R --factor-density D
                  [--additive A] [--destructive D] --output FILE
generate proxy:   --name NAME --scale S --output FILE
                  (names: Facebook DBLP CAIDA-DDoS-S CAIDA-DDoS-L NELL-S NELL-L)"
}

fn load_tensor(parsed: &ParsedArgs) -> Result<BoolTensor, Box<dyn std::error::Error>> {
    let path = parsed
        .get_str("input")
        .ok_or_else(|| ArgError("missing required option --input".into()))?;
    let tensor = if parsed.has_flag("binary") || path.ends_with(".dbtf") {
        tio::read_tensor_binary_file(path)?
    } else {
        tio::read_tensor_file(path)?
    };
    Ok(tensor)
}

fn save_tensor(
    tensor: &BoolTensor,
    parsed: &ParsedArgs,
) -> Result<String, Box<dyn std::error::Error>> {
    let path = parsed
        .get_str("output")
        .ok_or_else(|| ArgError("missing required option --output".into()))?;
    if parsed.has_flag("binary") || path.ends_with(".dbtf") {
        tio::write_tensor_binary_file(tensor, path)?;
    } else {
        tio::write_tensor_file(tensor, path)?;
    }
    Ok(path.to_string())
}

fn cmd_factorize(parsed: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let x = load_tensor(parsed)?;
    let workers: usize = parsed.get("workers", 16)?;
    // `--compute-threads N` pins the real per-worker thread count (the
    // `DBTF_COMPUTE_THREADS` env var also works); results are identical
    // for every setting, only host wall-clock changes.
    let compute_threads: Option<usize> = match parsed.get_str("compute-threads") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| ArgError(format!("invalid value for --compute-threads: {raw:?}")))?,
        ),
        None => None,
    };
    // `--pipeline-depth D` admits up to D supersteps in flight
    // (`DBTF_PIPELINE_DEPTH` also works); results and metrics are
    // bit-identical for every setting, only host wall-clock changes.
    let pipeline_depth: Option<usize> = match parsed.get_str("pipeline-depth") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| ArgError(format!("invalid value for --pipeline-depth: {raw:?}")))?,
        ),
        None => None,
    };
    let checkpoint_path = parsed.get_str("checkpoint").map(str::to_string);
    let config = DbtfConfig {
        rank: parsed.require("rank")?,
        max_iters: parsed.get("iters", 10)?,
        initial_sets: parsed.get("sets", 1)?,
        partitions: parsed
            .get_str("partitions")
            .map(str::parse)
            .transpose()
            .map_err(|_| ArgError("invalid value for --partitions".into()))?,
        cache_group_limit: parsed.get("v", 15)?,
        seed: parsed.get("seed", 0)?,
        checkpoint_every: checkpoint_path
            .is_some()
            .then(|| parsed.get("checkpoint-every", 1))
            .transpose()?,
        checkpoint_path,
        resume: parsed.has_flag("resume"),
        backend: parsed.get("backend", BackendKind::default())?,
        ..DbtfConfig::default()
    };
    let trace_out = parsed.get_str("trace-out");
    let tracer = if trace_out.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };
    let fault_plan = parse_fault_plan(parsed)?;
    let cluster_config = ClusterConfig {
        workers,
        compute_threads,
        pipeline_depth,
        fault_plan: fault_plan.clone(),
        ..ClusterConfig::paper_cluster()
    };
    // Factors/errors/byte counters are identical on both backends; the
    // local one skips the network model (virtual time is compute-only)
    // and cannot inject faults.
    let (result, recovery) = match config.backend {
        BackendKind::Cluster => {
            let cluster = Cluster::try_new(cluster_config)?;
            let result = factorize_instrumented(&cluster, &x, &config, &tracer)?.0;
            let recovery = fault_plan.is_some().then(|| cluster.metrics());
            (result, recovery)
        }
        BackendKind::Local => {
            if fault_plan.is_some() {
                return Err(Box::new(ArgError(
                    "--fault-* options need --backend cluster \
                     (the local backend injects no faults)"
                        .into(),
                )));
            }
            let backend = LocalBackend::from_cluster_config(&cluster_config);
            (
                factorize_instrumented(&backend, &x, &config, &tracer)?.0,
                None,
            )
        }
    };
    if let Some(path) = trace_out {
        write_trace(&tracer, path)?;
        println!("wrote {path}");
    }
    println!(
        "factorized {:?} at rank {}: |X ⊕ X̃| = {} ({:.2}% of |X|), {} iterations{}",
        x,
        config.rank,
        result.error,
        100.0 * result.relative_error,
        result.iterations,
        if result.converged { " (converged)" } else { "" }
    );
    println!(
        "{}: {:.3} virtual s on {} workers; shuffled {} B, broadcast {} B, collected {} B",
        config.backend,
        result.stats.virtual_secs,
        workers,
        result.stats.comm.bytes_shuffled,
        result.stats.comm.bytes_broadcast,
        result.stats.comm.bytes_collected
    );
    if let Some(m) = recovery {
        println!(
            "recovery: {} respawns, {} partitions recomputed, {} B re-shipped, \
             {} task retries, {} speculative ({} won), {:.3} virtual s of {:.3} total",
            m.worker_respawns,
            m.partitions_recomputed,
            m.bytes_reshipped,
            m.task_retries,
            m.speculative_tasks,
            m.speculative_wins,
            m.recovery_time.as_secs_f64(),
            m.virtual_time.as_secs_f64(),
        );
    }
    if let Some(prefix) = parsed.get_str("output") {
        for (name, m) in [
            ("A", &result.factors.a),
            ("B", &result.factors.b),
            ("C", &result.factors.c),
        ] {
            let path = format!("{prefix}.{name}.txt");
            matrix_io::write_matrix_file(m, &path)?;
            println!("wrote {path}");
        }
    }
    Ok(())
}

/// Builds a [`FaultPlan`] from the `--fault-*` options, or `None` if no
/// fault option was given.
fn parse_fault_plan(parsed: &ParsedArgs) -> Result<Option<FaultPlan>, Box<dyn std::error::Error>> {
    let crashes: Vec<(u64, usize)> = match parsed.get_str("fault-crash") {
        Some(spec) => spec
            .split(',')
            .map(|pair| {
                let (step, worker) = pair.split_once(':').ok_or_else(|| {
                    ArgError(format!(
                        "--fault-crash entries are SUPERSTEP:WORKER, got {pair:?}"
                    ))
                })?;
                Ok((
                    step.parse()
                        .map_err(|_| ArgError(format!("bad superstep in {pair:?}")))?,
                    worker
                        .parse()
                        .map_err(|_| ArgError(format!("bad worker in {pair:?}")))?,
                ))
            })
            .collect::<Result<_, ArgError>>()?,
        None => Vec::new(),
    };
    let plan = FaultPlan {
        worker_crashes: crashes,
        task_failure_rate: parsed.get("fault-task-failure-rate", 0.0)?,
        slow_task_rate: parsed.get("fault-slow-rate", 0.0)?,
        slow_task_factor: parsed.get("fault-slow-factor", 4.0)?,
        speculation: !parsed.has_flag("no-speculation"),
        ..FaultPlan::with_seed(parsed.get("fault-seed", 0)?)
    };
    Ok(plan.is_active().then_some(plan))
}

fn cmd_tucker(parsed: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let x = load_tensor(parsed)?;
    let config = TuckerConfig {
        ranks: parsed.require_triple("ranks")?,
        max_iters: parsed.get("iters", 10)?,
        initial_sets: parsed.get("sets", 1)?,
        seed: parsed.get("seed", 0)?,
        ..TuckerConfig::default()
    };
    let trace_out = parsed.get_str("trace-out");
    let tracer = if trace_out.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };
    // With --workers, run the distributed driver (identical results);
    // --backend local runs the same plan without the network model.
    let result = match parsed.get_str("workers") {
        Some(w) => {
            let cluster_config = ClusterConfig {
                workers: w
                    .parse()
                    .map_err(|_| ArgError(format!("invalid --workers {w:?}")))?,
                ..ClusterConfig::paper_cluster()
            };
            match parsed.get("backend", BackendKind::default())? {
                BackendKind::Cluster => {
                    let cluster = Cluster::try_new(cluster_config)?;
                    tucker_factorize_distributed_instrumented(&cluster, &x, &config, &tracer)?.0
                }
                BackendKind::Local => {
                    let backend = LocalBackend::from_cluster_config(&cluster_config);
                    tucker_factorize_distributed_instrumented(&backend, &x, &config, &tracer)?.0
                }
            }
        }
        None => {
            if trace_out.is_some() {
                return Err(Box::new(ArgError(
                    "--trace-out needs the distributed driver; add --workers N".into(),
                )));
            }
            tucker_factorize(&x, &config)?
        }
    };
    if let Some(path) = trace_out {
        write_trace(&tracer, path)?;
        println!("wrote {path}");
    }
    println!(
        "tucker-factorized {:?} with core {:?}: |X ⊕ X̃| = {} ({:.2}% of |X|), \
         {} core entries, {} iterations",
        x,
        config.ranks,
        result.error,
        100.0 * result.relative_error,
        result.factorization.core.nnz(),
        result.iterations
    );
    if let Some(prefix) = parsed.get_str("output") {
        for (name, m) in [
            ("A", &result.factorization.a),
            ("B", &result.factorization.b),
            ("C", &result.factorization.c),
        ] {
            let path = format!("{prefix}.{name}.txt");
            matrix_io::write_matrix_file(m, &path)?;
            println!("wrote {path}");
        }
        let core_path = format!("{prefix}.core.txt");
        tio::write_tensor_file(&result.factorization.core, &core_path)?;
        println!("wrote {core_path}");
    }
    Ok(())
}

fn cmd_select_rank(parsed: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let x = load_tensor(parsed)?;
    let candidates = parsed.require_list("candidates")?;
    let base = DbtfConfig {
        initial_sets: parsed.get("sets", 4)?,
        seed: parsed.get("seed", 0)?,
        ..DbtfConfig::default()
    };
    let cluster = Cluster::new(ClusterConfig::with_workers(parsed.get("workers", 8)?));
    let selection = select_rank(&cluster, &x, &candidates, &base)?;
    println!("{:>6} {:>12} {:>16}", "rank", "error", "DL (bits)");
    for c in &selection.candidates {
        let marker = if c.rank == selection.best_rank {
            "  ← best"
        } else {
            ""
        };
        println!(
            "{:>6} {:>12} {:>16.0}{marker}",
            c.rank, c.error, c.description_length
        );
    }
    Ok(())
}

fn cmd_generate(parsed: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = parsed.get("seed", 0)?;
    let tensor = match parsed.command.get(1).map(String::as_str) {
        Some("random") => {
            let dims = parsed.require_triple("dims")?;
            let density: f64 = parsed.require("density")?;
            uniform_random(dims, density, seed)
        }
        Some("planted") => {
            let planted = PlantedTensor::generate(PlantedConfig {
                dims: parsed.require_triple("dims")?,
                rank: parsed.require("rank")?,
                factor_density: parsed.require("factor-density")?,
                noise: NoiseSpec {
                    additive: parsed.get("additive", 0.0)?,
                    destructive: parsed.get("destructive", 0.0)?,
                },
                seed,
            });
            planted.tensor
        }
        Some("proxy") => {
            let name: String = parsed.require("name")?;
            let spec = proxy_specs()
                .into_iter()
                .find(|s| s.name.eq_ignore_ascii_case(&name))
                .ok_or_else(|| {
                    ArgError(format!(
                        "unknown proxy {name:?}; known: {}",
                        proxy_specs()
                            .iter()
                            .map(|s| s.name)
                            .collect::<Vec<_>>()
                            .join(" ")
                    ))
                })?;
            generate_proxy(&spec, parsed.get("scale", 0.01)?, seed)
        }
        other => {
            return Err(Box::new(ArgError(format!(
                "generate needs a kind (random|planted|proxy), got {other:?}"
            ))))
        }
    };
    let path = save_tensor(&tensor, parsed)?;
    println!("wrote {tensor:?} to {path}");
    Ok(())
}

fn cmd_stats(parsed: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(path) = parsed.get_str("trace") {
        return trace_stats(path);
    }
    let x = load_tensor(parsed)?;
    let [i, j, k] = x.dims();
    println!("shape:    {i} × {j} × {k}");
    println!("non-zeros: {}", x.nnz());
    println!("density:  {:.3e}", x.density());
    println!("‖X‖_F:    {:.3}", x.frobenius_norm());
    // Per-mode occupancy: how many distinct indices appear.
    for (m, name) in ["i", "j", "k"].iter().enumerate() {
        let distinct: std::collections::HashSet<u32> = x.iter().map(|e| e[m]).collect();
        println!(
            "mode {name}:   {} of {} indices used ({:.1}%)",
            distinct.len(),
            x.dims()[m],
            100.0 * distinct.len() as f64 / x.dims()[m].max(1) as f64
        );
    }
    Ok(())
}

/// Serializes the tracer's finished log as Chrome trace-event JSON.
fn write_trace(tracer: &Tracer, path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let log = tracer.finish();
    let mut buf = Vec::new();
    write_chrome_trace(&log, &mut buf)?;
    std::fs::write(path, buf)?;
    Ok(())
}

/// `dbtf stats --trace FILE`: validates the trace-event JSON and prints a
/// per-superstep/operator breakdown of virtual time.
fn trace_stats(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    let summary =
        validate_chrome_trace(&text).map_err(|e| format!("invalid trace {path:?}: {e}"))?;
    println!(
        "trace:    {} complete events, {} counters",
        summary.complete_events, summary.counter_events
    );
    for (cat, count, dur_us) in &summary.categories {
        println!(
            "  {:<12} {:>6} spans {:>14.3} virtual ms",
            cat,
            count,
            dur_us / 1e3
        );
    }
    if !summary.breakdown.is_empty() {
        println!("per-superstep/operator breakdown:");
        println!("  {:<28} {:>6} {:>16}", "operator", "count", "virtual ms");
        for (name, count, dur_us) in &summary.breakdown {
            println!("  {:<28} {:>6} {:>16.3}", name, count, dur_us / 1e3);
        }
    }
    Ok(())
}
