//! `dbtf stats` — shape/density summaries for every on-disk artifact the
//! toolchain produces: tensors (text or binary, streamed in constant
//! memory), spilled `DBTFUNFD` columnar unfoldings, `DBTFCKPT`
//! checkpoints, `DBTFFSET` factor stores, and Chrome trace-event JSON.

use crate::args::{ArgError, ParsedArgs};
use crate::serve_cmd;
use dbtf_telemetry::validate_chrome_trace;
use dbtf_tensor::{columnar, io as tio, MmapUnfolding};

pub fn cmd_stats(parsed: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(path) = parsed.get_str("trace") {
        return trace_stats(path);
    }
    let path = parsed
        .get_str("input")
        .ok_or_else(|| ArgError("missing required option --input".into()))?;
    if is_unfolding_file(path) {
        return unfolding_stats(path);
    }
    // Checkpoints and factor stores are self-describing; summarize them
    // as what they are instead of failing to parse them as tensors.
    if serve_cmd::is_checkpoint_file(path) {
        return serve_cmd::checkpoint_stats(path);
    }
    if serve_cmd::is_store_file(path) {
        return serve_cmd::store_stats(path);
    }
    // One streaming pass in constant memory: the tensor is never
    // materialized. Three occupancy bitsets (one bit per index) replace
    // the hash sets a full load would need, and consecutive duplicates
    // are skipped so files written by this tool (sorted, unique) report
    // the exact non-zero count.
    let mut stream = tio::TensorStream::open(path)?;
    let [i, j, k] = stream.dims();
    let mut seen: [dbtf_tensor::BitVec; 3] = [
        dbtf_tensor::BitVec::zeros(i),
        dbtf_tensor::BitVec::zeros(j),
        dbtf_tensor::BitVec::zeros(k),
    ];
    let mut nnz = 0u64;
    let mut last: Option<[u32; 3]> = None;
    for entry in &mut stream {
        let e = entry?;
        if last == Some(e) {
            continue;
        }
        last = Some(e);
        nnz += 1;
        for m in 0..3 {
            seen[m].set(e[m] as usize, true);
        }
    }
    let cells = i as f64 * j as f64 * k as f64;
    println!("shape:    {i} × {j} × {k}");
    println!("non-zeros: {nnz}");
    println!(
        "density:  {:.3e}",
        if cells > 0.0 { nnz as f64 / cells } else { 0.0 }
    );
    println!("‖X‖_F:    {:.3}", (nnz as f64).sqrt());
    for (m, name) in ["i", "j", "k"].iter().enumerate() {
        let dim = [i, j, k][m];
        let distinct = seen[m].count_ones();
        println!(
            "mode {name}:   {} of {} indices used ({:.1}%)",
            distinct,
            dim,
            100.0 * distinct as f64 / dim.max(1) as f64
        );
    }
    Ok(())
}

/// Whether `path` starts with the `DBTFUNFD` columnar-unfolding magic.
fn is_unfolding_file(path: &str) -> bool {
    use std::io::Read;
    let mut magic = [0u8; 8];
    std::fs::File::open(path)
        .and_then(|mut f| f.read_exact(&mut magic))
        .is_ok_and(|_| magic == columnar::UNFOLDING_MAGIC)
}

/// `dbtf stats` on a spilled columnar unfolding: everything below comes
/// from the 4 KiB header page and the row index — the column data is
/// mapped but never faulted in, so this is O(header + index) I/O no matter
/// how large the unfolding is.
fn unfolding_stats(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let store = MmapUnfolding::open(std::path::Path::new(path))?;
    let h = store.header();
    let [i, j, k] = h.dims;
    println!(
        "columnar unfolding (DBTFUNFD v{})",
        columnar::UNFOLDING_VERSION
    );
    println!("mode:     {}", h.mode.index() + 1);
    println!("tensor:   {i} × {j} × {k}");
    println!("unfolded: {} × {}", h.nrows, h.ncols);
    println!("non-zeros: {}", h.nnz);
    let cells = h.nrows as f64 * h.ncols as f64;
    println!(
        "density:  {:.3e}",
        if cells > 0.0 {
            h.nnz as f64 / cells
        } else {
            0.0
        }
    );
    let index = store.index();
    let lens = index.windows(2).map(|w| w[1] - w[0]);
    let longest = lens.clone().max().unwrap_or(0);
    let occupied = lens.filter(|&l| l > 0).count();
    println!(
        "rows:     {} of {} occupied ({:.1}%), longest {longest}",
        occupied,
        h.nrows,
        100.0 * occupied as f64 / h.nrows.max(1) as f64
    );
    println!(
        "layout:   index at {} B, data at {} B, file {} B",
        h.index_off,
        h.data_off,
        std::fs::metadata(path)?.len()
    );
    Ok(())
}

/// `dbtf stats --trace FILE`: validates the trace-event JSON and prints a
/// per-superstep/operator breakdown of virtual time.
fn trace_stats(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    let summary =
        validate_chrome_trace(&text).map_err(|e| format!("invalid trace {path:?}: {e}"))?;
    println!(
        "trace:    {} complete events, {} counters",
        summary.complete_events, summary.counter_events
    );
    for (cat, count, dur_us) in &summary.categories {
        println!(
            "  {:<12} {:>6} spans {:>14.3} virtual ms",
            cat,
            count,
            dur_us / 1e3
        );
    }
    if !summary.breakdown.is_empty() {
        println!("per-superstep/operator breakdown:");
        println!("  {:<28} {:>6} {:>16}", "operator", "count", "virtual ms");
        for (name, count, dur_us) in &summary.breakdown {
            println!("  {:<28} {:>6} {:>16.3}", name, count, dur_us / 1e3);
        }
    }
    Ok(())
}
