//! The serving-side subcommands: `dbtf serve`, `dbtf export-factors`,
//! and `dbtf query` (including the oracle-backed `--oracle-check` sweep
//! the CI smoke script runs against a live server).

use std::path::Path;
use std::time::Duration;

use crate::args::{ArgError, ParsedArgs};
use dbtf::Checkpoint;
use dbtf_oracle::{cp_reconstruct, serving_point, serving_slice, serving_topk};
use dbtf_serve::{
    FactorStore, QueryMix, Request, SeededQueries, ServeClient, ServeLimits, Server, ServerConfig,
    SourceKind,
};

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn source_arg(parsed: &ParsedArgs) -> Result<SourceKind, ArgError> {
    match parsed.get_str("source") {
        None => Ok(SourceKind::Ram),
        Some(raw) => raw.parse().map_err(|e: String| ArgError(e)),
    }
}

/// `dbtf serve --store FILE [--addr HOST:PORT] [--source ram|mmap]
/// [--cache-fibers N] [--max-line-bytes N] [--max-batch N]`
///
/// Loads a factor store (a `DBTFFSET` export or a `DBTFCKPT` checkpoint)
/// and serves reconstruction queries until a client sends `shutdown`.
pub fn cmd_serve(parsed: &ParsedArgs) -> CliResult {
    let store_path: String = parsed.require("store")?;
    let store = FactorStore::open(Path::new(&store_path), source_arg(parsed)?)?;
    let defaults = ServeLimits::default();
    let config = ServerConfig {
        addr: parsed.get("addr", "127.0.0.1:7450".to_string())?,
        cache_fibers: parsed.get("cache-fibers", 1024)?,
        limits: ServeLimits {
            max_line_bytes: parsed.get("max-line-bytes", defaults.max_line_bytes)?,
            max_batch: parsed.get("max-batch", defaults.max_batch)?,
        },
    };
    let [i, j, k] = store.dims();
    println!(
        "serving factor set v{} ({i} × {j} × {k}, rank {}, {} source, {} cached fibers)",
        store.set_version(),
        store.rank(),
        store.source(),
        config.cache_fibers,
    );
    let handle = Server::start(store, config)?;
    println!("listening on {}", handle.addr());
    if handle.run_until_drained(Duration::from_secs(10)) {
        println!("drained cleanly");
        Ok(())
    } else {
        Err("drain deadline expired with connections still open".into())
    }
}

/// `dbtf export-factors --checkpoint CKPT --output FILE [--set-version N]`
///
/// Converts a text checkpoint into the binary `DBTFFSET` store (the only
/// format `dbtf serve --source mmap` accepts). The set version defaults
/// to the checkpoint's completed-iteration count.
pub fn cmd_export_factors(parsed: &ParsedArgs) -> CliResult {
    let ck_path: String = parsed.require("checkpoint")?;
    let out_path: String = parsed.require("output")?;
    let ck = Checkpoint::read(Path::new(&ck_path))?;
    let set_version = parsed.get("set-version", ck.iteration as u64)?;
    FactorStore::write_store(Path::new(&out_path), set_version, &ck.factors)?;
    let store = FactorStore::open(Path::new(&out_path), SourceKind::Ram)?;
    let [i, j, k] = store.dims();
    println!(
        "exported factor set v{set_version} ({i} × {j} × {k}, rank {}) to {out_path}",
        store.rank()
    );
    Ok(())
}

/// `dbtf query --connect ADDR <--point i,j,k | --slice MODE:LO,HI |
/// --topk MODE:ENTITY:K | --ping | --info | --stats | --shutdown-server |
/// --oracle-check FACTORS [--seed N] [--count N]>`
///
/// One-shot client for a running `dbtf serve`. `--oracle-check` replays
/// a seeded query sweep and compares every answer against the oracle's
/// cell-by-cell reconstruction of the factors in `FACTORS` (checkpoint
/// or store) — the CI smoke test's agreement gate.
pub fn cmd_query(parsed: &ParsedArgs) -> CliResult {
    let addr: String = parsed.require("connect")?;
    let mut client = ServeClient::connect(
        addr.parse()
            .map_err(|e| ArgError(format!("invalid --connect address {addr:?}: {e}")))?,
    )?;
    if let Some(cells) = parsed.get_str("point") {
        let [i, j, k] = parse_triple("point", cells)?;
        println!("{}", client.point(i, j, k)?);
    } else if let Some(spec) = parsed.get_str("slice") {
        let (mode, rest) = split_mode("slice", spec)?;
        let [lo, hi] = parse_pair("slice", rest)?;
        let ones = client.slice(mode, lo, hi)?;
        println!(
            "{}",
            ones.iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        );
    } else if let Some(spec) = parsed.get_str("topk") {
        let parts = parse_colon_list("topk", spec, 3)?;
        for (col, weight) in client.topk(parts[0], parts[1], parts[2])? {
            println!("{col} {weight}");
        }
    } else if parsed.has_flag("ping") {
        client.ping()?;
        println!("pong");
    } else if parsed.has_flag("info") {
        let info = client.info()?;
        println!(
            "factor set v{} {} × {} × {} rank {} ({})",
            info.set_version, info.dims[0], info.dims[1], info.dims[2], info.rank, info.source
        );
    } else if parsed.has_flag("stats") {
        for (name, value) in client.stats()? {
            println!("{name} {value}");
        }
    } else if parsed.has_flag("shutdown-server") {
        client.shutdown()?;
        println!("server draining");
    } else if let Some(factors_path) = parsed.get_str("oracle-check") {
        let seed = parsed.get("seed", 0u64)?;
        let count = parsed.get("count", 500usize)?;
        oracle_check(&mut client, Path::new(factors_path), seed, count)?;
    } else {
        return Err(Box::new(ArgError(
            "query needs one of --point/--slice/--topk/--ping/--info/--stats/\
             --shutdown-server/--oracle-check"
                .into(),
        )));
    }
    Ok(())
}

/// Replays `count` seeded queries against both the live server and the
/// oracle's materialized reconstruction; any disagreement is an error
/// naming the query.
fn oracle_check(
    client: &mut ServeClient,
    factors_path: &Path,
    seed: u64,
    count: usize,
) -> CliResult {
    let factors = FactorStore::open(factors_path, SourceKind::Ram)?.to_factor_set();
    let recon = cp_reconstruct(&factors.a, &factors.b, &factors.c);
    let dims = [factors.a.rows(), factors.b.rows(), factors.c.rows()];
    let served = client.info()?;
    if served.dims != dims {
        return Err(format!(
            "server dims {:?} do not match oracle factors {:?}",
            served.dims, dims
        )
        .into());
    }
    let sweep = SeededQueries::new(seed, dims, QueryMix::default_mix());
    for (n, request) in sweep.take(count).enumerate() {
        match request {
            Request::Point { i, j, k } => {
                let got = client.point(i, j, k)?;
                let want = serving_point(&recon, i, j, k);
                if got != want {
                    return Err(disagree(n, &format!("point {i},{j},{k}"), got, want));
                }
            }
            Request::Slice { free_mode, lo, hi } => {
                let got = client.slice(free_mode + 1, lo, hi)?;
                let want = serving_slice(&recon, free_mode, lo, hi);
                if got != want {
                    return Err(disagree(
                        n,
                        &format!("slice mode {} ({lo},{hi})", free_mode + 1),
                        got,
                        want,
                    ));
                }
            }
            Request::Topk { mode, entity, k } => {
                let got = client.topk(mode + 1, entity, k)?;
                let want = serving_topk(&factors.a, &factors.b, &factors.c, mode, entity, k);
                if got != want {
                    return Err(disagree(
                        n,
                        &format!("topk mode {} entity {entity} k {k}", mode + 1),
                        got,
                        want,
                    ));
                }
            }
            _ => unreachable!("sweeps generate only data queries"),
        }
    }
    println!("oracle-check: {count} queries agree (seed {seed})");
    Ok(())
}

fn disagree(
    n: usize,
    what: &str,
    got: impl std::fmt::Debug,
    want: impl std::fmt::Debug,
) -> Box<dyn std::error::Error> {
    format!("oracle disagreement at query {n} ({what}): served {got:?}, oracle {want:?}").into()
}

fn parse_triple(name: &str, raw: &str) -> Result<[usize; 3], ArgError> {
    let parts: Vec<usize> = raw
        .split(',')
        .map(|p| p.trim().parse())
        .collect::<Result<_, _>>()
        .map_err(|_| ArgError(format!("invalid --{name} {raw:?} (want i,j,k)")))?;
    if parts.len() != 3 {
        return Err(ArgError(format!(
            "--{name} needs three indices, got {raw:?}"
        )));
    }
    Ok([parts[0], parts[1], parts[2]])
}

fn parse_pair(name: &str, raw: &str) -> Result<[usize; 2], ArgError> {
    let parts: Vec<usize> = raw
        .split(',')
        .map(|p| p.trim().parse())
        .collect::<Result<_, _>>()
        .map_err(|_| ArgError(format!("invalid --{name} fixed indices {raw:?}")))?;
    if parts.len() != 2 {
        return Err(ArgError(format!(
            "--{name} needs two fixed indices, got {raw:?}"
        )));
    }
    Ok([parts[0], parts[1]])
}

/// Splits a `MODE:...` spec, validating the 1-based mode.
fn split_mode<'a>(name: &str, raw: &'a str) -> Result<(usize, &'a str), ArgError> {
    let (mode, rest) = raw
        .split_once(':')
        .ok_or_else(|| ArgError(format!("--{name} wants MODE:…, got {raw:?}")))?;
    let mode: usize = mode
        .parse()
        .map_err(|_| ArgError(format!("invalid mode in --{name} {raw:?}")))?;
    if !(1..=3).contains(&mode) {
        return Err(ArgError(format!("--{name} mode must be 1, 2, or 3")));
    }
    Ok((mode, rest))
}

fn parse_colon_list(name: &str, raw: &str, want: usize) -> Result<Vec<usize>, ArgError> {
    let parts: Vec<usize> = raw
        .split(':')
        .map(|p| p.trim().parse())
        .collect::<Result<_, _>>()
        .map_err(|_| ArgError(format!("invalid --{name} spec {raw:?}")))?;
    if parts.len() != want {
        return Err(ArgError(format!(
            "--{name} wants {want} colon-separated values, got {raw:?}"
        )));
    }
    if !(1..=3).contains(&parts[0]) {
        return Err(ArgError(format!("--{name} mode must be 1, 2, or 3")));
    }
    Ok(parts)
}

/// `dbtf stats` on a `DBTFCKPT` checkpoint: shape, rank, iteration, and
/// error trajectory — without ever parsing it as a tensor file.
pub fn checkpoint_stats(path: &str) -> CliResult {
    let ck = Checkpoint::read(Path::new(path))?;
    println!("checkpoint (DBTFCKPT v{})", dbtf::CHECKPOINT_FORMAT_VERSION);
    println!(
        "factors:   {} × {} × {}, rank {}",
        ck.factors.a.rows(),
        ck.factors.b.rows(),
        ck.factors.c.rows(),
        ck.factors.rank()
    );
    println!("iteration: {}", ck.iteration);
    println!("error:     {}", ck.error);
    println!(
        "trajectory: {}",
        ck.iteration_errors
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join(" → ")
    );
    Ok(())
}

/// `dbtf stats` on a binary `DBTFFSET` factor store.
pub fn store_stats(path: &str) -> CliResult {
    let store = FactorStore::open(Path::new(path), SourceKind::Ram)?;
    let [i, j, k] = store.dims();
    println!(
        "factor store (DBTFFSET v{})",
        dbtf_serve::store::STORE_FORMAT_VERSION
    );
    println!("factors:   {i} × {j} × {k}, rank {}", store.rank());
    println!("set version: {}", store.set_version());
    let rows = i + j + k;
    let words = rows * store.words_per_row();
    println!("payload:   {rows} packed rows, {} bytes", words * 8);
    Ok(())
}

/// Whether `path` starts with the binary `DBTFFSET` magic.
pub fn is_store_file(path: &str) -> bool {
    use std::io::Read;
    let mut magic = [0u8; 8];
    std::fs::File::open(path)
        .and_then(|mut f| f.read_exact(&mut magic))
        .is_ok_and(|_| magic == *b"DBTFFSET")
}

/// Whether `path` starts with the text `DBTFCKPT` magic.
pub fn is_checkpoint_file(path: &str) -> bool {
    use std::io::Read;
    let mut magic = [0u8; 8];
    std::fs::File::open(path)
        .and_then(|mut f| f.read_exact(&mut magic))
        .is_ok_and(|_| &magic == b"DBTFCKPT")
}
