//! `dbtf update` — incremental factor updates after a tensor delta:
//! bounded re-sweep of only the affected columns, a new `DBTFFSET`
//! generation on disk, and (optionally) a live hot-swap of a running
//! `dbtf serve` via the `reload` protocol request.

use std::path::Path;

use crate::args::{ArgError, ParsedArgs};
use crate::{parse_fault_plan, resolve_storage};
use dbtf::{update_factors, BackendKind, DbtfConfig, StorageKind};
use dbtf_cluster::{Cluster, ClusterConfig, ExecutionBackend, LocalBackend, NetTuning, WorkerHost};
use dbtf_serve::{FactorStore, ServeClient, SourceKind};
use dbtf_tensor::TensorDelta;

/// `dbtf update --input X.txt --delta DELTA.txt --factors STORE
/// --output FILE [--set-version N] [--workers 16] [--iters 10]
/// [--partitions N] [--v 15] [--backend cluster|local|net]
/// [--storage ram|mmap] [--spill-dir DIR] [--net-respawn-budget N]
/// [--fault-* …] [--reload ADDR [--reload-source ram|mmap]]`
///
/// `--input` is the *pre-delta* tensor; `--delta` lists the edits
/// (`+ i j k` to set, `- i j k` to clear, `#` comments). `--factors`
/// is the factor set fitted to the pre-delta tensor — a `DBTFFSET`
/// export or a `DBTFCKPT` checkpoint; the rank comes from it. Only the
/// factor columns incident to the delta are re-swept, and the result
/// is never worse than the old factors on the updated tensor.
///
/// The updated factors are written to `--output` as a `DBTFFSET` store
/// whose set version defaults to the input store's version + 1. With
/// `--reload ADDR`, a running `dbtf serve` is then asked to hot-swap to
/// the new store (passing the delta file along so only the fibers the
/// delta touched are dropped from its cache).
pub fn cmd_update(parsed: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let x = crate::load_tensor(parsed)?;
    let delta_path: String = parsed.require("delta")?;
    let delta_text = std::fs::read_to_string(&delta_path)
        .map_err(|e| format!("cannot read --delta {delta_path}: {e}"))?;
    let delta = TensorDelta::parse(&delta_text, x.dims())
        .map_err(|e| format!("invalid delta file {delta_path}: {e}"))?;
    let factors_path: String = parsed.require("factors")?;
    let store = FactorStore::open(Path::new(&factors_path), SourceKind::Ram)?;
    let factors = store.to_factor_set();
    let out_path: String = parsed.require("output")?;
    let set_version = parsed.get("set-version", store.set_version() + 1)?;

    let workers: usize = parsed.get("workers", 16)?;
    let config = DbtfConfig {
        rank: factors.rank(),
        max_iters: parsed.get("iters", 10)?,
        partitions: parsed
            .get_str("partitions")
            .map(str::parse)
            .transpose()
            .map_err(|_| ArgError("invalid value for --partitions".into()))?,
        cache_group_limit: parsed.get("v", 15)?,
        seed: parsed.get("seed", 0)?,
        backend: parsed.get("backend", BackendKind::default())?,
        storage: resolve_storage(
            parsed.get_str("storage"),
            std::env::var("DBTF_STORAGE").ok().as_deref(),
        )?,
        spill_dir: parsed.get_str("spill-dir").map(str::to_string),
        ..DbtfConfig::default()
    };
    let fault_plan = parse_fault_plan(parsed)?;
    let cluster_config = ClusterConfig {
        workers,
        fault_plan: fault_plan.clone(),
        ..ClusterConfig::paper_cluster()
    };
    // The same backend triad as `dbtf factorize` — results are
    // bit-identical on all three (and for both storage kinds).
    let result = match config.backend {
        BackendKind::Cluster => {
            let cluster = Cluster::try_new(cluster_config)?;
            update_factors(&cluster, &x, &delta, &factors, &config)?
        }
        BackendKind::Local => {
            if fault_plan.is_some() {
                return Err(Box::new(ArgError(
                    "--fault-* options need --backend cluster or net \
                     (the local backend injects no faults)"
                        .into(),
                )));
            }
            let backend = LocalBackend::from_cluster_config(&cluster_config);
            update_factors(&backend, &x, &delta, &factors, &config)?
        }
        BackendKind::Net => {
            let tuning = NetTuning {
                respawn_budget: parsed
                    .get("net-respawn-budget", NetTuning::default().respawn_budget)?,
                ..NetTuning::default()
            };
            let host = WorkerHost::Process {
                program: std::env::current_exe()?,
                args: vec!["worker".into()],
            };
            let backend = dbtf::net_tasks::net_backend(cluster_config, host, tuning)?;
            let result = update_factors(&backend, &x, &delta, &factors, &config)?;
            let m = backend.metrics();
            if m.worker_respawns > 0 {
                println!(
                    "recovery: {} respawns, {} partitions recomputed, {} B re-shipped",
                    m.worker_respawns, m.partitions_recomputed, m.bytes_reshipped
                );
            }
            result
        }
    };

    let sets = delta.cells().iter().filter(|c| c.set).count();
    println!(
        "applied {} delta cells ({sets} set, {} cleared) to {:?}",
        delta.len(),
        delta.len() - sets,
        x,
    );
    println!(
        "re-swept {} of {} columns {:?}: |X ⊕ X̃| {} → {} over {} rounds{}",
        result.affected_columns.len(),
        factors.rank(),
        result.affected_columns,
        result.pre_error,
        result.error,
        result.iterations,
        if result.converged { " (converged)" } else { "" }
    );
    if config.storage == StorageKind::Mmap {
        println!(
            "storage: mmap (unfoldings spilled under {})",
            config.spill_dir.as_deref().unwrap_or("the system temp dir")
        );
    }
    FactorStore::write_store(Path::new(&out_path), set_version, &result.factors)?;
    println!("wrote factor set v{set_version} to {out_path}");

    if let Some(addr) = parsed.get_str("reload") {
        let mut client = ServeClient::connect(
            addr.parse()
                .map_err(|e| ArgError(format!("invalid --reload address {addr:?}: {e}")))?,
        )?;
        let source = parsed.get_str("reload-source");
        if let Some(raw) = source {
            // Validate locally so a typo fails before the server round-trip.
            raw.parse::<SourceKind>()
                .map_err(|e| ArgError(format!("invalid --reload-source: {e}")))?;
        }
        let (version, generation, invalidated) =
            client.reload(&out_path, source, Some(&delta_path))?;
        println!(
            "reloaded {addr}: serving v{version} (generation {generation}, \
             {invalidated} cached fibers invalidated)"
        );
    }
    Ok(())
}
