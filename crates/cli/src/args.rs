//! Minimal dependency-free argument parsing for the `dbtf` binary.

use std::collections::HashMap;

/// Parsed command line: a subcommand path plus `--flag value` options.
#[derive(Debug, Default)]
pub struct ParsedArgs {
    /// Positional words before the first `--flag` (the subcommand path).
    pub command: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// A parse/validation failure with a user-facing message.
#[derive(Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl ParsedArgs {
    /// Parses `args` (without the program name): leading bare words form
    /// the subcommand; `--name value` pairs become options; a `--name`
    /// followed by another `--…` or nothing is a boolean flag.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgError> {
        let mut parsed = ParsedArgs::default();
        let mut iter = args.into_iter().peekable();
        while let Some(word) = iter.peek() {
            if word.starts_with("--") {
                break;
            }
            parsed.command.push(iter.next().unwrap());
        }
        while let Some(word) = iter.next() {
            let Some(name) = word.strip_prefix("--") else {
                return Err(ArgError(format!(
                    "unexpected positional argument {word:?} after options"
                )));
            };
            if name.is_empty() {
                return Err(ArgError("empty option name `--`".into()));
            }
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().unwrap();
                    if parsed.options.insert(name.to_string(), value).is_some() {
                        return Err(ArgError(format!("option --{name} given twice")));
                    }
                }
                _ => parsed.flags.push(name.to_string()),
            }
        }
        Ok(parsed)
    }

    /// A required `--name value` option, parsed as `T`.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        let raw = self
            .options
            .get(name)
            .ok_or_else(|| ArgError(format!("missing required option --{name}")))?;
        raw.parse()
            .map_err(|_| ArgError(format!("invalid value for --{name}: {raw:?}")))
    }

    /// An optional `--name value`, parsed as `T`, defaulting to `default`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("invalid value for --{name}: {raw:?}"))),
        }
    }

    /// An optional string option.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Whether bare `--name` was given.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Parses a comma-separated triple, e.g. `--dims 64,64,64`.
    pub fn require_triple(&self, name: &str) -> Result<[usize; 3], ArgError> {
        let raw: String = self.require(name)?;
        let parts: Vec<usize> = raw
            .split(',')
            .map(|p| p.trim().parse())
            .collect::<Result<_, _>>()
            .map_err(|_| ArgError(format!("invalid triple for --{name}: {raw:?}")))?;
        if parts.len() != 3 {
            return Err(ArgError(format!(
                "--{name} needs three comma-separated values, got {raw:?}"
            )));
        }
        Ok([parts[0], parts[1], parts[2]])
    }

    /// Parses a comma-separated list of integers, e.g. `--candidates 2,4,8`.
    pub fn require_list(&self, name: &str) -> Result<Vec<usize>, ArgError> {
        let raw: String = self.require(name)?;
        let parts: Vec<usize> = raw
            .split(',')
            .map(|p| p.trim().parse())
            .collect::<Result<_, _>>()
            .map_err(|_| ArgError(format!("invalid list for --{name}: {raw:?}")))?;
        if parts.is_empty() {
            return Err(ArgError(format!("--{name} must not be empty")));
        }
        Ok(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<ParsedArgs, ArgError> {
        ParsedArgs::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn subcommand_and_options() {
        let a = parse(&["generate", "random", "--dims", "4,5,6", "--density", "0.1"]).unwrap();
        assert_eq!(a.command, vec!["generate", "random"]);
        assert_eq!(a.require_triple("dims").unwrap(), [4, 5, 6]);
        assert_eq!(a.get("density", 0.0f64).unwrap(), 0.1);
        assert_eq!(a.get("missing", 7u32).unwrap(), 7);
    }

    #[test]
    fn boolean_flags() {
        let a = parse(&["stats", "--input", "x.txt", "--binary"]).unwrap();
        assert!(a.has_flag("binary"));
        assert!(!a.has_flag("other"));
        assert_eq!(a.get_str("input"), Some("x.txt"));
    }

    #[test]
    fn missing_required() {
        let a = parse(&["factorize"]).unwrap();
        let err = a.require::<usize>("rank").unwrap_err();
        assert!(err.0.contains("--rank"));
    }

    #[test]
    fn bad_value() {
        let a = parse(&["factorize", "--rank", "ten"]).unwrap();
        assert!(a.require::<usize>("rank").is_err());
    }

    #[test]
    fn duplicate_option_rejected() {
        assert!(parse(&["x", "--a", "1", "--a", "2"]).is_err());
    }

    #[test]
    fn stray_positional_rejected() {
        assert!(parse(&["x", "--a", "1", "oops", "more"]).is_err());
    }

    #[test]
    fn lists_and_triples() {
        let a = parse(&["select-rank", "--candidates", "2, 4,8"]).unwrap();
        assert_eq!(a.require_list("candidates").unwrap(), vec![2, 4, 8]);
        let bad = parse(&["x", "--dims", "1,2"]).unwrap();
        assert!(bad.require_triple("dims").is_err());
    }
}
