//! Bounded-memory COO → columnar-unfolding conversion.
//!
//! [`write_unfolding_from_entries`] turns a stream of tensor entries into an
//! on-disk [`columnar`](crate::columnar) unfolding file without ever holding
//! the unfolding (or the entry list) in memory: entries are matricized into
//! `(row, col)` pairs, sorted in fixed-size chunks that spill to run files
//! in a spill directory, then k-way merged (with duplicate elimination)
//! straight into the single-pass [`UnfoldingWriter`].
//! Peak memory is one chunk buffer plus one buffered reader per run — the
//! configured [`SpillConfig::chunk_bytes`], never the nonzero count.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::columnar::UnfoldingWriter;
use crate::io::ParseError;
use crate::store::StoreError;
use crate::unfold::Mode;

/// Where and how large the external-sort scratch space is.
#[derive(Clone, Debug)]
pub struct SpillConfig {
    /// Directory run files are written to (created if absent, runs deleted
    /// after the merge).
    pub dir: PathBuf,
    /// In-memory sort buffer budget in bytes. Each buffered entry costs 16
    /// bytes; values below one page are rounded up to a small minimum.
    pub chunk_bytes: usize,
}

/// Default in-memory sort budget: 64 MiB, i.e. ~4M entries per run.
pub const DEFAULT_CHUNK_BYTES: usize = 64 << 20;

impl SpillConfig {
    /// A spill config with the default chunk budget.
    pub fn new<P: Into<PathBuf>>(dir: P) -> SpillConfig {
        SpillConfig {
            dir: dir.into(),
            chunk_bytes: DEFAULT_CHUNK_BYTES,
        }
    }

    /// Overrides the chunk budget (useful for tests and the memory bench).
    pub fn with_chunk_bytes(mut self, bytes: usize) -> SpillConfig {
        self.chunk_bytes = bytes;
        self
    }

    fn chunk_capacity(&self) -> usize {
        (self.chunk_bytes / 16).max(64)
    }
}

/// Errors from the streaming ingest pipeline: either the entry source
/// failed to parse, or the unfolding writer / spill files failed.
#[derive(Debug)]
pub enum IngestError {
    /// The COO entry source produced an error.
    Parse(ParseError),
    /// Writing the unfolding file or the spill runs failed.
    Store(StoreError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Parse(e) => write!(f, "entry source: {e}"),
            IngestError::Store(e) => write!(f, "unfolding store: {e}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<ParseError> for IngestError {
    fn from(e: ParseError) -> Self {
        IngestError::Parse(e)
    }
}

impl From<StoreError> for IngestError {
    fn from(e: StoreError) -> Self {
        IngestError::Store(e)
    }
}

fn spill_io(path: &Path, e: std::io::Error) -> IngestError {
    IngestError::Store(StoreError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    })
}

/// One spilled run of sorted `(row, col)` records, 12 bytes each.
struct Run {
    path: PathBuf,
    reader: BufReader<File>,
    remaining: u64,
}

impl Run {
    fn next(&mut self) -> Result<Option<(u32, u64)>, IngestError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let mut rec = [0u8; 12];
        self.reader
            .read_exact(&mut rec)
            .map_err(|e| spill_io(&self.path, e))?;
        self.remaining -= 1;
        Ok(Some((
            u32::from_le_bytes(rec[..4].try_into().unwrap()),
            u64::from_le_bytes(rec[4..].try_into().unwrap()),
        )))
    }
}

fn spill_run(
    dir: &Path,
    tag: &str,
    seq: usize,
    chunk: &mut Vec<(u32, u64)>,
) -> Result<Run, IngestError> {
    chunk.sort_unstable();
    chunk.dedup();
    let path = dir.join(format!("{}-{}-{}.run", tag, std::process::id(), seq));
    let file = File::create(&path).map_err(|e| spill_io(&path, e))?;
    let mut w = BufWriter::new(file);
    for &(r, c) in chunk.iter() {
        w.write_all(&r.to_le_bytes())
            .map_err(|e| spill_io(&path, e))?;
        w.write_all(&c.to_le_bytes())
            .map_err(|e| spill_io(&path, e))?;
    }
    let file = w
        .into_inner()
        .map_err(|e| spill_io(&path, e.into_error()))?;
    drop(file);
    let count = chunk.len() as u64;
    chunk.clear();
    let reader = BufReader::new(File::open(&path).map_err(|e| spill_io(&path, e))?);
    Ok(Run {
        path,
        reader,
        remaining: count,
    })
}

/// Streams COO entries into a columnar unfolding file for `mode`.
///
/// `entries` may arrive in any order and contain duplicates; the external
/// sort produces the same sorted, duplicate-free rows as
/// [`Unfolding::new`](crate::Unfolding::new), so the resulting file is
/// byte-identical to serializing the heap unfolding. Returns the number of
/// distinct entries written.
pub fn write_unfolding_from_entries<I>(
    entries: I,
    dims: [usize; 3],
    mode: Mode,
    out: &Path,
    spill: &SpillConfig,
) -> Result<u64, IngestError>
where
    I: IntoIterator<Item = Result<[u32; 3], ParseError>>,
{
    std::fs::create_dir_all(&spill.dir).map_err(|e| spill_io(&spill.dir, e))?;
    let tag = out
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unfolding".to_string());
    let cap = spill.chunk_capacity();
    let mut chunk: Vec<(u32, u64)> = Vec::with_capacity(cap.min(1 << 20));
    let mut runs: Vec<Run> = Vec::new();
    for entry in entries {
        let e = entry?;
        let (r, c) = mode.matricize(dims, e);
        chunk.push((r, c));
        if chunk.len() >= cap {
            let run = spill_run(&spill.dir, &tag, runs.len(), &mut chunk)?;
            runs.push(run);
        }
    }

    let mut writer = UnfoldingWriter::create(out, mode, dims)?;
    let mut written = 0u64;
    let result: Result<(), IngestError> = if runs.is_empty() {
        // Everything fit in one chunk: sort in place and stream it out.
        chunk.sort_unstable();
        chunk.dedup();
        (|| -> Result<(), StoreError> {
            for &(r, c) in &chunk {
                writer.push(r, c)?;
                written += 1;
            }
            Ok(())
        })()
        .map_err(IngestError::Store)
    } else {
        if !chunk.is_empty() {
            let run = spill_run(&spill.dir, &tag, runs.len(), &mut chunk)?;
            runs.push(run);
        }
        drop(chunk);
        merge_runs(&mut runs, |r, c| {
            writer.push(r, c)?;
            written += 1;
            Ok(())
        })
    };
    for run in &runs {
        let _ = std::fs::remove_file(&run.path);
    }
    result?;
    writer.finish()?;
    Ok(written)
}

/// K-way merge of sorted runs with duplicate elimination.
fn merge_runs<F>(runs: &mut [Run], mut sink: F) -> Result<(), IngestError>
where
    F: FnMut(u32, u64) -> Result<(), StoreError>,
{
    let mut heap: BinaryHeap<Reverse<(u32, u64, usize)>> = BinaryHeap::with_capacity(runs.len());
    for (i, run) in runs.iter_mut().enumerate() {
        if let Some((r, c)) = run.next()? {
            heap.push(Reverse((r, c, i)));
        }
    }
    let mut last: Option<(u32, u64)> = None;
    while let Some(Reverse((r, c, i))) = heap.pop() {
        if last != Some((r, c)) {
            sink(r, c).map_err(IngestError::Store)?;
            last = Some((r, c));
        }
        if let Some((nr, nc)) = runs[i].next()? {
            heap.push(Reverse((nr, nc, i)));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::MmapUnfolding;
    use crate::store::UnfoldingStore;
    use crate::{BoolTensor, Unfolding};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dbtf-stream-{}-{}", tag, std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn scrambled_entries() -> (BoolTensor, Vec<[u32; 3]>) {
        // Deterministic pseudo-random entries in arrival order, with
        // duplicates, covering a 9 x 11 x 7 tensor.
        let dims = [9usize, 11, 7];
        let mut raw = Vec::new();
        let mut state = 0x2545_f491_4f6c_dd1du64;
        for _ in 0..400 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = ((state >> 33) % dims[0] as u64) as u32;
            let j = ((state >> 13) % dims[1] as u64) as u32;
            let k = (state % dims[2] as u64) as u32;
            raw.push([i, j, k]);
        }
        (BoolTensor::from_entries(dims, raw.clone()), raw)
    }

    #[test]
    fn external_sort_matches_heap_unfolding_for_every_mode() {
        let (t, raw) = scrambled_entries();
        let dir = tmp_dir("extsort");
        for mode in Mode::ALL {
            // Budget small enough to force many runs (64-entry chunks).
            let spill = SpillConfig::new(&dir).with_chunk_bytes(1);
            let out = dir.join(format!("m{}.unf", mode.index()));
            let written = write_unfolding_from_entries(
                raw.iter().map(|&e| Ok(e)),
                t.dims(),
                mode,
                &out,
                &spill,
            )
            .unwrap();
            assert_eq!(written, t.nnz() as u64, "mode {mode:?}");
            let m = MmapUnfolding::open(&out).unwrap();
            let u = Unfolding::new(&t, mode);
            for r in 0..u.nrows() {
                assert_eq!(
                    UnfoldingStore::row(&m, r),
                    u.row(r),
                    "mode {mode:?} row {r}"
                );
            }
        }
    }

    #[test]
    fn in_memory_and_spilled_paths_produce_identical_files() {
        let (t, raw) = scrambled_entries();
        let dir = tmp_dir("identical");
        let big = dir.join("big.unf");
        let small = dir.join("small.unf");
        write_unfolding_from_entries(
            raw.iter().map(|&e| Ok(e)),
            t.dims(),
            Mode::Two,
            &big,
            &SpillConfig::new(&dir), // default budget: single chunk
        )
        .unwrap();
        write_unfolding_from_entries(
            raw.iter().map(|&e| Ok(e)),
            t.dims(),
            Mode::Two,
            &small,
            &SpillConfig::new(&dir).with_chunk_bytes(1), // many runs
        )
        .unwrap();
        assert_eq!(std::fs::read(&big).unwrap(), std::fs::read(&small).unwrap());
        // And identical to serializing the heap unfolding directly.
        let heap = dir.join("heap.unf");
        MmapUnfolding::write_from_store(&Unfolding::new(&t, Mode::Two), &heap).unwrap();
        assert_eq!(std::fs::read(&big).unwrap(), std::fs::read(&heap).unwrap());
    }

    #[test]
    fn run_files_are_cleaned_up() {
        let (t, raw) = scrambled_entries();
        let dir = tmp_dir("cleanup");
        let out = dir.join("out.unf");
        write_unfolding_from_entries(
            raw.iter().map(|&e| Ok(e)),
            t.dims(),
            Mode::One,
            &out,
            &SpillConfig::new(&dir).with_chunk_bytes(1),
        )
        .unwrap();
        let leftover: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "run"))
            .collect();
        assert!(leftover.is_empty(), "run files left behind: {leftover:?}");
    }

    #[test]
    fn source_errors_propagate() {
        let dir = tmp_dir("err");
        let out = dir.join("out.unf");
        let entries = vec![
            Ok([0u32, 0, 0]),
            Err(ParseError::Malformed(2, "bad".into())),
        ];
        assert!(matches!(
            write_unfolding_from_entries(
                entries,
                [2, 2, 2],
                Mode::One,
                &out,
                &SpillConfig::new(&dir)
            ),
            Err(IngestError::Parse(ParseError::Malformed(2, _)))
        ));
    }

    #[test]
    fn empty_source_produces_valid_empty_file() {
        let dir = tmp_dir("empty");
        let out = dir.join("out.unf");
        let written = write_unfolding_from_entries(
            std::iter::empty(),
            [3, 4, 5],
            Mode::Three,
            &out,
            &SpillConfig::new(&dir),
        )
        .unwrap();
        assert_eq!(written, 0);
        let m = MmapUnfolding::open(&out).unwrap();
        assert_eq!(UnfoldingStore::nnz(&m), 0);
        assert_eq!(UnfoldingStore::nrows(&m), 5);
    }
}
