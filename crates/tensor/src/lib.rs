//! Boolean tensor and matrix algebra for DBTF.
//!
//! This crate implements everything in Section II (*Preliminaries*) of
//! *Fast and Scalable Distributed Boolean Tensor Factorization* (Park, Oh,
//! Kang — ICDE 2017):
//!
//! - [`BitVec`] and [`BitMatrix`]: bit-packed binary vectors and matrices
//!   over `B = {0, 1}` with Boolean sum (`∨`), pointwise product (`∧`) and
//!   XOR-popcount distances.
//! - [`BoolTensor`]: a sparse three-way binary tensor.
//! - [`Unfolding`]: the mode-*n* matricization `X_(n)` of a tensor
//!   (Equation 1 of the paper), stored sparsely row-by-row — the layout the
//!   DBTF algorithm partitions across machines.
//! - [`ops`]: Boolean matrix product (Eq. 6), Kronecker product (Eq. 2),
//!   Khatri-Rao product (Eq. 3) and the pointwise vector-matrix product
//!   (Eq. 4).
//! - [`reconstruct`]: rank-R Boolean CP reconstruction
//!   `X̃ = ⊕_r a_r ∘ b_r ∘ c_r` (Eq. 10) and the reconstruction error
//!   `|X ⊕ X̃|` used throughout the paper's Section IV-D.
//! - [`UnfoldingStore`]: the row-access abstraction both the heap
//!   [`Unfolding`] and the on-disk [`MmapUnfolding`] implement, plus the
//!   [`columnar`] `DBTFUNFD` file format and the [`stream`] bounded-memory
//!   COO → unfolding external sort that feeds it.
//!
//! # Conventions
//!
//! All indices are 0-based (the paper uses 1-based indices). A three-way
//! tensor has shape `I × J × K`; mode-1 fibers are columns, mode-2 fibers are
//! rows and mode-3 fibers are tubes. The mode-n matricization maps entry
//! `(i, j, k)` to:
//!
//! | mode | row | column        |
//! |------|-----|---------------|
//! | 1    | `i` | `j + k * J`   |
//! | 2    | `j` | `i + k * I`   |
//! | 3    | `k` | `i + j * I`   |
//!
//! which is the 0-based form of Equation 1.
//!
//! # Quick example
//!
//! ```
//! use dbtf_tensor::{BoolTensor, BitMatrix, reconstruct};
//!
//! // A rank-1 tensor: a ∘ b ∘ c with a = [1,1], b = [1,0,1], c = [0,1].
//! let a = BitMatrix::from_rows(2, 1, &[&[0usize][..], &[0][..]]);
//! let b = BitMatrix::from_rows(3, 1, &[&[0usize][..], &[][..], &[0][..]]);
//! let c = BitMatrix::from_rows(2, 1, &[&[][..], &[0usize][..]]);
//! let x = reconstruct::reconstruct(&a, &b, &c);
//! assert_eq!(x.nnz(), 4); // 2 * 2 * 1 ones
//! assert_eq!(reconstruct::reconstruction_error(&x, &a, &b, &c), 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bitmatrix;
mod bitvec;
pub mod columnar;
mod delta;
pub mod io;
pub mod matrix_io;
#[cfg(all(unix, target_endian = "little"))]
mod mmap_sys;
pub mod ops;
pub mod reconstruct;
mod store;
pub mod stream;
mod tensor;
mod unfold;
mod wire_impls;

pub use bitmatrix::BitMatrix;
pub use bitvec::BitVec;
pub use columnar::{MmapUnfolding, UnfoldingHeader, UnfoldingWriter};
pub use delta::{DeltaCell, OverlayUnfolding, TensorDelta};
pub use store::{StoreError, UnfoldingStore};
pub use tensor::{BoolTensor, TensorBuilder};
pub use unfold::{Mode, Unfolding};
pub use wire_impls::{ColumnDecision, FactorTriple};

/// The number of bits in one storage word of [`BitVec`] / [`BitMatrix`].
pub const WORD_BITS: usize = 64;
