//! Row-access abstraction over mode-n unfoldings.
//!
//! The DBTF partitioner and kernels only ever read an unfolding row by row
//! (whole rows or a `[lo, hi)` column window). [`UnfoldingStore`] captures
//! exactly that contract so the same partitioning code runs against the
//! heap-resident [`Unfolding`](crate::Unfolding) and the on-disk
//! [`MmapUnfolding`](crate::MmapUnfolding) without dynamic dispatch.
//!
//! The contract pinned by the property tests in `unfold.rs`:
//!
//! - `row(r)` returns the strictly increasing column indices of row `r`,
//!   each in `[0, ncols)`.
//! - `row_range(r, lo, hi)` returns exactly the entries of `row(r)` in
//!   `[lo, hi)`; it is empty when `lo >= hi` and equals `row(r)` for the
//!   full range `[0, ncols)`.
//! - `nnz()` is the sum of all row lengths.

use crate::unfold::{Mode, Unfolding};

/// Read-only row access to a mode-n unfolding `X_(n)`.
///
/// Implementations must return rows as sorted, duplicate-free `u64` column
/// indices. Borrowed slices let both the heap store and the mmap store hand
/// out views without copying, which keeps the partition-build hot loop
/// allocation-free regardless of backing.
pub trait UnfoldingStore {
    /// The mode this unfolding was taken along.
    fn mode(&self) -> Mode;

    /// The shape of the original tensor.
    fn tensor_dims(&self) -> [usize; 3];

    /// Number of rows (`P` in Algorithm 4). Equals `tensor_dims()[mode]`.
    fn nrows(&self) -> usize;

    /// Number of columns (the product of the two non-mode dimensions).
    fn ncols(&self) -> u64;

    /// Total number of ones (equals `|X|`).
    fn nnz(&self) -> u64;

    /// The sorted one-column indices of row `r`.
    fn row(&self, r: usize) -> &[u64];

    /// The one-column indices of row `r` that fall in `[lo, hi)`, found by
    /// binary search (`O(log nnz_row + output)`). Empty when `lo >= hi`.
    fn row_range(&self, r: usize, lo: u64, hi: u64) -> &[u64] {
        let row = self.row(r);
        let a = row.partition_point(|&c| c < lo);
        let b = row.partition_point(|&c| c < hi);
        &row[a..b.max(a)]
    }

    /// Tests whether the unfolded matrix has a one at `(r, c)`.
    fn get(&self, r: usize, c: u64) -> bool {
        self.row(r).binary_search(&c).is_ok()
    }
}

impl UnfoldingStore for Unfolding {
    #[inline]
    fn mode(&self) -> Mode {
        Unfolding::mode(self)
    }

    #[inline]
    fn tensor_dims(&self) -> [usize; 3] {
        Unfolding::tensor_dims(self)
    }

    #[inline]
    fn nrows(&self) -> usize {
        Unfolding::nrows(self)
    }

    #[inline]
    fn ncols(&self) -> u64 {
        Unfolding::ncols(self)
    }

    #[inline]
    fn nnz(&self) -> u64 {
        Unfolding::nnz(self) as u64
    }

    #[inline]
    fn row(&self, r: usize) -> &[u64] {
        Unfolding::row(self, r)
    }

    #[inline]
    fn row_range(&self, r: usize, lo: u64, hi: u64) -> &[u64] {
        Unfolding::row_range(self, r, lo, hi)
    }

    #[inline]
    fn get(&self, r: usize, c: u64) -> bool {
        Unfolding::get(self, r, c)
    }
}

impl<S: UnfoldingStore + ?Sized> UnfoldingStore for &S {
    #[inline]
    fn mode(&self) -> Mode {
        (**self).mode()
    }

    #[inline]
    fn tensor_dims(&self) -> [usize; 3] {
        (**self).tensor_dims()
    }

    #[inline]
    fn nrows(&self) -> usize {
        (**self).nrows()
    }

    #[inline]
    fn ncols(&self) -> u64 {
        (**self).ncols()
    }

    #[inline]
    fn nnz(&self) -> u64 {
        (**self).nnz()
    }

    #[inline]
    fn row(&self, r: usize) -> &[u64] {
        (**self).row(r)
    }

    #[inline]
    fn row_range(&self, r: usize, lo: u64, hi: u64) -> &[u64] {
        (**self).row_range(r, lo, hi)
    }

    #[inline]
    fn get(&self, r: usize, c: u64) -> bool {
        (**self).get(r, c)
    }
}

/// Errors from reading or writing the on-disk columnar unfolding format.
///
/// Every corruption mode is a distinct variant so callers (and the
/// error-path test suite) can tell *what* is wrong with a file, mirroring
/// the checkpoint error taxonomy. All variants carry the offending path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed (open, read, write, seek).
    Io {
        /// Path of the file being accessed.
        path: String,
        /// Stringified OS error.
        detail: String,
    },
    /// The file does not start with the `DBTFUNFD` magic bytes.
    BadMagic {
        /// Path of the rejected file.
        path: String,
    },
    /// The file is shorter than a section the header declares.
    Truncated {
        /// Path of the rejected file.
        path: String,
        /// Which section was cut off (`"header"`, `"row index"`, `"column data"`).
        section: &'static str,
    },
    /// A stored checksum does not match the recomputed one.
    ChecksumMismatch {
        /// Path of the rejected file.
        path: String,
        /// Which section failed (`"header"`, `"row index"`, `"column data"`).
        section: &'static str,
    },
    /// The file is a columnar unfolding, but of an unsupported version.
    VersionSkew {
        /// Path of the rejected file.
        path: String,
        /// Version number found in the header.
        found: u32,
        /// The single version this build reads.
        supported: u32,
    },
    /// Header fields are internally inconsistent (bad mode, offsets out of
    /// order, row index not monotone, …).
    Invalid {
        /// Path of the rejected file.
        path: String,
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, detail } => write!(f, "{path}: io error: {detail}"),
            StoreError::BadMagic { path } => {
                write!(f, "{path}: not a DBTF columnar unfolding (bad magic)")
            }
            StoreError::Truncated { path, section } => {
                write!(f, "{path}: truncated {section}")
            }
            StoreError::ChecksumMismatch { path, section } => {
                write!(f, "{path}: {section} checksum mismatch")
            }
            StoreError::VersionSkew {
                path,
                found,
                supported,
            } => write!(
                f,
                "{path}: unfolding format version {found} (this build reads only v{supported})"
            ),
            StoreError::Invalid { path, detail } => {
                write!(f, "{path}: invalid unfolding file: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    pub(crate) fn io(path: &std::path::Path, err: std::io::Error) -> Self {
        StoreError::Io {
            path: path.display().to_string(),
            detail: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BoolTensor;

    #[test]
    fn heap_unfolding_satisfies_the_trait() {
        let t = BoolTensor::from_entries(
            [2, 3, 4],
            vec![[0, 0, 0], [1, 2, 3], [0, 1, 2], [1, 0, 0], [0, 2, 1]],
        );
        let u = Unfolding::new(&t, Mode::One);
        let s: &dyn UnfoldingStore = &u;
        assert_eq!(s.mode(), Mode::One);
        assert_eq!(s.tensor_dims(), [2, 3, 4]);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.ncols(), 12);
        assert_eq!(s.nnz(), 5);
        assert_eq!(s.row(0), &[0, 5, 7]);
        assert_eq!(s.row_range(0, 1, 7), &[5]);
        assert!(s.get(0, 5));
        assert!(!s.get(0, 6));
    }

    #[test]
    fn store_errors_display_their_path_and_kind() {
        let e = StoreError::BadMagic {
            path: "x.unf".into(),
        };
        assert!(e.to_string().contains("bad magic"));
        let e = StoreError::VersionSkew {
            path: "x.unf".into(),
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
        let e = StoreError::Truncated {
            path: "x.unf".into(),
            section: "row index",
        };
        assert!(e.to_string().contains("truncated row index"));
    }
}
