//! Sparse three-way Boolean tensors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A sparse three-way binary tensor `X ∈ B^{I×J×K}`.
///
/// Only the coordinates of the ones are stored, sorted lexicographically by
/// `(i, j, k)` with duplicates removed, so `|X|` ([`BoolTensor::nnz`]) is the
/// storage size. Indices are `u32` (mode sizes up to 2³² − 1), matching the
/// scale of the paper's experiments.
///
/// Construct with [`TensorBuilder`] (streaming inserts) or
/// [`BoolTensor::from_entries`].
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoolTensor {
    dims: [usize; 3],
    /// Sorted, deduplicated `(i, j, k)` coordinates of the ones.
    entries: Vec<[u32; 3]>,
}

impl BoolTensor {
    /// An all-zeros tensor of shape `I × J × K`.
    pub fn empty(dims: [usize; 3]) -> Self {
        Self::check_dims(dims);
        BoolTensor {
            dims,
            entries: Vec::new(),
        }
    }

    /// Builds a tensor from a list of one-coordinates (any order, duplicates
    /// allowed).
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range or a mode size exceeds
    /// `u32::MAX`.
    pub fn from_entries(dims: [usize; 3], mut entries: Vec<[u32; 3]>) -> Self {
        Self::check_dims(dims);
        for e in &entries {
            for m in 0..3 {
                assert!(
                    (e[m] as usize) < dims[m],
                    "entry {e:?} out of range for dims {dims:?}"
                );
            }
        }
        entries.sort_unstable();
        entries.dedup();
        BoolTensor { dims, entries }
    }

    fn check_dims(dims: [usize; 3]) {
        for d in dims {
            assert!(d <= u32::MAX as usize, "mode size {d} exceeds u32 range");
        }
    }

    /// Shape `[I, J, K]`.
    #[inline]
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Number of ones, `|X|` in the paper's notation.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the tensor has no ones.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Frobenius norm `‖X‖`. For a binary tensor this is `sqrt(|X|)`.
    pub fn frobenius_norm(&self) -> f64 {
        (self.nnz() as f64).sqrt()
    }

    /// Fraction of ones among all `I·J·K` cells.
    pub fn density(&self) -> f64 {
        let cells = self.dims.iter().map(|&d| d as f64).product::<f64>();
        if cells == 0.0 {
            0.0
        } else {
            self.nnz() as f64 / cells
        }
    }

    /// Tests whether `x_{ijk} = 1` (binary search).
    pub fn contains(&self, i: u32, j: u32, k: u32) -> bool {
        self.entries.binary_search(&[i, j, k]).is_ok()
    }

    /// The sorted coordinate list.
    #[inline]
    pub fn entries(&self) -> &[[u32; 3]] {
        &self.entries
    }

    /// Iterates over the one-coordinates in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = [u32; 3]> + '_ {
        self.entries.iter().copied()
    }

    /// Number of cells at which `self` and `other` differ: `|X ⊕ Y|` with
    /// XOR semantics — the reconstruction error measure of Section IV-D.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn xor_count(&self, other: &BoolTensor) -> usize {
        assert_eq!(self.dims, other.dims, "shape mismatch");
        // Both entry lists are sorted: a linear merge counts the symmetric
        // difference without materializing it.
        let (mut a, mut b) = (0usize, 0usize);
        let mut diff = 0usize;
        while a < self.entries.len() && b < other.entries.len() {
            match self.entries[a].cmp(&other.entries[b]) {
                std::cmp::Ordering::Less => {
                    diff += 1;
                    a += 1;
                }
                std::cmp::Ordering::Greater => {
                    diff += 1;
                    b += 1;
                }
                std::cmp::Ordering::Equal => {
                    a += 1;
                    b += 1;
                }
            }
        }
        diff + (self.entries.len() - a) + (other.entries.len() - b)
    }

    /// Number of cells that are one in both tensors: `|X ∧ Y|`.
    pub fn and_count(&self, other: &BoolTensor) -> usize {
        assert_eq!(self.dims, other.dims, "shape mismatch");
        let (mut a, mut b) = (0usize, 0usize);
        let mut both = 0usize;
        while a < self.entries.len() && b < other.entries.len() {
            match self.entries[a].cmp(&other.entries[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    both += 1;
                    a += 1;
                    b += 1;
                }
            }
        }
        both
    }

    /// Boolean sum `X ⊕ Y` (set union of the ones).
    pub fn or(&self, other: &BoolTensor) -> BoolTensor {
        assert_eq!(self.dims, other.dims, "shape mismatch");
        let mut entries = Vec::with_capacity(self.nnz() + other.nnz());
        entries.extend_from_slice(&self.entries);
        entries.extend_from_slice(&other.entries);
        BoolTensor::from_entries(self.dims, entries)
    }

    /// The entries of the mode-1 slice `x_{i,:,:}` — a contiguous run of
    /// the sorted entry list (`O(log |X|)` to locate).
    pub fn slice_mode1(&self, i: u32) -> &[[u32; 3]] {
        let lo = self.entries.partition_point(|e| e[0] < i);
        let hi = self.entries.partition_point(|e| e[0] <= i);
        &self.entries[lo..hi]
    }

    /// The mode-1 (column) fiber `x_{:,j,k}`: sorted `i` with
    /// `x_{ijk} = 1`. `O(|X|)` scan — the only mode whose fibers are not
    /// clustered in the sorted entry list.
    pub fn fiber_mode1(&self, j: u32, k: u32) -> Vec<u32> {
        self.entries
            .iter()
            .filter(|e| e[1] == j && e[2] == k)
            .map(|e| e[0])
            .collect()
    }

    /// The mode-2 (row) fiber `x_{i,:,k}`: sorted `j` with `x_{ijk} = 1`.
    /// `O(log |X| + slice)` via the mode-1 slice.
    pub fn fiber_mode2(&self, i: u32, k: u32) -> Vec<u32> {
        self.slice_mode1(i)
            .iter()
            .filter(|e| e[2] == k)
            .map(|e| e[1])
            .collect()
    }

    /// The mode-3 (tube) fiber `x_{i,j,:}`: sorted `k` with `x_{ijk} = 1`.
    /// `O(log |X| + fiber)` — the fiber is contiguous in the entry list.
    pub fn fiber_mode3(&self, i: u32, j: u32) -> Vec<u32> {
        let lo = self.entries.partition_point(|e| (e[0], e[1]) < (i, j));
        let hi = self.entries.partition_point(|e| (e[0], e[1]) <= (i, j));
        self.entries[lo..hi].iter().map(|e| e[2]).collect()
    }

    /// Permutes the modes: the result `Y` has `y_{e[perm[0]], e[perm[1]],
    /// e[perm[2]]} = x_e`, i.e. mode `m` of `Y` is mode `perm[m]` of `X`.
    ///
    /// Mode permutations are the gauge freedom of the tensor layout: a CP
    /// factorization `(A, B, C)` of `X` turns into one of
    /// `X.permute_modes(perm)` by permuting the factor matrices the same
    /// way, and `|X ⊖ X̂|` is invariant — the metamorphic relation the
    /// verification oracles check.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `[0, 1, 2]`.
    pub fn permute_modes(&self, perm: [usize; 3]) -> BoolTensor {
        let mut seen = [false; 3];
        for &m in &perm {
            assert!(m < 3 && !seen[m], "{perm:?} is not a mode permutation");
            seen[m] = true;
        }
        let dims = [self.dims[perm[0]], self.dims[perm[1]], self.dims[perm[2]]];
        let entries = self
            .entries
            .iter()
            .map(|e| [e[perm[0]], e[perm[1]], e[perm[2]]])
            .collect();
        BoolTensor::from_entries(dims, entries)
    }

    /// The number of ones whose coordinates fall inside the given index
    /// ranges (a subtensor popcount, used by Walk'n'Merge's density checks).
    pub fn count_in_box(
        &self,
        i_range: std::ops::Range<u32>,
        j_range: std::ops::Range<u32>,
        k_range: std::ops::Range<u32>,
    ) -> usize {
        self.entries
            .iter()
            .filter(|e| {
                i_range.contains(&e[0]) && j_range.contains(&e[1]) && k_range.contains(&e[2])
            })
            .count()
    }
}

impl fmt::Debug for BoolTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BoolTensor[{}×{}×{}, |X| = {}]",
            self.dims[0],
            self.dims[1],
            self.dims[2],
            self.nnz()
        )
    }
}

/// Streaming builder for [`BoolTensor`].
///
/// Collects coordinates (any order, duplicates fine) and sorts/dedups once at
/// [`TensorBuilder::build`]. Cheaper than repeated `from_entries` merges when
/// generating large workloads.
#[derive(Clone, Debug)]
pub struct TensorBuilder {
    dims: [usize; 3],
    entries: Vec<[u32; 3]>,
}

impl TensorBuilder {
    /// Starts a builder for a tensor of shape `dims`.
    pub fn new(dims: [usize; 3]) -> Self {
        BoolTensor::check_dims(dims);
        TensorBuilder {
            dims,
            entries: Vec::new(),
        }
    }

    /// Starts a builder with pre-reserved capacity for `nnz` ones.
    pub fn with_capacity(dims: [usize; 3], nnz: usize) -> Self {
        BoolTensor::check_dims(dims);
        TensorBuilder {
            dims,
            entries: Vec::with_capacity(nnz),
        }
    }

    /// Records `x_{ijk} = 1`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    #[inline]
    pub fn insert(&mut self, i: u32, j: u32, k: u32) {
        debug_assert!(
            (i as usize) < self.dims[0]
                && (j as usize) < self.dims[1]
                && (k as usize) < self.dims[2],
            "entry ({i}, {j}, {k}) out of range for dims {:?}",
            self.dims
        );
        self.entries.push([i, j, k]);
    }

    /// Number of recorded (possibly duplicate) coordinates so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finishes the tensor (sorts and deduplicates).
    pub fn build(self) -> BoolTensor {
        BoolTensor::from_entries(self.dims, self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BoolTensor {
        BoolTensor::from_entries([2, 3, 4], vec![[0, 0, 0], [1, 2, 3], [0, 1, 2]])
    }

    #[test]
    fn from_entries_sorts_and_dedups() {
        let t = BoolTensor::from_entries([2, 2, 2], vec![[1, 1, 1], [0, 0, 0], [1, 1, 1]]);
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.entries(), &[[0, 0, 0], [1, 1, 1]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_entries_rejects_out_of_range() {
        BoolTensor::from_entries([2, 2, 2], vec![[2, 0, 0]]);
    }

    #[test]
    fn contains_and_nnz() {
        let t = small();
        assert_eq!(t.nnz(), 3);
        assert!(t.contains(0, 0, 0));
        assert!(t.contains(1, 2, 3));
        assert!(!t.contains(1, 0, 0));
    }

    #[test]
    fn density_and_norm() {
        let t = small();
        assert!((t.density() - 3.0 / 24.0).abs() < 1e-12);
        assert!((t.frobenius_norm() - 3f64.sqrt()).abs() < 1e-12);
        assert_eq!(BoolTensor::empty([0, 5, 5]).density(), 0.0);
    }

    #[test]
    fn xor_count_symmetric_difference() {
        let a = small();
        let b = BoolTensor::from_entries([2, 3, 4], vec![[0, 0, 0], [1, 1, 1]]);
        // a \ b = {(1,2,3), (0,1,2)}, b \ a = {(1,1,1)} → 3 differing cells.
        assert_eq!(a.xor_count(&b), 3);
        assert_eq!(b.xor_count(&a), 3);
        assert_eq!(a.xor_count(&a), 0);
    }

    #[test]
    fn and_count_intersection() {
        let a = small();
        let b = BoolTensor::from_entries([2, 3, 4], vec![[0, 0, 0], [1, 1, 1]]);
        assert_eq!(a.and_count(&b), 1);
    }

    #[test]
    fn or_is_union() {
        let a = small();
        let b = BoolTensor::from_entries([2, 3, 4], vec![[0, 0, 0], [1, 1, 1]]);
        let u = a.or(&b);
        assert_eq!(u.nnz(), 4);
        assert!(u.contains(1, 1, 1));
        assert!(u.contains(0, 1, 2));
    }

    #[test]
    fn count_in_box() {
        let t = small();
        assert_eq!(t.count_in_box(0..2, 0..3, 0..4), 3);
        // (0,0,0) and (0,1,2) fall inside; (1,2,3) does not.
        assert_eq!(t.count_in_box(0..1, 0..2, 0..3), 2);
        assert_eq!(t.count_in_box(1..2, 2..3, 3..4), 1);
        assert_eq!(t.count_in_box(0..0, 0..3, 0..4), 0);
    }

    #[test]
    fn fibers_match_contains() {
        let t = BoolTensor::from_entries(
            [3, 4, 5],
            vec![[0, 1, 2], [0, 1, 4], [0, 2, 2], [1, 1, 2], [2, 3, 0]],
        );
        assert_eq!(t.fiber_mode1(1, 2), vec![0, 1]);
        assert_eq!(t.fiber_mode2(0, 2), vec![1, 2]);
        assert_eq!(t.fiber_mode3(0, 1), vec![2, 4]);
        assert_eq!(t.fiber_mode1(3, 0), vec![2]);
        assert!(t.fiber_mode2(2, 4).is_empty());
        // Exhaustive consistency with contains().
        for j in 0..4u32 {
            for k in 0..5u32 {
                let fiber = t.fiber_mode1(j, k);
                for i in 0..3u32 {
                    assert_eq!(fiber.contains(&i), t.contains(i, j, k));
                }
            }
        }
    }

    #[test]
    fn slice_mode1_is_contiguous_run() {
        let t = small();
        assert_eq!(t.slice_mode1(0), &[[0, 0, 0], [0, 1, 2]]);
        assert_eq!(t.slice_mode1(1), &[[1, 2, 3]]);
        assert!(BoolTensor::empty([2, 2, 2]).slice_mode1(0).is_empty());
    }

    #[test]
    fn permute_modes_relabels_coordinates() {
        let t = small();
        let p = t.permute_modes([2, 0, 1]); // y_{k,i,j} = x_{i,j,k}
        assert_eq!(p.dims(), [4, 2, 3]);
        assert_eq!(p.nnz(), t.nnz());
        for [i, j, k] in t.iter() {
            assert!(p.contains(k, i, j));
        }
        // Identity permutation is a no-op; applying a permutation and its
        // inverse round-trips.
        assert_eq!(t.permute_modes([0, 1, 2]), t);
        assert_eq!(p.permute_modes([1, 2, 0]), t);
    }

    #[test]
    #[should_panic(expected = "not a mode permutation")]
    fn permute_modes_rejects_non_permutation() {
        small().permute_modes([0, 0, 2]);
    }

    #[test]
    fn builder_matches_from_entries() {
        let mut b = TensorBuilder::with_capacity([2, 3, 4], 4);
        assert!(b.is_empty());
        b.insert(1, 2, 3);
        b.insert(0, 0, 0);
        b.insert(0, 1, 2);
        b.insert(0, 0, 0); // duplicate
        assert_eq!(b.len(), 4);
        assert_eq!(b.build(), small());
    }
}
