//! Rank-R Boolean CP reconstruction and reconstruction error.

use crate::{BitMatrix, BoolTensor, TensorBuilder};

/// Materializes the rank-R Boolean CP reconstruction
/// `X̃ = ⊕_{r=1}^{R} a_{:r} ∘ b_{:r} ∘ c_{:r}` (Equation 10).
///
/// Factors are `A: I × R`, `B: J × R`, `C: K × R`. The result is sparse;
/// the Boolean sum makes overlapping rank-1 blocks union rather than add.
///
/// Cost is `Σ_r |a_{:r}|·|b_{:r}|·|c_{:r}|` insertions plus a sort — fine
/// for the evaluation-scale tensors of Section IV-D, but prefer
/// [`reconstruction_error`]'s streaming variant when only the error is
/// needed.
///
/// # Panics
///
/// Panics if the factors disagree on the rank.
pub fn reconstruct(a: &BitMatrix, b: &BitMatrix, c: &BitMatrix) -> BoolTensor {
    let r = a.cols();
    assert!(
        b.cols() == r && c.cols() == r,
        "factor ranks differ: {} / {} / {}",
        r,
        b.cols(),
        c.cols()
    );
    let mut builder = TensorBuilder::new([a.rows(), b.rows(), c.rows()]);
    for col in 0..r {
        let ais: Vec<usize> = a.column(col).iter_ones().collect();
        let bjs: Vec<usize> = b.column(col).iter_ones().collect();
        let cks: Vec<usize> = c.column(col).iter_ones().collect();
        for &i in &ais {
            for &j in &bjs {
                for &k in &cks {
                    builder.insert(i as u32, j as u32, k as u32);
                }
            }
        }
    }
    builder.build()
}

/// The reconstruction error `|X ⊕ X̃|` — the number of cells at which the
/// input differs from the rank-R reconstruction (Section IV-D's measure;
/// for binary data it equals `‖X − X̃‖²_F`).
pub fn reconstruction_error(x: &BoolTensor, a: &BitMatrix, b: &BitMatrix, c: &BitMatrix) -> usize {
    let x_hat = reconstruct(a, b, c);
    x.xor_count(&x_hat)
}

/// Relative reconstruction error `|X ⊕ X̃| / |X|`.
///
/// Returns 0.0 for an all-zero input reconstructed exactly, and positive
/// infinity when `|X| = 0` but the reconstruction is non-empty.
pub fn relative_error(x: &BoolTensor, a: &BitMatrix, b: &BitMatrix, c: &BitMatrix) -> f64 {
    let err = reconstruction_error(x, a, b, c);
    if x.nnz() == 0 {
        if err == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        err as f64 / x.nnz() as f64
    }
}

/// Number of ones of `x` covered by the reconstruction and number of ones
/// the reconstruction adds outside `x`: `(|X ∧ X̃|, |X̃ \ X|)`.
///
/// `error = (|X| − covered) + extra`; exposing the split helps the
/// Walk'n'Merge-style coverage analyses and the examples.
pub fn coverage(x: &BoolTensor, a: &BitMatrix, b: &BitMatrix, c: &BitMatrix) -> (usize, usize) {
    let x_hat = reconstruct(a, b, c);
    let covered = x.and_count(&x_hat);
    let extra = x_hat.nnz() - covered;
    (covered, extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{bool_matmul, khatri_rao};
    use crate::{Mode, Unfolding};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rank1_outer_product() {
        // a = e0+e1 (I=2), b = e0+e2 (J=3), c = e1 (K=2) → 4 ones.
        let a = BitMatrix::from_rows(2, 1, &[&[0][..], &[0][..]]);
        let b = BitMatrix::from_rows(3, 1, &[&[0][..], &[][..], &[0][..]]);
        let c = BitMatrix::from_rows(2, 1, &[&[][..], &[0][..]]);
        let x = reconstruct(&a, &b, &c);
        assert_eq!(x.dims(), [2, 3, 2]);
        assert_eq!(x.nnz(), 4);
        for (i, j) in [(0, 0), (0, 2), (1, 0), (1, 2)] {
            assert!(x.contains(i, j, 1));
        }
    }

    #[test]
    fn boolean_sum_of_rank1_terms_unions() {
        // Two overlapping rank-1 blocks: union, not sum.
        let a = BitMatrix::from_rows(2, 2, &[&[0, 1][..], &[][..]]);
        let b = BitMatrix::from_rows(2, 2, &[&[0, 1][..], &[][..]]);
        let c = BitMatrix::from_rows(2, 2, &[&[0, 1][..], &[][..]]);
        let x = reconstruct(&a, &b, &c);
        assert_eq!(x.nnz(), 1); // both terms produce only (0,0,0)
    }

    #[test]
    fn reconstruction_matches_matricized_form() {
        // X̃_(1) must equal A ∘ (C ⊙ B)ᵀ (Equation 12).
        let mut rng = StdRng::seed_from_u64(11);
        let (i, j, k, r) = (4, 5, 3, 2);
        let a = BitMatrix::random(i, r, 0.5, &mut rng);
        let b = BitMatrix::random(j, r, 0.5, &mut rng);
        let c = BitMatrix::random(k, r, 0.5, &mut rng);
        let x = reconstruct(&a, &b, &c);
        let unf = Unfolding::new(&x, Mode::One);
        let expected = bool_matmul(&a, &khatri_rao(&c, &b).transpose());
        for row in 0..i {
            for col in 0..(j * k) as u64 {
                assert_eq!(
                    unf.get(row, col),
                    expected.get(row, col as usize),
                    "mismatch at ({row}, {col})"
                );
            }
        }
    }

    #[test]
    fn exact_factorization_has_zero_error() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = BitMatrix::random(6, 3, 0.4, &mut rng);
        let b = BitMatrix::random(7, 3, 0.4, &mut rng);
        let c = BitMatrix::random(5, 3, 0.4, &mut rng);
        let x = reconstruct(&a, &b, &c);
        assert_eq!(reconstruction_error(&x, &a, &b, &c), 0);
        assert_eq!(relative_error(&x, &a, &b, &c), 0.0);
    }

    #[test]
    fn error_counts_both_directions() {
        // X has one extra 1 and misses one reconstructed 1.
        let a = BitMatrix::from_rows(2, 1, &[&[0][..], &[][..]]);
        let b = BitMatrix::from_rows(2, 1, &[&[0][..], &[][..]]);
        let c = BitMatrix::from_rows(2, 1, &[&[0][..], &[][..]]);
        // X̃ = {(0,0,0)}. X = {(1,1,1)}.
        let x = BoolTensor::from_entries([2, 2, 2], vec![[1, 1, 1]]);
        assert_eq!(reconstruction_error(&x, &a, &b, &c), 2);
        assert_eq!(relative_error(&x, &a, &b, &c), 2.0);
    }

    #[test]
    fn coverage_split() {
        let a = BitMatrix::from_rows(2, 1, &[&[0][..], &[0][..]]);
        let b = BitMatrix::from_rows(1, 1, &[&[0][..]]);
        let c = BitMatrix::from_rows(1, 1, &[&[0][..]]);
        // X̃ = {(0,0,0), (1,0,0)}; X = {(0,0,0)}.
        let x = BoolTensor::from_entries([2, 1, 1], vec![[0, 0, 0]]);
        let (covered, extra) = coverage(&x, &a, &b, &c);
        assert_eq!(covered, 1);
        assert_eq!(extra, 1);
    }

    #[test]
    fn empty_input_relative_error() {
        let x = BoolTensor::empty([2, 2, 2]);
        let zero = BitMatrix::zeros(2, 1);
        assert_eq!(relative_error(&x, &zero, &zero, &zero), 0.0);
        let ones = BitMatrix::from_rows(2, 1, &[&[0][..], &[0][..]]);
        assert!(relative_error(&x, &ones, &ones, &ones).is_infinite());
    }
}
