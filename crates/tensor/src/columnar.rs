//! On-disk columnar unfolding format (`DBTFUNFD` v1) and its mmap reader.
//!
//! The file holds one mode-n unfolding as a per-row offset index plus one
//! packed array of sorted `u64` column indices — the same shape the heap
//! [`Unfolding`](crate::Unfolding) keeps in `Vec`s, flattened so rows can be
//! served straight out of a read-only memory map without parsing:
//!
//! ```text
//! byte 0      magic            [u8; 8] = "DBTFUNFD"
//! byte 8      version          u32 LE  (currently 1)
//! byte 12     mode             u32 LE  (0, 1, 2)
//! byte 16     dims             3 × u64 LE (original tensor shape I, J, K)
//! byte 40     nrows            u64 LE  (= dims[mode])
//! byte 48     ncols            u64 LE  (= product of the other two dims)
//! byte 56     nnz              u64 LE
//! byte 64     index_off        u64 LE  (= 4096)
//! byte 72     data_off         u64 LE  (page-aligned)
//! byte 80     data_checksum    u64 LE  (FNV-1a over the data section)
//! byte 88     index_checksum   u64 LE  (FNV-1a over the index section)
//! byte 96     header_checksum  u64 LE  (FNV-1a over bytes 0..96)
//! byte 104    zero padding to 4096
//! index_off   row index        (nrows + 1) × u64 LE prefix counts
//! data_off    column data      nnz × u64 LE sorted column indices per row
//! ```
//!
//! Row `r` of the unfolding is `data[index[r] .. index[r + 1]]`. Both
//! sections start on a 4096-byte page boundary, so on a little-endian unix
//! the reader maps the file once and returns `&[u64]` row slices borrowed
//! directly from the page cache — zero copies, zero allocation, and the
//! kernel pages data in and out on demand (see [`MmapUnfolding::evict`]).
//! Elsewhere the reader falls back to decoding the file into a heap buffer,
//! which preserves every observable behaviour except the memory bound.
//!
//! Header and index checksums are verified on open (cheap: one page plus
//! `O(nrows)` words); the data checksum is verified on demand by
//! [`MmapUnfolding::verify_data`] so that opening a large file does not
//! fault in the whole data section.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::store::{StoreError, UnfoldingStore};
use crate::unfold::Mode;

/// Magic bytes identifying a columnar unfolding file.
pub const UNFOLDING_MAGIC: [u8; 8] = *b"DBTFUNFD";
/// The single format version this build reads and writes.
pub const UNFOLDING_VERSION: u32 = 1;
/// Alignment of the index and data sections.
const PAGE: u64 = 4096;
/// Bytes of meaningful header before the zero padding.
const HEADER_BYTES: usize = 104;

#[inline]
fn align_page(x: u64) -> u64 {
    x.div_ceil(PAGE) * PAGE
}

/// Incremental 64-bit FNV-1a, matching the golden-test fingerprint hash.
#[derive(Clone)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a over a word slice, hashing each word's little-endian bytes so the
/// digest equals a byte-wise hash of the on-disk section on any host.
fn fnv_words(words: &[u64]) -> u64 {
    let mut h = Fnv::new();
    for &w in words {
        h.update(&w.to_le_bytes());
    }
    h.finish()
}

/// The parsed, validated header of a columnar unfolding file.
///
/// Obtainable via [`read_header`] from the first page alone — `dbtf stats`
/// uses this to report shape/nnz/density without touching the data section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnfoldingHeader {
    /// The mode the stored unfolding was taken along.
    pub mode: Mode,
    /// Shape of the original tensor.
    pub dims: [usize; 3],
    /// Number of rows (= `dims[mode]`).
    pub nrows: usize,
    /// Number of columns (product of the other two dims).
    pub ncols: u64,
    /// Total number of ones.
    pub nnz: u64,
    /// Byte offset of the row index section.
    pub index_off: u64,
    /// Byte offset of the column data section.
    pub data_off: u64,
    /// Stored FNV-1a digest of the data section.
    pub data_checksum: u64,
    /// Stored FNV-1a digest of the index section.
    pub index_checksum: u64,
}

fn rd_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().unwrap())
}

fn rd_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().unwrap())
}

/// Reads and validates the header page of a columnar unfolding file.
///
/// Touches only the first 4096 bytes. Returns the typed [`StoreError`]
/// variant describing the first problem found: [`StoreError::BadMagic`],
/// [`StoreError::Truncated`], [`StoreError::VersionSkew`],
/// [`StoreError::ChecksumMismatch`] or [`StoreError::Invalid`].
pub fn read_header(path: &Path) -> Result<UnfoldingHeader, StoreError> {
    let mut file = File::open(path).map_err(|e| StoreError::io(path, e))?;
    read_header_from(&mut file, path)
}

fn read_header_from(file: &mut File, path: &Path) -> Result<UnfoldingHeader, StoreError> {
    let p = || path.display().to_string();
    let mut buf = [0u8; HEADER_BYTES];
    let mut filled = 0;
    while filled < HEADER_BYTES {
        let n = file
            .read(&mut buf[filled..])
            .map_err(|e| StoreError::io(path, e))?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    if filled < UNFOLDING_MAGIC.len() || buf[..8] != UNFOLDING_MAGIC {
        return Err(StoreError::BadMagic { path: p() });
    }
    if filled < HEADER_BYTES {
        return Err(StoreError::Truncated {
            path: p(),
            section: "header",
        });
    }
    let version = rd_u32(&buf, 8);
    if version != UNFOLDING_VERSION {
        return Err(StoreError::VersionSkew {
            path: p(),
            found: version,
            supported: UNFOLDING_VERSION,
        });
    }
    let mut h = Fnv::new();
    h.update(&buf[..96]);
    if h.finish() != rd_u64(&buf, 96) {
        return Err(StoreError::ChecksumMismatch {
            path: p(),
            section: "header",
        });
    }
    let mode = match rd_u32(&buf, 12) {
        0 => Mode::One,
        1 => Mode::Two,
        2 => Mode::Three,
        m => {
            return Err(StoreError::Invalid {
                path: p(),
                detail: format!("mode field is {m}, expected 0..3"),
            });
        }
    };
    let dims_u64 = [rd_u64(&buf, 16), rd_u64(&buf, 24), rd_u64(&buf, 32)];
    if dims_u64.iter().any(|&d| d > usize::MAX as u64) {
        return Err(StoreError::Invalid {
            path: p(),
            detail: "dimension exceeds usize".into(),
        });
    }
    let dims = [
        dims_u64[0] as usize,
        dims_u64[1] as usize,
        dims_u64[2] as usize,
    ];
    let header = UnfoldingHeader {
        mode,
        dims,
        nrows: rd_u64(&buf, 40) as usize,
        ncols: rd_u64(&buf, 48),
        nnz: rd_u64(&buf, 56),
        index_off: rd_u64(&buf, 64),
        data_off: rd_u64(&buf, 72),
        data_checksum: rd_u64(&buf, 80),
        index_checksum: rd_u64(&buf, 88),
    };
    let index_len = 8 * (header.nrows as u64 + 1);
    if header.nrows != mode.nrows(dims)
        || header.ncols != mode.ncols(dims)
        || header.index_off != PAGE
        || header.data_off != align_page(header.index_off + index_len)
    {
        return Err(StoreError::Invalid {
            path: p(),
            detail: "header geometry is inconsistent with dims/mode".into(),
        });
    }
    Ok(header)
}

/// Streaming single-pass writer for the columnar unfolding format.
///
/// Entries arrive as `(row, col)` pairs with rows non-decreasing and
/// columns strictly increasing within a row — exactly what the external
/// merge sort in [`crate::stream`] emits. Column data streams to disk as it
/// arrives; the `O(nrows)` offset index is the only in-memory state, so the
/// writer's footprint is bounded by the row count, never the nonzero count.
pub struct UnfoldingWriter {
    path: PathBuf,
    file: std::io::BufWriter<File>,
    mode: Mode,
    dims: [usize; 3],
    nrows: usize,
    ncols: u64,
    index_off: u64,
    data_off: u64,
    /// `offsets[r]` = number of entries in rows `0..r`; grown as rows close.
    offsets: Vec<u64>,
    nnz: u64,
    last: Option<(u32, u64)>,
    data_fnv: Fnv,
}

impl UnfoldingWriter {
    /// Creates `path` (truncating any existing file) and prepares to stream
    /// the mode-`mode` unfolding of a tensor with shape `dims`.
    pub fn create(path: &Path, mode: Mode, dims: [usize; 3]) -> Result<Self, StoreError> {
        let nrows = mode.nrows(dims);
        let index_off = PAGE;
        let data_off = align_page(index_off + 8 * (nrows as u64 + 1));
        let mut file = File::create(path).map_err(|e| StoreError::io(path, e))?;
        file.seek(SeekFrom::Start(data_off))
            .map_err(|e| StoreError::io(path, e))?;
        let mut offsets = Vec::with_capacity(nrows + 1);
        offsets.push(0);
        Ok(UnfoldingWriter {
            path: path.to_path_buf(),
            file: std::io::BufWriter::new(file),
            mode,
            dims,
            nrows,
            ncols: mode.ncols(dims),
            index_off,
            data_off,
            offsets,
            nnz: 0,
            last: None,
            data_fnv: Fnv::new(),
        })
    }

    fn invalid(&self, detail: String) -> StoreError {
        StoreError::Invalid {
            path: self.path.display().to_string(),
            detail,
        }
    }

    /// Appends one `(row, col)` entry. Rows must be non-decreasing, columns
    /// strictly increasing within a row, and both in range.
    pub fn push(&mut self, row: u32, col: u64) -> Result<(), StoreError> {
        if (row as usize) >= self.nrows || col >= self.ncols {
            return Err(self.invalid(format!(
                "entry ({row}, {col}) out of range for {} x {}",
                self.nrows, self.ncols
            )));
        }
        match self.last {
            Some((r, c)) if row < r || (row == r && col <= c) => {
                return Err(self.invalid(format!(
                    "entry ({row}, {col}) arrived after ({r}, {c}); \
                     writer requires sorted, duplicate-free input"
                )));
            }
            _ => {}
        }
        // Close out any rows skipped between the previous entry and this one.
        while self.offsets.len() <= row as usize {
            self.offsets.push(self.nnz);
        }
        let bytes = col.to_le_bytes();
        self.file
            .write_all(&bytes)
            .map_err(|e| StoreError::io(&self.path, e))?;
        self.data_fnv.update(&bytes);
        self.nnz += 1;
        self.last = Some((row, col));
        Ok(())
    }

    /// Flushes the data section, then writes the row index and header.
    /// Returns the total nonzero count written.
    pub fn finish(mut self) -> Result<u64, StoreError> {
        while self.offsets.len() <= self.nrows {
            self.offsets.push(self.nnz);
        }
        let mut file = self
            .file
            .into_inner()
            .map_err(|e| StoreError::io(&self.path, e.into_error()))?;
        // Exact length even when the last section is empty (nnz == 0).
        file.set_len(self.data_off + 8 * self.nnz)
            .map_err(|e| StoreError::io(&self.path, e))?;
        file.seek(SeekFrom::Start(self.index_off))
            .map_err(|e| StoreError::io(&self.path, e))?;
        let mut index_fnv = Fnv::new();
        let mut w = std::io::BufWriter::new(&mut file);
        for &off in &self.offsets {
            let bytes = off.to_le_bytes();
            w.write_all(&bytes)
                .map_err(|e| StoreError::io(&self.path, e))?;
            index_fnv.update(&bytes);
        }
        w.flush().map_err(|e| StoreError::io(&self.path, e))?;
        drop(w);

        let mut header = [0u8; HEADER_BYTES];
        header[..8].copy_from_slice(&UNFOLDING_MAGIC);
        header[8..12].copy_from_slice(&UNFOLDING_VERSION.to_le_bytes());
        header[12..16].copy_from_slice(&(self.mode.index() as u32).to_le_bytes());
        for (d, off) in self.dims.iter().zip([16usize, 24, 32]) {
            header[off..off + 8].copy_from_slice(&(*d as u64).to_le_bytes());
        }
        header[40..48].copy_from_slice(&(self.nrows as u64).to_le_bytes());
        header[48..56].copy_from_slice(&self.ncols.to_le_bytes());
        header[56..64].copy_from_slice(&self.nnz.to_le_bytes());
        header[64..72].copy_from_slice(&self.index_off.to_le_bytes());
        header[72..80].copy_from_slice(&self.data_off.to_le_bytes());
        header[80..88].copy_from_slice(&self.data_fnv.finish().to_le_bytes());
        header[88..96].copy_from_slice(&index_fnv.finish().to_le_bytes());
        let mut h = Fnv::new();
        h.update(&header[..96]);
        header[96..104].copy_from_slice(&h.finish().to_le_bytes());
        file.seek(SeekFrom::Start(0))
            .map_err(|e| StoreError::io(&self.path, e))?;
        file.write_all(&header)
            .map_err(|e| StoreError::io(&self.path, e))?;
        file.flush().map_err(|e| StoreError::io(&self.path, e))?;
        Ok(self.nnz)
    }
}

#[cfg(all(unix, target_endian = "little"))]
use crate::mmap_sys as sys;

enum Backing {
    /// Zero-copy page-cache view of the file.
    #[cfg(all(unix, target_endian = "little"))]
    Map(sys::Map),
    /// Portable fallback: the file decoded into heap words. Loses the
    /// out-of-core memory bound but preserves every observable behaviour.
    #[cfg_attr(all(unix, target_endian = "little"), allow(dead_code))]
    Heap(Vec<u64>),
}

impl Backing {
    fn words(&self) -> &[u64] {
        match self {
            #[cfg(all(unix, target_endian = "little"))]
            Backing::Map(m) => m.words(),
            Backing::Heap(v) => v,
        }
    }
}

/// An on-disk mode-n unfolding served through [`UnfoldingStore`].
///
/// Opened read-only from a file written by [`UnfoldingWriter`]; rows are
/// `&[u64]` slices borrowed from the mapping, so reading a partition's
/// column window touches only the pages that hold it.
pub struct MmapUnfolding {
    path: PathBuf,
    header: UnfoldingHeader,
    backing: Backing,
    index_word: usize,
    data_word: usize,
}

impl std::fmt::Debug for MmapUnfolding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapUnfolding")
            .field("path", &self.path)
            .field("mode", &self.header.mode)
            .field("dims", &self.header.dims)
            .field("nnz", &self.header.nnz)
            .finish()
    }
}

impl MmapUnfolding {
    /// Opens and validates a columnar unfolding file.
    ///
    /// Header and row-index checksums are verified here; the data section is
    /// left to on-demand paging (see [`MmapUnfolding::verify_data`]).
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let mut file = File::open(path).map_err(|e| StoreError::io(path, e))?;
        let header = read_header_from(&mut file, path)?;
        let p = || path.display().to_string();
        let file_len = file.metadata().map_err(|e| StoreError::io(path, e))?.len();
        let index_end = header.index_off + 8 * (header.nrows as u64 + 1);
        if file_len < index_end {
            return Err(StoreError::Truncated {
                path: p(),
                section: "row index",
            });
        }
        let needed = header.data_off + 8 * header.nnz;
        if file_len < needed {
            return Err(StoreError::Truncated {
                path: p(),
                section: "column data",
            });
        }
        let backing = Self::back(&mut file, path, needed as usize)?;
        let store = MmapUnfolding {
            path: path.to_path_buf(),
            index_word: (header.index_off / 8) as usize,
            data_word: (header.data_off / 8) as usize,
            header,
            backing,
        };
        let index = store.index();
        if fnv_words(index) != header.index_checksum {
            return Err(StoreError::ChecksumMismatch {
                path: p(),
                section: "row index",
            });
        }
        if index[0] != 0
            || index[header.nrows] != header.nnz
            || index.windows(2).any(|w| w[0] > w[1])
        {
            return Err(StoreError::Invalid {
                path: p(),
                detail: "row index is not a monotone prefix-count array".into(),
            });
        }
        Ok(store)
    }

    #[cfg(all(unix, target_endian = "little"))]
    fn back(file: &mut File, path: &Path, needed: usize) -> Result<Backing, StoreError> {
        Ok(Backing::Map(
            sys::Map::new(file, needed).map_err(|e| StoreError::io(path, e))?,
        ))
    }

    #[cfg(not(all(unix, target_endian = "little")))]
    fn back(file: &mut File, path: &Path, needed: usize) -> Result<Backing, StoreError> {
        file.seek(SeekFrom::Start(0))
            .map_err(|e| StoreError::io(path, e))?;
        let mut bytes = vec![0u8; needed];
        file.read_exact(&mut bytes)
            .map_err(|e| StoreError::io(path, e))?;
        let words = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(Backing::Heap(words))
    }

    /// Streams an existing store into a new columnar file at `path` and
    /// returns the number of entries written.
    pub fn write_from_store<S: UnfoldingStore>(store: &S, path: &Path) -> Result<u64, StoreError> {
        let mut w = UnfoldingWriter::create(path, store.mode(), store.tensor_dims())?;
        for r in 0..store.nrows() {
            for &c in store.row(r) {
                w.push(r as u32, c)?;
            }
        }
        w.finish()
    }

    /// The file this store reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The validated header (shape, counts, offsets, checksums).
    pub fn header(&self) -> &UnfoldingHeader {
        &self.header
    }

    /// The row index: `index()[r]..index()[r + 1]` are the data-section
    /// word positions of row `r`'s columns (`nrows + 1` prefix counts).
    /// Reading it touches only the index pages, so header/index-level
    /// inspection (e.g. `dbtf stats`) never faults in the column data.
    pub fn index(&self) -> &[u64] {
        &self.backing.words()[self.index_word..self.index_word + self.header.nrows + 1]
    }

    fn data(&self) -> &[u64] {
        &self.backing.words()[self.data_word..self.data_word + self.header.nnz as usize]
    }

    /// Recomputes the data-section checksum (faults in the whole data
    /// section). Returns [`StoreError::ChecksumMismatch`] on corruption.
    pub fn verify_data(&self) -> Result<(), StoreError> {
        if fnv_words(self.data()) != self.header.data_checksum {
            return Err(StoreError::ChecksumMismatch {
                path: self.path.display().to_string(),
                section: "column data",
            });
        }
        Ok(())
    }

    /// Drops the store's resident pages back to the kernel (best-effort;
    /// no-op on the heap fallback). Subsequent reads re-fault from the file.
    ///
    /// The out-of-core driver calls this between partitions so peak RSS
    /// tracks the partition being built, not the whole tensor.
    pub fn evict(&self) {
        match &self.backing {
            #[cfg(all(unix, target_endian = "little"))]
            Backing::Map(m) => m.evict(),
            Backing::Heap(_) => {}
        }
    }
}

impl UnfoldingStore for MmapUnfolding {
    #[inline]
    fn mode(&self) -> Mode {
        self.header.mode
    }

    #[inline]
    fn tensor_dims(&self) -> [usize; 3] {
        self.header.dims
    }

    #[inline]
    fn nrows(&self) -> usize {
        self.header.nrows
    }

    #[inline]
    fn ncols(&self) -> u64 {
        self.header.ncols
    }

    #[inline]
    fn nnz(&self) -> u64 {
        self.header.nnz
    }

    #[inline]
    fn row(&self, r: usize) -> &[u64] {
        let index = self.index();
        let (a, b) = (index[r] as usize, index[r + 1] as usize);
        &self.data()[a..b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BoolTensor, Unfolding};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dbtf-columnar-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> BoolTensor {
        BoolTensor::from_entries(
            [5, 4, 3],
            vec![
                [0, 0, 0],
                [4, 3, 2],
                [0, 1, 2],
                [1, 0, 0],
                [0, 2, 1],
                [3, 3, 0],
                [3, 0, 2],
                [2, 2, 2],
            ],
        )
    }

    fn write_sample(mode: Mode, name: &str) -> PathBuf {
        let path = tmp(name);
        let u = Unfolding::new(&sample(), mode);
        MmapUnfolding::write_from_store(&u, &path).unwrap();
        path
    }

    #[test]
    fn roundtrips_all_modes_bit_for_bit() {
        let t = sample();
        for mode in Mode::ALL {
            let u = Unfolding::new(&t, mode);
            let path = tmp(&format!("roundtrip-{}.unf", mode.index()));
            let written = MmapUnfolding::write_from_store(&u, &path).unwrap();
            assert_eq!(written, t.nnz() as u64);
            let m = MmapUnfolding::open(&path).unwrap();
            assert_eq!(m.mode(), mode);
            assert_eq!(m.tensor_dims(), t.dims());
            assert_eq!(UnfoldingStore::nrows(&m), Unfolding::nrows(&u));
            assert_eq!(UnfoldingStore::ncols(&m), Unfolding::ncols(&u));
            assert_eq!(UnfoldingStore::nnz(&m), t.nnz() as u64);
            for r in 0..Unfolding::nrows(&u) {
                assert_eq!(UnfoldingStore::row(&m, r), Unfolding::row(&u, r));
                let probe = [0u64, 1, 2, Unfolding::ncols(&u)];
                for &lo in &probe {
                    for &hi in &probe {
                        assert_eq!(
                            UnfoldingStore::row_range(&m, r, lo, hi),
                            Unfolding::row_range(&u, r, lo, hi.max(lo)),
                            "mode {mode:?} row {r} [{lo}, {hi})"
                        );
                    }
                }
            }
            m.verify_data().unwrap();
            m.evict();
            assert_eq!(UnfoldingStore::row(&m, 0), Unfolding::row(&u, 0));
        }
    }

    #[test]
    fn empty_unfolding_roundtrips() {
        let t = BoolTensor::from_entries([3, 2, 2], vec![]);
        let u = Unfolding::new(&t, Mode::Two);
        let path = tmp("empty.unf");
        MmapUnfolding::write_from_store(&u, &path).unwrap();
        let m = MmapUnfolding::open(&path).unwrap();
        assert_eq!(UnfoldingStore::nnz(&m), 0);
        for r in 0..2 {
            assert!(UnfoldingStore::row(&m, r).is_empty());
        }
        m.verify_data().unwrap();
    }

    #[test]
    fn header_only_read_reports_shape() {
        let path = write_sample(Mode::Three, "header.unf");
        let h = read_header(&path).unwrap();
        assert_eq!(h.mode, Mode::Three);
        assert_eq!(h.dims, [5, 4, 3]);
        assert_eq!(h.nrows, 3);
        assert_eq!(h.ncols, 20);
        assert_eq!(h.nnz, 8);
    }

    #[test]
    fn writer_rejects_unsorted_and_out_of_range_input() {
        let path = tmp("reject.unf");
        let mut w = UnfoldingWriter::create(&path, Mode::One, [4, 3, 2]).unwrap();
        w.push(1, 3).unwrap();
        // Duplicate column in the same row.
        assert!(matches!(w.push(1, 3), Err(StoreError::Invalid { .. })));
        // Column going backwards within a row.
        assert!(matches!(w.push(1, 2), Err(StoreError::Invalid { .. })));
        // Row going backwards.
        assert!(matches!(w.push(0, 0), Err(StoreError::Invalid { .. })));
        // Out-of-range row and column (ncols = 3 * 2 = 6).
        assert!(matches!(w.push(4, 0), Err(StoreError::Invalid { .. })));
        assert!(matches!(w.push(2, 6), Err(StoreError::Invalid { .. })));
        // Still usable after rejections, and skipped rows close correctly.
        w.push(3, 5).unwrap();
        w.finish().unwrap();
        let m = MmapUnfolding::open(&path).unwrap();
        assert_eq!(UnfoldingStore::row(&m, 0), &[] as &[u64]);
        assert_eq!(UnfoldingStore::row(&m, 1), &[3]);
        assert_eq!(UnfoldingStore::row(&m, 2), &[] as &[u64]);
        assert_eq!(UnfoldingStore::row(&m, 3), &[5]);
    }

    fn corrupt(path: &Path, offset: u64, new: &[u8]) {
        use std::fs::OpenOptions;
        let mut f = OpenOptions::new().write(true).open(path).unwrap();
        f.seek(SeekFrom::Start(offset)).unwrap();
        f.write_all(new).unwrap();
    }

    #[test]
    fn corrupt_magic_is_bad_magic() {
        let path = write_sample(Mode::One, "badmagic.unf");
        corrupt(&path, 0, b"NOTDBTF!");
        assert!(matches!(
            MmapUnfolding::open(&path),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn tiny_garbage_file_is_bad_magic() {
        let path = tmp("garbage.unf");
        std::fs::write(&path, b"hi").unwrap();
        assert!(matches!(
            MmapUnfolding::open(&path),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn version_skew_is_typed() {
        let path = write_sample(Mode::One, "version.unf");
        corrupt(&path, 8, &99u32.to_le_bytes());
        match MmapUnfolding::open(&path) {
            Err(StoreError::VersionSkew {
                found, supported, ..
            }) => {
                assert_eq!(found, 99);
                assert_eq!(supported, UNFOLDING_VERSION);
            }
            other => panic!("expected VersionSkew, got {other:?}"),
        }
    }

    #[test]
    fn header_bit_flip_is_checksum_mismatch() {
        let path = write_sample(Mode::One, "hdrflip.unf");
        // Flip a dims byte; the header checksum must catch it.
        corrupt(&path, 17, &[0xff]);
        assert!(matches!(
            MmapUnfolding::open(&path),
            Err(StoreError::ChecksumMismatch {
                section: "header",
                ..
            })
        ));
    }

    #[test]
    fn truncated_header_is_typed() {
        let path = write_sample(Mode::One, "trunchdr.unf");
        let f = File::options().write(true).open(&path).unwrap();
        f.set_len(40).unwrap();
        assert!(matches!(
            MmapUnfolding::open(&path),
            Err(StoreError::Truncated {
                section: "header",
                ..
            })
        ));
    }

    #[test]
    fn truncated_index_is_typed() {
        let path = write_sample(Mode::One, "truncidx.unf");
        let f = File::options().write(true).open(&path).unwrap();
        // Header page survives; the row index (5 rows -> 48 bytes) does not.
        f.set_len(PAGE + 16).unwrap();
        assert!(matches!(
            MmapUnfolding::open(&path),
            Err(StoreError::Truncated {
                section: "row index",
                ..
            })
        ));
    }

    #[test]
    fn truncated_data_is_typed() {
        let path = write_sample(Mode::One, "truncdata.unf");
        let h = read_header(&path).unwrap();
        let f = File::options().write(true).open(&path).unwrap();
        f.set_len(h.data_off + 8 * (h.nnz - 1)).unwrap();
        assert!(matches!(
            MmapUnfolding::open(&path),
            Err(StoreError::Truncated {
                section: "column data",
                ..
            })
        ));
    }

    #[test]
    fn index_bit_flip_is_checksum_mismatch() {
        let path = write_sample(Mode::One, "idxflip.unf");
        let h = read_header(&path).unwrap();
        corrupt(&path, h.index_off + 8, &[0xaa]);
        assert!(matches!(
            MmapUnfolding::open(&path),
            Err(StoreError::ChecksumMismatch {
                section: "row index",
                ..
            })
        ));
    }

    #[test]
    fn data_bit_flip_caught_by_verify_data() {
        let path = write_sample(Mode::One, "dataflip.unf");
        let h = read_header(&path).unwrap();
        corrupt(&path, h.data_off, &[0x55]);
        let m = MmapUnfolding::open(&path).unwrap();
        assert!(matches!(
            m.verify_data(),
            Err(StoreError::ChecksumMismatch {
                section: "column data",
                ..
            })
        ));
    }

    #[test]
    fn missing_file_is_io() {
        let path = tmp("does-not-exist.unf");
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            MmapUnfolding::open(&path),
            Err(StoreError::Io { .. })
        ));
    }
}
