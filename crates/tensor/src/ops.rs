//! Boolean matrix operations from Section II of the paper: Boolean matrix
//! product, Kronecker product, Khatri-Rao product and the pointwise
//! vector-matrix product.

use crate::{BitMatrix, BitVec};

/// Boolean matrix product `A ∘ B` (Equation 6): `(A ∘ B)_{ij} = ⋁_k a_{ik} ∧ b_{kj}`.
///
/// `A` is `m × r`, `B` is `r × n`; the result is `m × n`. Implemented as
/// "OR together the rows of `B` selected by each row of `A`" — exactly the
/// Lemma 1 view the DBTF update relies on.
///
/// # Panics
///
/// Panics if `A.cols() != B.rows()`.
pub fn bool_matmul(a: &BitMatrix, b: &BitMatrix) -> BitMatrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "inner dimensions differ: {} vs {}",
        a.cols(),
        b.rows()
    );
    let mut out = BitMatrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        // Collect into a scratch row first to keep the borrow checker happy.
        let mut acc = vec![0u64; b.words_per_row()];
        for k in a.iter_row_ones(i).collect::<Vec<_>>() {
            b.or_row_into(k, &mut acc);
        }
        out.row_mut(i).copy_from_slice(&acc);
    }
    out
}

/// Kronecker product `A ⊗ B` (Equation 2).
///
/// For `A: I₁ × J₁` and `B: I₂ × J₂` the result is `I₁I₂ × J₁J₂`, with
/// `(A ⊗ B)_{(i₁·I₂ + i₂), (j₁·J₂ + j₂)} = a_{i₁j₁} ∧ b_{i₂j₂}`.
pub fn kronecker(a: &BitMatrix, b: &BitMatrix) -> BitMatrix {
    let mut out = BitMatrix::zeros(a.rows() * b.rows(), a.cols() * b.cols());
    for i1 in 0..a.rows() {
        for j1 in a.iter_row_ones(i1).collect::<Vec<_>>() {
            for i2 in 0..b.rows() {
                for j2 in b.iter_row_ones(i2).collect::<Vec<_>>() {
                    out.set(i1 * b.rows() + i2, j1 * b.cols() + j2, true);
                }
            }
        }
    }
    out
}

/// Khatri-Rao product `A ⊙ B` (Equation 3): the column-wise Kronecker
/// product.
///
/// For `A: I × R` and `B: J × R` the result is `IJ × R` with column `r`
/// equal to `a_{:r} ⊗ b_{:r}`; row `i·J + j` of the result is
/// `a_{i:} ∧ b_{j:}`.
///
/// In the DBTF update of mode 1, `X_(1) ≈ A ∘ (C ⊙ B)ᵀ`: the Khatri-Rao row
/// index `k·J + j` matches the matricization column `j + k·J`, so pass the
/// *outer* factor (C) first and the *inner* factor (B) second.
///
/// # Panics
///
/// Panics if the operands have different column counts.
pub fn khatri_rao(a: &BitMatrix, b: &BitMatrix) -> BitMatrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "rank mismatch: {} vs {}",
        a.cols(),
        b.cols()
    );
    let r = a.cols();
    let mut out = BitMatrix::zeros(a.rows() * b.rows(), r);
    for i in 0..a.rows() {
        for j in 0..b.rows() {
            let row = i * b.rows() + j;
            for c in 0..r {
                if a.get(i, c) && b.get(j, c) {
                    out.set(row, c, true);
                }
            }
        }
    }
    out
}

/// A specific row range of `A ⊙ B`, generated without materializing the full
/// product.
///
/// This is the distributed-generation idea of Section III-B: given only the
/// factor matrices and a row-index range, each machine builds exactly the
/// rows `[lo, hi)` it needs (Equation 13).
pub fn khatri_rao_rows(a: &BitMatrix, b: &BitMatrix, lo: u64, hi: u64) -> BitMatrix {
    assert_eq!(a.cols(), b.cols(), "rank mismatch");
    let total = a.rows() as u64 * b.rows() as u64;
    assert!(lo <= hi && hi <= total, "row range out of bounds");
    let r = a.cols();
    let mut out = BitMatrix::zeros((hi - lo) as usize, r);
    for (row_out, row) in (lo..hi).enumerate() {
        let i = (row / b.rows() as u64) as usize;
        let j = (row % b.rows() as u64) as usize;
        for c in 0..r {
            if a.get(i, c) && b.get(j, c) {
                out.set(row_out, c, true);
            }
        }
    }
    out
}

/// Pointwise vector-matrix product, transposed: `(v ⊛ B)ᵀ` (Equation 4).
///
/// `v` is a length-R binary row vector, `B` is `J × R`; the result is the
/// `R × J` matrix whose row `r` is `v_r · b_{:r}ᵀ` — i.e. row `r` of `Bᵀ` if
/// `v_r = 1` and the zero row otherwise. These are the blue blocks of the
/// paper's Figures 4/5: `(C ⊙ B)ᵀ = [(c_{1:} ⊛ B)ᵀ ⋯ (c_{K:} ⊛ B)ᵀ]`.
pub fn pvm_product_t(v: &BitVec, b: &BitMatrix) -> BitMatrix {
    assert_eq!(v.len(), b.cols(), "vector length must equal rank");
    let bt = b.transpose();
    let mut out = BitMatrix::zeros(b.cols(), b.rows());
    for r in v.iter_ones() {
        let src = bt.row(r).to_vec();
        out.row_mut(r).copy_from_slice(&src);
    }
    out
}

/// Boolean sum of the rows of `m` selected by `mask` (Lemma 1's primitive):
/// `⊕_{r : mask_r = 1} m_{r:}`.
pub fn or_selected_rows(m: &BitMatrix, mask: &BitVec) -> BitVec {
    assert_eq!(mask.len(), m.rows(), "mask length must equal row count");
    let mut acc = vec![0u64; m.words_per_row()];
    for r in mask.iter_ones() {
        m.or_row_into(r, &mut acc);
    }
    BitVec::from_words(m.cols(), acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Reference Boolean product straight from Equation 6.
    fn naive_matmul(a: &BitMatrix, b: &BitMatrix) -> BitMatrix {
        let mut out = BitMatrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let v = (0..a.cols()).any(|k| a.get(i, k) && b.get(k, j));
                out.set(i, j, v);
            }
        }
        out
    }

    #[test]
    fn matmul_matches_definition() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let (m, r, n) = (
                rng.gen_range(1..8),
                rng.gen_range(1..8),
                rng.gen_range(1..70),
            );
            let a = BitMatrix::random(m, r, 0.4, &mut rng);
            let b = BitMatrix::random(r, n, 0.4, &mut rng);
            assert_eq!(bool_matmul(&a, &b), naive_matmul(&a, &b));
        }
    }

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = BitMatrix::random(5, 5, 0.5, &mut rng);
        assert_eq!(bool_matmul(&a, &BitMatrix::identity(5)), a);
        assert_eq!(bool_matmul(&BitMatrix::identity(5), &a), a);
    }

    #[test]
    fn matmul_boolean_semantics() {
        // Two overlapping contributions must still give 1 (1 ⊕ 1 = 1).
        let a = BitMatrix::from_rows(1, 2, &[&[0, 1][..]]);
        let b = BitMatrix::from_rows(2, 1, &[&[0][..], &[0][..]]);
        let c = bool_matmul(&a, &b);
        assert!(c.get(0, 0));
        assert_eq!(c.count_ones(), 1);
    }

    #[test]
    fn kronecker_shape_and_entries() {
        let a = BitMatrix::from_rows(2, 2, &[&[0][..], &[1][..]]);
        let b = BitMatrix::from_rows(1, 2, &[&[0, 1][..]]);
        let k = kronecker(&a, &b);
        assert_eq!((k.rows(), k.cols()), (2, 4));
        // a_{00} = 1 → top-left block = b.
        assert!(k.get(0, 0) && k.get(0, 1));
        assert!(!k.get(0, 2) && !k.get(0, 3));
        // a_{11} = 1 → bottom-right block = b.
        assert!(k.get(1, 2) && k.get(1, 3));
    }

    #[test]
    fn khatri_rao_is_columnwise_kronecker() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = BitMatrix::random(4, 3, 0.5, &mut rng);
        let b = BitMatrix::random(5, 3, 0.5, &mut rng);
        let kr = khatri_rao(&a, &b);
        assert_eq!((kr.rows(), kr.cols()), (20, 3));
        for c in 0..3 {
            for i in 0..4 {
                for j in 0..5 {
                    assert_eq!(
                        kr.get(i * 5 + j, c),
                        a.get(i, c) && b.get(j, c),
                        "mismatch at column {c}, ({i}, {j})"
                    );
                }
            }
        }
    }

    #[test]
    fn khatri_rao_rows_matches_full_product() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = BitMatrix::random(6, 4, 0.5, &mut rng);
        let b = BitMatrix::random(7, 4, 0.5, &mut rng);
        let full = khatri_rao(&a, &b);
        for (lo, hi) in [(0u64, 42u64), (5, 20), (41, 42), (10, 10)] {
            let part = khatri_rao_rows(&a, &b, lo, hi);
            assert_eq!(part.rows() as u64, hi - lo);
            for (r_out, r_full) in (lo..hi).enumerate() {
                for c in 0..4 {
                    assert_eq!(part.get(r_out, c), full.get(r_full as usize, c));
                }
            }
        }
    }

    #[test]
    fn pvm_blocks_tile_khatri_rao_transpose() {
        // (C ⊙ B)ᵀ = [(c_1: ⊛ B)ᵀ ⋯ (c_K: ⊛ B)ᵀ]: check column blocks.
        let mut rng = StdRng::seed_from_u64(5);
        let c = BitMatrix::random(3, 4, 0.5, &mut rng); // K × R
        let b = BitMatrix::random(5, 4, 0.5, &mut rng); // J × R
        let kr_t = khatri_rao(&c, &b).transpose(); // R × KJ
        for k in 0..3 {
            let block = pvm_product_t(&c.row_bitvec(k), &b); // R × J
            for r in 0..4 {
                for j in 0..5 {
                    assert_eq!(
                        block.get(r, j),
                        kr_t.get(r, k * 5 + j),
                        "PVM block {k} mismatch at ({r}, {j})"
                    );
                }
            }
        }
    }

    #[test]
    fn or_selected_rows_lemma1() {
        // Lemma 1: a_{i:} ∘ Mᵀ equals the Boolean sum of the rows of Mᵀ
        // selected by the ones of a_{i:}.
        let mut rng = StdRng::seed_from_u64(6);
        let m = BitMatrix::random(6, 40, 0.3, &mut rng);
        let mask = BitVec::from_indices(6, &[1, 3, 4]);
        let or = or_selected_rows(&m, &mask);
        // Compare with the Boolean product of the 1×6 mask matrix and m.
        let mask_m = BitMatrix::from_bitvec_rows(6, &[mask]);
        let prod = bool_matmul(&mask_m, &m);
        assert_eq!(prod.row_bitvec(0), or);
    }

    #[test]
    fn or_selected_rows_empty_mask() {
        let m = BitMatrix::identity(4);
        let or = or_selected_rows(&m, &BitVec::zeros(4));
        assert_eq!(or.count_ones(), 0);
    }
}
