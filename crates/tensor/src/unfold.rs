//! Mode-n matricization (unfolding) of three-way tensors.

use serde::{Deserialize, Serialize};

use crate::BoolTensor;

/// One of the three modes of a three-way tensor.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Mode 1: rows of `X_(1)` are indexed by `i`; columns by `j + k·J`.
    One,
    /// Mode 2: rows of `X_(2)` are indexed by `j`; columns by `i + k·I`.
    Two,
    /// Mode 3: rows of `X_(3)` are indexed by `k`; columns by `i + j·I`.
    Three,
}

impl Mode {
    /// All three modes, in update order (A, then B, then C).
    pub const ALL: [Mode; 3] = [Mode::One, Mode::Two, Mode::Three];

    /// The 0-based mode number (0, 1 or 2).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Mode::One => 0,
            Mode::Two => 1,
            Mode::Three => 2,
        }
    }

    /// Maps a tensor coordinate to its `(row, column)` in this unfolding
    /// (the 0-based form of the paper's Equation 1).
    #[inline]
    pub fn matricize(self, dims: [usize; 3], e: [u32; 3]) -> (u32, u64) {
        let [i, j, k] = [e[0] as u64, e[1] as u64, e[2] as u64];
        let [di, dj, _dk] = [dims[0] as u64, dims[1] as u64, dims[2] as u64];
        match self {
            Mode::One => (e[0], j + k * dj),
            Mode::Two => (e[1], i + k * di),
            Mode::Three => (e[2], i + j * di),
        }
    }

    /// Inverse of [`Mode::matricize`]: reconstructs `(i, j, k)` from a
    /// `(row, column)` position in this unfolding.
    #[inline]
    pub fn dematricize(self, dims: [usize; 3], row: u32, col: u64) -> [u32; 3] {
        let [di, dj, _dk] = [dims[0] as u64, dims[1] as u64, dims[2] as u64];
        match self {
            Mode::One => [row, (col % dj) as u32, (col / dj) as u32],
            Mode::Two => [(col % di) as u32, row, (col / di) as u32],
            Mode::Three => [(col % di) as u32, (col / di) as u32, row],
        }
    }

    /// Row count of this unfolding for a tensor of shape `dims`.
    #[inline]
    pub fn nrows(self, dims: [usize; 3]) -> usize {
        dims[self.index()]
    }

    /// Column count of this unfolding for a tensor of shape `dims`.
    ///
    /// Equals the product of the other two mode sizes. For mode *n*, the
    /// columns are grouped into contiguous *slabs* of width
    /// [`Mode::slab_width`]; slab `k` of `X_(1)` holds the mode-3 slice `k`
    /// (the paper's pointwise vector-matrix product `(c_k: ⊛ B)ᵀ` spans
    /// exactly one slab).
    #[inline]
    pub fn ncols(self, dims: [usize; 3]) -> u64 {
        let [di, dj, dk] = [dims[0] as u64, dims[1] as u64, dims[2] as u64];
        match self {
            Mode::One => dj * dk,
            Mode::Two => di * dk,
            Mode::Three => di * dj,
        }
    }

    /// Width of one column slab: the size of the *inner* (faster-varying)
    /// mode in this unfolding's column index.
    ///
    /// `X_(1)`: J (columns `j + k·J`), `X_(2)`: I, `X_(3)`: I. In the DBTF
    /// factor update for mode *n*, the slab width is the row count of the
    /// second Khatri-Rao operand `M_s` — the unit of caching.
    #[inline]
    pub fn slab_width(self, dims: [usize; 3]) -> usize {
        match self {
            Mode::One => dims[1],
            Mode::Two => dims[0],
            Mode::Three => dims[0],
        }
    }

    /// Number of column slabs: the size of the *outer* mode (the row count
    /// of the first Khatri-Rao operand `M_f`).
    #[inline]
    pub fn slab_count(self, dims: [usize; 3]) -> usize {
        match self {
            Mode::One => dims[2],
            Mode::Two => dims[2],
            Mode::Three => dims[1],
        }
    }
}

/// The sparse mode-n matricization `X_(n)` of a [`BoolTensor`].
///
/// Stored as one sorted column-index list (`u64`) per row — the layout DBTF
/// partitions vertically and scores error against. Column counts can exceed
/// `u32` (`J·K` for large tensors), hence `u64` indices.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Unfolding {
    mode: Mode,
    dims: [usize; 3],
    nrows: usize,
    ncols: u64,
    rows: Vec<Vec<u64>>,
}

impl Unfolding {
    /// Matricizes `tensor` along `mode` (Equation 1 of the paper).
    ///
    /// Runs in `O(|X|)` plus the per-row sorts (input entries are already
    /// in lexicographic order, so mode-1 rows come out sorted for free;
    /// other modes pay `O(|X| log |X|)` in the worst case).
    pub fn new(tensor: &BoolTensor, mode: Mode) -> Self {
        let dims = tensor.dims();
        let nrows = mode.nrows(dims);
        let ncols = mode.ncols(dims);
        let mut rows: Vec<Vec<u64>> = vec![Vec::new(); nrows];
        for e in tensor.iter() {
            let (r, c) = mode.matricize(dims, e);
            rows[r as usize].push(c);
        }
        for row in &mut rows {
            row.sort_unstable();
            row.dedup();
        }
        Unfolding {
            mode,
            dims,
            nrows,
            ncols,
            rows,
        }
    }

    /// The mode this unfolding was taken along.
    #[inline]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The shape of the original tensor.
    #[inline]
    pub fn tensor_dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Number of rows (`P` in Algorithm 4).
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (`Q·S` in Algorithm 4).
    #[inline]
    pub fn ncols(&self) -> u64 {
        self.ncols
    }

    /// Total number of ones (equals `|X|`).
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// The sorted one-column indices of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        &self.rows[r]
    }

    /// The one-column indices of row `r` that fall in `[lo, hi)`, found by
    /// binary search (`O(log nnz_row + output)`). Empty when `lo >= hi`.
    pub fn row_range(&self, r: usize, lo: u64, hi: u64) -> &[u64] {
        let row = &self.rows[r];
        let a = row.partition_point(|&c| c < lo);
        let b = row.partition_point(|&c| c < hi);
        &row[a..b.max(a)]
    }

    /// Tests whether the unfolded matrix has a one at `(r, c)`.
    pub fn get(&self, r: usize, c: u64) -> bool {
        self.rows[r].binary_search(&c).is_ok()
    }

    /// Folds the matricization back into a tensor (exact inverse of
    /// [`Unfolding::new`]).
    pub fn refold(&self) -> BoolTensor {
        let mut entries = Vec::with_capacity(self.nnz());
        for (r, row) in self.rows.iter().enumerate() {
            for &c in row {
                entries.push(self.mode.dematricize(self.dims, r as u32, c));
            }
        }
        BoolTensor::from_entries(self.dims, entries)
    }
}

/// Exhaustively checks the [`UnfoldingStore`](crate::UnfoldingStore)
/// `row`/`row_range` contract for one store against a naive filter, probing
/// every window whose endpoints sit on or around 64-bit word boundaries, on
/// actual entries ± 1, at the extremes, and in degenerate (`lo >= hi`)
/// positions. Shared by the heap and mmap store tests so both
/// implementations pin the same contract.
#[cfg(test)]
pub(crate) fn row_range_contract_check<S: crate::UnfoldingStore>(s: &S, label: &str) {
    let ncols = s.ncols();
    let mut total = 0u64;
    for r in 0..s.nrows() {
        let row = s.row(r).to_vec();
        total += row.len() as u64;
        assert!(
            row.windows(2).all(|w| w[0] < w[1]),
            "{label}: row {r} is not strictly increasing"
        );
        assert!(
            row.iter().all(|&c| c < ncols),
            "{label}: row {r} has a column out of range"
        );
        // Full row and empty windows.
        assert_eq!(s.row_range(r, 0, ncols), &row[..], "{label}: full row {r}");
        assert!(s.row_range(r, 0, 0).is_empty(), "{label}: empty lo=hi=0");
        assert!(
            s.row_range(r, ncols, ncols).is_empty(),
            "{label}: empty at ncols"
        );
        // Probe points: word edges, entries ± 1, extremes.
        let mut probes: Vec<u64> = vec![0, 1, 63, 64, 65, 126, 127, 128, 129];
        probes.push(ncols.saturating_sub(1));
        probes.push(ncols);
        for &c in &row {
            probes.push(c.saturating_sub(1));
            probes.push(c);
            probes.push(c + 1);
        }
        probes.retain(|&x| x <= ncols);
        probes.sort_unstable();
        probes.dedup();
        for &lo in &probes {
            for &hi in &probes {
                let got = s.row_range(r, lo, hi);
                if lo >= hi {
                    assert!(
                        got.is_empty(),
                        "{label}: row {r} window [{lo}, {hi}) must be empty"
                    );
                    continue;
                }
                let want: Vec<u64> = row.iter().copied().filter(|&c| c >= lo && c < hi).collect();
                assert_eq!(got, &want[..], "{label}: row {r} window [{lo}, {hi})");
                for &c in got {
                    assert!(s.get(r, c), "{label}: get({r}, {c}) disagrees with row");
                }
            }
        }
    }
    assert_eq!(
        s.nnz(),
        total,
        "{label}: nnz must equal the sum of row lengths"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BoolTensor {
        // 2 × 3 × 4 tensor with a handful of ones.
        BoolTensor::from_entries(
            [2, 3, 4],
            vec![[0, 0, 0], [1, 2, 3], [0, 1, 2], [1, 0, 0], [0, 2, 1]],
        )
    }

    #[test]
    fn matricize_mode1_index_map() {
        // x_{ijk} → [X_(1)]_{i, j + k·J}, J = 3.
        let dims = [2, 3, 4];
        assert_eq!(Mode::One.matricize(dims, [0, 0, 0]), (0, 0));
        assert_eq!(Mode::One.matricize(dims, [1, 2, 3]), (1, 2 + 3 * 3));
        assert_eq!(Mode::One.matricize(dims, [0, 1, 2]), (0, 1 + 2 * 3));
    }

    #[test]
    fn matricize_mode2_index_map() {
        // x_{ijk} → [X_(2)]_{j, i + k·I}, I = 2.
        let dims = [2, 3, 4];
        assert_eq!(Mode::Two.matricize(dims, [1, 2, 3]), (2, 1 + 3 * 2));
        assert_eq!(Mode::Two.matricize(dims, [0, 1, 2]), (1, (2 * 2)));
    }

    #[test]
    fn matricize_mode3_index_map() {
        // x_{ijk} → [X_(3)]_{k, i + j·I}, I = 2.
        let dims = [2, 3, 4];
        assert_eq!(Mode::Three.matricize(dims, [1, 2, 3]), (3, 1 + 2 * 2));
        assert_eq!(Mode::Three.matricize(dims, [0, 0, 0]), (0, 0));
    }

    #[test]
    fn dematricize_inverts_matricize() {
        let dims = [5, 7, 9];
        for mode in Mode::ALL {
            for e in [[0u32, 0, 0], [4, 6, 8], [2, 3, 4], [1, 0, 8]] {
                let (r, c) = mode.matricize(dims, e);
                assert_eq!(mode.dematricize(dims, r, c), e, "mode {mode:?}");
            }
        }
    }

    #[test]
    fn shapes() {
        let dims = [2, 3, 4];
        assert_eq!(Mode::One.nrows(dims), 2);
        assert_eq!(Mode::One.ncols(dims), 12);
        assert_eq!(Mode::Two.nrows(dims), 3);
        assert_eq!(Mode::Two.ncols(dims), 8);
        assert_eq!(Mode::Three.nrows(dims), 4);
        assert_eq!(Mode::Three.ncols(dims), 6);
    }

    #[test]
    fn slabs() {
        let dims = [2, 3, 4];
        for mode in Mode::ALL {
            assert_eq!(
                mode.slab_width(dims) as u64 * mode.slab_count(dims) as u64,
                mode.ncols(dims),
                "slabs must tile the columns for {mode:?}"
            );
        }
        assert_eq!(Mode::One.slab_width(dims), 3); // J
        assert_eq!(Mode::One.slab_count(dims), 4); // K
        assert_eq!(Mode::Two.slab_width(dims), 2); // I
        assert_eq!(Mode::Three.slab_width(dims), 2); // I
        assert_eq!(Mode::Three.slab_count(dims), 3); // J
    }

    #[test]
    fn unfold_preserves_nnz_and_refolds() {
        let t = sample();
        for mode in Mode::ALL {
            let u = Unfolding::new(&t, mode);
            assert_eq!(u.nnz(), t.nnz(), "mode {mode:?}");
            assert_eq!(u.refold(), t, "mode {mode:?}");
        }
    }

    #[test]
    fn unfold_rows_are_sorted_unique() {
        let t = sample();
        for mode in Mode::ALL {
            let u = Unfolding::new(&t, mode);
            for r in 0..u.nrows() {
                let row = u.row(r);
                assert!(row.windows(2).all(|w| w[0] < w[1]), "row {r} not sorted");
            }
        }
    }

    #[test]
    fn row_range_binary_search() {
        let t = sample();
        let u = Unfolding::new(&t, Mode::One);
        // Row 0 has ones at columns 0, 1 + 2·3 = 7, 2 + 1·3 = 5.
        assert_eq!(u.row(0), &[0, 5, 7]);
        assert_eq!(u.row_range(0, 0, 6), &[0, 5]);
        assert_eq!(u.row_range(0, 5, 6), &[5]);
        assert_eq!(u.row_range(0, 8, 12), &[] as &[u64]);
        // Degenerate windows are empty, not a panic.
        assert_eq!(u.row_range(0, 5, 5), &[] as &[u64]);
        assert_eq!(u.row_range(0, 7, 2), &[] as &[u64]);
    }

    #[test]
    fn row_range_word_edges_both_stores() {
        // Columns planted exactly on and around the 64-bit word boundaries
        // (63/64/65, 126/127/128) plus the extremes of a 135-column row.
        let dims = [2usize, 9, 15];
        let cols: [u64; 9] = [0, 62, 63, 64, 65, 126, 127, 128, 134];
        let entries: Vec<[u32; 3]> = cols
            .iter()
            .map(|&c| Mode::One.dematricize(dims, 0, c))
            .collect();
        let t = BoolTensor::from_entries(dims, entries);
        let u = Unfolding::new(&t, Mode::One);
        assert_eq!(u.row(0), &cols);
        let path =
            std::env::temp_dir().join(format!("dbtf-unfold-word-edges-{}.unf", std::process::id()));
        crate::MmapUnfolding::write_from_store(&u, &path).unwrap();
        let m = crate::MmapUnfolding::open(&path).unwrap();
        super::row_range_contract_check(&u, "heap");
        super::row_range_contract_check(&m, "mmap");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn get_matches_tensor() {
        let t = sample();
        for mode in Mode::ALL {
            let u = Unfolding::new(&t, mode);
            for e in t.iter() {
                let (r, c) = mode.matricize(t.dims(), e);
                assert!(u.get(r as usize, c));
            }
            assert!(
                !u.get(0, u.ncols() - 1)
                    || t.contains(
                        mode.dematricize(t.dims(), 0, u.ncols() - 1)[0],
                        mode.dematricize(t.dims(), 0, u.ncols() - 1)[1],
                        mode.dematricize(t.dims(), 0, u.ncols() - 1)[2],
                    )
            );
        }
    }
}

#[cfg(test)]
mod row_range_contract_props {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static FILE_SEQ: AtomicU64 = AtomicU64::new(0);

    /// Dims chosen so mode-1 unfoldings span 135 columns — both 64-bit word
    /// boundaries (63/64, 127/128) fall inside the probed range.
    const DIMS: [usize; 3] = [2, 9, 15];

    fn tensor_strategy() -> impl Strategy<Value = BoolTensor> {
        proptest::collection::vec(
            (0..DIMS[0] as u32, 0..DIMS[1] as u32, 0..DIMS[2] as u32)
                .prop_map(|(a, b, c)| [a, b, c]),
            0..=80,
        )
        .prop_map(|entries| BoolTensor::from_entries(DIMS, entries))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Both store implementations satisfy the shared `row`/`row_range`
        /// contract and agree with each other slice-for-slice.
        #[test]
        fn both_stores_pin_the_row_range_contract(t in tensor_strategy()) {
            let seq = FILE_SEQ.fetch_add(1, Ordering::Relaxed);
            for mode in Mode::ALL {
                let u = Unfolding::new(&t, mode);
                let path = std::env::temp_dir().join(format!(
                    "dbtf-unfold-prop-{}-{}-{}.unf",
                    std::process::id(),
                    seq,
                    mode.index()
                ));
                crate::MmapUnfolding::write_from_store(&u, &path).unwrap();
                let m = crate::MmapUnfolding::open(&path).unwrap();
                super::row_range_contract_check(&u, "heap");
                super::row_range_contract_check(&m, "mmap");
                for r in 0..u.nrows() {
                    prop_assert_eq!(u.row(r), crate::UnfoldingStore::row(&m, r));
                }
                let _ = std::fs::remove_file(&path);
            }
        }
    }
}
