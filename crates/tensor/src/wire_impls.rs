//! Wire codec impls for the bit-packed containers.
//!
//! The data-channel layouts are chosen so the encoded payload length
//! equals the engine's metered byte size for the value:
//!
//! - [`BitVec`]: `⌈nbits/8⌉` payload bytes (bit `i` at byte `i/8`, bit
//!   `i%8`), the length on the meta channel. A broadcast column decision
//!   `(usize, BitVec)` therefore costs exactly `8 + ⌈I/8⌉` wire bytes —
//!   the Lemma 7 decision term.
//! - [`BitMatrix`]: `⌈rows·cols/8⌉` payload bytes (bit `r·cols + c`
//!   packed contiguously across row boundaries), dimensions on the meta
//!   channel — exactly the `⌈rows·cols/8⌉` the factor-broadcast meter
//!   charges.

use dbtf_wire::{Wire, WireError, WireNamed, WireReader, WireResult, WireWriter};

use crate::{BitMatrix, BitVec};

fn pack_bits(nbits: usize, get: impl Fn(usize) -> bool) -> Vec<u8> {
    let mut bytes = vec![0u8; nbits.div_ceil(8)];
    for i in 0..nbits {
        if get(i) {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    bytes
}

#[inline]
fn bit_at(bytes: &[u8], i: usize) -> bool {
    bytes[i / 8] & (1 << (i % 8)) != 0
}

impl Wire for BitVec {
    fn encode(&self, w: &mut WireWriter) {
        let nbits = self.len();
        w.meta_u64(nbits as u64);
        // Word storage is little-endian bit order, so the first
        // ⌈nbits/8⌉ bytes of the LE word dump *are* the bit packing.
        let mut bytes = Vec::with_capacity(nbits.div_ceil(8));
        for word in self.words() {
            bytes.extend_from_slice(&word.to_le_bytes());
        }
        bytes.truncate(nbits.div_ceil(8));
        w.data(&bytes);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let nbits = usize::try_from(r.meta_u64()?)
            .map_err(|_| WireError("bitvec length overflow".into()))?;
        let bytes = r.data_bytes(nbits.div_ceil(8))?;
        let nwords = nbits.div_ceil(64);
        let mut words = vec![0u64; nwords];
        for (i, chunk) in bytes.chunks(8).enumerate() {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            words[i] = u64::from_le_bytes(buf);
        }
        Ok(BitVec::from_words(nbits, words))
    }
}

impl WireNamed for BitVec {
    const WIRE_NAME: &'static str = "tensor.bitvec";
}

impl Wire for BitMatrix {
    fn encode(&self, w: &mut WireWriter) {
        let (rows, cols) = (self.rows(), self.cols());
        w.meta_u64(rows as u64);
        w.meta_u64(cols as u64);
        w.data(&pack_bits(rows * cols, |i| self.get(i / cols, i % cols)));
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let rows = usize::try_from(r.meta_u64()?)
            .map_err(|_| WireError("bitmatrix rows overflow".into()))?;
        let cols = usize::try_from(r.meta_u64()?)
            .map_err(|_| WireError("bitmatrix cols overflow".into()))?;
        let nbits = rows
            .checked_mul(cols)
            .ok_or_else(|| WireError("bitmatrix size overflow".into()))?;
        let bytes = r.data_bytes(nbits.div_ceil(8))?;
        let mut m = BitMatrix::zeros(rows, cols);
        for i in 0..nbits {
            if bit_at(bytes, i) {
                m.set(i / cols, i % cols, true);
            }
        }
        Ok(m)
    }
}

impl WireNamed for BitMatrix {
    const WIRE_NAME: &'static str = "tensor.bitmatrix";
}

// The two broadcast payloads of the CP driver. Tuples are always foreign
// under the orphan rules, so these are named newtypes; their encodings are
// field-by-field, byte-identical to the corresponding tuple `Wire` impls,
// and therefore carry exactly the Lemma 7 payload sizes.

/// A decided sweep column: the Lemma 7 decision broadcast, costing
/// exactly `8 + ⌈P/8⌉` payload bytes on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnDecision {
    /// The factor column the sweep just decided.
    pub col: usize,
    /// The decided bit per factor row.
    pub values: BitVec,
}

impl Wire for ColumnDecision {
    fn encode(&self, w: &mut WireWriter) {
        self.col.encode(w);
        self.values.encode(w);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(ColumnDecision {
            col: Wire::decode(r)?,
            values: Wire::decode(r)?,
        })
    }
}

impl WireNamed for ColumnDecision {
    const WIRE_NAME: &'static str = "tensor.column_decision";
}

/// An `UpdateFactor` operand triple `(A, M_f, M_s)`: the Lemma 7 factor
/// broadcast, costing exactly the sum of the three `⌈rows·cols/8⌉` matrix
/// payloads on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FactorTriple {
    /// The factor being updated.
    pub a: BitMatrix,
    /// The first Khatri-Rao operand `M_f`.
    pub mf: BitMatrix,
    /// The second Khatri-Rao operand `M_s`.
    pub ms: BitMatrix,
}

impl Wire for FactorTriple {
    fn encode(&self, w: &mut WireWriter) {
        self.a.encode(w);
        self.mf.encode(w);
        self.ms.encode(w);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(FactorTriple {
            a: Wire::decode(r)?,
            mf: Wire::decode(r)?,
            ms: Wire::decode(r)?,
        })
    }
}

impl WireNamed for FactorTriple {
    const WIRE_NAME: &'static str = "tensor.factor_triple";
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn bitvec_roundtrips_and_meters_exact_bytes() {
        let mut rng = StdRng::seed_from_u64(7);
        for nbits in [0usize, 1, 7, 8, 9, 63, 64, 65, 200, 1024] {
            let mut v = BitVec::zeros(nbits);
            for i in 0..nbits {
                if rng.gen_bool(0.4) {
                    v.set(i, true);
                }
            }
            let frame = v.to_frame();
            assert_eq!(frame.data_len, nbits.div_ceil(8) as u64, "nbits={nbits}");
            let back = BitVec::from_frame(&frame.bytes).unwrap();
            assert_eq!(back.len(), v.len());
            for i in 0..nbits {
                assert_eq!(back.get(i), v.get(i), "bit {i} of {nbits}");
            }
        }
    }

    #[test]
    fn bitmatrix_roundtrips_and_meters_exact_bytes() {
        let mut rng = StdRng::seed_from_u64(11);
        for (rows, cols) in [(0, 0), (1, 1), (3, 5), (17, 9), (64, 64), (100, 10)] {
            let mut m = BitMatrix::zeros(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    if rng.gen_bool(0.3) {
                        m.set(r, c, true);
                    }
                }
            }
            let frame = m.to_frame();
            assert_eq!(
                frame.data_len,
                ((rows * cols) as u64).div_ceil(8),
                "{rows}x{cols}"
            );
            let back = BitMatrix::from_frame(&frame.bytes).unwrap();
            assert_eq!((back.rows(), back.cols()), (rows, cols));
            for r in 0..rows {
                for c in 0..cols {
                    assert_eq!(back.get(r, c), m.get(r, c));
                }
            }
        }
    }

    #[test]
    fn decision_payload_matches_lemma_meter() {
        // The broadcast decision is metered `nrows.div_ceil(8) + 8` by the
        // driver; the newtype must encode byte-identically to the tuple.
        let nrows = 123usize;
        let decision = ColumnDecision {
            col: 4,
            values: BitVec::zeros(nrows),
        };
        let frame = decision.to_frame();
        assert_eq!(frame.data_len, (nrows.div_ceil(8) + 8) as u64);
        let tuple_frame = (4usize, BitVec::zeros(nrows)).to_frame();
        assert_eq!(frame.bytes, tuple_frame.bytes);
        let back = ColumnDecision::from_frame(&frame.bytes).unwrap();
        assert_eq!(back, decision);
    }

    #[test]
    fn factor_triple_payload_matches_lemma_meter() {
        let triple = FactorTriple {
            a: BitMatrix::zeros(10, 3),
            mf: BitMatrix::zeros(7, 3),
            ms: BitMatrix::zeros(5, 3),
        };
        let meter = |m: &BitMatrix| ((m.rows() * m.cols()) as u64).div_ceil(8);
        let frame = triple.to_frame();
        assert_eq!(
            frame.data_len,
            meter(&triple.a) + meter(&triple.mf) + meter(&triple.ms)
        );
        let back = FactorTriple::from_frame(&frame.bytes).unwrap();
        assert_eq!(back, triple);
    }
}
