//! Tensor deltas and the copy-on-write unfolding overlay.
//!
//! An incremental update arrives as a small stream of cell edits — set
//! this `(i, j, k)` to one, clear that one — against a tensor whose
//! unfoldings are already built (heap [`Unfolding`] or on-disk
//! [`MmapUnfolding`](crate::MmapUnfolding)). Rebuilding three unfoldings
//! for a handful of cells would defeat the point, so the delta path
//! patches instead: each edit maps through the Equation-1 index maps
//! ([`Mode::matricize`]) to one `(row, column)` of each mode's
//! unfolding, and [`OverlayUnfolding`] materialises *only the touched
//! rows* as copy-on-write replacements over an untouched base store.
//! Every other row is still served borrowed from the base, so the
//! overlay satisfies the same [`UnfoldingStore`] contract the
//! partitioner and kernels were written against.
//!
//! # The delta text format
//!
//! One edit per line, whitespace-separated, `#` starts a comment:
//!
//! ```text
//! # planted drift, batch 3
//! + 0 2 1      # set cell (0, 2, 1)
//! - 4 1 0      # clear cell (4, 1, 0)
//! ```
//!
//! Later lines win when the same cell appears twice — a delta file is a
//! log, and the tail is the truth.

use std::collections::HashMap;

use crate::store::UnfoldingStore;
use crate::unfold::Mode;
use crate::BoolTensor;

/// One cell edit: set (`+`) or clear (`-`) the cell at `coord`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaCell {
    /// The `(i, j, k)` coordinate of the edited cell.
    pub coord: [u32; 3],
    /// `true` sets the cell to one, `false` clears it to zero.
    pub set: bool,
}

/// A validated, deduplicated batch of cell edits against a tensor of
/// known dimensions.
///
/// Construction enforces the invariants the rest of the pipeline leans
/// on: every coordinate is in range, each cell appears at most once
/// (last edit wins), and the cells are sorted by coordinate so
/// application and comparison are deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TensorDelta {
    dims: [usize; 3],
    cells: Vec<DeltaCell>,
}

impl TensorDelta {
    /// Builds a delta from raw edits, in arrival order.
    ///
    /// Out-of-range coordinates are an error naming the offending cell.
    /// Duplicate coordinates are collapsed to the *last* edit.
    pub fn new(dims: [usize; 3], edits: Vec<DeltaCell>) -> Result<TensorDelta, String> {
        for cell in &edits {
            for (axis, (&c, &d)) in cell.coord.iter().zip(dims.iter()).enumerate() {
                if c as usize >= d {
                    return Err(format!(
                        "delta cell {:?} axis {axis} index {c} out of range for dims {dims:?}",
                        cell.coord
                    ));
                }
            }
        }
        let mut last: HashMap<[u32; 3], bool> = HashMap::with_capacity(edits.len());
        for cell in edits {
            last.insert(cell.coord, cell.set);
        }
        let mut cells: Vec<DeltaCell> = last
            .into_iter()
            .map(|(coord, set)| DeltaCell { coord, set })
            .collect();
        cells.sort_by_key(|c| c.coord);
        Ok(TensorDelta { dims, cells })
    }

    /// Parses the `+ i j k` / `- i j k` text format (see the module docs).
    ///
    /// Errors carry the 1-based line number for the report.
    pub fn parse(text: &str, dims: [usize; 3]) -> Result<TensorDelta, String> {
        let mut edits = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = match raw.find('#') {
                Some(at) => &raw[..at],
                None => raw,
            };
            let mut fields = line.split_whitespace();
            let Some(op) = fields.next() else { continue };
            let set = match op {
                "+" => true,
                "-" => false,
                other => {
                    return Err(format!(
                        "line {}: expected + or -, got {other:?}",
                        lineno + 1
                    ))
                }
            };
            let mut coord = [0u32; 3];
            for slot in &mut coord {
                let field = fields
                    .next()
                    .ok_or_else(|| format!("line {}: expected three indices", lineno + 1))?;
                *slot = field
                    .parse()
                    .map_err(|_| format!("line {}: bad index {field:?}", lineno + 1))?;
            }
            if let Some(extra) = fields.next() {
                return Err(format!(
                    "line {}: trailing field {extra:?} after the three indices",
                    lineno + 1
                ));
            }
            edits.push(DeltaCell { coord, set });
        }
        TensorDelta::new(dims, edits).map_err(|e| format!("delta: {e}"))
    }

    /// Renders the delta back to its text format (one edit per line).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for cell in &self.cells {
            let op = if cell.set { '+' } else { '-' };
            let [i, j, k] = cell.coord;
            out.push_str(&format!("{op} {i} {j} {k}\n"));
        }
        out
    }

    /// The tensor dimensions this delta was validated against.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// The deduplicated edits, sorted by coordinate.
    pub fn cells(&self) -> &[DeltaCell] {
        &self.cells
    }

    /// Number of (deduplicated) edits.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the delta edits nothing.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Applies the delta to a tensor, producing the updated tensor.
    ///
    /// Set edits that are already one and clear edits that are already
    /// zero are no-ops — a delta describes desired final state, not a
    /// strict toggle log.
    ///
    /// # Panics
    ///
    /// Panics if `x.dims()` differs from the dims this delta was
    /// validated against.
    pub fn apply(&self, x: &BoolTensor) -> BoolTensor {
        assert_eq!(
            x.dims(),
            self.dims,
            "delta dims do not match the tensor being patched"
        );
        let mut entries: Vec<[u32; 3]> = Vec::with_capacity(x.nnz() + self.cells.len());
        // Both lists are sorted by coordinate: a linear merge applies
        // every edit in one pass.
        let (mut cur, cells) = (0usize, &self.cells);
        for e in x.iter() {
            while cur < cells.len() && cells[cur].coord < e {
                if cells[cur].set {
                    entries.push(cells[cur].coord);
                }
                cur += 1;
            }
            if cur < cells.len() && cells[cur].coord == e {
                if cells[cur].set {
                    entries.push(e);
                }
                cur += 1;
            } else {
                entries.push(e);
            }
        }
        for cell in &cells[cur..] {
            if cell.set {
                entries.push(cell.coord);
            }
        }
        BoolTensor::from_entries(self.dims, entries)
    }
}

/// A copy-on-write row overlay that presents `base` with a
/// [`TensorDelta`] applied, without rebuilding the unfolding.
///
/// Only rows touched by the delta are materialised (each as a patched
/// copy of the base row); every other row is borrowed straight from the
/// base store. Works over any [`UnfoldingStore`] — the heap
/// [`Unfolding`](crate::Unfolding), the on-disk
/// [`MmapUnfolding`](crate::MmapUnfolding),
/// or a reference to either.
pub struct OverlayUnfolding<S: UnfoldingStore> {
    base: S,
    patched: HashMap<usize, Vec<u64>>,
    nnz: u64,
}

impl<S: UnfoldingStore> OverlayUnfolding<S> {
    /// Overlays `delta` on `base`.
    ///
    /// # Panics
    ///
    /// Panics if `delta.dims()` differs from `base.tensor_dims()` — the
    /// Equation-1 index maps are only meaningful against the dimensions
    /// the delta was validated for.
    pub fn new(base: S, delta: &TensorDelta) -> OverlayUnfolding<S> {
        assert_eq!(
            base.tensor_dims(),
            delta.dims(),
            "delta dims do not match the unfolding being overlaid"
        );
        let (mode, dims) = (base.mode(), base.tensor_dims());
        // Group the edits by unfolding row, then patch each touched row
        // once: copy the base row and splice the edited columns in/out.
        let mut by_row: HashMap<usize, Vec<(u64, bool)>> = HashMap::new();
        for cell in delta.cells() {
            let (row, col) = mode.matricize(dims, cell.coord);
            by_row
                .entry(row as usize)
                .or_default()
                .push((col, cell.set));
        }
        let mut nnz = base.nnz();
        let mut patched = HashMap::with_capacity(by_row.len());
        for (r, edits) in by_row {
            let mut row = base.row(r).to_vec();
            for (col, set) in edits {
                match (row.binary_search(&col), set) {
                    (Ok(_), true) | (Err(_), false) => {} // already the desired state
                    (Err(at), true) => {
                        row.insert(at, col);
                        nnz += 1;
                    }
                    (Ok(at), false) => {
                        row.remove(at);
                        nnz -= 1;
                    }
                }
            }
            patched.insert(r, row);
        }
        OverlayUnfolding { base, patched, nnz }
    }

    /// The sorted rows this overlay patches (touched by the delta).
    pub fn patched_rows(&self) -> Vec<usize> {
        let mut rows: Vec<usize> = self.patched.keys().copied().collect();
        rows.sort_unstable();
        rows
    }

    /// The underlying base store.
    pub fn base(&self) -> &S {
        &self.base
    }
}

impl<S: UnfoldingStore> UnfoldingStore for OverlayUnfolding<S> {
    fn mode(&self) -> Mode {
        self.base.mode()
    }

    fn tensor_dims(&self) -> [usize; 3] {
        self.base.tensor_dims()
    }

    fn nrows(&self) -> usize {
        self.base.nrows()
    }

    fn ncols(&self) -> u64 {
        self.base.ncols()
    }

    fn nnz(&self) -> u64 {
        self.nnz
    }

    fn row(&self, r: usize) -> &[u64] {
        match self.patched.get(&r) {
            Some(row) => row,
            None => self.base.row(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unfold::Unfolding;

    fn sample() -> BoolTensor {
        BoolTensor::from_entries(
            [3, 4, 5],
            vec![
                [0, 0, 0],
                [0, 2, 1],
                [1, 1, 3],
                [1, 3, 4],
                [2, 0, 2],
                [2, 3, 0],
            ],
        )
    }

    fn sample_delta() -> TensorDelta {
        TensorDelta::new(
            [3, 4, 5],
            vec![
                DeltaCell {
                    coord: [0, 1, 4],
                    set: true,
                }, // genuinely new cell
                DeltaCell {
                    coord: [1, 1, 3],
                    set: false,
                }, // clears an existing cell
                DeltaCell {
                    coord: [2, 2, 2],
                    set: false,
                }, // clear of an absent cell: no-op
                DeltaCell {
                    coord: [0, 0, 0],
                    set: true,
                }, // set of a present cell: no-op
            ],
        )
        .unwrap()
    }

    #[test]
    fn parse_roundtrip_and_validation() {
        let text = "# a comment\n+ 0 1 4\n\n- 1 1 3   # inline comment\n- 2 2 2\n+ 0 0 0\n";
        let delta = TensorDelta::parse(text, [3, 4, 5]).unwrap();
        assert_eq!(delta, sample_delta());
        let again = TensorDelta::parse(&delta.to_text(), [3, 4, 5]).unwrap();
        assert_eq!(again, delta);

        let err = TensorDelta::parse("+ 0 9 0\n", [3, 4, 5]).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let err = TensorDelta::parse("* 0 0 0\n", [3, 4, 5]).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = TensorDelta::parse("+ 0 0\n", [3, 4, 5]).unwrap_err();
        assert!(err.contains("three indices"), "{err}");
        let err = TensorDelta::parse("+ 0 0 0 0\n", [3, 4, 5]).unwrap_err();
        assert!(err.contains("trailing"), "{err}");
        let err = TensorDelta::parse("+ x 0 0\n", [3, 4, 5]).unwrap_err();
        assert!(err.contains("bad index"), "{err}");
    }

    #[test]
    fn later_edits_win_on_duplicate_cells() {
        let delta = TensorDelta::parse("+ 1 1 1\n- 1 1 1\n", [3, 4, 5]).unwrap();
        assert_eq!(
            delta.cells(),
            &[DeltaCell {
                coord: [1, 1, 1],
                set: false
            }]
        );
    }

    #[test]
    fn apply_matches_cell_by_cell_edits() {
        let x = sample();
        let y = sample_delta().apply(&x);
        assert!(y.contains(0, 1, 4), "new cell set");
        assert!(!y.contains(1, 1, 3), "existing cell cleared");
        assert!(y.contains(0, 0, 0), "no-op set keeps the cell");
        assert!(!y.contains(2, 2, 2), "no-op clear stays clear");
        assert_eq!(y.nnz(), x.nnz()); // one set, one clear, two no-ops
        for e in x.iter() {
            if e != [1, 1, 3] {
                assert!(y.contains(e[0], e[1], e[2]), "{e:?} untouched");
            }
        }
    }

    #[test]
    fn overlay_matches_a_rebuilt_unfolding_for_every_mode() {
        let x = sample();
        let delta = sample_delta();
        let y = delta.apply(&x);
        for mode in Mode::ALL {
            let base = Unfolding::new(&x, mode);
            let overlay = OverlayUnfolding::new(&base, &delta);
            let rebuilt = Unfolding::new(&y, mode);
            assert_eq!(overlay.nnz(), rebuilt.nnz() as u64, "{mode:?} nnz");
            for r in 0..rebuilt.nrows() {
                assert_eq!(overlay.row(r), rebuilt.row(r), "{mode:?} row {r}");
            }
            crate::unfold::row_range_contract_check(&overlay, "overlay");
        }
    }

    #[test]
    fn overlay_patches_mmap_bases_too() {
        let x = sample();
        let delta = sample_delta();
        let y = delta.apply(&x);
        let dir = std::env::temp_dir().join("dbtf-delta-overlay-tests");
        std::fs::create_dir_all(&dir).unwrap();
        for mode in Mode::ALL {
            let path = dir.join(format!("m{}-{}.unf", mode.index(), std::process::id()));
            let base = Unfolding::new(&x, mode);
            crate::MmapUnfolding::write_from_store(&base, &path).unwrap();
            let mapped = crate::MmapUnfolding::open(&path).unwrap();
            let overlay = OverlayUnfolding::new(&mapped, &delta);
            let rebuilt = Unfolding::new(&y, mode);
            for r in 0..rebuilt.nrows() {
                assert_eq!(overlay.row(r), rebuilt.row(r), "{mode:?} row {r}");
            }
            assert_eq!(overlay.nnz(), rebuilt.nnz() as u64);
            crate::unfold::row_range_contract_check(&overlay, "mmap overlay");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn untouched_rows_are_borrowed_not_copied() {
        let x = sample();
        let delta = sample_delta();
        let base = Unfolding::new(&x, Mode::One);
        let overlay = OverlayUnfolding::new(&base, &delta);
        // Delta touches tensor rows i = 0, 1, 2 is untouched in mode 1
        // (its only edit was a no-op clear of an absent cell — still a
        // patched row, by design). Row addresses prove the borrow.
        assert_eq!(overlay.patched_rows(), vec![0, 1, 2]);
        let empty_delta = TensorDelta::new([3, 4, 5], Vec::new()).unwrap();
        let passthrough = OverlayUnfolding::new(&base, &empty_delta);
        assert!(passthrough.patched_rows().is_empty());
        for r in 0..base.nrows() {
            assert!(std::ptr::eq(
                passthrough.row(r).as_ptr(),
                base.row(r).as_ptr()
            ));
        }
    }

    #[test]
    fn empty_delta_is_identity() {
        let x = sample();
        let delta = TensorDelta::parse("# nothing\n", [3, 4, 5]).unwrap();
        assert!(delta.is_empty());
        assert_eq!(delta.len(), 0);
        assert_eq!(delta.apply(&x), x);
    }
}
