//! Plain-text tensor I/O.
//!
//! The on-disk format matches the datasets published with the paper: one
//! `i j k` triple per line (whitespace-separated, 0-based), `#`-prefixed
//! comment lines ignored. A header comment `# dims I J K` pins the shape;
//! without it the shape is inferred as `max+1` per mode.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{BoolTensor, TensorBuilder};

/// Errors produced when parsing the text tensor format.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed; carries the 1-based line number and text.
    Malformed(usize, String),
    /// An entry exceeded the declared `# dims` header.
    OutOfRange(usize, String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "I/O error: {e}"),
            ParseError::Malformed(line, text) => {
                write!(f, "malformed entry on line {line}: {text:?}")
            }
            ParseError::OutOfRange(line, text) => {
                write!(f, "entry out of declared range on line {line}: {text:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Reads a tensor from the text format.
pub fn read_tensor<R: Read>(reader: R) -> Result<BoolTensor, ParseError> {
    let reader = BufReader::new(reader);
    let mut declared_dims: Option<[usize; 3]> = None;
    let mut entries: Vec<[u32; 3]> = Vec::new();
    let mut max = [0u32; 3];
    let mut line_buf = String::new();
    let mut reader = reader;
    let mut line_no = 0usize;
    loop {
        line_buf.clear();
        if reader.read_line(&mut line_buf)? == 0 {
            break;
        }
        line_no += 1;
        let line = line_buf.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if let Some(dims_str) = rest.strip_prefix("dims") {
                let parsed: Vec<usize> = dims_str
                    .split_whitespace()
                    .map(str::parse)
                    .collect::<Result<_, _>>()
                    .map_err(|_| ParseError::Malformed(line_no, line.to_string()))?;
                if parsed.len() != 3 {
                    return Err(ParseError::Malformed(line_no, line.to_string()));
                }
                declared_dims = Some([parsed[0], parsed[1], parsed[2]]);
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let mut triple = [0u32; 3];
        for t in &mut triple {
            *t = parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| ParseError::Malformed(line_no, line.to_string()))?;
        }
        if parts.next().is_some() {
            return Err(ParseError::Malformed(line_no, line.to_string()));
        }
        if let Some(dims) = declared_dims {
            if (0..3).any(|m| triple[m] as usize >= dims[m]) {
                return Err(ParseError::OutOfRange(line_no, line.to_string()));
            }
        }
        for m in 0..3 {
            max[m] = max[m].max(triple[m]);
        }
        entries.push(triple);
    }
    let dims = declared_dims.unwrap_or_else(|| {
        if entries.is_empty() {
            [0, 0, 0]
        } else {
            [
                max[0] as usize + 1,
                max[1] as usize + 1,
                max[2] as usize + 1,
            ]
        }
    });
    let mut builder = TensorBuilder::with_capacity(dims, entries.len());
    for [i, j, k] in entries {
        builder.insert(i, j, k);
    }
    Ok(builder.build())
}

/// Writes a tensor in the text format (with a `# dims` header).
pub fn write_tensor<W: Write>(tensor: &BoolTensor, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    let [i, j, k] = tensor.dims();
    writeln!(w, "# dims {i} {j} {k}")?;
    for [a, b, c] in tensor.iter() {
        writeln!(w, "{a} {b} {c}")?;
    }
    w.flush()
}

/// Magic bytes of the binary tensor format.
const BINARY_MAGIC: &[u8; 8] = b"DBTFBIN1";

/// Serializes a tensor into the compact binary format: an 8-byte magic,
/// three `u64` mode sizes, a `u64` count, then plain little-endian `u32`
/// coordinate triples in sorted order.
///
/// Roughly 12 bytes per non-zero versus ~12–20 for the text format, and
/// no parsing on load — the practical choice for the multi-hundred-MB
/// tensors of the paper's Table III.
pub fn write_tensor_binary_buf(tensor: &BoolTensor) -> bytes::Bytes {
    use bytes::BufMut;
    let mut buf = bytes::BytesMut::with_capacity(8 + 32 + tensor.nnz() * 12);
    buf.put_slice(BINARY_MAGIC);
    for d in tensor.dims() {
        buf.put_u64_le(d as u64);
    }
    buf.put_u64_le(tensor.nnz() as u64);
    for [i, j, k] in tensor.iter() {
        buf.put_u32_le(i);
        buf.put_u32_le(j);
        buf.put_u32_le(k);
    }
    buf.freeze()
}

/// Parses the binary format produced by [`write_tensor_binary_buf`].
pub fn read_tensor_binary_buf(mut data: &[u8]) -> Result<BoolTensor, ParseError> {
    use bytes::Buf;
    let malformed = |msg: &str| ParseError::Malformed(0, msg.to_string());
    if data.len() < 8 + 32 || &data[..8] != BINARY_MAGIC {
        return Err(malformed("missing DBTFBIN1 magic"));
    }
    data.advance(8);
    let dims = [
        data.get_u64_le() as usize,
        data.get_u64_le() as usize,
        data.get_u64_le() as usize,
    ];
    let count = data.get_u64_le() as usize;
    if data.remaining() < count * 12 {
        return Err(malformed("truncated entry section"));
    }
    let mut builder = TensorBuilder::with_capacity(dims, count);
    for _ in 0..count {
        let (i, j, k) = (data.get_u32_le(), data.get_u32_le(), data.get_u32_le());
        if i as usize >= dims[0] || j as usize >= dims[1] || k as usize >= dims[2] {
            return Err(ParseError::OutOfRange(0, format!("({i}, {j}, {k})")));
        }
        builder.insert(i, j, k);
    }
    Ok(builder.build())
}

/// Writes a tensor to a file in the binary format.
pub fn write_tensor_binary_file<P: AsRef<Path>>(tensor: &BoolTensor, path: P) -> io::Result<()> {
    std::fs::write(path, write_tensor_binary_buf(tensor))
}

/// Reads a tensor from a binary-format file.
pub fn read_tensor_binary_file<P: AsRef<Path>>(path: P) -> Result<BoolTensor, ParseError> {
    read_tensor_binary_buf(&std::fs::read(path)?)
}

/// Reads a tensor from a file path.
pub fn read_tensor_file<P: AsRef<Path>>(path: P) -> Result<BoolTensor, ParseError> {
    read_tensor(std::fs::File::open(path)?)
}

/// A bounded-memory streaming reader over the entries of a tensor file.
///
/// Detects the binary (`DBTFBIN1`) versus text format from the magic bytes.
/// Binary files stream in one pass (shape and count come from the header);
/// text files pay one cheap pre-scan pass to resolve the shape (`# dims`
/// header, or `max+1` inference) and count, then stream entries on the
/// second pass. Nothing is ever materialized: peak memory is one line
/// buffer, regardless of tensor size.
pub struct TensorStream {
    dims: [usize; 3],
    nnz: u64,
    inner: StreamInner,
}

enum StreamInner {
    Text {
        reader: BufReader<std::fs::File>,
        line_no: usize,
        buf: String,
    },
    Binary {
        reader: BufReader<std::fs::File>,
        remaining: u64,
    },
}

impl TensorStream {
    /// Opens `path` for streaming, resolving shape and entry count up front.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<TensorStream, ParseError> {
        let path = path.as_ref();
        let mut file = std::fs::File::open(path)?;
        let mut magic = [0u8; 8];
        let mut got = 0;
        while got < 8 {
            let n = file.read(&mut magic[got..])?;
            if n == 0 {
                break;
            }
            got += n;
        }
        if got == 8 && &magic == BINARY_MAGIC {
            let mut reader = BufReader::new(file);
            let mut head = [0u8; 32];
            reader
                .read_exact(&mut head)
                .map_err(|_| ParseError::Malformed(0, "truncated DBTFBIN1 header".to_string()))?;
            let rd = |i: usize| u64::from_le_bytes(head[i..i + 8].try_into().unwrap());
            let dims = [rd(0) as usize, rd(8) as usize, rd(16) as usize];
            let nnz = rd(24);
            return Ok(TensorStream {
                dims,
                nnz,
                inner: StreamInner::Binary {
                    reader,
                    remaining: nnz,
                },
            });
        }
        // Text: pre-scan for declared dims / max coordinates and the count.
        drop(file);
        let mut declared: Option<[usize; 3]> = None;
        let mut max = [0u32; 3];
        let mut nnz = 0u64;
        let mut any = false;
        scan_text(std::fs::File::open(path)?, |parsed| {
            match parsed {
                TextLine::Dims(d) => declared = Some(d),
                TextLine::Entry(e) => {
                    any = true;
                    nnz += 1;
                    for m in 0..3 {
                        max[m] = max[m].max(e[m]);
                    }
                }
            }
            Ok(())
        })?;
        let dims = declared.unwrap_or(if any {
            [
                max[0] as usize + 1,
                max[1] as usize + 1,
                max[2] as usize + 1,
            ]
        } else {
            [0, 0, 0]
        });
        Ok(TensorStream {
            dims,
            nnz,
            inner: StreamInner::Text {
                reader: BufReader::new(std::fs::File::open(path)?),
                line_no: 0,
                buf: String::new(),
            },
        })
    }

    /// The tensor shape (declared or inferred).
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Number of entry records in the file (duplicates counted).
    pub fn nnz(&self) -> u64 {
        self.nnz
    }
}

impl Iterator for TensorStream {
    type Item = Result<[u32; 3], ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            StreamInner::Binary { reader, remaining } => {
                if *remaining == 0 {
                    return None;
                }
                let mut rec = [0u8; 12];
                if let Err(e) = reader.read_exact(&mut rec) {
                    *remaining = 0;
                    return Some(Err(ParseError::Io(e)));
                }
                *remaining -= 1;
                let coord = |i: usize| u32::from_le_bytes(rec[i..i + 4].try_into().unwrap());
                let e = [coord(0), coord(4), coord(8)];
                if (0..3).any(|m| e[m] as usize >= self.dims[m]) {
                    *remaining = 0;
                    return Some(Err(ParseError::OutOfRange(0, format!("{e:?}"))));
                }
                Some(Ok(e))
            }
            StreamInner::Text {
                reader,
                line_no,
                buf,
            } => loop {
                buf.clear();
                match reader.read_line(buf) {
                    Err(e) => return Some(Err(ParseError::Io(e))),
                    Ok(0) => return None,
                    Ok(_) => {}
                }
                *line_no += 1;
                let line = buf.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                match parse_entry_line(line, *line_no) {
                    Err(e) => return Some(Err(e)),
                    Ok(e) => {
                        if (0..3).any(|m| e[m] as usize >= self.dims[m]) {
                            return Some(Err(ParseError::OutOfRange(*line_no, line.to_string())));
                        }
                        return Some(Ok(e));
                    }
                }
            },
        }
    }
}

enum TextLine {
    Dims([usize; 3]),
    Entry([u32; 3]),
}

fn parse_entry_line(line: &str, line_no: usize) -> Result<[u32; 3], ParseError> {
    let mut parts = line.split_whitespace();
    let mut triple = [0u32; 3];
    for t in &mut triple {
        *t = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| ParseError::Malformed(line_no, line.to_string()))?;
    }
    if parts.next().is_some() {
        return Err(ParseError::Malformed(line_no, line.to_string()));
    }
    Ok(triple)
}

fn scan_text<F>(file: std::fs::File, mut sink: F) -> Result<(), ParseError>
where
    F: FnMut(TextLine) -> Result<(), ParseError>,
{
    let mut reader = BufReader::new(file);
    let mut buf = String::new();
    let mut line_no = 0usize;
    loop {
        buf.clear();
        if reader.read_line(&mut buf)? == 0 {
            return Ok(());
        }
        line_no += 1;
        let line = buf.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if let Some(dims_str) = rest.trim().strip_prefix("dims") {
                let parsed: Vec<usize> = dims_str
                    .split_whitespace()
                    .map(str::parse)
                    .collect::<Result<_, _>>()
                    .map_err(|_| ParseError::Malformed(line_no, line.to_string()))?;
                if parsed.len() != 3 {
                    return Err(ParseError::Malformed(line_no, line.to_string()));
                }
                sink(TextLine::Dims([parsed[0], parsed[1], parsed[2]]))?;
            }
            continue;
        }
        sink(TextLine::Entry(parse_entry_line(line, line_no)?))?;
    }
}

/// Incrementally writes a tensor file entry by entry — text or binary —
/// without ever holding the tensor in memory.
///
/// Entries must arrive in strictly increasing lexicographic order (the
/// order [`BoolTensor::iter`] and the datagen samplers produce), so the
/// resulting file is byte-identical to saving the materialized tensor. The
/// binary header's count field is patched in on [`StreamingTensorWriter::finish`].
pub struct StreamingTensorWriter {
    file: BufWriter<std::fs::File>,
    binary: bool,
    dims: [usize; 3],
    count: u64,
    last: Option<[u32; 3]>,
}

impl StreamingTensorWriter {
    /// Creates `path` and writes the format header for shape `dims`.
    pub fn create<P: AsRef<Path>>(
        path: P,
        dims: [usize; 3],
        binary: bool,
    ) -> io::Result<StreamingTensorWriter> {
        let mut file = BufWriter::new(std::fs::File::create(path)?);
        if binary {
            file.write_all(BINARY_MAGIC)?;
            for d in dims {
                file.write_all(&(d as u64).to_le_bytes())?;
            }
            // Count placeholder, patched by finish().
            file.write_all(&0u64.to_le_bytes())?;
        } else {
            writeln!(file, "# dims {} {} {}", dims[0], dims[1], dims[2])?;
        }
        Ok(StreamingTensorWriter {
            file,
            binary,
            dims,
            count: 0,
            last: None,
        })
    }

    /// Appends one entry; entries must be strictly increasing and in range.
    pub fn push(&mut self, e: [u32; 3]) -> io::Result<()> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidInput, msg);
        if (0..3).any(|m| e[m] as usize >= self.dims[m]) {
            return Err(bad(format!("entry {e:?} out of range for {:?}", self.dims)));
        }
        if let Some(last) = self.last {
            if e <= last {
                return Err(bad(format!("entry {e:?} not after {last:?}")));
            }
        }
        if self.binary {
            for c in e {
                self.file.write_all(&c.to_le_bytes())?;
            }
        } else {
            writeln!(self.file, "{} {} {}", e[0], e[1], e[2])?;
        }
        self.last = Some(e);
        self.count += 1;
        Ok(())
    }

    /// Flushes and (for binary files) patches the entry count. Returns the
    /// number of entries written.
    pub fn finish(self) -> io::Result<u64> {
        use std::io::Seek;
        let mut file = self.file.into_inner().map_err(|e| e.into_error())?;
        if self.binary {
            file.seek(io::SeekFrom::Start(32))?;
            file.write_all(&self.count.to_le_bytes())?;
        }
        file.flush()?;
        Ok(self.count)
    }
}

/// Writes a tensor to a file path.
pub fn write_tensor_file<P: AsRef<Path>>(tensor: &BoolTensor, path: P) -> io::Result<()> {
    write_tensor(tensor, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let t = BoolTensor::from_entries([3, 4, 5], vec![[0, 0, 0], [2, 3, 4], [1, 1, 1]]);
        let mut buf = Vec::new();
        write_tensor(&t, &mut buf).unwrap();
        let back = read_tensor(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn inferred_dims_without_header() {
        let text = "0 0 0\n2 3 4\n";
        let t = read_tensor(text.as_bytes()).unwrap();
        assert_eq!(t.dims(), [3, 4, 5]);
        assert_eq!(t.nnz(), 2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n\n0 1 2\n# another\n";
        let t = read_tensor(text.as_bytes()).unwrap();
        assert_eq!(t.nnz(), 1);
        assert!(t.contains(0, 1, 2));
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "0 0 0\nnot a triple\n";
        match read_tensor(text.as_bytes()) {
            Err(ParseError::Malformed(2, _)) => {}
            other => panic!("expected Malformed(2, _), got {other:?}"),
        }
    }

    #[test]
    fn too_many_fields_rejected() {
        let text = "0 0 0 0\n";
        assert!(matches!(
            read_tensor(text.as_bytes()),
            Err(ParseError::Malformed(1, _))
        ));
    }

    #[test]
    fn out_of_range_with_header() {
        let text = "# dims 2 2 2\n0 0 2\n";
        assert!(matches!(
            read_tensor(text.as_bytes()),
            Err(ParseError::OutOfRange(2, _))
        ));
    }

    #[test]
    fn empty_input() {
        let t = read_tensor("".as_bytes()).unwrap();
        assert_eq!(t.dims(), [0, 0, 0]);
        assert_eq!(t.nnz(), 0);
    }

    #[test]
    fn duplicate_entries_dedup() {
        let text = "1 1 1\n1 1 1\n";
        let t = read_tensor(text.as_bytes()).unwrap();
        assert_eq!(t.nnz(), 1);
    }

    #[test]
    fn binary_roundtrip() {
        let t = BoolTensor::from_entries([100, 50, 30], vec![[0, 0, 0], [99, 49, 29], [5, 5, 5]]);
        let buf = write_tensor_binary_buf(&t);
        assert_eq!(&buf[..8], b"DBTFBIN1");
        assert_eq!(buf.len(), 8 + 32 + 3 * 12);
        let back = read_tensor_binary_buf(&buf).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        assert!(read_tensor_binary_buf(b"NOTMAGIC").is_err());
        assert!(read_tensor_binary_buf(b"").is_err());
    }

    #[test]
    fn binary_rejects_truncation_and_out_of_range() {
        let t = BoolTensor::from_entries([4, 4, 4], vec![[1, 2, 3], [0, 0, 0]]);
        let buf = write_tensor_binary_buf(&t);
        assert!(matches!(
            read_tensor_binary_buf(&buf[..buf.len() - 4]),
            Err(ParseError::Malformed(_, _))
        ));
        // Corrupt an entry coordinate beyond the dims.
        let mut bad = buf.to_vec();
        let entry_start = 8 + 32;
        bad[entry_start..entry_start + 4].copy_from_slice(&200u32.to_le_bytes());
        assert!(matches!(
            read_tensor_binary_buf(&bad),
            Err(ParseError::OutOfRange(_, _))
        ));
    }

    #[test]
    fn binary_file_roundtrip() {
        let t = BoolTensor::from_entries([8, 8, 8], vec![[1, 1, 1], [7, 0, 3]]);
        let dir = std::env::temp_dir().join("dbtf_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.dbtf");
        write_tensor_binary_file(&t, &path).unwrap();
        assert_eq!(read_tensor_binary_file(&path).unwrap(), t);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_tensor_binary() {
        let t = BoolTensor::empty([3, 3, 3]);
        let back = read_tensor_binary_buf(&write_tensor_binary_buf(&t)).unwrap();
        assert_eq!(back, t);
    }

    fn stream_tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dbtf_io_stream_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn tensor_stream_matches_full_read_text_and_binary() {
        let t = BoolTensor::from_entries(
            [6, 5, 4],
            vec![[0, 0, 0], [5, 4, 3], [2, 2, 2], [0, 4, 1], [3, 0, 2]],
        );
        let text = stream_tmp("s.tsv");
        let bin = stream_tmp("s.dbtf");
        write_tensor_file(&t, &text).unwrap();
        write_tensor_binary_file(&t, &bin).unwrap();
        for path in [&text, &bin] {
            let s = TensorStream::open(path).unwrap();
            assert_eq!(s.dims(), t.dims());
            assert_eq!(s.nnz(), t.nnz() as u64);
            let entries: Vec<[u32; 3]> = s.map(Result::unwrap).collect();
            assert_eq!(entries, t.iter().collect::<Vec<_>>());
        }
    }

    #[test]
    fn tensor_stream_infers_dims_without_header() {
        let path = stream_tmp("noheader.tsv");
        std::fs::write(&path, "0 0 0\n2 3 4\n2 3 4\n").unwrap();
        let s = TensorStream::open(&path).unwrap();
        assert_eq!(s.dims(), [3, 4, 5]);
        assert_eq!(s.nnz(), 3); // duplicates counted at the record level
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn tensor_stream_propagates_parse_errors() {
        let path = stream_tmp("bad.tsv");
        std::fs::write(&path, "# dims 2 2 2\n0 0 0\nnot a triple\n").unwrap();
        // The pre-scan already trips over the malformed line.
        assert!(matches!(
            TensorStream::open(&path),
            Err(ParseError::Malformed(3, _))
        ));
        let path = stream_tmp("oor.tsv");
        std::fs::write(&path, "# dims 2 2 2\n0 0 5\n").unwrap();
        assert!(matches!(
            TensorStream::open(&path).unwrap().next(),
            Some(Err(ParseError::OutOfRange(2, _)))
        ));
    }

    #[test]
    fn streaming_writer_is_byte_identical_to_bulk_save() {
        let t = BoolTensor::from_entries(
            [7, 3, 9],
            vec![[0, 1, 8], [6, 2, 0], [3, 0, 4], [0, 0, 0], [6, 2, 8]],
        );
        for binary in [false, true] {
            let bulk = stream_tmp(if binary { "bulk.dbtf" } else { "bulk.tsv" });
            let streamed = stream_tmp(if binary { "str.dbtf" } else { "str.tsv" });
            if binary {
                write_tensor_binary_file(&t, &bulk).unwrap();
            } else {
                write_tensor_file(&t, &bulk).unwrap();
            }
            let mut w = StreamingTensorWriter::create(&streamed, t.dims(), binary).unwrap();
            for e in t.iter() {
                w.push(e).unwrap();
            }
            assert_eq!(w.finish().unwrap(), t.nnz() as u64);
            assert_eq!(
                std::fs::read(&bulk).unwrap(),
                std::fs::read(&streamed).unwrap(),
                "binary={binary}"
            );
        }
    }

    #[test]
    fn streaming_writer_rejects_disorder_and_range() {
        let path = stream_tmp("reject.dbtf");
        let mut w = StreamingTensorWriter::create(&path, [2, 2, 2], true).unwrap();
        w.push([1, 0, 0]).unwrap();
        assert!(w.push([1, 0, 0]).is_err()); // duplicate
        assert!(w.push([0, 1, 1]).is_err()); // backwards
        assert!(w.push([1, 2, 0]).is_err()); // out of range
        w.push([1, 1, 1]).unwrap();
        assert_eq!(w.finish().unwrap(), 2);
    }
}
