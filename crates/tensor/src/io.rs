//! Plain-text tensor I/O.
//!
//! The on-disk format matches the datasets published with the paper: one
//! `i j k` triple per line (whitespace-separated, 0-based), `#`-prefixed
//! comment lines ignored. A header comment `# dims I J K` pins the shape;
//! without it the shape is inferred as `max+1` per mode.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{BoolTensor, TensorBuilder};

/// Errors produced when parsing the text tensor format.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed; carries the 1-based line number and text.
    Malformed(usize, String),
    /// An entry exceeded the declared `# dims` header.
    OutOfRange(usize, String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "I/O error: {e}"),
            ParseError::Malformed(line, text) => {
                write!(f, "malformed entry on line {line}: {text:?}")
            }
            ParseError::OutOfRange(line, text) => {
                write!(f, "entry out of declared range on line {line}: {text:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Reads a tensor from the text format.
pub fn read_tensor<R: Read>(reader: R) -> Result<BoolTensor, ParseError> {
    let reader = BufReader::new(reader);
    let mut declared_dims: Option<[usize; 3]> = None;
    let mut entries: Vec<[u32; 3]> = Vec::new();
    let mut max = [0u32; 3];
    let mut line_buf = String::new();
    let mut reader = reader;
    let mut line_no = 0usize;
    loop {
        line_buf.clear();
        if reader.read_line(&mut line_buf)? == 0 {
            break;
        }
        line_no += 1;
        let line = line_buf.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if let Some(dims_str) = rest.strip_prefix("dims") {
                let parsed: Vec<usize> = dims_str
                    .split_whitespace()
                    .map(str::parse)
                    .collect::<Result<_, _>>()
                    .map_err(|_| ParseError::Malformed(line_no, line.to_string()))?;
                if parsed.len() != 3 {
                    return Err(ParseError::Malformed(line_no, line.to_string()));
                }
                declared_dims = Some([parsed[0], parsed[1], parsed[2]]);
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let mut triple = [0u32; 3];
        for t in &mut triple {
            *t = parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| ParseError::Malformed(line_no, line.to_string()))?;
        }
        if parts.next().is_some() {
            return Err(ParseError::Malformed(line_no, line.to_string()));
        }
        if let Some(dims) = declared_dims {
            if (0..3).any(|m| triple[m] as usize >= dims[m]) {
                return Err(ParseError::OutOfRange(line_no, line.to_string()));
            }
        }
        for m in 0..3 {
            max[m] = max[m].max(triple[m]);
        }
        entries.push(triple);
    }
    let dims = declared_dims.unwrap_or_else(|| {
        if entries.is_empty() {
            [0, 0, 0]
        } else {
            [
                max[0] as usize + 1,
                max[1] as usize + 1,
                max[2] as usize + 1,
            ]
        }
    });
    let mut builder = TensorBuilder::with_capacity(dims, entries.len());
    for [i, j, k] in entries {
        builder.insert(i, j, k);
    }
    Ok(builder.build())
}

/// Writes a tensor in the text format (with a `# dims` header).
pub fn write_tensor<W: Write>(tensor: &BoolTensor, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    let [i, j, k] = tensor.dims();
    writeln!(w, "# dims {i} {j} {k}")?;
    for [a, b, c] in tensor.iter() {
        writeln!(w, "{a} {b} {c}")?;
    }
    w.flush()
}

/// Magic bytes of the binary tensor format.
const BINARY_MAGIC: &[u8; 8] = b"DBTFBIN1";

/// Serializes a tensor into the compact binary format: an 8-byte magic,
/// three `u64` mode sizes, a `u64` count, then plain little-endian `u32`
/// coordinate triples in sorted order.
///
/// Roughly 12 bytes per non-zero versus ~12–20 for the text format, and
/// no parsing on load — the practical choice for the multi-hundred-MB
/// tensors of the paper's Table III.
pub fn write_tensor_binary_buf(tensor: &BoolTensor) -> bytes::Bytes {
    use bytes::BufMut;
    let mut buf = bytes::BytesMut::with_capacity(8 + 32 + tensor.nnz() * 12);
    buf.put_slice(BINARY_MAGIC);
    for d in tensor.dims() {
        buf.put_u64_le(d as u64);
    }
    buf.put_u64_le(tensor.nnz() as u64);
    for [i, j, k] in tensor.iter() {
        buf.put_u32_le(i);
        buf.put_u32_le(j);
        buf.put_u32_le(k);
    }
    buf.freeze()
}

/// Parses the binary format produced by [`write_tensor_binary_buf`].
pub fn read_tensor_binary_buf(mut data: &[u8]) -> Result<BoolTensor, ParseError> {
    use bytes::Buf;
    let malformed = |msg: &str| ParseError::Malformed(0, msg.to_string());
    if data.len() < 8 + 32 || &data[..8] != BINARY_MAGIC {
        return Err(malformed("missing DBTFBIN1 magic"));
    }
    data.advance(8);
    let dims = [
        data.get_u64_le() as usize,
        data.get_u64_le() as usize,
        data.get_u64_le() as usize,
    ];
    let count = data.get_u64_le() as usize;
    if data.remaining() < count * 12 {
        return Err(malformed("truncated entry section"));
    }
    let mut builder = TensorBuilder::with_capacity(dims, count);
    for _ in 0..count {
        let (i, j, k) = (data.get_u32_le(), data.get_u32_le(), data.get_u32_le());
        if i as usize >= dims[0] || j as usize >= dims[1] || k as usize >= dims[2] {
            return Err(ParseError::OutOfRange(0, format!("({i}, {j}, {k})")));
        }
        builder.insert(i, j, k);
    }
    Ok(builder.build())
}

/// Writes a tensor to a file in the binary format.
pub fn write_tensor_binary_file<P: AsRef<Path>>(tensor: &BoolTensor, path: P) -> io::Result<()> {
    std::fs::write(path, write_tensor_binary_buf(tensor))
}

/// Reads a tensor from a binary-format file.
pub fn read_tensor_binary_file<P: AsRef<Path>>(path: P) -> Result<BoolTensor, ParseError> {
    read_tensor_binary_buf(&std::fs::read(path)?)
}

/// Reads a tensor from a file path.
pub fn read_tensor_file<P: AsRef<Path>>(path: P) -> Result<BoolTensor, ParseError> {
    read_tensor(std::fs::File::open(path)?)
}

/// Writes a tensor to a file path.
pub fn write_tensor_file<P: AsRef<Path>>(tensor: &BoolTensor, path: P) -> io::Result<()> {
    write_tensor(tensor, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let t = BoolTensor::from_entries([3, 4, 5], vec![[0, 0, 0], [2, 3, 4], [1, 1, 1]]);
        let mut buf = Vec::new();
        write_tensor(&t, &mut buf).unwrap();
        let back = read_tensor(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn inferred_dims_without_header() {
        let text = "0 0 0\n2 3 4\n";
        let t = read_tensor(text.as_bytes()).unwrap();
        assert_eq!(t.dims(), [3, 4, 5]);
        assert_eq!(t.nnz(), 2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n\n0 1 2\n# another\n";
        let t = read_tensor(text.as_bytes()).unwrap();
        assert_eq!(t.nnz(), 1);
        assert!(t.contains(0, 1, 2));
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "0 0 0\nnot a triple\n";
        match read_tensor(text.as_bytes()) {
            Err(ParseError::Malformed(2, _)) => {}
            other => panic!("expected Malformed(2, _), got {other:?}"),
        }
    }

    #[test]
    fn too_many_fields_rejected() {
        let text = "0 0 0 0\n";
        assert!(matches!(
            read_tensor(text.as_bytes()),
            Err(ParseError::Malformed(1, _))
        ));
    }

    #[test]
    fn out_of_range_with_header() {
        let text = "# dims 2 2 2\n0 0 2\n";
        assert!(matches!(
            read_tensor(text.as_bytes()),
            Err(ParseError::OutOfRange(2, _))
        ));
    }

    #[test]
    fn empty_input() {
        let t = read_tensor("".as_bytes()).unwrap();
        assert_eq!(t.dims(), [0, 0, 0]);
        assert_eq!(t.nnz(), 0);
    }

    #[test]
    fn duplicate_entries_dedup() {
        let text = "1 1 1\n1 1 1\n";
        let t = read_tensor(text.as_bytes()).unwrap();
        assert_eq!(t.nnz(), 1);
    }

    #[test]
    fn binary_roundtrip() {
        let t = BoolTensor::from_entries([100, 50, 30], vec![[0, 0, 0], [99, 49, 29], [5, 5, 5]]);
        let buf = write_tensor_binary_buf(&t);
        assert_eq!(&buf[..8], b"DBTFBIN1");
        assert_eq!(buf.len(), 8 + 32 + 3 * 12);
        let back = read_tensor_binary_buf(&buf).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        assert!(read_tensor_binary_buf(b"NOTMAGIC").is_err());
        assert!(read_tensor_binary_buf(b"").is_err());
    }

    #[test]
    fn binary_rejects_truncation_and_out_of_range() {
        let t = BoolTensor::from_entries([4, 4, 4], vec![[1, 2, 3], [0, 0, 0]]);
        let buf = write_tensor_binary_buf(&t);
        assert!(matches!(
            read_tensor_binary_buf(&buf[..buf.len() - 4]),
            Err(ParseError::Malformed(_, _))
        ));
        // Corrupt an entry coordinate beyond the dims.
        let mut bad = buf.to_vec();
        let entry_start = 8 + 32;
        bad[entry_start..entry_start + 4].copy_from_slice(&200u32.to_le_bytes());
        assert!(matches!(
            read_tensor_binary_buf(&bad),
            Err(ParseError::OutOfRange(_, _))
        ));
    }

    #[test]
    fn binary_file_roundtrip() {
        let t = BoolTensor::from_entries([8, 8, 8], vec![[1, 1, 1], [7, 0, 3]]);
        let dir = std::env::temp_dir().join("dbtf_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.dbtf");
        write_tensor_binary_file(&t, &path).unwrap();
        assert_eq!(read_tensor_binary_file(&path).unwrap(), t);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_tensor_binary() {
        let t = BoolTensor::empty([3, 3, 3]);
        let back = read_tensor_binary_buf(&write_tensor_binary_buf(&t)).unwrap();
        assert_eq!(back, t);
    }
}
