//! Bit-packed binary matrices.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{BitVec, WORD_BITS};

/// A dense binary matrix over `B = {0, 1}`, packed 64 bits per word with a
/// whole number of words per row.
///
/// Factor matrices (`A ∈ B^{I×R}`) and cached Boolean row summations are
/// `BitMatrix` values. Rows are exposed as word slices ([`BitMatrix::row`])
/// so Boolean row sums are straight word-wise ORs.
///
/// As in [`BitVec`], bits past `cols()` within each row's final word are kept
/// zero at all times.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-zeros `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(WORD_BITS);
        BitMatrix {
            rows,
            cols,
            words_per_row,
            data: vec![0; rows * words_per_row],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds a matrix from per-row lists of one-column indices.
    ///
    /// # Panics
    ///
    /// Panics if `row_indices.len() != rows` or any index `≥ cols`.
    pub fn from_rows(rows: usize, cols: usize, row_indices: &[&[usize]]) -> Self {
        assert_eq!(row_indices.len(), rows, "row count mismatch");
        let mut m = Self::zeros(rows, cols);
        for (r, indices) in row_indices.iter().enumerate() {
            for &c in *indices {
                m.set(r, c, true);
            }
        }
        m
    }

    /// Builds a matrix whose rows are the given bit vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors do not all have length `cols`.
    pub fn from_bitvec_rows(cols: usize, rows: &[BitVec]) -> Self {
        let mut m = Self::zeros(rows.len(), cols);
        for (r, v) in rows.iter().enumerate() {
            assert_eq!(v.len(), cols, "row {r} has wrong length");
            m.row_mut(r).copy_from_slice(v.words());
        }
        m
    }

    /// A matrix whose entries are i.i.d. Bernoulli(`density`).
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, density: f64, rng: &mut R) -> Self {
        assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if rng.gen_bool(density) {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of `u64` words backing each row.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Reads entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of range"
        );
        let w = self.data[r * self.words_per_row + c / WORD_BITS];
        (w >> (c % WORD_BITS)) & 1 == 1
    }

    /// Writes entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of range"
        );
        let w = &mut self.data[r * self.words_per_row + c / WORD_BITS];
        let mask = 1u64 << (c % WORD_BITS);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// The packed words of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        let start = r * self.words_per_row;
        &self.data[start..start + self.words_per_row]
    }

    /// Mutable packed words of row `r`.
    ///
    /// Callers must keep tail bits (past `cols()`) zero.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [u64] {
        let start = r * self.words_per_row;
        &mut self.data[start..start + self.words_per_row]
    }

    /// Copies row `r` into a new [`BitVec`].
    pub fn row_bitvec(&self, r: usize) -> BitVec {
        BitVec::from_words(self.cols, self.row(r).to_vec())
    }

    /// ORs row `r` into `dest` (`dest ← dest ∨ row_r`).
    ///
    /// `dest` must have at least `words_per_row()` words; extra words are
    /// untouched.
    #[inline]
    pub fn or_row_into(&self, r: usize, dest: &mut [u64]) {
        for (d, s) in dest.iter_mut().zip(self.row(r)) {
            *d |= s;
        }
    }

    /// Reads up to 64 consecutive bits of row `r` as a `u64` mask.
    ///
    /// See [`BitVec::extract_word`]; DBTF uses this to form cache keys from
    /// factor rows.
    pub fn row_word(&self, r: usize, start: usize, len: usize) -> u64 {
        assert!(len <= 64 && start + len <= self.cols, "range out of bounds");
        if len == 0 {
            return 0;
        }
        let base = r * self.words_per_row;
        let wi = start / WORD_BITS;
        let off = start % WORD_BITS;
        let lo = self.data[base + wi] >> off;
        let value = if off + len > WORD_BITS {
            lo | (self.data[base + wi + 1] << (WORD_BITS - off))
        } else {
            lo
        };
        if len == 64 {
            value
        } else {
            value & ((1u64 << len) - 1)
        }
    }

    /// Number of ones in the whole matrix.
    pub fn count_ones(&self) -> usize {
        self.data.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of ones in row `r`.
    pub fn row_count_ones(&self, r: usize) -> usize {
        self.row(r).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of ones (0.0 for an empty matrix).
    pub fn density(&self) -> f64 {
        let cells = self.rows * self.cols;
        if cells == 0 {
            0.0
        } else {
            self.count_ones() as f64 / cells as f64
        }
    }

    /// The transpose `Aᵀ`.
    pub fn transpose(&self) -> BitMatrix {
        let mut t = BitMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            for (wi, &w) in row.iter().enumerate() {
                let mut rem = w;
                while rem != 0 {
                    let c = wi * WORD_BITS + rem.trailing_zeros() as usize;
                    t.set(c, r, true);
                    rem &= rem - 1;
                }
            }
        }
        t
    }

    /// Iterates over the column indices of the ones in row `r`.
    pub fn iter_row_ones(&self, r: usize) -> impl Iterator<Item = usize> + '_ {
        self.row(r).iter().enumerate().flat_map(|(wi, &w)| {
            let base = wi * WORD_BITS;
            std::iter::successors(if w != 0 { Some(w) } else { None }, |&rem| {
                let next = rem & (rem - 1);
                (next != 0).then_some(next)
            })
            .map(move |rem| base + rem.trailing_zeros() as usize)
        })
    }

    /// Number of entries at which `self` and `other` differ.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn xor_count(&self, other: &BitMatrix) -> usize {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Column `c` as a [`BitVec`] of length `rows()`.
    pub fn column(&self, c: usize) -> BitVec {
        let mut v = BitVec::zeros(self.rows);
        for r in 0..self.rows {
            if self.get(r, c) {
                v.set(r, true);
            }
        }
        v
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix[{} × {}]", self.rows, self.cols)?;
        for r in 0..self.rows.min(16) {
            for c in 0..self.cols.min(64) {
                write!(f, "{}", u8::from(self.get(r, c)))?;
            }
            writeln!(f)?;
        }
        if self.rows > 16 {
            writeln!(f, "…")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_shape() {
        let m = BitMatrix::zeros(3, 130);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 130);
        assert_eq!(m.words_per_row(), 3);
        assert_eq!(m.count_ones(), 0);
    }

    #[test]
    fn set_get() {
        let mut m = BitMatrix::zeros(4, 70);
        m.set(0, 0, true);
        m.set(3, 69, true);
        m.set(2, 64, true);
        assert!(m.get(0, 0));
        assert!(m.get(3, 69));
        assert!(m.get(2, 64));
        assert!(!m.get(1, 1));
        assert_eq!(m.count_ones(), 3);
        m.set(0, 0, false);
        assert!(!m.get(0, 0));
    }

    #[test]
    fn identity() {
        let m = BitMatrix::identity(5);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(m.get(i, j), i == j);
            }
        }
    }

    #[test]
    fn from_rows_and_row_bitvec() {
        let m = BitMatrix::from_rows(2, 100, &[&[0, 99][..], &[50][..]]);
        assert_eq!(m.row_bitvec(0).iter_ones().collect::<Vec<_>>(), vec![0, 99]);
        assert_eq!(m.row_bitvec(1).iter_ones().collect::<Vec<_>>(), vec![50]);
    }

    #[test]
    fn from_bitvec_rows_roundtrip() {
        let rows = vec![
            BitVec::from_indices(70, &[0, 69]),
            BitVec::from_indices(70, &[35]),
        ];
        let m = BitMatrix::from_bitvec_rows(70, &rows);
        assert_eq!(m.row_bitvec(0), rows[0]);
        assert_eq!(m.row_bitvec(1), rows[1]);
    }

    #[test]
    fn or_row_into_is_boolean_sum() {
        let m = BitMatrix::from_rows(2, 70, &[&[0, 65][..], &[1, 65][..]]);
        let mut acc = vec![0u64; m.words_per_row()];
        m.or_row_into(0, &mut acc);
        m.or_row_into(1, &mut acc);
        let v = BitVec::from_words(70, acc);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![0, 1, 65]);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = BitMatrix::random(13, 71, 0.3, &mut rng);
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }

    #[test]
    fn transpose_entries() {
        let m = BitMatrix::from_rows(2, 3, &[&[0, 2][..], &[1][..]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert!(t.get(0, 0) && t.get(2, 0) && t.get(1, 1));
        assert_eq!(t.count_ones(), 3);
    }

    #[test]
    fn row_word_matches_bits() {
        let m = BitMatrix::from_rows(1, 130, &[&[0, 3, 64, 120][..]]);
        assert_eq!(m.row_word(0, 0, 4), 0b1001);
        assert_eq!(m.row_word(0, 63, 2), 0b10);
        assert_eq!(m.row_word(0, 118, 5), 0b00100);
    }

    #[test]
    fn random_density_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(42);
        let m = BitMatrix::random(100, 100, 0.2, &mut rng);
        let d = m.density();
        assert!((0.15..0.25).contains(&d), "density {d} too far from 0.2");
    }

    #[test]
    fn column_extraction() {
        let m = BitMatrix::from_rows(3, 4, &[&[1][..], &[1, 3][..], &[0][..]]);
        assert_eq!(m.column(1).iter_ones().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(m.column(0).iter_ones().collect::<Vec<_>>(), vec![2]);
        assert_eq!(m.column(2).count_ones(), 0);
    }

    #[test]
    fn xor_count_distance() {
        let a = BitMatrix::from_rows(2, 5, &[&[0][..], &[1][..]]);
        let b = BitMatrix::from_rows(2, 5, &[&[0][..], &[2][..]]);
        assert_eq!(a.xor_count(&b), 2);
        assert_eq!(a.xor_count(&a), 0);
    }

    #[test]
    fn iter_row_ones() {
        let m = BitMatrix::from_rows(1, 130, &[&[0, 64, 129][..]]);
        assert_eq!(m.iter_row_ones(0).collect::<Vec<_>>(), vec![0, 64, 129]);
    }
}
