//! Bit-packed binary vectors.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::WORD_BITS;

/// A fixed-length binary vector over `B = {0, 1}`, packed 64 bits per word.
///
/// `BitVec` is the workhorse value type of the crate: rows of cached Boolean
/// row summations, slices of unfolded tensors and factor-matrix rows are all
/// `BitVec`s. The Boolean sum of the paper (`∨`, where `1 ⊕ 1 = 1`) is
/// [`BitVec::or_assign`]; the pointwise product (`∧`) is
/// [`BitVec::and_assign`]; the reconstruction-error primitive
/// `|u ⊕ v|` (number of differing positions) is [`BitVec::xor_count`].
///
/// Bits beyond `len()` within the final storage word are kept zero at all
/// times; every mutating operation restores this invariant, so popcounts
/// never need masking.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    nbits: usize,
    words: Vec<u64>,
}

#[inline]
fn words_for(nbits: usize) -> usize {
    nbits.div_ceil(WORD_BITS)
}

impl BitVec {
    /// Creates an all-zeros vector of length `nbits`.
    pub fn zeros(nbits: usize) -> Self {
        BitVec {
            nbits,
            words: vec![0; words_for(nbits)],
        }
    }

    /// Creates an all-ones vector of length `nbits`.
    pub fn ones(nbits: usize) -> Self {
        let mut v = BitVec {
            nbits,
            words: vec![!0u64; words_for(nbits)],
        };
        v.mask_tail();
        v
    }

    /// Creates a vector of length `nbits` with ones exactly at `indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn from_indices(nbits: usize, indices: &[usize]) -> Self {
        let mut v = Self::zeros(nbits);
        for &i in indices {
            v.set(i, true);
        }
        v
    }

    /// Builds a vector directly from packed words.
    ///
    /// Tail bits beyond `nbits` are cleared.
    pub fn from_words(nbits: usize, mut words: Vec<u64>) -> Self {
        assert_eq!(words.len(), words_for(nbits), "word count mismatch");
        let mut v = BitVec {
            nbits,
            words: Vec::new(),
        };
        std::mem::swap(&mut v.words, &mut words);
        v.mask_tail();
        v
    }

    /// Number of bits in the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.nbits
    }

    /// `true` if the vector has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    /// The backing words (tail bits beyond `len()` are zero).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.nbits, "bit index {i} out of range {}", self.nbits);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Writes bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.nbits, "bit index {i} out of range {}", self.nbits);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Sets every bit to zero, keeping the length.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of ones (`|v|` in the paper's notation).
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Boolean sum: `self ← self ∨ other`.
    ///
    /// This is the paper's `⊕` on binary vectors (`1 ⊕ 1 = 1`).
    #[inline]
    pub fn or_assign(&mut self, other: &BitVec) {
        debug_assert_eq!(self.nbits, other.nbits, "length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Pointwise product: `self ← self ∧ other`.
    #[inline]
    pub fn and_assign(&mut self, other: &BitVec) {
        debug_assert_eq!(self.nbits, other.nbits, "length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Symmetric difference: `self ← self XOR other`.
    #[inline]
    pub fn xor_assign(&mut self, other: &BitVec) {
        debug_assert_eq!(self.nbits, other.nbits, "length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Number of positions where `self` and `other` differ: `|self XOR other|`.
    ///
    /// For binary data this equals the squared Frobenius distance, i.e. the
    /// reconstruction error of the paper restricted to these positions.
    #[inline]
    pub fn xor_count(&self, other: &BitVec) -> usize {
        debug_assert_eq!(self.nbits, other.nbits, "length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Number of positions where both are one: `|self ∧ other|`.
    #[inline]
    pub fn and_count(&self, other: &BitVec) -> usize {
        debug_assert_eq!(self.nbits, other.nbits, "length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Returns a new vector equal to `self ∨ other`.
    pub fn or(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.or_assign(other);
        out
    }

    /// Returns a new vector equal to `self ∧ other`.
    pub fn and(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.and_assign(other);
        out
    }

    /// Iterates over the indices of the one-bits, in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let base = wi * WORD_BITS;
            std::iter::successors(if w != 0 { Some(w) } else { None }, |&rem| {
                let next = rem & (rem - 1);
                (next != 0).then_some(next)
            })
            .map(move |rem| base + rem.trailing_zeros() as usize)
        })
    }

    /// Extracts up to 64 bits starting at `start` as a `u64` mask
    /// (bit `b` of the result is bit `start + b` of the vector).
    ///
    /// Used to turn a factor-matrix row restricted to a cache-table group
    /// into a table key (Section III-F of the paper uses a bitwise AND of
    /// such masks as the key).
    ///
    /// # Panics
    ///
    /// Panics if `len > 64` or `start + len > self.len()`.
    pub fn extract_word(&self, start: usize, len: usize) -> u64 {
        assert!(len <= 64, "can extract at most 64 bits");
        assert!(start + len <= self.nbits, "range out of bounds");
        if len == 0 {
            return 0;
        }
        let wi = start / WORD_BITS;
        let off = start % WORD_BITS;
        let lo = self.words[wi] >> off;
        let value = if off + len > WORD_BITS {
            lo | (self.words[wi + 1] << (WORD_BITS - off))
        } else {
            lo
        };
        if len == 64 {
            value
        } else {
            value & ((1u64 << len) - 1)
        }
    }

    /// Copies the bit range `[start, start + len)` into a new `BitVec`.
    ///
    /// This is the primitive behind the paper's *vertically sliced* cache
    /// tables for edge blocks (Section III-D, Algorithm 5 line 4).
    pub fn slice(&self, start: usize, len: usize) -> BitVec {
        assert!(start + len <= self.nbits, "slice out of bounds");
        let mut out = BitVec::zeros(len);
        let nwords = out.words.len();
        for (w, out_word) in out.words.iter_mut().enumerate() {
            let bit = start + w * WORD_BITS;
            let remaining = len - w * WORD_BITS;
            let take = remaining.min(WORD_BITS);
            // Only the final word may need fewer than WORD_BITS bits.
            debug_assert!(take == WORD_BITS || w == nwords - 1);
            *out_word = self.extract_word(bit, take);
        }
        out
    }

    /// Counts ones within the bit range `[start, start + len)`.
    pub fn count_range(&self, start: usize, len: usize) -> usize {
        assert!(start + len <= self.nbits, "range out of bounds");
        let mut count = 0usize;
        let mut pos = start;
        let end = start + len;
        while pos < end {
            let take = (end - pos).min(WORD_BITS);
            count += self.extract_word(pos, take).count_ones() as usize;
            pos += take;
        }
        count
    }

    /// Density of ones: `count_ones() / len()` (0.0 for empty vectors).
    pub fn density(&self) -> f64 {
        if self.nbits == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.nbits as f64
        }
    }

    /// Clears bits at positions `len()..` of the final word.
    fn mask_tail(&mut self) {
        let rem = self.nbits % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.nbits)?;
        for i in 0..self.nbits.min(128) {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.nbits > 128 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(70);
        assert_eq!(z.len(), 70);
        assert_eq!(z.count_ones(), 0);
        let o = BitVec::ones(70);
        assert_eq!(o.count_ones(), 70);
        // Tail bits past 70 must not be set.
        assert_eq!(o.words()[1].count_ones(), 6);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::zeros(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!v.get(i));
            v.set(i, true);
            assert!(v.get(i));
        }
        assert_eq!(v.count_ones(), 8);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 7);
    }

    #[test]
    fn boolean_sum_is_or() {
        let a = BitVec::from_indices(10, &[1, 3, 5]);
        let b = BitVec::from_indices(10, &[3, 4]);
        let c = a.or(&b);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![1, 3, 4, 5]);
        // 1 ⊕ 1 = 1: position 3 present once.
        assert_eq!(c.count_ones(), 4);
    }

    #[test]
    fn xor_count_is_hamming() {
        let a = BitVec::from_indices(100, &[0, 50, 99]);
        let b = BitVec::from_indices(100, &[0, 51, 99]);
        assert_eq!(a.xor_count(&b), 2);
        assert_eq!(a.xor_count(&a), 0);
    }

    #[test]
    fn and_count_counts_intersection() {
        let a = BitVec::from_indices(100, &[0, 10, 64, 65]);
        let b = BitVec::from_indices(100, &[10, 64, 90]);
        assert_eq!(a.and_count(&b), 2);
    }

    #[test]
    fn iter_ones_in_order() {
        let idx = [0usize, 2, 63, 64, 100, 127];
        let v = BitVec::from_indices(128, &idx);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), idx.to_vec());
    }

    #[test]
    fn iter_ones_empty_and_full() {
        assert_eq!(BitVec::zeros(65).iter_ones().count(), 0);
        assert_eq!(BitVec::ones(65).iter_ones().count(), 65);
    }

    #[test]
    fn extract_word_within_one_word() {
        let v = BitVec::from_indices(64, &[0, 3, 10]);
        assert_eq!(v.extract_word(0, 4), 0b1001);
        assert_eq!(v.extract_word(3, 8), 0b10000001);
        assert_eq!(v.extract_word(0, 64), (1 << 0) | (1 << 3) | (1 << 10));
    }

    #[test]
    fn extract_word_across_boundary() {
        let v = BitVec::from_indices(128, &[62, 63, 64, 70]);
        // Bits 62, 63, 64 set; bit 65 unset.
        assert_eq!(v.extract_word(62, 4), 0b0111);
        assert_eq!(v.extract_word(62, 9), 0b100000111);
        assert_eq!(v.extract_word(60, 3), 0b100);
    }

    #[test]
    fn extract_word_zero_len() {
        let v = BitVec::ones(10);
        assert_eq!(v.extract_word(5, 0), 0);
    }

    #[test]
    fn slice_matches_manual_bits() {
        let idx = [1usize, 5, 64, 65, 130, 199];
        let v = BitVec::from_indices(200, &idx);
        let s = v.slice(60, 80);
        let expected: Vec<usize> = idx
            .iter()
            .filter(|&&i| (60..140).contains(&i))
            .map(|&i| i - 60)
            .collect();
        assert_eq!(s.len(), 80);
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn count_range_agrees_with_slice() {
        let v = BitVec::from_indices(300, &[0, 63, 64, 128, 200, 299]);
        for (start, len) in [(0, 300), (0, 64), (63, 2), (100, 150), (299, 1), (150, 0)] {
            assert_eq!(v.count_range(start, len), v.slice(start, len).count_ones());
        }
    }

    #[test]
    fn from_words_masks_tail() {
        let v = BitVec::from_words(3, vec![!0u64]);
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn density() {
        assert_eq!(BitVec::zeros(0).density(), 0.0);
        assert_eq!(BitVec::ones(10).density(), 1.0);
        assert_eq!(BitVec::from_indices(10, &[0]).density(), 0.1);
    }
}
